// Unit tests for Bitstring: the bit-algebra all codes and transcripts use.
#include <gtest/gtest.h>

#include "common/bitstring.h"
#include "common/error.h"
#include "common/rng.h"

namespace nb {
namespace {

TEST(Bitstring, DefaultIsEmpty) {
    Bitstring s;
    EXPECT_EQ(s.size(), 0u);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
}

TEST(Bitstring, ConstructedZeroed) {
    Bitstring s(130);
    EXPECT_EQ(s.size(), 130u);
    EXPECT_EQ(s.count(), 0u);
    for (std::size_t i = 0; i < 130; ++i) {
        EXPECT_FALSE(s.test(i));
    }
}

TEST(Bitstring, SetAndTest) {
    Bitstring s(70);
    s.set(0);
    s.set(63);
    s.set(64);
    s.set(69);
    EXPECT_TRUE(s.test(0));
    EXPECT_TRUE(s.test(63));
    EXPECT_TRUE(s.test(64));
    EXPECT_TRUE(s.test(69));
    EXPECT_FALSE(s.test(1));
    EXPECT_EQ(s.count(), 4u);
    s.set(63, false);
    EXPECT_FALSE(s.test(63));
    EXPECT_EQ(s.count(), 3u);
}

TEST(Bitstring, FlipTogglesBit) {
    Bitstring s(10);
    s.flip(3);
    EXPECT_TRUE(s.test(3));
    s.flip(3);
    EXPECT_FALSE(s.test(3));
}

TEST(Bitstring, OutOfRangeThrows) {
    Bitstring s(8);
    EXPECT_THROW(s.test(8), precondition_error);
    EXPECT_THROW(s.set(8), precondition_error);
    EXPECT_THROW(s.flip(100), precondition_error);
}

TEST(Bitstring, FromString) {
    const Bitstring s = Bitstring::from_string("10110");
    EXPECT_EQ(s.size(), 5u);
    EXPECT_TRUE(s.test(0));
    EXPECT_FALSE(s.test(1));
    EXPECT_TRUE(s.test(2));
    EXPECT_TRUE(s.test(3));
    EXPECT_FALSE(s.test(4));
    EXPECT_EQ(s.to_string(), "10110");
}

TEST(Bitstring, FromStringRejectsGarbage) {
    EXPECT_THROW(Bitstring::from_string("10x"), precondition_error);
}

TEST(Bitstring, OrSuperimposition) {
    const auto a = Bitstring::from_string("1100");
    const auto b = Bitstring::from_string("1010");
    EXPECT_EQ((a | b).to_string(), "1110");
}

TEST(Bitstring, AndIntersection) {
    const auto a = Bitstring::from_string("1100");
    const auto b = Bitstring::from_string("1010");
    EXPECT_EQ((a & b).to_string(), "1000");
}

TEST(Bitstring, XorDifference) {
    const auto a = Bitstring::from_string("1100");
    const auto b = Bitstring::from_string("1010");
    EXPECT_EQ((a ^ b).to_string(), "0110");
}

TEST(Bitstring, ComplementRespectsSize) {
    const auto a = Bitstring::from_string("101");
    const auto c = ~a;
    EXPECT_EQ(c.to_string(), "010");
    // Padding bits must stay zero so count() is exact.
    EXPECT_EQ(c.count(), 1u);
}

TEST(Bitstring, SizeMismatchThrows) {
    Bitstring a(4);
    Bitstring b(5);
    EXPECT_THROW(a |= b, precondition_error);
    EXPECT_THROW(a.intersect_count(b), precondition_error);
    EXPECT_THROW(a.hamming_distance(b), precondition_error);
}

TEST(Bitstring, IntersectCountMatchesDefinition2) {
    const auto a = Bitstring::from_string("110101");
    const auto b = Bitstring::from_string("011101");
    // a AND b = 010101 -> 3 ones.
    EXPECT_EQ(a.intersect_count(b), 3u);
    EXPECT_TRUE(a.intersects(b, 3));
    EXPECT_FALSE(a.intersects(b, 4));
}

TEST(Bitstring, AndNotCount) {
    const auto a = Bitstring::from_string("110101");
    const auto b = Bitstring::from_string("011101");
    // a AND NOT b = 100000 -> 1.
    EXPECT_EQ(a.and_not_count(b), 1u);
    EXPECT_EQ(b.and_not_count(a), 1u);
}

TEST(Bitstring, HammingDistance) {
    const auto a = Bitstring::from_string("110101");
    const auto b = Bitstring::from_string("011101");
    EXPECT_EQ(a.hamming_distance(b), 2u);
    EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(Bitstring, HammingDistanceAcrossWords) {
    Bitstring a(200);
    Bitstring b(200);
    a.set(0);
    a.set(64);
    a.set(199);
    b.set(64);
    b.set(128);
    EXPECT_EQ(a.hamming_distance(b), 3u);
}

TEST(Bitstring, OnePositionsSorted) {
    Bitstring s(150);
    s.set(3);
    s.set(70);
    s.set(149);
    const auto positions = s.one_positions();
    ASSERT_EQ(positions.size(), 3u);
    EXPECT_EQ(positions[0], 3u);
    EXPECT_EQ(positions[1], 70u);
    EXPECT_EQ(positions[2], 149u);
}

TEST(Bitstring, ForEachOneVisitsAll) {
    Bitstring s(130);
    s.set(1);
    s.set(65);
    s.set(129);
    std::vector<std::size_t> seen;
    s.for_each_one([&seen](std::size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<std::size_t>{1, 65, 129}));
}

TEST(Bitstring, GatherExtractsSubsequence) {
    const auto s = Bitstring::from_string("10110");
    const Bitstring g = s.gather({0, 2, 4});
    EXPECT_EQ(g.to_string(), "110");
}

TEST(Bitstring, GatherOutOfRangeThrows) {
    const auto s = Bitstring::from_string("101");
    EXPECT_THROW(s.gather({0, 3}), precondition_error);
}

TEST(Bitstring, ScatterIsGatherInverse) {
    // CD construction (Notation 7): scatter values at positions, gather back.
    const auto values = Bitstring::from_string("1011");
    const std::vector<std::size_t> positions{2, 5, 9, 13};
    const Bitstring scattered = Bitstring::scatter(16, positions, values);
    EXPECT_EQ(scattered.count(), 3u);
    EXPECT_EQ(scattered.gather(positions), values);
}

TEST(Bitstring, ScatterSizeMismatchThrows) {
    const auto values = Bitstring::from_string("101");
    EXPECT_THROW(Bitstring::scatter(8, {1, 2}, values), precondition_error);
}

TEST(Bitstring, RandomWithWeightExact) {
    Rng rng(7);
    for (const std::size_t weight : {0u, 1u, 17u, 100u}) {
        const Bitstring s = Bitstring::random_with_weight(rng, 100, weight);
        EXPECT_EQ(s.size(), 100u);
        EXPECT_EQ(s.count(), weight);
    }
}

TEST(Bitstring, RandomWithWeightRejectsOverweight) {
    Rng rng(7);
    EXPECT_THROW(Bitstring::random_with_weight(rng, 10, 11), precondition_error);
}

TEST(Bitstring, RandomIsDeterministicPerSeed) {
    Rng a(42);
    Rng b(42);
    EXPECT_EQ(Bitstring::random(a, 500), Bitstring::random(b, 500));
}

TEST(Bitstring, EqualityAndHash) {
    const auto a = Bitstring::from_string("1010101");
    const auto b = Bitstring::from_string("1010101");
    const auto c = Bitstring::from_string("1010100");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a.hash(), c.hash());
}

TEST(Bitstring, HashDependsOnLength) {
    Bitstring a(5);
    Bitstring b(6);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(Bitstring, NoiseZeroEpsilonIsIdentity) {
    Rng rng(1);
    Bitstring s = Bitstring::random(rng, 300);
    const Bitstring before = s;
    s.apply_noise(rng, 0.0);
    EXPECT_EQ(s, before);
}

TEST(Bitstring, NoiseFlipRateMatchesEpsilon) {
    Rng rng(99);
    const std::size_t bits = 200000;
    const double epsilon = 0.1;
    Bitstring s(bits);
    const Bitstring before = s;
    s.apply_noise(rng, epsilon);
    const double rate = static_cast<double>(s.hamming_distance(before)) /
                        static_cast<double>(bits);
    EXPECT_NEAR(rate, epsilon, 0.01);
}

TEST(Bitstring, DenseNoiseFlipRateMatchesEpsilon) {
    Rng rng(100);
    const std::size_t bits = 100000;
    const double epsilon = 0.25;
    Bitstring s(bits);
    const Bitstring before = s;
    s.apply_noise_dense(rng, epsilon);
    const double rate = static_cast<double>(s.hamming_distance(before)) /
                        static_cast<double>(bits);
    EXPECT_NEAR(rate, epsilon, 0.01);
}

TEST(Bitstring, NoiseIsUnbiasedAcrossPositions) {
    // Each position must be flipped independently; check first and last
    // position flip frequencies over many trials.
    const double epsilon = 0.3;
    std::size_t first_flips = 0;
    std::size_t last_flips = 0;
    const std::size_t trials = 4000;
    Rng rng(5);
    for (std::size_t t = 0; t < trials; ++t) {
        Bitstring s(64);
        s.apply_noise(rng, epsilon);
        if (s.test(0)) {
            ++first_flips;
        }
        if (s.test(63)) {
            ++last_flips;
        }
    }
    EXPECT_NEAR(static_cast<double>(first_flips) / trials, epsilon, 0.03);
    EXPECT_NEAR(static_cast<double>(last_flips) / trials, epsilon, 0.03);
}

}  // namespace
}  // namespace nb
