// Tests for Algorithm 1 (BeepTransport): one simulated Broadcast CONGEST
// round over noisy beeps — the paper's core contribution.
#include <gtest/gtest.h>

#include <optional>

#include "common/error.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "sim/params.h"
#include "sim/transport.h"

namespace nb {
namespace {

std::vector<std::optional<Bitstring>> random_messages_for(const Graph& graph,
                                                          std::size_t bits,
                                                          std::uint64_t seed,
                                                          double silent_fraction = 0.0) {
    Rng rng(seed);
    std::vector<std::optional<Bitstring>> messages(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        if (!rng.bernoulli(silent_fraction)) {
            messages[v] = Bitstring::random(rng, bits);
        }
    }
    return messages;
}

SimulationParams tuned_params(double epsilon, std::size_t message_bits) {
    SimulationParams params;
    params.epsilon = epsilon;
    params.message_bits = message_bits;
    params.c_eps = 4;
    return params;
}

TEST(SimulationParams, DerivedDimensionsMatchSection3) {
    SimulationParams params = tuned_params(0.1, 15);
    // payload = B+1 = 16; distance length = c^2*16 = 256;
    // beep length (delta=7) = c^3*(7+1)*16 = 8192; rounds = 2*8192.
    EXPECT_EQ(params.payload_bits(), 16u);
    EXPECT_EQ(params.distance_code_length(), 256u);
    EXPECT_EQ(params.beep_code_length(7), 8192u);
    EXPECT_EQ(params.rounds_per_broadcast_round(7), 16384u);
}

TEST(SimulationParams, PaperConstants) {
    // Noiseless: the Section 3 blanket requirement c_eps >= 108.
    EXPECT_EQ(SimulationParams::paper_c_eps(0.0), 108u);
    // eps = 0.1: Lemma 9's 54/((1-2e)^2 e)+5 dominates (~849).
    EXPECT_GE(SimulationParams::paper_c_eps(0.1), 848u);
    EXPECT_LE(SimulationParams::paper_c_eps(0.1), 850u);
    // Constants grow as eps -> 1/2 (noise dominates). Note they also grow
    // as eps -> 0: the paper's formulas assume a constant eps in (0, 1/2);
    // the noiseless case is covered separately by eps == 0.
    EXPECT_GT(SimulationParams::paper_c_eps(0.45), SimulationParams::paper_c_eps(0.3));
}

TEST(SimulationParams, Validation) {
    SimulationParams params = tuned_params(0.0, 8);
    EXPECT_NO_THROW(params.validate());
    params.c_eps = 2;
    EXPECT_THROW(params.validate(), precondition_error);
    params = tuned_params(0.5, 8);
    EXPECT_THROW(params.validate(), precondition_error);
}

TEST(BeepTransport, NoiselessRoundDeliversExactly) {
    Rng rng(5);
    const Graph g = make_erdos_renyi(24, 0.2, rng);
    const SimulationParams params = tuned_params(0.0, 12);
    const BeepTransport transport(g, params);
    const auto messages = random_messages_for(g, 12, 77);

    const TransportRound round = transport.simulate_round(messages, 0);
    EXPECT_TRUE(round.perfect);
    EXPECT_EQ(round.delivery_mismatches, 0u);
    EXPECT_EQ(round.phase1_false_negatives, 0u);
    EXPECT_EQ(round.phase2_errors, 0u);
    EXPECT_EQ(round.beep_rounds, params.rounds_per_broadcast_round(g.max_degree()));
}

TEST(BeepTransport, NoisyRoundDeliversWithTunedConstants) {
    Rng rng(6);
    const Graph g = make_erdos_renyi(24, 0.2, rng);
    const SimulationParams params = tuned_params(0.1, 12);
    const BeepTransport transport(g, params);
    const auto messages = random_messages_for(g, 12, 78);

    std::size_t perfect = 0;
    for (std::uint64_t nonce = 0; nonce < 10; ++nonce) {
        if (transport.simulate_round(messages, nonce).perfect) {
            ++perfect;
        }
    }
    // Tuned c_eps=4 should essentially always succeed at this size.
    EXPECT_GE(perfect, 9u);
}

TEST(BeepTransport, SilentNodesDeliverNothing) {
    const Graph g = make_star(8);
    const SimulationParams params = tuned_params(0.0, 10);
    const BeepTransport transport(g, params);
    std::vector<std::optional<Bitstring>> messages(g.node_count());  // all silent

    const TransportRound round = transport.simulate_round(messages, 3);
    EXPECT_TRUE(round.perfect);
    for (const auto& delivered : round.delivered) {
        EXPECT_TRUE(delivered.empty());
    }
}

TEST(BeepTransport, MixedSilenceRespected) {
    const Graph g = make_complete(10);
    const SimulationParams params = tuned_params(0.0, 10);
    const BeepTransport transport(g, params);
    auto messages = random_messages_for(g, 10, 9, /*silent_fraction=*/0.5);

    const TransportRound round = transport.simulate_round(messages, 1);
    EXPECT_TRUE(round.perfect);
    std::size_t speakers = 0;
    for (const auto& message : messages) {
        speakers += message.has_value() ? 1 : 0;
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const std::size_t expected = speakers - (messages[v].has_value() ? 1 : 0);
        EXPECT_EQ(round.delivered[v].size(), expected);
    }
}

TEST(BeepTransport, DuplicateMessagesKeepMultiplicity) {
    // Two neighbors broadcasting the same message must deliver two copies
    // (distinct codewords carry identical payloads).
    const Graph g = make_star(4);
    const SimulationParams params = tuned_params(0.0, 8);
    const BeepTransport transport(g, params);
    std::vector<std::optional<Bitstring>> messages(g.node_count());
    const Bitstring same = Bitstring::from_string("10101010");
    messages[1] = same;
    messages[2] = same;
    messages[3] = same;

    const TransportRound round = transport.simulate_round(messages, 2);
    EXPECT_TRUE(round.perfect);
    ASSERT_EQ(round.delivered[0].size(), 3u);
    for (const auto& m : round.delivered[0]) {
        EXPECT_EQ(m, same);
    }
}

TEST(BeepTransport, HardInstanceKddNoiseless) {
    // The lower-bound topology: K_{8,8} with max-degree-sized neighborhoods.
    const Graph g = make_complete_bipartite(8, 8);
    const SimulationParams params = tuned_params(0.0, 16);
    const BeepTransport transport(g, params);
    const auto messages = random_messages_for(g, 16, 13);
    const TransportRound round = transport.simulate_round(messages, 0);
    EXPECT_TRUE(round.perfect);
}

TEST(BeepTransport, AllNodesDictionaryAlsoWorks) {
    Rng rng(15);
    const Graph g = make_erdos_renyi(16, 0.3, rng);
    SimulationParams params = tuned_params(0.1, 10);
    params.dictionary = DictionaryPolicy::all_nodes;
    const BeepTransport transport(g, params);
    const auto messages = random_messages_for(g, 10, 21);
    std::size_t perfect = 0;
    for (std::uint64_t nonce = 0; nonce < 5; ++nonce) {
        perfect += transport.simulate_round(messages, nonce).perfect ? 1 : 0;
    }
    EXPECT_GE(perfect, 4u);
}

TEST(BeepTransport, MessageTooLargeThrows) {
    const Graph g = make_path(3);
    const SimulationParams params = tuned_params(0.0, 8);
    const BeepTransport transport(g, params);
    std::vector<std::optional<Bitstring>> messages(3);
    messages[0] = Bitstring(9);  // exceeds budget
    EXPECT_THROW(transport.simulate_round(messages, 0), precondition_error);
}

TEST(BeepTransport, WrongSlotCountThrows) {
    const Graph g = make_path(3);
    const BeepTransport transport(g, tuned_params(0.0, 8));
    std::vector<std::optional<Bitstring>> messages(2);
    EXPECT_THROW(transport.simulate_round(messages, 0), precondition_error);
}

TEST(BeepTransport, DeterministicPerSeedAndNonce) {
    Rng rng(16);
    const Graph g = make_erdos_renyi(12, 0.3, rng);
    const SimulationParams params = tuned_params(0.2, 8);
    const BeepTransport a(g, params);
    const BeepTransport b(g, params);
    const auto messages = random_messages_for(g, 8, 5);
    const auto ra = a.simulate_round(messages, 7);
    const auto rb = b.simulate_round(messages, 7);
    EXPECT_EQ(ra.delivered, rb.delivered);
    EXPECT_EQ(ra.phase1_false_positives, rb.phase1_false_positives);
    // A different nonce re-randomizes codeword picks and noise.
    const auto rc = a.simulate_round(messages, 8);
    EXPECT_EQ(rc.beep_rounds, ra.beep_rounds);
}

TEST(BeepTransport, HighNoiseNeedsLargerConstant) {
    // At eps=0.4 and c_eps=3 decoding degrades; c_eps=12 restores it
    // (empirically calibrated; the paper's proof constant is ~5 * 10^3).
    Rng rng(17);
    const Graph g = make_erdos_renyi(16, 0.25, rng);
    const auto messages = random_messages_for(g, 8, 55);

    SimulationParams weak = tuned_params(0.4, 8);
    weak.c_eps = 3;
    SimulationParams strong = tuned_params(0.4, 8);
    strong.c_eps = 12;

    std::size_t weak_mismatches = 0;
    std::size_t strong_mismatches = 0;
    const BeepTransport weak_transport(g, weak);
    const BeepTransport strong_transport(g, strong);
    for (std::uint64_t nonce = 0; nonce < 5; ++nonce) {
        weak_mismatches += weak_transport.simulate_round(messages, nonce).delivery_mismatches;
        strong_mismatches += strong_transport.simulate_round(messages, nonce).delivery_mismatches;
    }
    EXPECT_LE(strong_mismatches, weak_mismatches);
    EXPECT_EQ(strong_mismatches, 0u);
}

TEST(BeepTransport, EnergyIsBoundedBySchedules) {
    // Each node beeps at most weight bits in phase 1 and at most weight in
    // phase 2: total energy <= 2 * n * weight.
    const Graph g = make_complete(8);
    const SimulationParams params = tuned_params(0.0, 8);
    const BeepTransport transport(g, params);
    const auto messages = random_messages_for(g, 8, 31);
    const auto round = transport.simulate_round(messages, 0);
    EXPECT_LE(round.total_beeps, 2 * g.node_count() * params.distance_code_length());
    EXPECT_GT(round.total_beeps, 0u);
}

TEST(BeepTransport, PaperConstantsExecuteAtToyScale) {
    // Mode::paper is not just documentation: the proof constants (c_eps=108
    // noiseless) actually run on a toy instance. b = 2*108^3*(Delta+1)*(B+1)
    // ~ 30M beep rounds simulated in well under a second via the batch
    // engine.
    const Graph g = make_path(4);
    SimulationParams params;
    params.epsilon = 0.0;
    params.message_bits = 3;
    params.c_eps = SimulationParams::paper_c_eps(0.0);
    ASSERT_EQ(params.c_eps, 108u);
    const BeepTransport transport(g, params);
    std::vector<std::optional<Bitstring>> messages(4);
    for (NodeId v = 0; v < 4; ++v) {
        Bitstring m(3);
        m.set(v % 3);
        messages[v] = m;
    }
    const auto round = transport.simulate_round(messages, 0);
    EXPECT_TRUE(round.perfect);
    EXPECT_EQ(round.beep_rounds, params.rounds_per_broadcast_round(g.max_degree()));
}

TEST(BeepTransport, IsolatedNodesAreFine) {
    // Hard instance includes isolated vertices; they hear nothing and
    // deliver nothing, but must not break decoding for others.
    const Graph g = make_hard_instance(20, 4);
    const SimulationParams params = tuned_params(0.0, 8);
    const BeepTransport transport(g, params);
    const auto messages = random_messages_for(g, 8, 61);
    const auto round = transport.simulate_round(messages, 0);
    EXPECT_TRUE(round.perfect);
    for (NodeId v = 8; v < 20; ++v) {
        EXPECT_TRUE(round.delivered[v].empty());
    }
}

}  // namespace
}  // namespace nb
