// Failpoint framework tests (common/failpoint.h): registry completeness,
// the NB_FAILPOINTS spec parser, deterministic probability draws, max_hits
// budgets — and the site sweep the framework exists for: every registered
// site armed with `throw` and `oom` in turn while real work runs through
// it, under ASan/UBSan in the sanitizer CI job, proving each seam unwinds
// cleanly (no leaks, no double frees, pool still usable) whichever fault
// fires there.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/failpoint.h"
#include "scenarios/registry.h"
#include "scenarios/scenario.h"
#include "scenarios/spec_json.h"
#include "scenarios/sweep.h"
#include "sim/codebook_cache.h"

namespace nb {
namespace {

using failpoint::Config;
using failpoint::Mode;

/// Every test leaves the process-wide registry disarmed, whatever happened.
class FailpointTest : public ::testing::Test {
protected:
    // Start from a cold codebook cache so sites inside the build path
    // (codebook.build, cache.insert) actually execute — a warm cache from an
    // earlier test would satisfy the lookup without ever crossing them.
    void SetUp() override { CodebookCache::instance().clear(); }
    void TearDown() override { failpoint::clear_all(); }
};

/// A fast scenario whose execution crosses every runtime site: a beep
/// transport (codebook.build via the cache: cache.insert on the miss) with
/// real noise (channel.sample) run through the sweep engine (sweep.job).
ScenarioSpec noisy_base(const std::string& name) {
    ScenarioSpec spec;
    spec.name = name;
    spec.topology.family = TopologySpec::Family::random_regular;
    spec.topology.n = 16;
    spec.topology.degree = 4;
    spec.topology.seed = 7;
    spec.channel = ChannelModel::iid(0.1);
    spec.workload.message_bits = 4;
    spec.workload.seed = 3;
    spec.rounds = 2;
    return spec;
}

std::string sweep_json(const SweepResult& result) {
    std::ostringstream out;
    JsonWriter json(out);
    sweep_results_json(json, result);
    return out.str();
}

TEST_F(FailpointTest, RegistrySweepCoversEveryShippedSite) {
    // The full site registry, fixed here on purpose: adding a site without
    // extending the sweep below (or removing one silently) fails this test.
    const std::vector<std::string> expected = {
        "cache.evict",    "cache.insert", "channel.sample", "codebook.build",
        "scenario.parse", "serve.accept", "serve.job",      "shard.exchange",
        "store.put",      "sweep.job",
    };
    EXPECT_EQ(failpoint::registered_sites(), expected);
}

TEST_F(FailpointTest, ParseSpecAcceptsEveryModeAndRejectsGarbage) {
    auto [site, config] = failpoint::parse_spec("codebook.build=throw");
    EXPECT_EQ(site, "codebook.build");
    EXPECT_EQ(config.mode, Mode::inject_throw);
    EXPECT_EQ(config.probability, 1.0);

    std::tie(site, config) = failpoint::parse_spec("sweep.job=throw:0.25");
    EXPECT_EQ(config.mode, Mode::inject_throw);
    EXPECT_EQ(config.probability, 0.25);

    std::tie(site, config) = failpoint::parse_spec("sweep.job=delay:40");
    EXPECT_EQ(config.mode, Mode::delay);
    EXPECT_EQ(config.delay_ms, 40u);

    std::tie(site, config) = failpoint::parse_spec("cache.insert=oom:0.5");
    EXPECT_EQ(config.mode, Mode::oom);
    EXPECT_EQ(config.probability, 0.5);

    EXPECT_THROW(failpoint::parse_spec("no-equals"), precondition_error);
    EXPECT_THROW(failpoint::parse_spec("s=explode"), precondition_error);
    EXPECT_THROW(failpoint::parse_spec("s=throw:1.5"), precondition_error);
    EXPECT_THROW(failpoint::parse_spec("s=throw:0"), precondition_error);
    EXPECT_THROW(failpoint::parse_spec("s=delay"), precondition_error);
    EXPECT_THROW(failpoint::parse_spec("s=delay:abc"), precondition_error);
}

TEST_F(FailpointTest, ConfigureRequiresAKnownSite) {
    Config config;
    config.mode = Mode::inject_throw;
    EXPECT_THROW(failpoint::configure("no.such.site", config), precondition_error);
}

TEST_F(FailpointTest, MaxHitsBudgetHealsTheSite) {
    // fail twice, then heal — the transient-fault model the retry property
    // tests lean on. codebook.build fires inside Codebook's constructor, so
    // drive it through uncached private builds.
    Config config;
    config.mode = Mode::inject_throw;
    config.max_hits = 2;
    failpoint::configure("codebook.build", config);
    const std::uint64_t hits_before = failpoint::hits("codebook.build");

    ScenarioSpec spec = noisy_base("budget");
    for (int attempt = 0; attempt < 2; ++attempt) {
        try {
            run_scenario(spec);
            FAIL() << "attempt " << attempt << " should have hit the failpoint";
        } catch (const failpoint::injected_fault& fault) {
            EXPECT_EQ(fault.site(), "codebook.build");
        }
    }
    // Budget exhausted: the same call now succeeds.
    const ScenarioResult result = run_scenario(spec);
    EXPECT_EQ(result.rounds, 2u);
    EXPECT_EQ(failpoint::hits("codebook.build") - hits_before, 2u);
}

TEST_F(FailpointTest, OomModeThrowsBadAlloc) {
    Config config;
    config.mode = Mode::oom;
    config.max_hits = 1;
    failpoint::configure("codebook.build", config);
    EXPECT_THROW(run_scenario(noisy_base("oom")), std::bad_alloc);
    // Healed after the budget.
    EXPECT_EQ(run_scenario(noisy_base("oom")).rounds, 2u);
}

TEST_F(FailpointTest, ActiveSummaryNamesArmedSites) {
    EXPECT_EQ(failpoint::active_summary(), "");
    Config config;
    config.mode = Mode::inject_throw;
    config.probability = 0.5;
    failpoint::configure("sweep.job", config);
    const std::string summary = failpoint::active_summary();
    EXPECT_NE(summary.find("sweep.job"), std::string::npos);
    EXPECT_NE(summary.find("0.5"), std::string::npos);
    failpoint::clear("sweep.job");
    EXPECT_EQ(failpoint::active_summary(), "");
}

// The site sweep: arm every registered site with `throw` then `oom` (budget
// 1) and push real work through the whole stack with enough retry budget to
// absorb the fire. Whatever the seam — mid-constructor, under the cache's
// shard lock, inside the parser — the fault must unwind cleanly and the
// retried run must produce the byte-identical artifact (the parse site is
// exercised separately below: it fires before any sweep exists).
TEST_F(FailpointTest, EverySiteSurvivesInjectedThrowAndOomWithRetries) {
    SweepSpec sweep;
    sweep.name = "site-sweep";
    sweep.bases = {noisy_base("job")};
    // Sharded execution so the shard.exchange site sits on the job's real
    // code path (it fires once per round inside ShardedTransport).
    sweep.bases[0].shards = 2;
    sweep.axes.seeds = {1, 2};
    sweep.max_retries = 2;

    SweepOptions options;
    options.workers = 2;

    CodebookCache::instance().clear();
    const std::string clean = sweep_json(run_sweep(sweep, options));

    for (const std::string& site : failpoint::registered_sites()) {
        if (site == "scenario.parse") {
            continue;  // fires outside run_sweep; covered below
        }
        if (site == "serve.accept" || site == "serve.job" || site == "store.put") {
            continue;  // fire in the nb_serve layer, outside run_sweep;
                       // covered by test_serve.cpp / test_store.cpp
        }
        for (const Mode mode : {Mode::inject_throw, Mode::oom}) {
            SCOPED_TRACE(site + (mode == Mode::oom ? " oom" : " throw"));
            Config config;
            config.mode = mode;
            config.max_hits = 1;
            failpoint::configure(site, config);

            CodebookCache::instance().clear();
            const SweepResult result = run_sweep(sweep, options);
            failpoint::clear(site);

            EXPECT_EQ(result.failed_jobs, 0u);
            EXPECT_EQ(sweep_json(result), clean);
        }
    }
}

TEST_F(FailpointTest, ParseSiteInjectsAtTheSpecBoundary) {
    Config config;
    config.mode = Mode::inject_throw;
    config.max_hits = 1;
    failpoint::configure("scenario.parse", config);
    const std::string text = R"({"schema": "nb-spec/v1", "scenarios": [{"name": "x"}]})";
    EXPECT_THROW(sweep_spec_from_json(text, "mem"), failpoint::injected_fault);
    // Budget spent: the identical call now parses.
    const SweepSpec spec = sweep_spec_from_json(text, "mem");
    ASSERT_EQ(spec.bases.size(), 1u);
    EXPECT_EQ(spec.bases[0].name, "x");
}

}  // namespace
}  // namespace nb
