// The bitsliced phase-1 kernel is a pure data-layout optimization: for
// every candidate matrix, transcript, and reject limit, accept_all must
// report exactly the per-candidate results of the scalar
// accepts_codeword / Bitstring::and_not_count_below kernels. These property
// tests drive randomized codewords (mixed weights, decoys included),
// randomized noisy transcripts, degenerate transcripts, lane-boundary
// column counts, and reject-limit edge values through both kernels.
#include <gtest/gtest.h>

#include <vector>

#include "codes/beep_code.h"
#include "codes/decoders.h"
#include "common/bitslice.h"
#include "common/bitstring.h"
#include "common/rng.h"

namespace nb {
namespace {

std::vector<Bitstring> random_columns(Rng& rng, std::size_t count, std::size_t length) {
    std::vector<Bitstring> columns;
    columns.reserve(count);
    for (std::size_t c = 0; c < count; ++c) {
        // Mix of densities, including empty and full columns.
        const std::size_t weight = rng.next_below(length + 1);
        columns.push_back(Bitstring::random_with_weight(rng, length, weight));
    }
    return columns;
}

void expect_matches_scalar(const BitsliceMatrix& matrix,
                           const std::vector<Bitstring>& columns, const Bitstring& transcript,
                           std::size_t limit, BitsliceScratch& scratch) {
    std::vector<std::uint64_t> accept;
    matrix.and_not_below(transcript, limit, scratch, accept);
    ASSERT_EQ(accept.size(), matrix.lane_words());
    for (std::size_t c = 0; c < columns.size(); ++c) {
        const bool scalar = columns[c].and_not_count_below(transcript, limit);
        const bool sliced = (accept[c / 64] >> (c % 64)) & 1u;
        ASSERT_EQ(sliced, scalar) << "column " << c << " limit " << limit;
    }
    // Padding bits beyond the column count must stay zero.
    for (std::size_t bit = columns.size(); bit < 64 * matrix.lane_words(); ++bit) {
        ASSERT_FALSE((accept[bit / 64] >> (bit % 64)) & 1u) << "padding bit " << bit;
    }
}

TEST(Bitslice, MatchesScalarKernelOnRandomInputs) {
    Rng rng(0x5711ce);
    for (std::size_t trial = 0; trial < 30; ++trial) {
        const std::size_t length = 1 + rng.next_below(300);
        // Cross lane boundaries: 1..~190 columns covers 1, 2 and 3 lanes.
        const std::size_t count = 1 + rng.next_below(190);
        const auto columns = random_columns(rng, count, length);
        const BitsliceMatrix matrix(columns);
        ASSERT_EQ(matrix.rows(), length);
        ASSERT_EQ(matrix.columns(), count);
        BitsliceScratch scratch;
        Bitstring transcript = Bitstring::random(rng, length);
        transcript.apply_noise(rng, 0.3);
        for (const std::size_t limit :
             {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{8},
              length / 4 + 1, length, length + 5}) {
            expect_matches_scalar(matrix, columns, transcript, limit, scratch);
        }
    }
}

TEST(Bitslice, MatchesScalarOnDegenerateTranscripts) {
    Rng rng(0xdead);
    const std::size_t length = 130;
    const auto columns = random_columns(rng, 70, length);
    const BitsliceMatrix matrix(columns);
    BitsliceScratch scratch;
    const Bitstring all_zero(length);
    const Bitstring all_one = ~Bitstring(length);
    for (const std::size_t limit : {std::size_t{0}, std::size_t{1}, std::size_t{33}, length}) {
        expect_matches_scalar(matrix, columns, all_zero, limit, scratch);
        expect_matches_scalar(matrix, columns, all_one, limit, scratch);
    }
}

TEST(Bitslice, ScratchReuseAcrossLimitsAndMatrices) {
    // One scratch serving interleaved (matrix, limit) pairs must rebuild its
    // bias planes whenever the pair changes and still match the scalar
    // kernel every time.
    Rng rng(0xabc);
    const std::size_t length = 200;
    const auto columns_a = random_columns(rng, 100, length);
    const auto columns_b = random_columns(rng, 65, length);
    const BitsliceMatrix matrix_a(columns_a);
    const BitsliceMatrix matrix_b(columns_b);
    BitsliceScratch scratch;
    for (std::size_t trial = 0; trial < 8; ++trial) {
        Bitstring transcript = Bitstring::random(rng, length);
        expect_matches_scalar(matrix_a, columns_a, transcript, 20, scratch);
        expect_matches_scalar(matrix_b, columns_b, transcript, 20, scratch);
        expect_matches_scalar(matrix_a, columns_a, transcript, 21, scratch);
    }
}

TEST(Bitslice, EmptyMatrixAcceptsNothing) {
    const BitsliceMatrix matrix;
    BitsliceScratch scratch;
    std::vector<std::uint64_t> accept{0xffffffffffffffffull};
    matrix.and_not_below(Bitstring(10), 3, scratch, accept);
    EXPECT_TRUE(accept.empty());
}

TEST(Bitslice, SplitConstructionConcatenatesColumnSets) {
    Rng rng(0x51);
    const std::size_t length = 90;
    const auto first = random_columns(rng, 70, length);
    const auto second = random_columns(rng, 10, length);
    const BitsliceMatrix split(first, second);
    auto all = first;
    all.insert(all.end(), second.begin(), second.end());
    const BitsliceMatrix joined(all);
    ASSERT_EQ(split.columns(), joined.columns());
    BitsliceScratch scratch_split;
    BitsliceScratch scratch_joined;
    const Bitstring transcript = Bitstring::random(rng, length);
    for (const std::size_t limit : {std::size_t{1}, std::size_t{10}, std::size_t{40}}) {
        std::vector<std::uint64_t> accept_split;
        std::vector<std::uint64_t> accept_joined;
        split.and_not_below(transcript, limit, scratch_split, accept_split);
        joined.and_not_below(transcript, limit, scratch_joined, accept_joined);
        EXPECT_EQ(accept_split, accept_joined);
    }
    for (std::size_t c = 0; c < all.size(); ++c) {
        EXPECT_EQ(split.column_weight(c), all[c].count());
    }
}

TEST(Bitslice, AcceptAllMatchesPhase1Decoder) {
    // The decoder-level entry point, over genuine beep-code codewords and
    // decoys at the Lemma 9 reject limit — including transcripts built from
    // real superimpositions.
    Rng rng(0x900d);
    const BeepCode code(288, 24, 0xc0de);
    std::vector<Bitstring> codewords;
    for (std::uint64_t r = 0; r < 150; ++r) {
        codewords.push_back(code.codeword(rng.next_u64()));
    }
    const BitsliceMatrix matrix(codewords);
    for (const double epsilon : {0.0, 0.1, 0.45}) {
        const Phase1Decoder decoder(code, epsilon);
        BitsliceScratch scratch;
        for (std::size_t trial = 0; trial < 6; ++trial) {
            Bitstring heard(code.length());
            const std::size_t superimposed = 1 + rng.next_below(8);
            for (std::size_t s = 0; s < superimposed; ++s) {
                heard |= codewords[rng.next_below(codewords.size())];
            }
            heard.apply_noise(rng, 0.1);
            std::vector<std::uint64_t> accept;
            decoder.accept_all(heard, matrix, scratch, accept);
            for (std::size_t c = 0; c < codewords.size(); ++c) {
                ASSERT_EQ((accept[c / 64] >> (c % 64)) & 1u,
                          decoder.accepts_codeword(heard, codewords[c]) ? 1u : 0u)
                    << "epsilon " << epsilon << " candidate " << c;
            }
        }
    }
}

}  // namespace
}  // namespace nb
