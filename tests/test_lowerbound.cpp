// Tests for the lower-bound module: Local Broadcast task, hard instances,
// and the counting bounds of Lemma 14 / Theorem 22.
#include <gtest/gtest.h>

#include "baselines/cost_models.h"
#include "congest/native_engine.h"
#include "graph/generators.h"
#include "lowerbound/local_broadcast.h"

namespace nb {
namespace {

TEST(LocalBroadcast, InstanceCoversAllOrderedPairs) {
    const Graph g = make_complete_bipartite(3, 3);
    Rng rng(1);
    const auto instance = make_local_broadcast_instance(g, 8, rng);
    EXPECT_EQ(instance.messages.size(), 2 * g.edge_count());
    for (const auto& [pair, message] : instance.messages) {
        EXPECT_TRUE(g.has_edge(pair.first, pair.second));
        EXPECT_EQ(message.size(), 8u);
    }
}

TEST(LocalBroadcast, SolvedNativelyInChunkedRounds) {
    const Graph g = make_complete_bipartite(4, 4);
    Rng rng(2);
    const std::size_t B = 20;
    const auto instance = make_local_broadcast_instance(g, B, rng);
    auto nodes = make_local_broadcast_nodes(g, instance, /*chunk_bits=*/8);

    NativeCongestEngine engine(g, CongestParams{8, 5});
    const auto stats = engine.run(nodes, 10);
    EXPECT_TRUE(stats.all_finished);
    EXPECT_EQ(stats.rounds, 3u);  // ceil(20/8)
    EXPECT_TRUE(verify_local_broadcast(g, instance, nodes));
}

TEST(LocalBroadcast, SingleRoundWhenBudgetFits) {
    const Graph g = make_hard_instance(16, 3);
    Rng rng(3);
    const auto instance = make_local_broadcast_instance(g, 12, rng);
    auto nodes = make_local_broadcast_nodes(g, instance, 12);
    NativeCongestEngine engine(g, CongestParams{12, 5});
    const auto stats = engine.run(nodes, 5);
    EXPECT_EQ(stats.rounds, 1u);
    EXPECT_TRUE(verify_local_broadcast(g, instance, nodes));
}

TEST(LocalBroadcast, VerifierCatchesMissingDeliveries) {
    const Graph g = make_path(3);
    Rng rng(4);
    const auto instance = make_local_broadcast_instance(g, 8, rng);
    // Nodes that never run have empty inboxes: verification must fail.
    auto nodes = make_local_broadcast_nodes(g, instance, 8);
    EXPECT_FALSE(verify_local_broadcast(g, instance, nodes));
}

TEST(CountingBounds, Lemma14Exponent) {
    // T = Delta^2 * B gives exponent 0 (success prob <= 1);
    // T = Delta^2*B/2 gives a -Delta^2*B/2 exponent (Lemma 14's statement).
    EXPECT_DOUBLE_EQ(local_broadcast_success_log2(64, 8, 1), 0.0);
    EXPECT_DOUBLE_EQ(local_broadcast_success_log2(32, 8, 1), -32.0);
    EXPECT_LT(local_broadcast_success_log2(100, 16, 8), -1000.0);
}

TEST(CountingBounds, Lemma14BoundIsBelowOurUpperBound) {
    // Sanity of the optimality claim: our simulation's cost on the hard
    // instance is within an O(log n / B * constant) factor of the bound.
    const std::size_t delta = 16;
    const std::size_t B = 16;
    const std::size_t lower = local_broadcast_lower_bound(delta, B);
    const std::size_t upper = ours_congest_overhead(delta, B + 2 * 10 + 3, 3);
    EXPECT_GT(upper, lower);
}

TEST(CountingBounds, Theorem22Exponent) {
    // r = Delta*log2(n) rounds: exponent = Delta*log2(n) - 3*Delta*log2(n)
    // = -2*Delta*log2(n), i.e. success probability n^{-2*Delta} = o(1).
    const double exponent = matching_success_log2(16 * 10, 16, 1024);
    EXPECT_DOUBLE_EQ(exponent, 160.0 - 480.0);
}

TEST(HardInstance, MatchesLemma14Shape) {
    const std::size_t n = 64;
    const std::size_t delta = 5;
    const Graph g = make_hard_instance(n, delta);
    EXPECT_EQ(g.node_count(), n);
    EXPECT_EQ(g.max_degree(), delta);
    // Exactly the K_{delta,delta} nodes have degree delta; rest isolated.
    std::size_t with_edges = 0;
    for (NodeId v = 0; v < n; ++v) {
        if (g.degree(v) > 0) {
            EXPECT_EQ(g.degree(v), delta);
            ++with_edges;
        }
    }
    EXPECT_EQ(with_edges, 2 * delta);
}

}  // namespace
}  // namespace nb
