// Unit tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace nb {
namespace {

TEST(Rng, DeterministicPerSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i) {
        any_diff |= a.next_u64() != b.next_u64();
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRange) {
    Rng rng(5);
    for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 48}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.next_below(bound), bound);
        }
    }
}

TEST(Rng, NextBelowZeroThrows) {
    Rng rng(5);
    EXPECT_THROW(rng.next_below(0), precondition_error);
}

TEST(Rng, NextBelowRoughlyUniform) {
    Rng rng(17);
    std::array<std::size_t, 8> buckets{};
    const std::size_t draws = 80000;
    for (std::size_t i = 0; i < draws; ++i) {
        ++buckets[rng.next_below(8)];
    }
    for (const auto count : buckets) {
        EXPECT_NEAR(static_cast<double>(count), draws / 8.0, draws * 0.01);
    }
}

TEST(Rng, NextInBounds) {
    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        const auto x = rng.next_in(10, 20);
        EXPECT_GE(x, 10u);
        EXPECT_LE(x, 20u);
    }
    EXPECT_EQ(rng.next_in(7, 7), 7u);
    EXPECT_THROW(rng.next_in(8, 7), precondition_error);
}

TEST(Rng, NextDoubleInUnitInterval) {
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.next_double();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, BernoulliEdgeCases) {
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
    EXPECT_THROW(rng.bernoulli(-0.1), precondition_error);
    EXPECT_THROW(rng.bernoulli(1.1), precondition_error);
}

TEST(Rng, BernoulliRate) {
    Rng rng(13);
    std::size_t hits = 0;
    const std::size_t draws = 100000;
    for (std::size_t i = 0; i < draws; ++i) {
        hits += rng.bernoulli(0.2) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.2, 0.01);
}

TEST(Rng, GeometricSkipMeanMatches) {
    // Mean of the number of failures before success is (1-p)/p.
    Rng rng(23);
    const double p = 0.1;
    double total = 0;
    const std::size_t draws = 50000;
    for (std::size_t i = 0; i < draws; ++i) {
        total += static_cast<double>(rng.geometric_skip(p));
    }
    EXPECT_NEAR(total / draws, (1.0 - p) / p, 0.25);
}

TEST(Rng, GeometricSkipOneIsZero) {
    Rng rng(23);
    EXPECT_EQ(rng.geometric_skip(1.0), 0u);
    EXPECT_THROW(rng.geometric_skip(0.0), precondition_error);
}

TEST(Rng, DistinctPositionsAreDistinctAndSorted) {
    Rng rng(31);
    const auto positions = rng.distinct_positions(1000, 200);
    ASSERT_EQ(positions.size(), 200u);
    EXPECT_TRUE(std::is_sorted(positions.begin(), positions.end()));
    const std::set<std::size_t> unique(positions.begin(), positions.end());
    EXPECT_EQ(unique.size(), 200u);
    for (const auto p : positions) {
        EXPECT_LT(p, 1000u);
    }
}

TEST(Rng, DistinctPositionsFullUniverse) {
    Rng rng(37);
    const auto positions = rng.distinct_positions(64, 64);
    ASSERT_EQ(positions.size(), 64u);
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_EQ(positions[i], i);
    }
}

TEST(Rng, DistinctPositionsLargeUniverse) {
    Rng rng(41);
    const auto positions = rng.distinct_positions(std::size_t{1} << 30, 64);
    const std::set<std::size_t> unique(positions.begin(), positions.end());
    EXPECT_EQ(unique.size(), 64u);
}

TEST(Rng, DistinctPositionsRejectsOversample) {
    Rng rng(3);
    EXPECT_THROW(rng.distinct_positions(5, 6), precondition_error);
}

TEST(Rng, DeriveIsIndependentOfDrawOrder) {
    Rng base(77);
    const Rng d1 = base.derive(1);
    base.next_u64();  // consuming from base must not change derivations
    // (derive is const and depends only on current state; verify the
    //  specific contract: deriving the same id twice without intervening
    //  draws gives identical streams)
    Rng base2(77);
    Rng d1_again = base2.derive(1);
    Rng d1_copy = d1;
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(d1_copy.next_u64(), d1_again.next_u64());
    }
}

TEST(Rng, DerivedStreamsDiffer) {
    Rng base(77);
    Rng a = base.derive(1);
    Rng b = base.derive(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i) {
        any_diff |= a.next_u64() != b.next_u64();
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, TwoKeyDeriveDistinguishesKeys) {
    Rng base(77);
    Rng ab = base.derive(1, 2);
    Rng ba = base.derive(2, 1);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i) {
        any_diff |= ab.next_u64() != ba.next_u64();
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(99);
    std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = items;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, items);
}

TEST(Mix64, StatelessAndStable) {
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

}  // namespace
}  // namespace nb
