// Sharded-transport exactness and resilience: the partitioned simulation
// (sim/sharded_transport.h) must be bit-identical to BeepTransport for
// every shard count and worker count — pinned against the same seed-era
// golden fingerprints test_transport_equivalence.cpp uses — and its
// boundary-exchange failpoint must unwind cleanly under injected faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "scenarios/registry.h"
#include "scenarios/scenario.h"
#include "sim/codebook_cache.h"
#include "sim/params.h"
#include "sim/sharded_transport.h"
#include "sim/transport.h"

namespace nb {
namespace {

std::vector<std::optional<Bitstring>> make_messages(const Graph& graph, std::size_t bits,
                                                    std::uint64_t seed,
                                                    double silent_fraction = 0.25) {
    Rng rng(seed);
    std::vector<std::optional<Bitstring>> messages(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        if (!rng.bernoulli(silent_fraction)) {
            messages[v] = Bitstring::random(rng, bits);
        }
    }
    return messages;
}

/// Byte-for-byte the digest test_transport_equivalence.cpp pins its goldens
/// with, so the sharded transport is held to the seed implementation's
/// exact outputs, not merely to "agrees with today's BeepTransport".
std::uint64_t fingerprint(const TransportRound& round) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    for (const auto& messages : round.delivered) {
        mix(messages.size());
        for (const auto& message : messages) {
            mix(message.hash());
        }
    }
    mix(round.beep_rounds);
    mix(round.total_beeps);
    mix(round.phase1_false_negatives);
    mix(round.phase1_false_positives);
    mix(round.phase2_errors);
    mix(round.delivery_mismatches);
    return h;
}

std::uint64_t run_fingerprint(const ShardedTransport& transport,
                              const std::vector<std::optional<Bitstring>>& messages,
                              const FaultModel& faults) {
    std::uint64_t h = 0;
    for (std::uint64_t nonce = 0; nonce < 3; ++nonce) {
        h = mix64(h ^ fingerprint(transport.simulate_round(messages, nonce, faults)));
    }
    return h;
}

// The seed-pinned goldens for the 32-node two-hop fixture (captured at
// commit 6b6a934; see test_transport_equivalence.cpp).
constexpr std::uint64_t kGoldenTwoHopPlain = 0x82c6aaa1661aa3eaULL;
constexpr std::uint64_t kGoldenTwoHopFaults = 0x2d7eb0a121342769ULL;

SimulationParams noisy_params(std::size_t threads = 1) {
    SimulationParams params;
    params.epsilon = 0.1;
    params.message_bits = 10;
    params.c_eps = 4;
    params.dictionary = DictionaryPolicy::two_hop;
    params.threads = threads;
    return params;
}

std::string result_json(const ScenarioResult& result) {
    std::ostringstream out;
    JsonWriter json(out);
    scenario_result_json(json, result, /*include_timing=*/false);
    return out.str();
}

class ShardedTransportTest : public ::testing::Test {
protected:
    ShardedTransportTest()
        : graph_(make_graph()), messages_(make_messages(graph_, 10, 1234)) {
        faults_.jammers = {3};
        faults_.crashed = {7, 11};
        CodebookCache::instance().clear();
    }

    ~ShardedTransportTest() override { failpoint::clear_all(); }

    static Graph make_graph() {
        Rng rng(42);
        return make_erdos_renyi(32, 0.18, rng);
    }

    Graph graph_;
    std::vector<std::optional<Bitstring>> messages_;
    FaultModel faults_;
};

TEST(ShardPlan, PartitionCoversAndClosureAdjacencyIsExact) {
    Rng rng(7);
    const Graph graph = make_erdos_renyi(48, 0.12, rng);
    const ShardPlan plan = make_shard_plan(graph, 5);
    ASSERT_EQ(plan.shard_count(), 5u);

    std::vector<int> owner_seen(graph.node_count(), 0);
    for (std::size_t s = 0; s < plan.shard_count(); ++s) {
        const ShardPlan::Shard& shard = plan.shards[s];
        for (std::uint32_t i = 0; i < shard.owned_count; ++i) {
            const std::uint32_t local = shard.owned_begin + i;
            const NodeId global = shard.local_to_global[local];
            EXPECT_EQ(global, shard.owned_first + i);
            EXPECT_EQ(plan.owner(global), s);
            ++owner_seen[global];
        }
        // The induced local graph must reproduce the global adjacency
        // exactly for every owned node and its one-hop halo (what phase-1
        // superimposition and the two-hop candidate sets read).
        for (std::uint32_t i = 0; i < shard.owned_count; ++i) {
            const std::uint32_t lv = shard.owned_begin + i;
            const NodeId gv = shard.local_to_global[lv];
            std::vector<NodeId> local_mapped;
            for (const NodeId lu : shard.local.neighbors(lv)) {
                local_mapped.push_back(shard.local_to_global[lu]);
            }
            std::vector<NodeId> global_neighbors(graph.neighbors(gv).begin(),
                                                 graph.neighbors(gv).end());
            std::sort(local_mapped.begin(), local_mapped.end());
            std::sort(global_neighbors.begin(), global_neighbors.end());
            EXPECT_EQ(local_mapped, global_neighbors) << "node " << gv;
        }
        // Every import names a row its source shard actually exports, and
        // the row resolves to the same global id.
        for (const ShardPlan::Import& imp : shard.imports) {
            ASSERT_LT(imp.src_shard, plan.shard_count());
            const ShardPlan::Shard& src = plan.shards[imp.src_shard];
            ASSERT_LT(imp.src_row, src.exports.size());
            EXPECT_EQ(src.local_to_global[src.exports[imp.src_row]],
                      shard.local_to_global[imp.local]);
        }
    }
    for (const int count : owner_seen) {
        EXPECT_EQ(count, 1);  // ownership partitions the node set
    }
}

TEST_F(ShardedTransportTest, GoldenFingerprintsForEveryShardAndWorkerCount) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
            SCOPED_TRACE("shards=" + std::to_string(shards) +
                         " threads=" + std::to_string(threads));
            const ShardedTransport transport(graph_, noisy_params(threads), shards);
            EXPECT_EQ(transport.shard_count(), shards);
            EXPECT_EQ(run_fingerprint(transport, messages_, FaultModel{}),
                      kGoldenTwoHopPlain);
            EXPECT_EQ(run_fingerprint(transport, messages_, faults_),
                      kGoldenTwoHopFaults);
        }
    }
}

TEST_F(ShardedTransportTest, PrivateCodebooksMatchSharedCacheBuilds) {
    SimulationParams params = noisy_params();
    params.shared_codebook = false;
    const ShardedTransport transport(graph_, params, 4);
    EXPECT_EQ(run_fingerprint(transport, messages_, FaultModel{}), kGoldenTwoHopPlain);
    EXPECT_EQ(run_fingerprint(transport, messages_, faults_), kGoldenTwoHopFaults);
}

TEST_F(ShardedTransportTest, ReusedBatchStaysIdenticalAcrossCalls) {
    const ShardedTransport transport(graph_, noisy_params(), 3);
    std::vector<RoundSpec> specs;
    for (std::uint64_t nonce = 0; nonce < 3; ++nonce) {
        specs.push_back(RoundSpec{&messages_, nonce, &faults_});
    }
    TransportBatch batch;
    transport.simulate_rounds_into(specs, batch);
    std::uint64_t first = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        first = mix64(first ^ fingerprint(batch.to_round(i)));
    }
    // Second pass through the same warm batch: scratch, arenas, and the
    // boundary table are reused; outputs must not change.
    transport.simulate_rounds_into(specs, batch);
    std::uint64_t second = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        second = mix64(second ^ fingerprint(batch.to_round(i)));
    }
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, run_fingerprint(transport, messages_, faults_));
}

TEST_F(ShardedTransportTest, AllNodesDictionaryDelegatesToUnsharded) {
    SimulationParams params = noisy_params();
    params.dictionary = DictionaryPolicy::all_nodes;
    const ShardedTransport sharded(graph_, params, 4);
    EXPECT_EQ(sharded.shard_count(), 0u);  // fallback engaged
    const BeepTransport unsharded(graph_, params);
    for (std::uint64_t nonce = 0; nonce < 2; ++nonce) {
        EXPECT_EQ(fingerprint(sharded.simulate_round(messages_, nonce)),
                  fingerprint(unsharded.simulate_round(messages_, nonce)));
    }
    EXPECT_EQ(sharded.rounds_per_broadcast_round(), unsharded.rounds_per_broadcast_round());
}

TEST_F(ShardedTransportTest, ShippedBeepSpecsAreShardInvariant) {
    // Every shipped beep spec (the two-hop ones the sharded transport
    // actually partitions) must serialize to byte-identical canonical JSON
    // at shard counts 1, 2, and 8 — the scenario-level statement of the
    // bit-identity contract, faults and non-iid channels included.
    for (const ScenarioSpec& shipped : scenarios::shipped_scenarios()) {
        if (shipped.transport != TransportKind::beep ||
            shipped.dictionary != DictionaryPolicy::two_hop) {
            continue;
        }
        SCOPED_TRACE(shipped.name);
        ScenarioSpec spec = shipped;
        spec.shards = 1;
        const std::string reference = result_json(run_scenario(spec));
        for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
            spec.shards = shards;
            EXPECT_EQ(result_json(run_scenario(spec)), reference)
                << "shards=" << shards;
        }
    }
}

TEST_F(ShardedTransportTest, SpecFingerprintIgnoresShardCount) {
    // The journal contract: shard count, like the thread count, must not
    // invalidate resume.
    ScenarioSpec spec = scenarios::shipped_scenarios().front();
    const std::uint64_t reference = scenario_spec_fingerprint(spec);
    spec.shards = 8;
    EXPECT_EQ(scenario_spec_fingerprint(spec), reference);
    spec.threads = 4;
    EXPECT_EQ(scenario_spec_fingerprint(spec), reference);
}

TEST_F(ShardedTransportTest, ExchangeFailpointUnwindsAndHeals) {
    const ShardedTransport transport(graph_, noisy_params(), 2);
    const std::uint64_t clean = run_fingerprint(transport, messages_, FaultModel{});

    for (const failpoint::Mode mode :
         {failpoint::Mode::inject_throw, failpoint::Mode::oom}) {
        SCOPED_TRACE(mode == failpoint::Mode::oom ? "oom" : "throw");
        failpoint::Config config;
        config.mode = mode;
        config.max_hits = 1;
        failpoint::configure("shard.exchange", config);
        if (mode == failpoint::Mode::inject_throw) {
            EXPECT_THROW(transport.simulate_round(messages_, 0),
                         failpoint::injected_fault);
        } else {
            EXPECT_THROW(transport.simulate_round(messages_, 0), std::bad_alloc);
        }
        failpoint::clear("shard.exchange");
        // Healed: the transport is still usable and still exact.
        EXPECT_EQ(run_fingerprint(transport, messages_, FaultModel{}), clean);
    }
}

TEST_F(ShardedTransportTest, DemoShard100kRunsEndToEnd) {
    const ScenarioSpec* demo = scenarios::find_scenario("demo-shard-100k");
    ASSERT_NE(demo, nullptr);
    EXPECT_EQ(demo->shards, 8u);
    const ScenarioResult result = run_scenario(*demo);
    EXPECT_EQ(result.node_count, 100000u);
    EXPECT_EQ(result.rounds, 2u);
    EXPECT_EQ(result.max_degree, 2u);  // ring
    EXPECT_GT(result.beep_rounds_per_round, 0u);
    EXPECT_GT(result.total_beeps, 0u);
}

}  // namespace
}  // namespace nb
