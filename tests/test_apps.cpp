// Tests for the application algorithms on the NATIVE engines: maximal
// matching (Algorithm 3), Luby MIS, (Delta+1)-coloring, BFS, and the
// native-beep primitives. Simulated-engine (over-beeps) runs are covered in
// test_sim_engines.cpp.
#include <gtest/gtest.h>

#include "apps/beep_primitives.h"
#include "apps/bfs.h"
#include "apps/coloring.h"
#include "apps/matching.h"
#include "apps/mis.h"
#include "apps/multihop_election.h"
#include "common/error.h"
#include "common/math_util.h"
#include "congest/native_engine.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

namespace nb {
namespace {

Graph test_graph(int id, Rng& rng) {
    switch (id % 7) {
        case 0:
            return make_ring(16);
        case 1:
            return make_complete(10);
        case 2:
            return make_complete_bipartite(6, 6);
        case 3:
            return make_erdos_renyi(40, 0.12, rng);
        case 4:
            return make_star(12);
        case 5:
            return make_grid(5, 6);
        default:
            return make_random_geometric(40, 0.25, rng);
    }
}

// ---------------------------------------------------------------- matching

class MatchingNative : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MatchingNative, ProducesValidMaximalMatching) {
    const auto [graph_id, seed] = GetParam();
    Rng rng(graph_id * 1000 + 17);
    const Graph g = test_graph(graph_id, rng);

    auto nodes = make_matching_nodes(g);
    CongestParams params;
    params.message_bits = MatchingAlgorithm::required_message_bits(g.node_count());
    params.algorithm_seed = static_cast<std::uint64_t>(seed);
    NativeBroadcastCongestEngine engine(g, params);
    const auto stats = engine.run(nodes, matching_rounds_for_iterations(200));

    EXPECT_TRUE(stats.all_finished) << "matching did not terminate";
    const auto outputs = collect_matching_outputs(nodes);
    const auto verdict = verify_matching(g, outputs);
    EXPECT_TRUE(verdict.symmetric);
    EXPECT_TRUE(verdict.maximal);
}

INSTANTIATE_TEST_SUITE_P(GraphsAndSeeds, MatchingNative,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                                            ::testing::Values(1, 2, 3)));

TEST(Matching, SingleEdgeMatches) {
    const Graph g = make_path(2);
    auto nodes = make_matching_nodes(g);
    CongestParams params;
    params.message_bits = MatchingAlgorithm::required_message_bits(2);
    NativeBroadcastCongestEngine engine(g, params);
    engine.run(nodes, matching_rounds_for_iterations(10));
    const auto outputs = collect_matching_outputs(nodes);
    ASSERT_TRUE(outputs[0].partner.has_value());
    ASSERT_TRUE(outputs[1].partner.has_value());
    EXPECT_EQ(*outputs[0].partner, 1u);
    EXPECT_EQ(*outputs[1].partner, 0u);
}

TEST(Matching, IsolatedNodesUnmatched) {
    const Graph g = make_hard_instance(12, 2);  // K_{2,2} + 8 isolated
    auto nodes = make_matching_nodes(g);
    CongestParams params;
    params.message_bits = MatchingAlgorithm::required_message_bits(12);
    NativeBroadcastCongestEngine engine(g, params);
    const auto stats = engine.run(nodes, matching_rounds_for_iterations(50));
    EXPECT_TRUE(stats.all_finished);
    const auto outputs = collect_matching_outputs(nodes);
    EXPECT_TRUE(verify_matching(g, outputs).valid());
    for (NodeId v = 4; v < 12; ++v) {
        EXPECT_FALSE(outputs[v].partner.has_value());
    }
}

TEST(Matching, CompleteGraphMatchesAlmostEveryone) {
    const Graph g = make_complete(16);
    auto nodes = make_matching_nodes(g);
    CongestParams params;
    params.message_bits = MatchingAlgorithm::required_message_bits(16);
    NativeBroadcastCongestEngine engine(g, params);
    engine.run(nodes, matching_rounds_for_iterations(100));
    const auto outputs = collect_matching_outputs(nodes);
    const auto verdict = verify_matching(g, outputs);
    EXPECT_TRUE(verdict.valid());
    // Maximal matching on K_16 matches all 16 nodes (8 pairs).
    EXPECT_EQ(verdict.matched_pairs, 8u);
}

TEST(Matching, TerminatesInLogarithmicIterations) {
    // Lemma 20: O(log n) iterations w.h.p. Use a generous 8*log2(n) cap and
    // require completion within it.
    Rng rng(5);
    const Graph g = make_erdos_renyi(128, 0.06, rng);
    auto nodes = make_matching_nodes(g);
    CongestParams params;
    params.message_bits = MatchingAlgorithm::required_message_bits(g.node_count());
    params.algorithm_seed = 9;
    NativeBroadcastCongestEngine engine(g, params);
    const std::size_t cap_iterations = 8 * ceil_log2(g.node_count());
    const auto stats = engine.run(nodes, matching_rounds_for_iterations(cap_iterations));
    EXPECT_TRUE(stats.all_finished);
    EXPECT_TRUE(verify_matching(g, collect_matching_outputs(nodes)).valid());
}

TEST(Matching, VerifierCatchesAsymmetry) {
    const Graph g = make_path(3);
    std::vector<MatchingOutput> outputs(3);
    outputs[0].partner = 1;  // 1 does not reciprocate
    EXPECT_FALSE(verify_matching(g, outputs).symmetric);
}

TEST(Matching, VerifierCatchesNonMaximality) {
    const Graph g = make_path(2);
    const std::vector<MatchingOutput> outputs(2);  // both unmatched
    EXPECT_FALSE(verify_matching(g, outputs).maximal);
}

TEST(Matching, VerifierCatchesNonEdgePair) {
    const Graph g = make_path(3);  // 0-1-2; {0,2} is not an edge
    std::vector<MatchingOutput> outputs(3);
    outputs[0].partner = 2;
    outputs[2].partner = 0;
    outputs[1].partner = std::nullopt;
    EXPECT_FALSE(verify_matching(g, outputs).symmetric);
}

// ---------------------------------------------------------------- MIS

class MisNative : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MisNative, ProducesValidMis) {
    const auto [graph_id, seed] = GetParam();
    Rng rng(graph_id * 333 + 1);
    const Graph g = test_graph(graph_id, rng);

    auto nodes = make_mis_nodes(g);
    CongestParams params;
    params.message_bits = MisAlgorithm::required_message_bits(g.node_count());
    params.algorithm_seed = static_cast<std::uint64_t>(seed);
    NativeBroadcastCongestEngine engine(g, params);
    const auto stats = engine.run(nodes, 1 + 2 * 30 * ceil_log2(g.node_count() + 1));
    EXPECT_TRUE(stats.all_finished);
    const auto verdict = verify_mis(g, collect_mis_outputs(nodes));
    EXPECT_TRUE(verdict.independent);
    EXPECT_TRUE(verdict.maximal);
    EXPECT_GE(verdict.size, 1u);
}

INSTANTIATE_TEST_SUITE_P(GraphsAndSeeds, MisNative,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                                            ::testing::Values(4, 5)));

TEST(Mis, CompleteGraphPicksExactlyOne) {
    const Graph g = make_complete(12);
    auto nodes = make_mis_nodes(g);
    CongestParams params;
    params.message_bits = MisAlgorithm::required_message_bits(12);
    NativeBroadcastCongestEngine engine(g, params);
    engine.run(nodes, 200);
    const auto verdict = verify_mis(g, collect_mis_outputs(nodes));
    EXPECT_TRUE(verdict.valid());
    EXPECT_EQ(verdict.size, 1u);
}

TEST(Mis, EdgelessGraphPicksAll) {
    const Graph g(9);
    auto nodes = make_mis_nodes(g);
    CongestParams params;
    params.message_bits = MisAlgorithm::required_message_bits(9);
    NativeBroadcastCongestEngine engine(g, params);
    engine.run(nodes, 10);
    const auto verdict = verify_mis(g, collect_mis_outputs(nodes));
    EXPECT_TRUE(verdict.valid());
    EXPECT_EQ(verdict.size, 9u);
}

TEST(Mis, VerifierCatchesDependence) {
    const Graph g = make_path(2);
    EXPECT_FALSE(verify_mis(g, {true, true}).independent);
    EXPECT_FALSE(verify_mis(g, {false, false}).maximal);
    EXPECT_TRUE(verify_mis(g, {true, false}).valid());
}

// ---------------------------------------------------------------- coloring

class ColoringNative : public ::testing::TestWithParam<int> {};

TEST_P(ColoringNative, ProducesProperDeltaPlusOneColoring) {
    const int graph_id = GetParam();
    Rng rng(graph_id * 71 + 3);
    const Graph g = test_graph(graph_id, rng);

    auto nodes = make_coloring_nodes(g);
    CongestParams params;
    params.message_bits =
        ColoringAlgorithm::required_message_bits(g.node_count(), g.max_degree());
    params.algorithm_seed = 31;
    NativeBroadcastCongestEngine engine(g, params);
    const auto stats = engine.run(nodes, 1 + 2 * 40 * ceil_log2(g.node_count() + 1));
    EXPECT_TRUE(stats.all_finished);
    EXPECT_TRUE(verify_coloring(g, collect_coloring_outputs(nodes)));
}

INSTANTIATE_TEST_SUITE_P(Graphs, ColoringNative, ::testing::Values(0, 1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------- BFS

class BfsNative : public ::testing::TestWithParam<int> {};

TEST_P(BfsNative, MatchesCentralizedBfs) {
    const int graph_id = GetParam();
    Rng rng(graph_id * 13 + 29);
    const Graph g = test_graph(graph_id, rng);

    auto nodes = make_bfs_nodes(g, 0);
    CongestParams params;
    params.message_bits = BfsAlgorithm::required_message_bits(g.node_count());
    NativeBroadcastCongestEngine engine(g, params);
    const auto stats = engine.run(nodes, g.node_count() + 3);
    EXPECT_TRUE(stats.all_finished);
    EXPECT_TRUE(verify_bfs(g, 0, collect_bfs_outputs(nodes)));
}

INSTANTIATE_TEST_SUITE_P(Graphs, BfsNative, ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(Bfs, DisconnectedMarksUnreached) {
    const Graph g = Graph::from_edges(5, {{0, 1}, {2, 3}});
    auto nodes = make_bfs_nodes(g, 0);
    CongestParams params;
    params.message_bits = BfsAlgorithm::required_message_bits(5);
    NativeBroadcastCongestEngine engine(g, params);
    engine.run(nodes, 10);
    const auto outputs = collect_bfs_outputs(nodes);
    EXPECT_TRUE(verify_bfs(g, 0, outputs));
    EXPECT_EQ(outputs[2].distance, std::numeric_limits<std::size_t>::max());
}

// ------------------------------------------------------- beep primitives

TEST(BeepWave, NoiselessArrivalEqualsDistance) {
    for (const auto& g : {make_path(12), make_ring(10), make_grid(4, 5)}) {
        const auto result = beep_wave(g, 0, 0.0, 77, g.node_count() + 2);
        const auto expected = bfs_distances(g, 0);
        for (NodeId v = 0; v < g.node_count(); ++v) {
            EXPECT_EQ(result.arrival[v], expected[v]) << "node " << v;
        }
    }
}

TEST(BeepWave, EnergyIsOneBeepPerNode) {
    const Graph g = make_path(8);
    const auto result = beep_wave(g, 0, 0.0, 3, 12);
    EXPECT_EQ(result.stats.total_beeps, 8u);
}

TEST(LeaderElection, CliqueElectsExactlyOne) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        const Graph g = make_complete(20);
        const auto result = single_hop_leader_election(g, 48, 0.0, seed);
        EXPECT_EQ(result.leaders_declared, 1u);
        ASSERT_TRUE(result.leader.has_value());
        EXPECT_LT(*result.leader, 20u);
    }
}

TEST(LeaderElection, SingleNodeWinsTrivially) {
    const Graph g = make_complete(1);
    const auto result = single_hop_leader_election(g, 8, 0.0, 5);
    EXPECT_EQ(result.leaders_declared, 1u);
}

class BeepBroadcast : public ::testing::TestWithParam<int> {};

TEST_P(BeepBroadcast, AllNodesDecodeTheMessage) {
    const int graph_id = GetParam();
    Rng rng(graph_id * 5 + 1);
    const Graph g = [&]() {
        switch (graph_id % 5) {
            case 0:
                return make_path(20);
            case 1:
                return make_ring(15);
            case 2:
                return make_grid(4, 6);
            case 3:
                return make_tree(31, 2);
            default:
                return make_random_geometric(30, 0.35, rng);
        }
    }();
    Rng message_rng(graph_id);
    const Bitstring message = Bitstring::random(message_rng, 24);
    const auto result = beep_broadcast(g, 0, message, 11);
    const auto distances = bfs_distances(g, 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        if (distances[v] == unreachable) {
            EXPECT_FALSE(result.reached[v]);
            continue;
        }
        EXPECT_TRUE(result.reached[v]) << "node " << v;
        EXPECT_EQ(result.decoded[v], message) << "node " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Graphs, BeepBroadcast, ::testing::Values(0, 1, 2, 3, 4));

TEST(BeepBroadcastRounds, MatchesDPlusBBound) {
    // O(D + b): on a path of length 19 with a 24-bit message the run must
    // finish within D + 3(b+1) + a small constant.
    const Graph g = make_path(20);
    Rng message_rng(3);
    const Bitstring message = Bitstring::random(message_rng, 24);
    const auto result = beep_broadcast(g, 0, message, 7);
    const std::size_t diameter_bound = 19;
    EXPECT_LE(result.stats.rounds, diameter_bound + 3 * (message.size() + 2) + 2);
    EXPECT_GE(result.stats.rounds, diameter_bound);
}

TEST(BeepBroadcastRounds, AllZeroAndAllOneMessages) {
    const Graph g = make_grid(3, 5);
    for (const std::string pattern : {"00000000", "11111111", "10000001"}) {
        const Bitstring message = Bitstring::from_string(pattern);
        const auto result = beep_broadcast(g, 0, message, 9);
        for (NodeId v = 0; v < g.node_count(); ++v) {
            EXPECT_EQ(result.decoded[v], message) << pattern << " node " << v;
        }
    }
}

TEST(BeepBroadcastRounds, DisconnectedNodesUnreached) {
    const Graph g = Graph::from_edges(5, {{0, 1}, {2, 3}});
    const Bitstring message = Bitstring::from_string("101");
    const auto result = beep_broadcast(g, 0, message, 13);
    EXPECT_TRUE(result.reached[1]);
    EXPECT_EQ(result.decoded[1], message);
    EXPECT_FALSE(result.reached[2]);
    EXPECT_FALSE(result.reached[4]);
}

class MultihopElection : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MultihopElection, ElectsUniqueLeaderAndAllAgree) {
    const auto [graph_id, seed] = GetParam();
    Rng rng(graph_id * 3 + 2);
    const Graph g = [&]() {
        switch (graph_id % 5) {
            case 0:
                return make_ring(12);
            case 1:
                return make_path(16);
            case 2:
                return make_grid(4, 5);
            case 3:
                return make_tree(15, 2);
            default:
                return make_complete(10);
        }
    }();
    const std::size_t phase_length = diameter(g) + 2;
    const auto result = multihop_leader_election(g, 48, phase_length,
                                                 static_cast<std::uint64_t>(seed));
    EXPECT_EQ(result.leaders_declared, 1u) << "graph " << graph_id;
    EXPECT_TRUE(result.leader.has_value());
    EXPECT_TRUE(result.all_agree_on_rank);
    EXPECT_EQ(result.stats.rounds, 48 * phase_length);
}

INSTANTIATE_TEST_SUITE_P(GraphsAndSeeds, MultihopElection,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(1, 2, 3)));

TEST(MultihopElectionEdge, DisconnectedComponentsEachElect) {
    const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
    const auto result = multihop_leader_election(g, 48, 8, 7);
    // One leader per component -> 2 declared, no unique global leader.
    EXPECT_EQ(result.leaders_declared, 2u);
    EXPECT_FALSE(result.leader.has_value());
}

TEST(MultihopElectionEdge, PhaseLengthValidation) {
    const Graph g = make_ring(6);
    EXPECT_THROW(multihop_leader_election(g, 0, 8, 1), precondition_error);
    EXPECT_THROW(multihop_leader_election(g, 8, 1, 1), precondition_error);
}

}  // namespace
}  // namespace nb
