// Tests for the code constructions: beep codes (Thm 4), distance codes
// (Lemma 6), the combined code (Notation 7), decoders, and the
// Kautz-Singleton baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "codes/analysis.h"
#include "codes/beep_code.h"
#include "codes/combined_code.h"
#include "codes/decoders.h"
#include "codes/distance_code.h"
#include "codes/kautz_singleton.h"
#include "common/error.h"

namespace nb {
namespace {

TEST(BeepCode, Theorem4Dimensions) {
    // (a, k, 1/c)-beep code: length c^2*k*a, weight c*a.
    const BeepCode code = BeepCode::theorem4(10, 5, 3, /*seed=*/1);
    EXPECT_EQ(code.length(), 3u * 3u * 5u * 10u);
    EXPECT_EQ(code.weight(), 3u * 10u);
}

TEST(BeepCode, CodewordsHaveExactWeight) {
    const BeepCode code(1200, 40, 7);
    for (std::uint64_t r = 0; r < 50; ++r) {
        EXPECT_EQ(code.codeword(r).count(), 40u);
        EXPECT_EQ(code.codeword(r).size(), 1200u);
    }
}

TEST(BeepCode, DeterministicPerInput) {
    const BeepCode code(1000, 30, 11);
    EXPECT_EQ(code.codeword(12345), code.codeword(12345));
    EXPECT_NE(code.codeword(12345), code.codeword(12346));
}

TEST(BeepCode, DifferentSeedsGiveDifferentCodes) {
    const BeepCode a(1000, 30, 1);
    const BeepCode b(1000, 30, 2);
    EXPECT_NE(a.codeword(5), b.codeword(5));
}

TEST(BeepCode, OnePositionsMatchCodeword) {
    const BeepCode code(800, 25, 3);
    for (std::uint64_t r = 0; r < 10; ++r) {
        EXPECT_EQ(code.one_positions(r), code.codeword(r).one_positions());
    }
}

TEST(BeepCode, RejectsBadWeight) {
    EXPECT_THROW(BeepCode(10, 11, 0), precondition_error);
    EXPECT_THROW(BeepCode(10, 0, 0), precondition_error);
}

TEST(BeepCodeAnalysis, SuperimpositionsRarelyOverIntersect) {
    // Theorem 4 event at the paper's threshold 5*delta^2*b/k = 5*a*c... for
    // (a,k,1/c): threshold 5*delta*weight/... = 5*b/(c^2 k) = 5a.
    const std::size_t a = 16;
    const std::size_t k = 8;
    const std::size_t c = 4;
    const BeepCode code = BeepCode::theorem4(a, k, c, 99);
    const std::size_t threshold = 5 * a;  // 5*b/(c^2*k)
    Rng rng(123);
    const auto stats = measure_superimposition(code, k, threshold, 300, rng);
    // Expected intersection is ~ weight/c = a = 16 << 80; violations are
    // exponentially rare — none should occur in 300 trials.
    EXPECT_EQ(stats.violation_rate, 0.0);
    EXPECT_LT(stats.mean_intersection, 2.0 * static_cast<double>(a));
}

TEST(BeepCodeAnalysis, IntersectionGrowsWithK) {
    const BeepCode code = BeepCode::theorem4(12, 16, 3, 5);
    Rng rng(7);
    const auto small = measure_superimposition(code, 2, code.weight() + 1, 100, rng);
    const auto large = measure_superimposition(code, 16, code.weight() + 1, 100, rng);
    EXPECT_LT(small.mean_intersection, large.mean_intersection);
}

TEST(DistanceCode, Lemma6Length) {
    // delta = 1/3 -> c_delta = 12 * 9 = 108.
    const DistanceCode code = DistanceCode::lemma6(10, 1.0 / 3.0, 1);
    EXPECT_EQ(code.length(), 1080u);
    EXPECT_EQ(code.message_bits(), 10u);
}

TEST(DistanceCode, EncodeDeterministicAndSized) {
    const DistanceCode code(8, 200, 3);
    Rng rng(1);
    const Bitstring m = Bitstring::random(rng, 8);
    EXPECT_EQ(code.encode(m), code.encode(m));
    EXPECT_EQ(code.encode(m).size(), 200u);
    EXPECT_THROW(code.encode(Bitstring(7)), precondition_error);
}

TEST(DistanceCode, MinDistanceMeetsLemma6Bound) {
    const std::size_t bits = 10;
    const double delta = 1.0 / 3.0;
    const DistanceCode code = DistanceCode::lemma6(bits, delta, 17);
    const auto messages = all_messages(bits);
    const std::size_t min_distance = min_pairwise_distance(code, messages);
    EXPECT_GE(min_distance, static_cast<std::size_t>(delta * static_cast<double>(code.length())));
}

TEST(DistanceCode, DictionaryDecodeExactWithoutNoise) {
    const DistanceCode code(12, 300, 21);
    Rng rng(5);
    const auto candidates = random_messages(12, 50, rng);
    for (std::size_t i = 0; i < candidates.size(); i += 7) {
        const auto decoded = code.decode(code.encode(candidates[i]), candidates);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->message, candidates[i]);
        EXPECT_EQ(decoded->distance, 0u);
        EXPECT_TRUE(decoded->unique);
    }
}

TEST(DistanceCode, DecodeToleratesNoiseBelowHalfDistance) {
    const DistanceCode code = DistanceCode::lemma6(8, 1.0 / 3.0, 31);
    const auto candidates = all_messages(8);
    Rng rng(11);
    const Bitstring truth = candidates[137];
    Bitstring received = code.encode(truth);
    // Flip 10% of positions: far less than half the 1/3 relative distance.
    received.apply_noise(rng, 0.10);
    const auto decoded = code.decode(received, candidates);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->message, truth);
}

TEST(DistanceCode, ExhaustiveMatchesDictionaryOnFullSpace) {
    const DistanceCode code(6, 128, 77);
    const auto candidates = all_messages(6);
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        Bitstring received = Bitstring::random(rng, 128);
        const auto dict = code.decode(received, candidates);
        const auto full = code.decode_exhaustive(received);
        ASSERT_TRUE(dict.has_value());
        EXPECT_EQ(dict->message, full.message);
        EXPECT_EQ(dict->distance, full.distance);
    }
}

TEST(DistanceCode, EmptyDictionaryGivesNothing) {
    const DistanceCode code(6, 64, 1);
    EXPECT_FALSE(code.decode(Bitstring(64), {}).has_value());
}

TEST(DistanceCode, NearestEntryMatchesDecodeCached) {
    // The radius-shortcut decoder must pick the same message as the full
    // decode_cached scan for noisy receptions (shortcut hits), garbage
    // receptions (fallback scans), and with gaps disabled entirely.
    const DistanceCode code(12, 300, 21);
    Rng rng(5);
    const auto messages = random_messages(12, 60, rng);
    std::vector<Bitstring> encoded;
    std::vector<std::uint32_t> entries;
    for (std::size_t i = 0; i < messages.size(); ++i) {
        encoded.push_back(code.encode(messages[i]));
        entries.push_back(static_cast<std::uint32_t>(i));
    }
    const auto gaps = code.decode_gaps(messages, encoded);
    for (std::size_t i = 0; i < messages.size(); ++i) {
        for (const double epsilon : {0.0, 0.05, 0.3, 0.5}) {
            Bitstring received = encoded[i];
            received.apply_noise(rng, epsilon);
            const auto expected = code.decode_cached(received, messages, encoded, entries);
            ASSERT_TRUE(expected.has_value());
            const std::uint32_t hint = entries[i];
            const std::uint32_t with_gaps =
                code.nearest_entry(received, messages, encoded, entries, hint, gaps);
            const std::uint32_t without_gaps =
                code.nearest_entry(received, messages, encoded, entries, hint, {});
            EXPECT_EQ(messages[with_gaps], expected->message);
            EXPECT_EQ(messages[without_gaps], expected->message);
        }
    }
}

TEST(DistanceCode, NearestEntryHandlesDuplicateMessages) {
    // Entries sharing one message share one encoding; the shortcut may
    // return either entry of the class but must decode the same message,
    // and decode_gaps must keep the class's gap usable.
    const DistanceCode code(8, 200, 33);
    Rng rng(7);
    auto messages = random_messages(8, 20, rng);
    messages.push_back(messages[3]);  // duplicate message -> duplicate encoding
    std::vector<Bitstring> encoded;
    std::vector<std::uint32_t> entries;
    for (std::size_t i = 0; i < messages.size(); ++i) {
        encoded.push_back(code.encode(messages[i]));
        entries.push_back(static_cast<std::uint32_t>(i));
    }
    const auto gaps = code.decode_gaps(messages, encoded);
    EXPECT_GT(gaps[3], 0u);
    EXPECT_EQ(gaps[3], gaps.back());
    Bitstring received = encoded[3];
    received.apply_noise(rng, 0.05);
    const auto expected = code.decode_cached(received, messages, encoded, entries);
    const std::uint32_t entry = code.nearest_entry(
        received, messages, encoded, entries, entries.back(), gaps);
    ASSERT_TRUE(expected.has_value());
    EXPECT_EQ(messages[entry], expected->message);
}

TEST(DistanceCode, DecodeGapsReflectPairwiseDistances) {
    const DistanceCode code(10, 160, 9);
    Rng rng(13);
    const auto messages = random_messages(10, 12, rng);
    std::vector<Bitstring> encoded;
    for (const auto& message : messages) {
        encoded.push_back(code.encode(message));
    }
    const auto gaps = code.decode_gaps(messages, encoded);
    for (std::size_t i = 0; i < encoded.size(); ++i) {
        std::size_t expected = code.length() + 1;
        for (std::size_t j = 0; j < encoded.size(); ++j) {
            if (j != i) {
                expected = std::min(expected, encoded[i].hamming_distance(encoded[j]));
            }
        }
        EXPECT_EQ(gaps[i], expected);
    }
}

TEST(DistanceCode, ExtendDecodeGapsMatchesFullScan) {
    // Splitting the pairwise scan into a cached prefix block plus the
    // extension over later entries must reproduce the full scan exactly,
    // including conflict zeroing across the split.
    const DistanceCode code(8, 200, 41);
    Rng rng(19);
    auto messages = random_messages(8, 25, rng);
    messages.push_back(messages[2]);   // duplicate across the split boundary
    std::vector<Bitstring> encoded;
    for (const auto& message : messages) {
        encoded.push_back(code.encode(message));
    }
    const auto full = code.decode_gaps(messages, encoded);
    for (const std::size_t prefix : {std::size_t{0}, std::size_t{1}, std::size_t{10},
                                     std::size_t{25}, messages.size()}) {
        const std::span<const Bitstring> m(messages);
        const std::span<const Bitstring> e(encoded);
        const auto prefix_gaps = code.decode_gaps(m.first(prefix), e.first(prefix));
        EXPECT_EQ(code.extend_decode_gaps(m, e, prefix_gaps), full) << "prefix " << prefix;
    }
}

TEST(DistanceCode, RunnerUpGapReported) {
    const DistanceCode code(10, 400, 5);
    Rng rng(9);
    const auto candidates = random_messages(10, 30, rng);
    const auto decoded = code.decode(code.encode(candidates[0]), candidates);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->distance, 0u);
    EXPECT_GT(decoded->runner_up, 100u);  // random codewords are ~200 apart
}

TEST(CombinedCode, EncodePlacesDistanceCodeword) {
    // CD(r, m): gather at C(r)'s 1-positions must recover D(m) exactly.
    const BeepCode beep(2000, 64, 3);
    const DistanceCode distance(8, 64, 4);
    const CombinedCode combined(beep, distance);
    Rng rng(2);
    const Bitstring m = Bitstring::random(rng, 8);
    const Bitstring word = combined.encode(9001, m);
    EXPECT_EQ(word.size(), 2000u);
    EXPECT_EQ(word.gather(beep.one_positions(9001)), distance.encode(m));
    // Nothing outside the beep codeword's support.
    EXPECT_EQ(word.and_not_count(beep.codeword(9001)), 0u);
}

TEST(CombinedCode, ExtractIsDecodePath) {
    const BeepCode beep(1500, 50, 6);
    const DistanceCode distance(10, 50, 7);
    const CombinedCode combined(beep, distance);
    Rng rng(8);
    const Bitstring m = Bitstring::random(rng, 10);
    const Bitstring word = combined.encode(5, m);
    EXPECT_EQ(combined.extract(5, word), distance.encode(m));
}

TEST(CombinedCode, RequiresMatchingDimensions) {
    const BeepCode beep(1000, 40, 1);
    const DistanceCode distance(8, 39, 2);
    EXPECT_THROW(CombinedCode(beep, distance), precondition_error);
}

TEST(Phase1Decoder, ThresholdFollowsLemma9) {
    const BeepCode code(1000, 100, 3);
    const Phase1Decoder noiseless(code, 0.0);
    EXPECT_DOUBLE_EQ(noiseless.threshold(), 25.0);  // w/4
    const Phase1Decoder noisy(code, 0.2);
    EXPECT_DOUBLE_EQ(noisy.threshold(), 35.0);  // (2*0.2+1)/4 * 100
}

TEST(Phase1Decoder, AcceptsContainedCodewords) {
    const BeepCode code(4000, 60, 5);
    Bitstring heard(4000);
    for (const std::uint64_t r : {1ull, 2ull, 3ull}) {
        heard |= code.codeword(r);
    }
    const Phase1Decoder decoder(code, 0.0);
    for (const std::uint64_t r : {1ull, 2ull, 3ull}) {
        EXPECT_TRUE(decoder.accepts(heard, r));
        EXPECT_EQ(decoder.missing_ones(heard, r), 0u);
    }
    // A random foreign codeword mostly misses the superimposition.
    EXPECT_FALSE(decoder.accepts(heard, 999));
}

TEST(Phase1Decoder, DecodeFiltersDictionary) {
    const BeepCode code(4000, 60, 5);
    Bitstring heard(4000);
    heard |= code.codeword(10);
    heard |= code.codeword(20);
    const Phase1Decoder decoder(code, 0.0);
    const std::vector<std::uint64_t> dictionary{10, 20, 30, 40};
    EXPECT_EQ(decoder.decode(heard, dictionary), (std::vector<std::uint64_t>{10, 20}));
}

TEST(Phase1Decoder, FailureInjectionBeyondThresholdRejects) {
    // Remove just over threshold many 1s of a member codeword: the decoder
    // must reject it (report the loss, not silently accept).
    const BeepCode code(4000, 100, 5);
    const Phase1Decoder decoder(code, 0.0);  // threshold 25
    Bitstring heard = code.codeword(42);
    const auto positions = code.one_positions(42);
    for (std::size_t i = 0; i < 25; ++i) {
        heard.set(positions[i], false);
    }
    EXPECT_FALSE(decoder.accepts(heard, 42));
    // One fewer than threshold: accepted.
    heard.set(positions[24]);
    EXPECT_TRUE(decoder.accepts(heard, 42));
}

TEST(KautzSingleton, ConstructionShape) {
    const KautzSingletonCode code(16, 4);
    EXPECT_GE(code.q(), 5u);
    EXPECT_EQ(code.length(), code.q() * code.q());
    EXPECT_EQ(code.weight(), code.q());
    // Every codeword has exactly one 1 per block.
    const Bitstring word = code.codeword(1234);
    EXPECT_EQ(word.count(), code.q());
}

TEST(KautzSingleton, DisjunctDecodingNoiseless) {
    const KautzSingletonCode code(16, 6);
    Bitstring heard(code.length());
    const std::vector<std::uint64_t> members{11, 22, 33, 44, 55, 66};
    for (const auto r : members) {
        heard |= code.codeword(r);
    }
    std::vector<std::uint64_t> dictionary = members;
    for (std::uint64_t r = 100; r < 140; ++r) {
        dictionary.push_back(r);
    }
    EXPECT_EQ(code.decode(heard, dictionary), members);
}

TEST(KautzSingleton, LengthQuadraticInK) {
    // The Theta(k^2) length growth that motivates beep codes (Section 1.4).
    const KautzSingletonCode small(20, 4);
    const KautzSingletonCode large(20, 16);
    const double ratio = static_cast<double>(large.length()) /
                         static_cast<double>(small.length());
    EXPECT_GT(ratio, 4.0);
}

TEST(KautzSingleton, NextPrime) {
    EXPECT_EQ(next_prime(2), 2u);
    EXPECT_EQ(next_prime(4), 5u);
    EXPECT_EQ(next_prime(14), 17u);
    EXPECT_EQ(next_prime(97), 97u);
    EXPECT_THROW(next_prime(1), precondition_error);
}

TEST(Analysis, RandomMessagesDistinct) {
    Rng rng(4);
    const auto messages = random_messages(16, 100, rng);
    EXPECT_EQ(messages.size(), 100u);
    for (std::size_t i = 1; i < messages.size(); ++i) {
        EXPECT_NE(messages[0], messages[i]);
    }
}

TEST(Analysis, AllMessagesEnumerates) {
    const auto messages = all_messages(4);
    EXPECT_EQ(messages.size(), 16u);
    EXPECT_THROW(all_messages(30), precondition_error);
}

TEST(Analysis, FractionBelowDistanceZeroForGoodCode) {
    const DistanceCode code = DistanceCode::lemma6(8, 1.0 / 3.0, 3);
    const auto messages = all_messages(8);
    EXPECT_EQ(fraction_below_distance(code, messages, code.length() / 3), 0.0);
}

}  // namespace
}  // namespace nb
