// Fault-injection tests for the transport: jammers (stuck-on transmitters)
// and crashed (silent) nodes. The paper's model has only channel noise;
// these tests pin down how the implementation degrades under node faults —
// crashes must cost exactly the crashed node's messages, jammers must only
// damage their own neighborhood.
#include <gtest/gtest.h>

#include <limits>
#include <optional>

#include "common/error.h"
#include "congest/algorithm.h"
#include "graph/generators.h"
#include "sim/transport.h"

namespace nb {
namespace {

std::vector<std::optional<Bitstring>> all_messages_for(const Graph& graph, std::size_t bits,
                                                       std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::optional<Bitstring>> messages(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        messages[v] = Bitstring::random(rng, bits);
    }
    return messages;
}

SimulationParams params_for(double epsilon) {
    SimulationParams params;
    params.epsilon = epsilon;
    params.message_bits = 10;
    params.c_eps = 4;
    return params;
}

TEST(Faults, EmptyFaultModelMatchesPlainRound) {
    Rng rng(1);
    const Graph g = make_erdos_renyi(16, 0.3, rng);
    const BeepTransport transport(g, params_for(0.1));
    const auto messages = all_messages_for(g, 10, 5);
    const auto plain = transport.simulate_round(messages, 3);
    const auto faulted = transport.simulate_round(messages, 3, FaultModel{});
    EXPECT_EQ(plain.delivered, faulted.delivered);
    EXPECT_EQ(plain.perfect, faulted.perfect);
}

TEST(Faults, CrashedNodeMessagesLostButRestDelivered) {
    // Star center crashes: leaves must still deliver perfectly among
    // themselves (they have no other neighbors, so they hear nothing), and
    // nobody receives the center's message.
    const Graph g = make_complete(8);
    const BeepTransport transport(g, params_for(0.0));
    const auto messages = all_messages_for(g, 10, 7);
    FaultModel faults;
    faults.crashed = {0};

    const auto round = transport.simulate_round(messages, 0, faults);
    EXPECT_TRUE(round.perfect);  // ground truth excludes the crashed node
    EXPECT_TRUE(round.delivered[0].empty());
    for (NodeId v = 1; v < 8; ++v) {
        // 6 correct neighbors (everyone but self and the crashed node).
        EXPECT_EQ(round.delivered[v].size(), 6u);
        for (const auto& m : round.delivered[v]) {
            EXPECT_NE(m, *messages[0]);
        }
    }
}

TEST(Faults, CrashIsLocalizedOnAPath) {
    // 0-1-2-3-4 with node 2 crashed: nodes 0,1 and 3,4 must exchange
    // perfectly; 1 and 3 simply lose one neighbor message each.
    const Graph g = make_path(5);
    const BeepTransport transport(g, params_for(0.0));
    const auto messages = all_messages_for(g, 10, 9);
    FaultModel faults;
    faults.crashed = {2};

    const auto round = transport.simulate_round(messages, 0, faults);
    EXPECT_TRUE(round.perfect);
    EXPECT_EQ(round.delivered[0].size(), 1u);
    EXPECT_EQ(round.delivered[1].size(), 1u);  // only node 0's message
    EXPECT_EQ(round.delivered[1][0], *messages[0]);
    EXPECT_EQ(round.delivered[3].size(), 1u);
    EXPECT_EQ(round.delivered[3][0], *messages[4]);
}

TEST(Faults, JammerDamagesOnlyItsNeighborhood) {
    // Path 0-1-2-3-4-5 with node 0 jamming: nodes 3,4,5 are out of its
    // range (distance >= 2 from any of 0's neighbors... node 1 is jammed,
    // node 2's transcript picks up nothing from node 0). Deliveries beyond
    // the jammer's neighborhood must stay exact.
    const Graph g = make_path(6);
    const BeepTransport transport(g, params_for(0.0));
    const auto messages = all_messages_for(g, 10, 11);
    FaultModel faults;
    faults.jammers = {0};

    const auto round = transport.simulate_round(messages, 0, faults);
    // Node 1 hears all-ones: everything in its dictionary passes the
    // threshold test — spurious accepts counted as false positives.
    EXPECT_GT(round.phase1_false_positives, 0u);
    // Nodes 3, 4, 5 are unaffected: their expected messages arrive.
    const auto check_exact = [&](NodeId v, std::vector<Bitstring> expect) {
        sort_messages(expect);
        EXPECT_EQ(round.delivered[v], expect) << "node " << v;
    };
    check_exact(3, {*messages[2], *messages[4]});
    check_exact(4, {*messages[3], *messages[5]});
    check_exact(5, {*messages[4]});
}

TEST(Faults, JammedListenerAcceptsEverything) {
    // A node adjacent to a jammer hears an all-ones transcript, so every
    // dictionary codeword passes the missing-ones test: the decoder reports
    // (rather than hides) the breakdown via false positives.
    const Graph g = make_star(6);  // center 0
    const BeepTransport transport(g, params_for(0.0));
    const auto messages = all_messages_for(g, 10, 13);
    FaultModel faults;
    faults.jammers = {1};  // one leaf jams; center is in range

    const auto round = transport.simulate_round(messages, 0, faults);
    EXPECT_FALSE(round.perfect);
    EXPECT_GT(round.phase1_false_positives, 0u);
    // Other leaves (distance 2 from the jammer) hear only the center.
    for (NodeId v = 2; v < 6; ++v) {
        ASSERT_EQ(round.delivered[v].size(), 1u) << "leaf " << v;
        EXPECT_EQ(round.delivered[v][0], *messages[0]);
    }
}

TEST(Faults, ValidationRejectsBadIds) {
    const Graph g = make_path(3);
    const BeepTransport transport(g, params_for(0.0));
    const auto messages = all_messages_for(g, 10, 15);
    FaultModel out_of_range;
    out_of_range.jammers = {5};
    EXPECT_THROW(transport.simulate_round(messages, 0, out_of_range), precondition_error);
    // A node listed as both jammer and crashed is contradictory — rejected
    // up front, on the single-round and the batched path alike.
    FaultModel both;
    both.jammers = {1};
    both.crashed = {1};
    EXPECT_THROW(transport.simulate_round(messages, 0, both), precondition_error);
    const RoundSpec spec{&messages, 0, &both};
    EXPECT_THROW(transport.simulate_rounds({&spec, 1}), precondition_error);
}

TEST(Faults, DuplicateListingsAreIdempotent) {
    // The same node twice in one fault list means the fault once, not an
    // error: only the jam+crash contradiction is rejected.
    const Graph g = make_path(5);
    const BeepTransport transport(g, params_for(0.0));
    const auto messages = all_messages_for(g, 10, 23);
    FaultModel duplicated;
    duplicated.jammers = {0, 0};
    duplicated.crashed = {2, 2};
    FaultModel plain;
    plain.jammers = {0};
    plain.crashed = {2};
    const auto a = transport.simulate_round(messages, 1, duplicated);
    const auto b = transport.simulate_round(messages, 1, plain);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.phase1_false_positives, b.phase1_false_positives);
    EXPECT_EQ(a.delivery_mismatches, b.delivery_mismatches);
}

TEST(Faults, BatchedBitslicedThreadCountsAgree) {
    // Faults combined with batching and with the bitsliced phase-1 kernel
    // forced on: outputs must be identical for 1 vs N workers and for the
    // bitsliced vs scalar kernel (jammer transcripts are the all-ones edge
    // case of the vertical counters).
    Rng rng(29);
    const Graph g = make_erdos_renyi(28, 0.22, rng);
    const auto messages = all_messages_for(g, 10, 31);
    FaultModel faults;
    faults.jammers = {4};
    faults.crashed = {9, 17};

    auto make_params = [](std::size_t threads, std::size_t bitslice_min) {
        SimulationParams params;
        params.epsilon = 0.1;
        params.message_bits = 10;
        params.c_eps = 4;
        params.dictionary = DictionaryPolicy::all_nodes;
        params.bitslice_min_candidates = bitslice_min;
        params.threads = threads;
        return params;
    };
    const BeepTransport sliced_serial(g, make_params(1, 0));
    const BeepTransport sliced_threaded(g, make_params(4, 0));
    const BeepTransport scalar_serial(
        g, make_params(1, std::numeric_limits<std::size_t>::max()));

    std::vector<RoundSpec> specs;
    for (std::uint64_t nonce = 0; nonce < 3; ++nonce) {
        specs.push_back(RoundSpec{&messages, nonce, nonce == 1 ? nullptr : &faults});
    }
    const auto a = sliced_serial.simulate_rounds(specs);
    const auto b = sliced_threaded.simulate_rounds(specs);
    const auto c = scalar_serial.simulate_rounds(specs);
    ASSERT_EQ(a.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(a[i].delivered, b[i].delivered) << "round " << i;
        EXPECT_EQ(a[i].phase1_false_negatives, b[i].phase1_false_negatives);
        EXPECT_EQ(a[i].phase1_false_positives, b[i].phase1_false_positives);
        EXPECT_EQ(a[i].phase2_errors, b[i].phase2_errors);
        EXPECT_EQ(a[i].delivery_mismatches, b[i].delivery_mismatches);
        EXPECT_EQ(a[i].delivered, c[i].delivered) << "round " << i;
        EXPECT_EQ(a[i].phase1_false_positives, c[i].phase1_false_positives);
        EXPECT_EQ(a[i].delivery_mismatches, c[i].delivery_mismatches);
    }
}

TEST(Faults, ManyCrashesStillDeliverAmongSurvivors) {
    Rng rng(17);
    const Graph g = make_erdos_renyi(24, 0.25, rng);
    const BeepTransport transport(g, params_for(0.1));
    const auto messages = all_messages_for(g, 10, 19);
    FaultModel faults;
    faults.crashed = {0, 3, 7, 11};

    std::size_t perfect = 0;
    for (std::uint64_t nonce = 0; nonce < 5; ++nonce) {
        perfect += transport.simulate_round(messages, nonce, faults).perfect ? 1 : 0;
    }
    // Crashes reduce effective degree; decoding should succeed at least as
    // often as in the fault-free noisy case.
    EXPECT_GE(perfect, 4u);
}

}  // namespace
}  // namespace nb
