// Determinism and contract tests for the sweep engine (scenarios/sweep.h):
// expansion order and axis semantics, byte-identical nb-sweep/v1 JSON across
// worker counts (including the shipped 8-specs x 3-seeds acceptance sweep),
// and the codebook-sharing acceptance pin (strictly fewer builds than
// scenario jobs).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "scenarios/registry.h"
#include "scenarios/sweep.h"
#include "sim/codebook_cache.h"

namespace nb {
namespace {

/// A deliberately small base so multi-axis sweeps stay fast.
ScenarioSpec tiny_base(const std::string& name) {
    ScenarioSpec spec;
    spec.name = name;
    spec.topology.family = TopologySpec::Family::random_regular;
    spec.topology.n = 16;
    spec.topology.degree = 4;
    spec.topology.seed = 7;
    spec.channel = ChannelModel::iid(0.1);
    spec.workload.message_bits = 4;
    spec.workload.seed = 3;
    spec.rounds = 2;
    return spec;
}

std::string sweep_json(const SweepResult& result) {
    std::ostringstream out;
    JsonWriter json(out);
    sweep_results_json(json, result);
    return out.str();
}

TEST(SweepSpec, ExpansionOrderNamesAndAxisSemantics) {
    SweepSpec sweep;
    sweep.name = "axes";
    sweep.bases = {tiny_base("a"), tiny_base("b")};
    sweep.axes.epsilons = {0.05, 0.2};
    sweep.axes.seeds = {9, 11};

    EXPECT_EQ(sweep.job_count(), 8u);
    const std::vector<ScenarioSpec> jobs = sweep.expand();
    ASSERT_EQ(jobs.size(), 8u);

    // Fixed nested order: base outermost, seed innermost.
    EXPECT_EQ(jobs[0].name, "a/eps=0.05/seed=9");
    EXPECT_EQ(jobs[1].name, "a/eps=0.05/seed=11");
    EXPECT_EQ(jobs[2].name, "a/eps=0.2/seed=9");
    EXPECT_EQ(jobs[5].name, "b/eps=0.05/seed=11");
    EXPECT_EQ(jobs[7].name, "b/eps=0.2/seed=11");

    // The epsilon axis replaces the channel with iid(eps) and lets the
    // decoder derive its design rate; the seed axis drives the workload.
    EXPECT_EQ(jobs[2].channel, ChannelModel::iid(0.2));
    EXPECT_EQ(jobs[2].decoder_epsilon, -1.0);
    EXPECT_EQ(jobs[2].workload.seed, 9u);
    EXPECT_EQ(jobs[1].workload.seed, 11u);

    // An empty axis keeps the base value.
    EXPECT_EQ(jobs[0].topology.n, 16u);
}

TEST(SweepSpec, NodeCountAndChannelAndTopologyAxes) {
    SweepSpec sweep;
    sweep.name = "axes2";
    sweep.bases = {tiny_base("t")};
    TopologySpec ring;
    ring.family = TopologySpec::Family::ring;
    ring.n = 12;
    sweep.axes.topologies = {ring};
    sweep.axes.node_counts = {12, 24};
    sweep.axes.channels = {ChannelModel::iid(0.0), ChannelModel::adversarial_budget(4)};

    const std::vector<ScenarioSpec> jobs = sweep.expand();
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].topology.family, TopologySpec::Family::ring);
    EXPECT_EQ(jobs[0].topology.n, 12u);
    EXPECT_EQ(jobs[3].topology.n, 24u);
    EXPECT_EQ(jobs[3].channel, ChannelModel::adversarial_budget(4));
    EXPECT_EQ(jobs[1].name, "t/top=ring(n=12)/n=12/ch=adversarial_budget(k=4)");
}

TEST(SweepSpec, ValidateRejectsBadSpecs) {
    SweepSpec empty;
    empty.name = "empty";
    EXPECT_THROW(empty.validate(), precondition_error);

    SweepSpec duplicate;
    duplicate.name = "dup";
    duplicate.bases = {tiny_base("same"), tiny_base("same")};
    EXPECT_THROW(duplicate.validate(), precondition_error);

    // channels and epsilons both drive the channel model; combining them
    // would let one silently overwrite the other under the other's label.
    SweepSpec both;
    both.name = "both";
    both.bases = {tiny_base("b")};
    both.axes.channels = {ChannelModel::iid(0.0)};
    both.axes.epsilons = {0.1};
    EXPECT_THROW(both.validate(), precondition_error);

    // The n axis cannot drive a grid (its size is rows x cols): a silent
    // no-op axis would mislabel every result.
    SweepSpec grid;
    grid.name = "grid";
    grid.bases = {tiny_base("g")};
    grid.bases[0].topology.family = TopologySpec::Family::grid;
    grid.bases[0].topology.rows = 4;
    grid.bases[0].topology.cols = 4;
    grid.axes.node_counts = {16, 32};
    EXPECT_THROW(grid.validate(), precondition_error);
}

TEST(SweepDeterminism, MultiAxisJsonByteIdenticalAcrossWorkerCounts) {
    SweepSpec sweep;
    sweep.name = "tiny-multi-axis";
    sweep.bases = {tiny_base("t")};
    sweep.axes.epsilons = {0.0, 0.1};
    sweep.axes.seeds = {1, 2, 3};
    sweep.axes.node_counts = {16, 20};

    std::string reference;
    for (const std::size_t workers : {1u, 2u, 8u}) {
        // A fresh cache per run: the counter block in the JSON is a delta,
        // deterministic only from equal starting states.
        CodebookCache::instance().clear();
        SweepOptions options;
        options.workers = workers;
        const SweepResult result = run_sweep(sweep, options);
        EXPECT_EQ(result.jobs, 12u);
        const std::string json = sweep_json(result);
        if (reference.empty()) {
            reference = json;
        } else {
            EXPECT_EQ(json, reference) << "workers=" << workers;
        }
    }
}

TEST(SweepDeterminism, ResultsLandInExpandOrder) {
    SweepSpec sweep;
    sweep.name = "order";
    sweep.bases = {tiny_base("t")};
    sweep.axes.seeds = {5, 6, 7, 8};
    SweepOptions options;
    options.workers = 4;
    const SweepResult result = run_sweep(sweep, options);
    const std::vector<ScenarioSpec> jobs = sweep.expand();
    ASSERT_EQ(result.results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(result.results[i].name, jobs[i].name);
    }
}

TEST(SweepAcceptance, ShippedSweepByteIdenticalAndSharesCodebookBuilds) {
    // The PR acceptance pin: all 8 shipped registry specs x 3 seeds,
    // executed at worker counts 1 and 8, must serialize to byte-identical
    // nb-sweep/v1 JSON, and the cache counters must show strictly fewer
    // codebook builds than scenario jobs.
    const SweepSpec sweep = scenarios::shipped_sweep({1, 2, 3});
    ASSERT_EQ(sweep.bases.size(), 8u);

    std::string reference;
    for (const std::size_t workers : {1u, 8u}) {
        CodebookCache::instance().clear();
        SweepOptions options;
        options.workers = workers;
        const SweepResult result = run_sweep(sweep, options);
        EXPECT_EQ(result.jobs, 24u);

        // Strictly fewer builds than scenario-runs: the beep jobs share 4
        // codebooks (seeds never change the key; several specs also agree
        // on graph and code parameters), the TDMA jobs one coloring.
        EXPECT_LT(result.cache.builds + result.cache.coloring_builds, result.jobs);
        EXPECT_GT(result.cache.hits, result.cache.builds);

        const std::string json = sweep_json(result);
        if (reference.empty()) {
            reference = json;
        } else {
            EXPECT_EQ(json, reference) << "workers=" << workers;
        }
    }
}

}  // namespace
}  // namespace nb
