// SIMD dispatch layer: every kernel table must compute bit-identical
// results (common/simd/simd.h's dispatch contract). The property tests
// force scalar vs AVX2 vs AVX-512 on randomized inputs — including the tail
// shapes a lane-width bug would miss (word counts off the vector width,
// candidate counts off the 64/256 lane boundaries, zero-weight columns,
// limit 0, limit above the weight) — and the transport goldens from
// test_transport_equivalence.cpp are re-pinned under every forced kernel.
// The batch ring (sim/transport_batch.h) is covered here too: reuse
// equivalence and the steady-state zero-allocation contract.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "alloc_hooks.h"
#include "common/aligned.h"
#include "common/bitslice.h"
#include "common/bitstring.h"
#include "common/rng.h"
#include "common/simd/simd.h"
#include "common/word_soa.h"
#include "graph/generators.h"
#include "sim/params.h"
#include "sim/transport.h"

namespace nb {
namespace {

/// Kernels this build + CPU can actually run (scalar always; the forced
/// comparisons silently shrink to what the machine offers, and the CI
/// matrix covers the rest).
std::vector<simd::Kernel> supported_kernels() {
    std::vector<simd::Kernel> kernels;
    for (const auto k : {simd::Kernel::scalar, simd::Kernel::avx2, simd::Kernel::avx512}) {
        if (simd::kernel_supported(k)) {
            kernels.push_back(k);
        }
    }
    return kernels;
}

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t words) {
    std::vector<std::uint64_t> out(words);
    for (auto& w : out) {
        w = rng.next_u64();
    }
    return out;
}

TEST(SimdKernels, ScalarTableIsAlwaysSupported) {
    EXPECT_TRUE(simd::kernel_supported(simd::Kernel::scalar));
    EXPECT_TRUE(simd::kernel_supported(simd::Kernel::auto_best));
    // resolve_kernel never returns auto_best: it names the table that runs.
    const simd::Kernel resolved = simd::resolve_kernel(simd::Kernel::auto_best);
    EXPECT_NE(resolved, simd::Kernel::auto_best);
    EXPECT_TRUE(simd::kernel_supported(resolved));
    // An explicit unsupported request falls back instead of crashing.
    EXPECT_TRUE(simd::kernel_supported(simd::resolve_kernel(simd::Kernel::avx512)));
}

TEST(SimdKernels, ParseKernelRoundTrips) {
    bool ok = false;
    EXPECT_EQ(simd::parse_kernel("scalar", &ok), simd::Kernel::scalar);
    EXPECT_TRUE(ok);
    EXPECT_EQ(simd::parse_kernel("avx2", &ok), simd::Kernel::avx2);
    EXPECT_TRUE(ok);
    EXPECT_EQ(simd::parse_kernel("avx512", &ok), simd::Kernel::avx512);
    EXPECT_TRUE(ok);
    EXPECT_EQ(simd::parse_kernel("auto", &ok), simd::Kernel::auto_best);
    EXPECT_TRUE(ok);
    EXPECT_EQ(simd::parse_kernel("neon", &ok), simd::Kernel::auto_best);
    EXPECT_FALSE(ok);
    for (const auto k : supported_kernels()) {
        EXPECT_EQ(simd::parse_kernel(simd::kernel_name(k), &ok), k);
        EXPECT_TRUE(ok);
    }
}

TEST(SimdKernels, PopcountReductionsMatchScalar) {
    // Word counts chosen to straddle every vector width and block size the
    // kernels use: 4-word AVX2 strides, 8-word AVX-512 strides, and the
    // 16-word early-exit blocks — plus off-by-one tails around each.
    Rng rng(2024);
    const auto& scalar = simd::ops(simd::Kernel::scalar);
    for (const std::size_t words :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4}, std::size_t{7},
          std::size_t{8}, std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{17},
          std::size_t{31}, std::size_t{33}, std::size_t{100}}) {
        for (int trial = 0; trial < 8; ++trial) {
            auto a = random_words(rng, words);
            auto b = random_words(rng, words);
            if (trial == 6) {
                std::fill(a.begin(), a.end(), 0);  // zero-weight candidate
            }
            if (trial == 7) {
                b = a;  // identical strings: distance 0, missing-ones 0
            }
            const std::size_t want_and_not = scalar.and_not_count(a.data(), b.data(), words);
            const std::size_t want_hamming = scalar.hamming(a.data(), b.data(), words);
            for (const auto kernel : supported_kernels()) {
                const auto& table = simd::ops(kernel);
                EXPECT_EQ(table.and_not_count(a.data(), b.data(), words), want_and_not)
                    << table.name << " words=" << words;
                EXPECT_EQ(table.hamming(a.data(), b.data(), words), want_hamming)
                    << table.name << " words=" << words;
                // Limits across the interesting boundary: 0 (never true),
                // the exact count (false: strict inequality), count +/- 1,
                // and far above.
                for (const std::size_t limit :
                     {std::size_t{0}, std::size_t{1}, want_and_not,
                      want_and_not + 1, want_and_not + 100}) {
                    EXPECT_EQ(table.and_not_count_below(a.data(), b.data(), words, limit),
                              want_and_not < limit)
                        << table.name << " words=" << words << " limit=" << limit;
                }
            }
        }
    }
}

TEST(SimdKernels, HammingAllMatchesPerColumnScalar) {
    // Candidate counts straddling the 64-per-lane-word and 256-per-AVX2-
    // block boundaries, with zero-weight columns mixed in; bit lengths
    // putting 1..3 words per column.
    Rng rng(77);
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{8}, std::size_t{63},
          std::size_t{64}, std::size_t{65}, std::size_t{255}, std::size_t{257}}) {
        for (const std::size_t bits : {std::size_t{5}, std::size_t{64}, std::size_t{130}}) {
            std::vector<Bitstring> columns;
            columns.reserve(count);
            for (std::size_t c = 0; c < count; ++c) {
                columns.push_back(c % 5 == 3 ? Bitstring(bits) : Bitstring::random(rng, bits));
            }
            WordSoa soa;
            soa.build(columns);
            ASSERT_EQ(soa.count(), count);
            ASSERT_EQ(soa.stride() % 8, 0u);
            const Bitstring received = Bitstring::random(rng, bits);
            const auto& received_words = received.words();

            std::vector<std::uint32_t> want(soa.stride());
            simd::ops(simd::Kernel::scalar)
                .hamming_all(received_words.data(), soa.words(), soa.data(), soa.stride(),
                             want.data());
            // The scalar sweep itself must agree with the per-column kernels
            // and the strided single-column read.
            for (std::size_t c = 0; c < count; ++c) {
                EXPECT_EQ(want[c], received.hamming_distance(columns[c]));
                EXPECT_EQ(soa.column_distance(received_words.data(), c), want[c]);
            }
            for (const auto kernel : supported_kernels()) {
                std::vector<std::uint32_t> got(soa.stride(), 0xdeadbeef);
                simd::ops(kernel).hamming_all(received_words.data(), soa.words(), soa.data(),
                                              soa.stride(), got.data());
                EXPECT_EQ(got, want)
                    << simd::ops(kernel).name << " count=" << count << " bits=" << bits;
            }
        }
    }
}

TEST(SimdKernels, BitslicePassMatchesScalarAndPackedKernel) {
    // The full bitslice acceptance mask, per kernel, against the packed
    // per-candidate kernel it must mirror bit for bit. Column counts off
    // the 64-candidate lane boundary; transcripts include all-zeros and
    // all-ones; limits include 0 (nothing accepted) and above-the-weight
    // (everything accepted, zero-weight columns included).
    Rng rng(4242);
    for (const std::size_t columns :
         {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65}, std::size_t{130}}) {
        const std::size_t bits = 192;
        std::vector<Bitstring> candidates;
        candidates.reserve(columns);
        for (std::size_t c = 0; c < columns; ++c) {
            candidates.push_back(c % 7 == 5 ? Bitstring(bits) : Bitstring::random(rng, bits));
        }
        const BitsliceMatrix matrix(candidates);
        for (int trial = 0; trial < 4; ++trial) {
            Bitstring transcript = Bitstring::random(rng, bits);
            if (trial == 2) {
                transcript = Bitstring(bits);  // all zeros
            } else if (trial == 3) {
                transcript = ~Bitstring(bits);  // all ones
            }
            for (const std::size_t limit :
                 {std::size_t{0}, std::size_t{1}, std::size_t{20}, bits + 1}) {
                BitsliceScratch scratch;
                std::vector<std::uint64_t> scalar_accept;
                matrix.and_not_below(transcript, limit, scratch, scalar_accept,
                                     simd::Kernel::scalar);
                for (std::size_t c = 0; c < columns; ++c) {
                    const bool bit = (scalar_accept[c / 64] >> (c % 64)) & 1;
                    EXPECT_EQ(bit, candidates[c].and_not_count_below(transcript, limit))
                        << "column " << c << " limit " << limit;
                }
                for (const auto kernel : supported_kernels()) {
                    BitsliceScratch fresh;
                    std::vector<std::uint64_t> accept;
                    matrix.and_not_below(transcript, limit, fresh, accept, kernel);
                    EXPECT_EQ(accept, scalar_accept)
                        << simd::ops(kernel).name << " columns=" << columns
                        << " limit=" << limit;
                }
            }
        }
    }
}

TEST(SimdKernels, GatherBitsMatchesPositionGatherOnEveryKernel) {
    // The word-wise PEXT gather against the position-list gather it
    // replaces on the decode path: for every kernel, every mask shape a
    // fill-buffer bug could miss — empty, single-bit, sparse, ~half-dense
    // (output words straddle input words), and all-ones (identity) — over
    // sizes off the 64-bit word boundary.
    Rng rng(7177);
    for (const std::size_t bits :
         {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
          std::size_t{127}, std::size_t{130}, std::size_t{300}, std::size_t{1056}}) {
        for (int shape = 0; shape < 5; ++shape) {
            Bitstring mask(bits);
            switch (shape) {
                case 0:
                    break;  // empty: gather of nothing
                case 1:
                    mask.set(bits - 1);
                    break;
                case 2:  // sparse ~10%, the codeword regime
                    for (std::size_t i = 0; i < bits; ++i) {
                        mask.set(i, rng.bernoulli(0.1));
                    }
                    break;
                case 3:
                    mask = Bitstring::random(rng, bits);  // ~half dense
                    break;
                case 4:
                    mask = ~Bitstring(bits);  // all ones: gather == copy
                    break;
            }
            const Bitstring src = Bitstring::random(rng, bits);
            Bitstring want;
            src.gather_into(mask.one_positions(), want);
            for (const auto kernel : supported_kernels()) {
                Bitstring got;
                src.gather_mask_into(mask, got, kernel);
                EXPECT_EQ(got, want) << simd::ops(kernel).name << " bits=" << bits
                                     << " shape=" << shape;
            }
        }
    }

    // The raw kernel on plain word arrays: the return value is popcount of
    // the mask (callers size the output from it), every written word matches
    // the scalar table (which compiles the software bit walk, while the
    // AVX TUs compile the PEXT path), and padding bits land as zeros.
    const auto& scalar = simd::ops(simd::Kernel::scalar);
    for (const std::size_t words : {std::size_t{1}, std::size_t{3}, std::size_t{24}}) {
        for (int trial = 0; trial < 6; ++trial) {
            const auto src = random_words(rng, words);
            auto mask = random_words(rng, words);
            if (trial >= 3) {
                for (auto& m : mask) {
                    m &= rng.next_u64() & rng.next_u64();  // sparse
                }
            }
            std::size_t ones = 0;
            for (const auto m : mask) {
                ones += static_cast<std::size_t>(std::popcount(m));
            }
            std::vector<std::uint64_t> ref((ones + 63) / 64 + 1, ~std::uint64_t{0});
            EXPECT_EQ(scalar.gather_bits(src.data(), mask.data(), words, ref.data()), ones);
            for (const auto kernel : supported_kernels()) {
                std::vector<std::uint64_t> out(ref.size(), ~std::uint64_t{0});
                EXPECT_EQ(simd::ops(kernel).gather_bits(src.data(), mask.data(), words,
                                                        out.data()),
                          ones);
                EXPECT_EQ(out, ref) << simd::ops(kernel).name << " words=" << words;
            }
            if (ones % 64 != 0 && ones != 0) {
                // Assembled words carry zero padding above the packed bits.
                EXPECT_EQ(ref[ones / 64] >> (ones % 64), 0u);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end: forced dispatch must reproduce the seed-pinned transport
// goldens (same values as test_transport_equivalence.cpp), and the batch
// ring must match the compatibility path while allocating nothing once warm.

std::vector<std::optional<Bitstring>> make_messages(const Graph& graph, std::size_t bits,
                                                    std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::optional<Bitstring>> messages(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        if (!rng.bernoulli(0.25)) {
            messages[v] = Bitstring::random(rng, bits);
        }
    }
    return messages;
}

std::uint64_t fingerprint(const TransportRound& round) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    for (const auto& messages : round.delivered) {
        mix(messages.size());
        for (const auto& message : messages) {
            mix(message.hash());
        }
    }
    mix(round.beep_rounds);
    mix(round.total_beeps);
    mix(round.phase1_false_negatives);
    mix(round.phase1_false_positives);
    mix(round.phase2_errors);
    mix(round.delivery_mismatches);
    return h;
}

std::uint64_t run_fingerprint(const BeepTransport& transport,
                              const std::vector<std::optional<Bitstring>>& messages,
                              const FaultModel& faults) {
    std::uint64_t h = 0;
    for (std::uint64_t nonce = 0; nonce < 3; ++nonce) {
        h = mix64(h ^ fingerprint(transport.simulate_round(messages, nonce, faults)));
    }
    return h;
}

// The seed goldens of test_transport_equivalence.cpp — re-pinned here under
// forced dispatch so a kernel divergence shows up as a golden failure, not
// just a cross-kernel mismatch.
constexpr std::uint64_t kGoldenTwoHopPlain = 0x82c6aaa1661aa3eaULL;
constexpr std::uint64_t kGoldenAllNodesPlain = 0x82c6aaa1661aa3eaULL;
constexpr std::uint64_t kGoldenAllNodesFaults = 0xcf836c6fc717b592ULL;

SimulationParams forced_params(DictionaryPolicy policy, simd::Kernel kernel) {
    SimulationParams params;
    params.epsilon = 0.1;
    params.message_bits = 10;
    params.c_eps = 4;
    params.dictionary = policy;
    params.threads = 1;
    params.simd_kernel = kernel;
    return params;
}

TEST(SimdTransport, ForcedKernelsReproduceGoldenFingerprints) {
    Rng rng(42);
    const Graph graph = make_erdos_renyi(32, 0.18, rng);
    const auto messages = make_messages(graph, 10, 1234);
    FaultModel faults;
    faults.jammers = {3};
    faults.crashed = {7, 11};
    for (const auto kernel : supported_kernels()) {
        SimulationParams two_hop = forced_params(DictionaryPolicy::two_hop, kernel);
        const BeepTransport sparse(graph, two_hop);
        EXPECT_EQ(run_fingerprint(sparse, messages, FaultModel{}), kGoldenTwoHopPlain)
            << simd::ops(kernel).name;

        // all_nodes below the bitslice crossover: the bitsliced phase-1 and
        // the SoA phase-2 sweep both run under the forced kernel.
        SimulationParams dense = forced_params(DictionaryPolicy::all_nodes, kernel);
        dense.bitslice_min_candidates = 0;
        const BeepTransport full(graph, dense);
        EXPECT_EQ(run_fingerprint(full, messages, FaultModel{}), kGoldenAllNodesPlain)
            << simd::ops(kernel).name;
        EXPECT_EQ(run_fingerprint(full, messages, faults), kGoldenAllNodesFaults)
            << simd::ops(kernel).name;
    }
}

TEST(TransportBatchRing, ReusedBatchMatchesSimulateRounds) {
    Rng rng(42);
    const Graph graph = make_erdos_renyi(32, 0.18, rng);
    const auto messages = make_messages(graph, 10, 1234);
    FaultModel faults;
    faults.jammers = {3};
    SimulationParams params = forced_params(DictionaryPolicy::all_nodes, simd::Kernel::auto_best);
    params.bitslice_min_candidates = 0;
    const BeepTransport transport(graph, params);

    std::vector<RoundSpec> specs;
    for (std::uint64_t nonce = 0; nonce < 3; ++nonce) {
        specs.push_back(RoundSpec{&messages, nonce, nonce == 1 ? &faults : nullptr});
    }
    TransportBatch batch;
    // Two passes through the same reused batch: results must be identical
    // both times (slot/arena reuse cannot leak state between batches).
    for (int pass = 0; pass < 2; ++pass) {
        transport.simulate_rounds_into(specs, batch);
        ASSERT_EQ(batch.rounds(), specs.size());
        ASSERT_EQ(batch.nodes(), graph.node_count());
        EXPECT_EQ(batch.message_bits(), params.message_bits);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const TransportRound expect =
                transport.simulate_round(messages, specs[i].nonce,
                                         specs[i].faults ? *specs[i].faults : FaultModel{});
            const TransportRound got = batch.to_round(i);
            EXPECT_EQ(got.delivered, expect.delivered);
            EXPECT_EQ(got.total_beeps, expect.total_beeps);
            EXPECT_EQ(got.phase1_false_negatives, expect.phase1_false_negatives);
            EXPECT_EQ(got.phase1_false_positives, expect.phase1_false_positives);
            EXPECT_EQ(got.phase2_errors, expect.phase2_errors);
            EXPECT_EQ(got.delivery_mismatches, expect.delivery_mismatches);
            // The zero-copy accessors agree with the owning conversion.
            for (NodeId v = 0; v < graph.node_count(); ++v) {
                ASSERT_EQ(batch.delivered_count(i, v), expect.delivered[v].size());
                for (std::size_t m = 0; m < expect.delivered[v].size(); ++m) {
                    EXPECT_EQ(batch.delivered_message(i, v, m), expect.delivered[v][m]);
                    EXPECT_EQ(batch.delivered_words(i, v, m).size(), batch.message_words());
                }
            }
        }
    }
}

TEST(TransportBatchRing, SteadyStateDecodeAllocatesNothing) {
    // The zero-allocation contract of transport_batch.h: with the codebook
    // round cached (same messages + nonce), a warmed-up batch decode touches
    // the allocator exactly zero times. Single worker keeps the pipelined
    // std::async build machinery out of the loop; all_nodes below the
    // crossover puts the measurement on the bitslice + SoA + arena path.
    Rng rng(9);
    const Graph graph = make_erdos_renyi(48, 0.15, rng);
    const auto messages = make_messages(graph, 10, 77);
    SimulationParams params = forced_params(DictionaryPolicy::all_nodes, simd::Kernel::auto_best);
    params.bitslice_min_candidates = 0;
    const BeepTransport transport(graph, params);

    std::vector<RoundSpec> specs(4, RoundSpec{&messages, 5, nullptr});
    TransportBatch batch;
    transport.simulate_rounds_into(specs, batch);  // builds the round, grows arenas
    transport.simulate_rounds_into(specs, batch);  // everything at high-water

    const std::uint64_t before = alloc_hooks::count();
    transport.simulate_rounds_into(specs, batch);
    const std::uint64_t after = alloc_hooks::count();
    EXPECT_EQ(after - before, 0u) << "steady-state batched decode allocated";
    EXPECT_GT(batch.arena_words(), 0u);
}

}  // namespace
}  // namespace nb
