// Tests for the scenario layer: topology/workload builders, spec
// validation, runner determinism, the registry contract, the JSON schema,
// and the acceptance pin that the registered E11 spec reproduces the legacy
// bench's numbers through the scenario runner.
#include <gtest/gtest.h>

#include <sstream>

#include "common/cancel.h"
#include "common/error.h"
#include "common/math_util.h"
#include "graph/generators.h"
#include "scenarios/registry.h"
#include "scenarios/scenario.h"
#include "sim/transport.h"

namespace nb {
namespace {

TEST(TopologySpec, BuildsEveryFamily) {
    TopologySpec spec;
    spec.n = 12;
    spec.degree = 3;

    spec.family = TopologySpec::Family::complete;
    EXPECT_EQ(spec.build().node_count(), 12u);
    EXPECT_EQ(spec.build().max_degree(), 11u);

    spec.family = TopologySpec::Family::ring;
    EXPECT_EQ(spec.build().max_degree(), 2u);

    spec.family = TopologySpec::Family::path;
    EXPECT_EQ(spec.build().node_count(), 12u);

    spec.family = TopologySpec::Family::star;
    EXPECT_EQ(spec.build().max_degree(), 11u);

    spec.family = TopologySpec::Family::tree;
    EXPECT_EQ(spec.build().node_count(), 12u);

    spec.family = TopologySpec::Family::hard_instance;
    EXPECT_EQ(spec.build().node_count(), 12u);
    EXPECT_EQ(spec.build().max_degree(), 3u);

    spec.family = TopologySpec::Family::grid;
    EXPECT_THROW(spec.build(), precondition_error);  // both dims required
    spec.rows = 3;
    spec.cols = 4;
    EXPECT_EQ(spec.build().node_count(), 12u);

    spec.family = TopologySpec::Family::erdos_renyi;
    EXPECT_EQ(spec.build().node_count(), 12u);

    spec.family = TopologySpec::Family::random_geometric;
    EXPECT_EQ(spec.build().node_count(), 12u);

    spec.family = TopologySpec::Family::random_regular;
    const Graph regular = spec.build();
    EXPECT_EQ(regular.node_count(), 12u);
    EXPECT_LE(regular.max_degree(), 4u);  // parity fixup may bump d to 4
}

TEST(TopologySpec, RandomRegularMatchesBenchHelper) {
    // The historical benches' helper (including the odd-product parity
    // fixup) and the spec builder must be the same graph for the same seed.
    TopologySpec spec;
    spec.family = TopologySpec::Family::random_regular;
    spec.n = 64;
    spec.degree = 8;
    spec.seed = 0xe11;
    Rng rng(0xe11);
    const Graph expected = make_random_regular(64, 8, rng);
    const Graph built = spec.build();
    ASSERT_EQ(built.node_count(), expected.node_count());
    for (NodeId v = 0; v < built.node_count(); ++v) {
        EXPECT_EQ(built.degree(v), expected.degree(v)) << "node " << v;
    }
}

TEST(WorkloadSpec, MatchesLegacyDrawSequenceWhenNobodySilent) {
    const Graph g = make_ring(10);
    WorkloadSpec workload;
    workload.message_bits = 6;
    workload.seed = 11;
    const auto messages = workload.build(g);
    Rng rng(11);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        ASSERT_TRUE(messages[v].has_value());
        EXPECT_EQ(*messages[v], Bitstring::random(rng, 6)) << "node " << v;
    }
}

TEST(WorkloadSpec, SilentFractionBounds) {
    const Graph g = make_ring(8);
    WorkloadSpec workload;
    workload.silent_fraction = 1.0;
    for (const auto& message : workload.build(g)) {
        EXPECT_FALSE(message.has_value());
    }
    workload.silent_fraction = 1.5;
    EXPECT_THROW(workload.build(g), precondition_error);
}

TEST(ScenarioSpec, Validation) {
    ScenarioSpec spec = scenarios::e11_noise_point(0.1, 4);
    EXPECT_NO_THROW(spec.validate());

    ScenarioSpec unnamed = spec;
    unnamed.name.clear();
    EXPECT_THROW(unnamed.validate(), precondition_error);

    ScenarioSpec no_rounds = spec;
    no_rounds.rounds = 0;
    EXPECT_THROW(no_rounds.validate(), precondition_error);

    ScenarioSpec bad_window = spec;
    FaultWindow window;
    window.faults.jammers = {1};
    window.first_round = 3;
    window.last_round = 1;
    bad_window.faults.push_back(window);
    EXPECT_THROW(bad_window.validate(), precondition_error);

    // The TDMA baseline does not model faults; a spec combining them must
    // fail fast at validation, not mid-run.
    ScenarioSpec tdma_faults = spec;
    tdma_faults.transport = TransportKind::tdma;
    FaultWindow active;
    active.faults.crashed = {2};
    tdma_faults.faults.push_back(active);
    EXPECT_THROW(tdma_faults.validate(), precondition_error);
}

TEST(ScenarioSpec, DecoderEpsilonDefaultsToChannelDesignRate) {
    ScenarioSpec spec = scenarios::e11_noise_point(0.1, 4);
    EXPECT_DOUBLE_EQ(spec.effective_decoder_epsilon(), 0.1);
    spec.channel = ChannelModel::heterogeneous(0.1, 0.3, 1);
    EXPECT_DOUBLE_EQ(spec.effective_decoder_epsilon(), 0.2);
    spec.decoder_epsilon = 0.05;
    EXPECT_DOUBLE_EQ(spec.effective_decoder_epsilon(), 0.05);
    // Non-iid channels ride in SimulationParams::channel; iid ones use the
    // default paper configuration (channel unset).
    EXPECT_TRUE(spec.sim_params().channel.has_value());
    EXPECT_FALSE(scenarios::e11_noise_point(0.1, 4).sim_params().channel.has_value());
}

TEST(RunScenario, DeterministicAcrossRuns) {
    const ScenarioSpec spec = scenarios::e11_noise_point(0.2, 5);
    const ScenarioResult a = run_scenario(spec);
    const ScenarioResult b = run_scenario(spec);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.perfect_rounds, b.perfect_rounds);
    EXPECT_EQ(a.total_beeps, b.total_beeps);
    EXPECT_EQ(a.phase1_false_negatives, b.phase1_false_negatives);
    EXPECT_EQ(a.phase1_false_positives, b.phase1_false_positives);
    EXPECT_EQ(a.phase2_errors, b.phase2_errors);
    EXPECT_EQ(a.delivery_mismatches, b.delivery_mismatches);
}

TEST(RunScenario, TimeoutGoesThroughTheWatchdogTokenPath) {
    const ScenarioSpec spec = scenarios::e11_noise_point(0.2, 5);

    // No deadline (or a generous one): identical to plain run_scenario.
    const ScenarioResult plain = run_scenario(spec);
    const ScenarioResult unbounded = run_scenario_with_timeout(spec, 0.0);
    const ScenarioResult generous = run_scenario_with_timeout(spec, 3600.0);
    EXPECT_EQ(plain.total_beeps, unbounded.total_beeps);
    EXPECT_EQ(plain.total_beeps, generous.total_beeps);

    // An already-expired deadline: the transports' round-boundary polls
    // unwind with cancelled_error — the same token path the sweep engine's
    // per-job watchdog uses, now reachable for single runs (nb_run
    // --timeout without --sweep).
    EXPECT_THROW(run_scenario_with_timeout(spec, 1e-9), cancelled_error);

    // The thread-local scope is restored: the next plain run is unaffected.
    EXPECT_EQ(run_scenario(spec).total_beeps, plain.total_beeps);
}

TEST(RunScenario, E11SpecReproducesLegacyBenchNumbers) {
    // The acceptance pin: the registered E11 point, executed by the unified
    // runner, must equal the legacy bench's hand-rolled loop (same graph
    // seed, same message stream, same transport parameters, same nonces).
    const ScenarioSpec spec = scenarios::e11_noise_point(0.1, 4);
    const ScenarioResult via_runner = run_scenario(spec);

    Rng graph_rng(0xe11);
    const Graph g = make_random_regular(64, 8, graph_rng);
    SimulationParams params;
    params.epsilon = 0.1;
    params.message_bits = ceil_log2(64);
    params.c_eps = 4;
    const BeepTransport transport(g, params);
    Rng message_rng(11);
    std::vector<std::optional<Bitstring>> messages(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        messages[v] = Bitstring::random(message_rng, params.message_bits);
    }
    std::vector<RoundSpec> specs;
    for (std::uint64_t nonce = 0; nonce < 8; ++nonce) {
        specs.push_back(RoundSpec{&messages, nonce, nullptr});
    }
    std::size_t perfect = 0;
    std::uint64_t beeps = 0;
    for (const auto& round : transport.simulate_rounds(specs)) {
        perfect += round.perfect ? 1 : 0;
        beeps += round.total_beeps;
    }

    EXPECT_EQ(via_runner.rounds, 8u);
    EXPECT_EQ(via_runner.perfect_rounds, perfect);
    EXPECT_EQ(via_runner.total_beeps, beeps);
    EXPECT_EQ(via_runner.beep_rounds_per_round, transport.rounds_per_broadcast_round());
    EXPECT_EQ(via_runner.node_count, 64u);
    EXPECT_EQ(via_runner.max_degree, g.max_degree());
}

TEST(RunScenario, FaultWindowsActivatePerRound) {
    // Noiseless channel, jammer active from round 2 only: rounds 0-1 must
    // be perfect, later rounds must show the jammer's false positives.
    ScenarioSpec spec;
    spec.name = "test-window";
    spec.topology.family = TopologySpec::Family::star;
    spec.topology.n = 8;
    spec.channel = ChannelModel::iid(0.0);
    spec.workload.message_bits = 6;
    spec.workload.seed = 3;
    spec.rounds = 4;
    FaultWindow window;
    window.faults.jammers = {1};
    window.first_round = 2;
    spec.faults.push_back(window);

    const ScenarioResult result = run_scenario(spec);
    EXPECT_EQ(result.rounds, 4u);
    EXPECT_EQ(result.perfect_rounds, 2u);  // exactly the clean rounds 0-1
    EXPECT_GT(result.phase1_false_positives, 0u);

    // First containing window wins: an explicitly empty window shadows a
    // catch-all jammer behind it, so rounds 0-1 stay clean even though the
    // second window covers them too.
    ScenarioSpec shadowed = spec;
    shadowed.faults.clear();
    FaultWindow clean;
    clean.last_round = 1;
    shadowed.faults.push_back(clean);
    FaultWindow catch_all;
    catch_all.faults.jammers = {1};
    shadowed.faults.push_back(catch_all);
    const ScenarioResult shadowed_result = run_scenario(shadowed);
    EXPECT_EQ(shadowed_result.perfect_rounds, 2u);
    EXPECT_GT(shadowed_result.phase1_false_positives, 0u);
}

TEST(Registry, ShippedScenariosAreWellFormed) {
    const auto& specs = scenarios::shipped_scenarios();
    ASSERT_GE(specs.size(), 8u);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_NO_THROW(specs[i].validate()) << specs[i].name;
        EXPECT_FALSE(specs[i].description.empty()) << specs[i].name;
        for (std::size_t j = i + 1; j < specs.size(); ++j) {
            EXPECT_NE(specs[i].name, specs[j].name);
        }
        EXPECT_EQ(scenarios::find_scenario(specs[i].name), &specs[i]);
    }
    EXPECT_EQ(scenarios::find_scenario("no-such-scenario"), nullptr);

    // Every channel model kind ships at least one spec.
    bool has_ge = false, has_het = false, has_adv = false, has_iid = false;
    for (const auto& spec : specs) {
        switch (spec.channel.kind) {
            case ChannelModelKind::iid:
                has_iid = true;
                break;
            case ChannelModelKind::gilbert_elliott:
                has_ge = true;
                break;
            case ChannelModelKind::heterogeneous:
                has_het = true;
                break;
            case ChannelModelKind::adversarial_budget:
                has_adv = true;
                break;
        }
    }
    EXPECT_TRUE(has_iid && has_ge && has_het && has_adv);
}

TEST(ScenarioJson, EmitsTheV1Schema) {
    ScenarioResult result;
    result.name = "demo";
    result.description = "a \"quoted\" description";
    result.topology = "ring(n=8)";
    result.channel = "iid(eps=0.1)";
    result.transport = "beep";
    result.node_count = 8;
    result.rounds = 4;
    result.perfect_rounds = 3;
    result.total_beeps = 1234;

    std::ostringstream out;
    JsonWriter json(out);
    scenario_results_json(json, {&result, 1});
    const std::string text = out.str();
    EXPECT_NE(text.find("\"schema\": \"nb-scenarios/v1\""), std::string::npos);
    EXPECT_NE(text.find("\"name\": \"demo\""), std::string::npos);
    EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos);  // escaping
    EXPECT_NE(text.find("\"perfect_fraction\": 0.75"), std::string::npos);
    EXPECT_NE(text.find("\"total_beeps\": 1234"), std::string::npos);
}

TEST(JsonWriterTest, StructureAndEscaping) {
    std::ostringstream out;
    JsonWriter json(out, /*indent=*/0);
    json.begin_object();
    json.kv("text", "line\nbreak\ttab");
    json.kv("flag", true);
    json.kv("num", 1.5);
    json.key("arr").begin_array().value(1).value(2).end_array();
    json.end_object();
    EXPECT_EQ(out.str(),
              "{\"text\": \"line\\nbreak\\ttab\",\"flag\": true,\"num\": 1.5,"
              "\"arr\": [1,2]}");

    std::ostringstream bad;
    JsonWriter broken(bad);
    broken.begin_array();
    EXPECT_THROW(broken.key("k"), precondition_error);
    EXPECT_THROW(broken.end_object(), precondition_error);
}

}  // namespace
}  // namespace nb
