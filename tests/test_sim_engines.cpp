// Tests for the simulated engines: BroadcastCongestOverBeeps (Theorem 11),
// the CONGEST adapter (Corollary 12 / Lemma 15), and the differential
// property that simulated runs reproduce native runs exactly.
#include <gtest/gtest.h>

#include "apps/bfs.h"
#include "apps/matching.h"
#include "apps/mis.h"
#include "common/error.h"
#include "common/math_util.h"
#include "congest/native_engine.h"
#include "graph/generators.h"
#include "lowerbound/local_broadcast.h"
#include "sim/broadcast_congest_sim.h"
#include "sim/congest_adapter.h"

namespace nb {
namespace {

SimulationParams sim_params_for(std::size_t message_bits, double epsilon,
                                std::size_t c_eps = 4) {
    SimulationParams params;
    params.epsilon = epsilon;
    params.message_bits = message_bits;
    params.c_eps = c_eps;
    return params;
}

// --------------------------------------------- Theorem 11 engine behavior

TEST(BroadcastCongestOverBeeps, CountsBeepRounds) {
    const Graph g = make_ring(8);
    const std::size_t width = BfsAlgorithm::required_message_bits(8);
    CongestParams congest{width, 3};
    BroadcastCongestOverBeeps engine(g, sim_params_for(width, 0.0), congest);

    auto nodes = make_bfs_nodes(g, 0);
    const auto stats = engine.run(nodes, 16);
    EXPECT_TRUE(stats.all_finished);
    EXPECT_EQ(stats.beep_rounds,
              stats.congest_rounds * engine.transport().rounds_per_broadcast_round());
    EXPECT_EQ(stats.imperfect_rounds, 0u);
}

TEST(BroadcastCongestOverBeeps, RejectsOversizedBudget) {
    const Graph g = make_ring(4);
    CongestParams congest{64, 0};
    EXPECT_THROW(BroadcastCongestOverBeeps(g, sim_params_for(32, 0.0), congest),
                 precondition_error);
}

// ---------------------------------------- differential: native == simulated

/// Runs `make_nodes` on the native engine and over noiseless beeps with the
/// same algorithm seed; outputs must agree exactly. With noise, agreement
/// holds whenever no simulated round misdelivered (imperfect_rounds == 0).
template <typename MakeNodes, typename Collect>
void expect_differential_equality(const Graph& g, std::size_t width, MakeNodes make_nodes,
                                  Collect collect, double epsilon, std::size_t max_rounds,
                                  std::uint64_t algorithm_seed) {
    CongestParams congest{width, algorithm_seed};

    auto native_nodes = make_nodes(g);
    NativeBroadcastCongestEngine native(g, congest);
    const auto native_stats = native.run(native_nodes, max_rounds);
    ASSERT_TRUE(native_stats.all_finished);
    const auto native_out = collect(native_nodes);

    auto sim_nodes = make_nodes(g);
    BroadcastCongestOverBeeps sim(g, sim_params_for(width, epsilon), congest);
    const auto sim_stats = sim.run(sim_nodes, max_rounds);
    ASSERT_TRUE(sim_stats.all_finished);

    if (sim_stats.imperfect_rounds == 0) {
        EXPECT_EQ(sim_stats.congest_rounds, native_stats.rounds);
        const auto sim_out = collect(sim_nodes);
        EXPECT_EQ(sim_out, native_out);
    }
}

class DifferentialMatching : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DifferentialMatching, SimulatedEqualsNative) {
    const auto [graph_id, epsilon] = GetParam();
    Rng rng(graph_id * 91 + 7);
    const Graph g = [&]() {
        switch (graph_id % 4) {
            case 0:
                return make_ring(10);
            case 1:
                return make_complete_bipartite(4, 4);
            case 2:
                return make_erdos_renyi(16, 0.25, rng);
            default:
                return make_grid(3, 4);
        }
    }();
    const std::size_t width = MatchingAlgorithm::required_message_bits(g.node_count());
    expect_differential_equality(
        g, width, [](const Graph& graph) { return make_matching_nodes(graph); },
        [&g](const auto& nodes) {
            const auto outputs = collect_matching_outputs(nodes);
            EXPECT_TRUE(verify_matching(g, outputs).valid());
            std::vector<std::optional<NodeId>> partners;
            for (const auto& out : outputs) {
                partners.push_back(out.partner);
            }
            return partners;
        },
        epsilon, matching_rounds_for_iterations(120), 11);
}

INSTANTIATE_TEST_SUITE_P(GraphsAndNoise, DifferentialMatching,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0.0, 0.1)));

TEST(DifferentialMis, SimulatedEqualsNative) {
    Rng rng(3);
    const Graph g = make_erdos_renyi(14, 0.3, rng);
    const std::size_t width = MisAlgorithm::required_message_bits(g.node_count());
    expect_differential_equality(
        g, width, [](const Graph& graph) { return make_mis_nodes(graph); },
        [&g](const auto& nodes) {
            const auto flags = collect_mis_outputs(nodes);
            EXPECT_TRUE(verify_mis(g, flags).valid());
            return flags;
        },
        0.0, 300, 23);
}

TEST(DifferentialBfs, SimulatedEqualsNative) {
    const Graph g = make_grid(3, 5);
    const std::size_t width = BfsAlgorithm::required_message_bits(g.node_count());
    expect_differential_equality(
        g, width, [](const Graph& graph) { return make_bfs_nodes(graph, 0); },
        [&g](const auto& nodes) {
            const auto outputs = collect_bfs_outputs(nodes);
            EXPECT_TRUE(verify_bfs(g, 0, outputs));
            std::vector<std::size_t> distances;
            for (const auto& out : outputs) {
                distances.push_back(out.distance);
            }
            return distances;
        },
        0.0, g.node_count() + 3, 29);
}

TEST(DifferentialMatching, NoisyRunStillValidWhenPerfect) {
    // Under noise with tuned constants, rounds occasionally misdeliver; this
    // test confirms the noisy run still produces a *valid* maximal matching
    // in the common all-rounds-perfect case and reports imperfection
    // honestly otherwise.
    const Graph g = make_complete_bipartite(5, 5);
    const std::size_t width = MatchingAlgorithm::required_message_bits(g.node_count());
    CongestParams congest{width, 41};
    auto nodes = make_matching_nodes(g);
    BroadcastCongestOverBeeps sim(g, sim_params_for(width, 0.15, 5), congest);
    const auto stats = sim.run(nodes, matching_rounds_for_iterations(150));
    ASSERT_TRUE(stats.all_finished);
    if (stats.imperfect_rounds == 0) {
        EXPECT_TRUE(verify_matching(g, collect_matching_outputs(nodes)).valid());
    }
}

// ------------------------------------------- Corollary 12 / Lemma 15 stack

TEST(CongestAdapter, RequiredWidthLayout) {
    // 2 kind + 2*id + 1 present + payload.
    EXPECT_EQ(CongestViaBroadcastAdapter::required_message_bits(256, 10), 2 + 16 + 1 + 10u);
}

TEST(CongestViaBroadcast, SolvesLocalBroadcastNative) {
    // Lemma 15: B-bit Local Broadcast in O(Delta * ceil(B/chunk)) BC rounds.
    const Graph g = make_complete_bipartite(4, 4);
    Rng rng(5);
    const auto instance = make_local_broadcast_instance(g, 24, rng);
    auto nodes = make_local_broadcast_nodes(g, instance, /*chunk_bits=*/8);

    const auto result = run_congest_via_broadcast(g, std::move(nodes), 8, 3, 10);
    EXPECT_EQ(result.congest_rounds, 3u);  // 24 bits / 8-bit chunks
    // 1 id round + 3 superrounds * Delta slots.
    EXPECT_EQ(result.broadcast_stats.rounds, 1 + 3 * g.max_degree());
}

TEST(CongestViaBroadcast, DeliveriesCorrect) {
    Rng rng(6);
    const Graph g = make_erdos_renyi(12, 0.3, rng);
    const auto instance = make_local_broadcast_instance(g, 16, rng);
    auto nodes = make_local_broadcast_nodes(g, instance, 16);
    auto nodes_view = std::move(nodes);

    // Keep raw pointers for verification before handing ownership over.
    std::vector<std::unique_ptr<CongestAlgorithm>> owned = std::move(nodes_view);
    std::vector<const LocalBroadcastNode*> raw;
    for (const auto& node : owned) {
        raw.push_back(dynamic_cast<const LocalBroadcastNode*>(node.get()));
    }

    // Run through the adapter on the native BC engine.
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> adapters;
    for (auto& inner : owned) {
        adapters.push_back(std::make_unique<CongestViaBroadcastAdapter>(std::move(inner), 16));
    }
    CongestParams params;
    params.message_bits = CongestViaBroadcastAdapter::required_message_bits(12, 16);
    params.algorithm_seed = 7;
    NativeBroadcastCongestEngine engine(g, params);
    const auto stats = engine.run(adapters, 1 + 2 * g.max_degree());
    EXPECT_TRUE(stats.all_finished);

    for (NodeId v = 0; v < g.node_count(); ++v) {
        ASSERT_NE(raw[v], nullptr);
        EXPECT_EQ(raw[v]->received().size(), g.degree(v));
        for (const auto u : g.neighbors(v)) {
            EXPECT_EQ(raw[v]->received().at(u), instance.messages.at({u, v}));
        }
    }
}

TEST(CongestOverBeeps, SolvesLocalBroadcastOnHardInstance) {
    // Corollary 12 end-to-end on the Lemma 14 topology.
    const Graph g = make_complete_bipartite(3, 3);
    Rng rng(8);
    const std::size_t B = 8;
    const auto instance = make_local_broadcast_instance(g, B, rng);
    auto nodes = make_local_broadcast_nodes(g, instance, B);

    const std::size_t width =
        CongestViaBroadcastAdapter::required_message_bits(g.node_count(), B);
    const auto result = run_congest_over_beeps(g, std::move(nodes), B,
                                               sim_params_for(width, 0.0), 13, 4);
    EXPECT_EQ(result.congest_rounds, 1u);
    EXPECT_EQ(result.broadcast_stats.imperfect_rounds, 0u);
    EXPECT_GT(result.broadcast_stats.beep_rounds, 0u);

    // The result keeps the node objects alive so inner state is inspectable
    // after the run (regression: adapters used to be dropped on return).
    ASSERT_EQ(result.adapters.size(), g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const auto& solver = dynamic_cast<const LocalBroadcastNode&>(result.inner_algorithm(v));
        EXPECT_EQ(solver.received().size(), g.degree(v));
        for (const auto u : g.neighbors(v)) {
            EXPECT_EQ(solver.received().at(u), instance.messages.at({u, v}));
        }
    }
}

TEST(CongestOverBeeps, NoisyHardInstance) {
    const Graph g = make_complete_bipartite(3, 3);
    Rng rng(9);
    const std::size_t B = 8;
    const auto instance = make_local_broadcast_instance(g, B, rng);
    auto nodes = make_local_broadcast_nodes(g, instance, B);
    const std::size_t width =
        CongestViaBroadcastAdapter::required_message_bits(g.node_count(), B);
    const auto result = run_congest_over_beeps(g, std::move(nodes), B,
                                               sim_params_for(width, 0.1, 5), 13, 4);
    EXPECT_EQ(result.congest_rounds, 1u);
}

}  // namespace
}  // namespace nb
