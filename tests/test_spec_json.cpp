// nb-spec/v1 loader tests (scenarios/spec_json.h): a fully-populated spec
// file lands every field in the right struct, and — the "never crashes on
// bad input" satellite — malformed files produce pinned one-line
// diagnostics naming the file, the JSON path of the offending field, and
// the reason (golden-tested for the three canonical failure shapes: typo'd
// key, unknown enum tag, syntax error).
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "scenarios/spec_json.h"

namespace nb {
namespace {

/// Run the parser and capture the diagnostic text (empty = no throw).
std::string diagnostic(const std::string& text) {
    try {
        sweep_spec_from_json(text, "spec.json");
        return "";
    } catch (const precondition_error& e) {
        return e.what();
    }
}

TEST(SpecJson, FullSpecRoundTripsEveryField) {
    const std::string text = R"({
      "schema": "nb-spec/v1",
      "sweep": "custom",
      "max_retries": 2,
      "scenarios": [
        {"name": "ge", "description": "bursty", "transport": "beep", "rounds": 3,
         "topology": {"family": "erdos_renyi", "n": 24, "edge_probability": 0.3, "seed": 5},
         "channel": {"kind": "gilbert_elliott", "p_enter_burst": 0.05,
                     "p_exit_burst": 0.5, "epsilon_good": 0.01, "epsilon_bad": 0.3},
         "workload": {"message_bits": 8, "silent_fraction": 0.25, "seed": 9},
         "faults": [{"first_round": 1, "last_round": 2, "jammers": [0, 3], "crashed": [5]}],
         "decoder_epsilon": 0.2, "c_eps": 5, "dictionary": "all_nodes",
         "decoy_count": 16, "bitslice_min_candidates": 128},
        {"name": "base", "transport": "tdma", "tdma_repetitions": 7,
         "topology": {"family": "grid", "rows": 4, "cols": 6}}
      ],
      "axes": {"seeds": [1, 2], "epsilons": [0.05, 0.1],
               "node_counts": [16, 32],
               "topologies": [{"family": "ring", "n": 12}]}
    })";
    const SweepSpec sweep = sweep_spec_from_json(text, "spec.json");

    EXPECT_EQ(sweep.name, "custom");
    EXPECT_EQ(sweep.max_retries, 2u);
    ASSERT_EQ(sweep.bases.size(), 2u);

    const ScenarioSpec& ge = sweep.bases[0];
    EXPECT_EQ(ge.name, "ge");
    EXPECT_EQ(ge.description, "bursty");
    EXPECT_EQ(ge.transport, TransportKind::beep);
    EXPECT_EQ(ge.rounds, 3u);
    EXPECT_EQ(ge.topology.family, TopologySpec::Family::erdos_renyi);
    EXPECT_EQ(ge.topology.n, 24u);
    EXPECT_EQ(ge.topology.edge_probability, 0.3);
    EXPECT_EQ(ge.topology.seed, 5u);
    EXPECT_EQ(ge.channel.kind, ChannelModelKind::gilbert_elliott);
    EXPECT_EQ(ge.channel.ge_p_enter_burst, 0.05);
    EXPECT_EQ(ge.channel.ge_p_exit_burst, 0.5);
    EXPECT_EQ(ge.channel.ge_epsilon_good, 0.01);
    EXPECT_EQ(ge.channel.ge_epsilon_bad, 0.3);
    EXPECT_EQ(ge.workload.message_bits, 8u);
    EXPECT_EQ(ge.workload.silent_fraction, 0.25);
    EXPECT_EQ(ge.workload.seed, 9u);
    ASSERT_EQ(ge.faults.size(), 1u);
    EXPECT_EQ(ge.faults[0].first_round, 1u);
    EXPECT_EQ(ge.faults[0].last_round, 2u);
    EXPECT_EQ(ge.faults[0].faults.jammers, (std::vector<NodeId>{0, 3}));
    EXPECT_EQ(ge.faults[0].faults.crashed, (std::vector<NodeId>{5}));
    EXPECT_EQ(ge.decoder_epsilon, 0.2);
    EXPECT_EQ(ge.c_eps, 5u);
    EXPECT_EQ(ge.dictionary, DictionaryPolicy::all_nodes);
    EXPECT_EQ(ge.decoy_count, 16u);
    EXPECT_EQ(ge.bitslice_min_candidates, 128u);

    const ScenarioSpec& base = sweep.bases[1];
    EXPECT_EQ(base.transport, TransportKind::tdma);
    EXPECT_EQ(base.tdma_repetitions, 7u);
    EXPECT_EQ(base.topology.family, TopologySpec::Family::grid);
    EXPECT_EQ(base.topology.rows, 4u);
    EXPECT_EQ(base.topology.cols, 6u);

    EXPECT_EQ(sweep.axes.seeds, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(sweep.axes.epsilons, (std::vector<double>{0.05, 0.1}));
    EXPECT_EQ(sweep.axes.node_counts, (std::vector<std::size_t>{16, 32}));
    ASSERT_EQ(sweep.axes.topologies.size(), 1u);
    EXPECT_EQ(sweep.axes.topologies[0].family, TopologySpec::Family::ring);
}

TEST(SpecJson, DefaultsApplyWhenFieldsAreAbsent) {
    const SweepSpec sweep = sweep_spec_from_json(
        R"({"schema": "nb-spec/v1", "scenarios": [{"name": "minimal"}]})", "spec.json");
    EXPECT_EQ(sweep.name, "spec-file");
    EXPECT_EQ(sweep.max_retries, 0u);
    ASSERT_EQ(sweep.bases.size(), 1u);
    const ScenarioSpec defaults;  // the struct defaults the file inherits
    EXPECT_EQ(sweep.bases[0].rounds, defaults.rounds);
    EXPECT_EQ(sweep.bases[0].topology.family, defaults.topology.family);
    EXPECT_EQ(sweep.bases[0].c_eps, defaults.c_eps);
}

// The three golden malformed files: every diagnostic is one line naming
// file, field path, and reason — pinned verbatim so CLI output (nb_run
// prints "error: " + this and exits 2) stays stable for humans and scripts.
TEST(SpecJson, GoldenDiagnosticTypodKey) {
    EXPECT_EQ(
        diagnostic(
            R"({"schema": "nb-spec/v1", "scenarios": [{"name": "x", "topolgy": {}}]})"),
        "spec.json: scenarios[0].topolgy: unknown field");
}

TEST(SpecJson, GoldenDiagnosticUnknownEnumTag) {
    EXPECT_EQ(
        diagnostic(
            R"({"schema": "nb-spec/v1", "scenarios": [{"name": "x", "channel": {"kind": "trinary"}}]})"),
        "spec.json: scenarios[0].channel.kind: unknown channel kind 'trinary' "
        "(expected iid, gilbert_elliott, heterogeneous, or adversarial_budget)");
}

TEST(SpecJson, GoldenDiagnosticSyntaxError) {
    EXPECT_EQ(diagnostic(R"({"schema": "nb-spec/v1", "scenarios": [{name: "x"}]})"),
              "spec.json: JSON parse error at 1:41: expected a quoted object key");
}

TEST(SpecJson, StructuralErrorsNameTheField) {
    // Wrong types and missing requireds all locate themselves.
    EXPECT_NE(diagnostic(R"([1, 2])").find("document: expected an object"),
              std::string::npos);
    EXPECT_NE(diagnostic(R"({"scenarios": []})").find("missing required field 'schema'"),
              std::string::npos);
    EXPECT_NE(diagnostic(R"({"schema": "nb-spec/v2", "scenarios": []})")
                  .find("unknown schema 'nb-spec/v2'"),
              std::string::npos);
    EXPECT_NE(diagnostic(R"({"schema": "nb-spec/v1"})")
                  .find("missing required field 'scenarios'"),
              std::string::npos);
    EXPECT_NE(diagnostic(R"({"schema": "nb-spec/v1", "scenarios": []})")
                  .find("at least one scenario"),
              std::string::npos);
    EXPECT_NE(diagnostic(R"({"schema": "nb-spec/v1", "scenarios": [{}]})")
                  .find("missing required field 'name'"),
              std::string::npos);
    EXPECT_NE(
        diagnostic(
            R"({"schema": "nb-spec/v1", "scenarios": [{"name": "x", "rounds": "four"}]})")
            .find("scenarios[0].rounds"),
        std::string::npos);
    EXPECT_NE(
        diagnostic(
            R"({"schema": "nb-spec/v1", "scenarios": [{"name": "x", "rounds": -2}]})")
            .find("scenarios[0].rounds"),
        std::string::npos);
    EXPECT_NE(
        diagnostic(
            R"({"schema": "nb-spec/v1", "scenarios": [{"name": "x"}], "axes": {"seeds": [1, "two"]}})")
            .find("axes.seeds[1]"),
        std::string::npos);
}

TEST(SpecJson, MissingFileNamesThePath) {
    try {
        load_sweep_spec("/nonexistent/spec.json");
        FAIL() << "expected precondition_error";
    } catch (const precondition_error& e) {
        EXPECT_NE(std::string(e.what()).find("/nonexistent/spec.json"), std::string::npos);
    }
}

}  // namespace
}  // namespace nb
