// Property tests for the process-wide CodebookCache (sim/codebook_cache.h):
// a cache hit must be bit-identical to a fresh private build for every
// shipped registry spec and for thread counts 1/2/8, and the counters must
// pin exactly-once construction across a multi-seed sweep.
//
// Tests clear() the cache up front so the counter assertions hold whether
// the binary runs one test per process (ctest) or all in one (bare
// nb_tests).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "graph/algorithms.h"
#include "scenarios/registry.h"
#include "scenarios/sweep.h"
#include "sim/codebook_cache.h"
#include "sim/transport.h"

namespace nb {
namespace {

TEST(CodebookCacheProperty, HitIsBitIdenticalToFreshBuildForEveryShippedSpec) {
    CodebookCache::instance().clear();
    for (const auto& spec : scenarios::shipped_scenarios()) {
        SCOPED_TRACE(spec.name);
        const Graph graph = spec.topology.build();

        if (spec.transport == TransportKind::tdma) {
            // The baseline's cached artifact is the G^2 coloring.
            const TdmaTransport cached(graph, spec.tdma_params(graph.node_count()));
            EXPECT_EQ(cached.colors(), greedy_distance2_coloring(graph));
            continue;
        }

        // A fresh private build (cache bypassed) is the reference.
        SimulationParams private_params = spec.sim_params();
        private_params.shared_codebook = false;
        const BeepTransport reference(graph, private_params);
        const std::uint64_t expected = reference.codebook().fingerprint();

        // Cache-enabled transports at thread counts 1/2/8 must all decode
        // through a codebook with the reference fingerprint — and through
        // ONE shared object, since threads are not part of the cache key.
        const Codebook* shared = nullptr;
        for (const std::size_t threads : {1u, 2u, 8u}) {
            SimulationParams params = spec.sim_params();
            params.threads = threads;
            const BeepTransport transport(graph, params);
            EXPECT_EQ(transport.codebook().fingerprint(), expected);
            if (shared == nullptr) {
                shared = &transport.codebook();
            } else {
                EXPECT_EQ(shared, &transport.codebook());
            }
        }
    }
}

TEST(CodebookCacheProperty, ThreeSeedSweepBuildsEachCodebookExactlyOnce) {
    CodebookCache::instance().clear();

    SweepSpec sweep;
    sweep.name = "one-spec-three-seeds";
    sweep.bases = {*scenarios::find_scenario("e11-eps0.10-c4")};
    sweep.axes.seeds = {1, 2, 3};
    const SweepResult result = run_sweep(sweep);

    ASSERT_EQ(result.jobs, 3u);
    // All three jobs share one topology and one set of code parameters
    // (only the workload seed differs), so the sweep builds the codebook
    // exactly once and the other two jobs hit.
    EXPECT_EQ(result.cache.builds, 1u);
    EXPECT_EQ(result.cache.hits, 2u);
}

TEST(CodebookCacheProperty, DistinctParametersGetDistinctCodebooks) {
    CodebookCache::instance().clear();
    const Graph graph = scenarios::find_scenario("e11-eps0.10-c4")->topology.build();

    SimulationParams a;
    a.message_bits = 6;
    a.c_eps = 4;
    SimulationParams b = a;
    b.c_eps = 6;  // different code geometry -> different key
    SimulationParams c = a;
    c.epsilon = 0.3;  // NOT part of the key -> shares with a

    const BeepTransport ta(graph, a);
    const BeepTransport tb(graph, b);
    const BeepTransport tc(graph, c);
    EXPECT_NE(&ta.codebook(), &tb.codebook());
    EXPECT_NE(ta.codebook().fingerprint(), tb.codebook().fingerprint());
    EXPECT_EQ(&ta.codebook(), &tc.codebook());

    const auto stats = CodebookCache::instance().stats();
    EXPECT_EQ(stats.builds, 2u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST(CodebookCacheProperty, EqualStructureDifferentGraphObjectsShareOneBuild) {
    CodebookCache::instance().clear();
    const TopologySpec topology = scenarios::find_scenario("ge-burst")->topology;
    const Graph g1 = topology.build();
    const Graph g2 = topology.build();  // distinct object, equal adjacency

    SimulationParams params;
    params.message_bits = 6;
    params.c_eps = 4;
    const BeepTransport t1(g1, params);
    const BeepTransport t2(g2, params);
    EXPECT_EQ(&t1.codebook(), &t2.codebook());
    EXPECT_EQ(CodebookCache::instance().stats().builds, 1u);

    // The cached codebook owns its own graph copy: it must reference
    // neither caller's graph.
    EXPECT_NE(&t1.codebook().graph(), &g1);
    EXPECT_NE(&t1.codebook().graph(), &g2);
}

TEST(CodebookCacheProperty, ClearResetsCountersAndDropsEntries) {
    CodebookCache& cache = CodebookCache::instance();
    cache.clear();
    const Graph graph = scenarios::find_scenario("ge-burst")->topology.build();
    SimulationParams params;
    params.message_bits = 6;
    const BeepTransport transport(graph, params);
    EXPECT_EQ(cache.stats().builds, 1u);

    cache.clear();
    auto stats = cache.stats();
    EXPECT_EQ(stats.builds, 0u);
    EXPECT_EQ(stats.hits, 0u);

    // The evicted-but-held codebook stays alive through the transport's
    // shared_ptr; a new transport rebuilds rather than hitting.
    const BeepTransport rebuilt(graph, params);
    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_NE(&rebuilt.codebook(), &transport.codebook());
    EXPECT_EQ(rebuilt.codebook().fingerprint(), transport.codebook().fingerprint());
}

TEST(CodebookCacheProperty, StatsSnapshotIsConsistentAndExposesHitRate) {
    CodebookCache& cache = CodebookCache::instance();
    cache.clear();
    EXPECT_EQ(cache.stats().hit_rate(), 0.0);  // no lookups: defined as 0

    const Graph graph = scenarios::find_scenario("ge-burst")->topology.build();
    SimulationParams a;
    a.message_bits = 6;
    SimulationParams b = a;
    b.c_eps = 6;
    const BeepTransport build_a(graph, a);
    const BeepTransport build_b(graph, b);
    const BeepTransport hit_a(graph, a);

    const auto stats = cache.stats();
    EXPECT_EQ(stats.builds, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0 / 3.0);

    // stats() takes every shard lock plus the coloring lock simultaneously —
    // a consistent snapshot by construction. Hammer it from one thread while
    // others acquire concurrently: every snapshot must be internally sane
    // (lookups never run backwards between snapshots, rate stays in [0, 1]),
    // and the nested locking must not deadlock against in-flight builds.
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        std::uint64_t last_lookups = 0;
        while (!stop.load()) {
            const auto snapshot = cache.stats();
            const std::uint64_t lookups = snapshot.hits + snapshot.builds;
            EXPECT_GE(lookups, last_lookups);
            EXPECT_GE(snapshot.hit_rate(), 0.0);
            EXPECT_LE(snapshot.hit_rate(), 1.0);
            last_lookups = lookups;
        }
    });
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&, w] {
            SimulationParams params;
            params.message_bits = 6;
            params.c_eps = 4 + static_cast<std::size_t>(w % 2) * 2;
            for (int i = 0; i < 50; ++i) {
                const BeepTransport transport(graph, params);
            }
        });
    }
    for (auto& worker : workers) {
        worker.join();
    }
    stop.store(true);
    reader.join();
}

TEST(CodebookCacheProperty, ColoringCacheServesTdmaTransports) {
    CodebookCache::instance().clear();
    const Graph graph = scenarios::find_scenario("e5-delta8-tdma")->topology.build();
    TdmaParams params;
    params.message_bits = 8;

    const TdmaTransport first(graph, params);
    const TdmaTransport second(graph, params);
    EXPECT_EQ(first.colors(), second.colors());

    TdmaParams private_params = params;
    private_params.shared_coloring = false;
    const TdmaTransport reference(graph, private_params);
    EXPECT_EQ(first.colors(), reference.colors());

    const auto stats = CodebookCache::instance().stats();
    EXPECT_EQ(stats.coloring_builds, 1u);
    EXPECT_EQ(stats.coloring_hits, 1u);
}

}  // namespace
}  // namespace nb
