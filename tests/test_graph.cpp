// Unit tests for the graph substrate: representation, generators, coloring.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace nb {
namespace {

TEST(Graph, EmptyGraph) {
    Graph g(5);
    EXPECT_EQ(g.node_count(), 5u);
    EXPECT_EQ(g.edge_count(), 0u);
    EXPECT_EQ(g.max_degree(), 0u);
    EXPECT_EQ(g.non_isolated_count(), 0u);
}

TEST(Graph, FromEdgesBasics) {
    const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    EXPECT_EQ(g.node_count(), 4u);
    EXPECT_EQ(g.edge_count(), 4u);
    EXPECT_EQ(g.max_degree(), 2u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, NeighborsSorted) {
    const Graph g = Graph::from_edges(5, {{3, 1}, {3, 0}, {3, 4}, {3, 2}});
    const auto adjacency = g.neighbors(3);
    ASSERT_EQ(adjacency.size(), 4u);
    EXPECT_EQ(adjacency[0], 0u);
    EXPECT_EQ(adjacency[3], 4u);
}

TEST(Graph, RejectsSelfLoop) {
    EXPECT_THROW(Graph::from_edges(3, {{1, 1}}), precondition_error);
}

TEST(Graph, RejectsDuplicateEdges) {
    EXPECT_THROW(Graph::from_edges(3, {{0, 1}, {1, 0}}), precondition_error);
}

TEST(Graph, RejectsOutOfRange) {
    EXPECT_THROW(Graph::from_edges(3, {{0, 3}}), precondition_error);
}

TEST(Graph, EdgesCanonical) {
    const Graph g = Graph::from_edges(3, {{2, 0}, {1, 0}});
    const auto edges = g.edges();
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0], (Edge{0, 1}));
    EXPECT_EQ(edges[1], (Edge{0, 2}));
}

TEST(Generators, Complete) {
    const Graph g = make_complete(6);
    EXPECT_EQ(g.edge_count(), 15u);
    EXPECT_EQ(g.max_degree(), 5u);
}

TEST(Generators, CompleteBipartite) {
    const Graph g = make_complete_bipartite(3, 4);
    EXPECT_EQ(g.node_count(), 7u);
    EXPECT_EQ(g.edge_count(), 12u);
    EXPECT_EQ(g.max_degree(), 4u);
    EXPECT_TRUE(g.has_edge(0, 3));
    EXPECT_FALSE(g.has_edge(0, 1));  // same side
}

TEST(Generators, HardInstanceShape) {
    // Lemma 14's instance: K_{delta,delta} plus isolated vertices.
    const Graph g = make_hard_instance(20, 4);
    EXPECT_EQ(g.node_count(), 20u);
    EXPECT_EQ(g.edge_count(), 16u);
    EXPECT_EQ(g.max_degree(), 4u);
    EXPECT_EQ(g.non_isolated_count(), 8u);
    EXPECT_THROW(make_hard_instance(7, 4), precondition_error);
}

TEST(Generators, RingAndPath) {
    const Graph ring = make_ring(5);
    EXPECT_EQ(ring.edge_count(), 5u);
    EXPECT_EQ(ring.max_degree(), 2u);
    const Graph path = make_path(5);
    EXPECT_EQ(path.edge_count(), 4u);
    EXPECT_EQ(path.degree(0), 1u);
    EXPECT_EQ(path.degree(2), 2u);
}

TEST(Generators, Star) {
    const Graph g = make_star(7);
    EXPECT_EQ(g.degree(0), 6u);
    EXPECT_EQ(g.max_degree(), 6u);
    for (NodeId v = 1; v < 7; ++v) {
        EXPECT_EQ(g.degree(v), 1u);
    }
}

TEST(Generators, Grid) {
    const Graph g = make_grid(3, 4);
    EXPECT_EQ(g.node_count(), 12u);
    // 3*3 horizontal + 2*4 vertical = 17 edges.
    EXPECT_EQ(g.edge_count(), 17u);
    EXPECT_EQ(g.max_degree(), 4u);
}

TEST(Generators, Tree) {
    const Graph g = make_tree(7, 2);
    EXPECT_EQ(g.edge_count(), 6u);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(connected_component_count(g), 1u);
}

TEST(Generators, ErdosRenyiDensityRoughlyP) {
    Rng rng(5);
    const std::size_t n = 200;
    const double p = 0.05;
    const Graph g = make_erdos_renyi(n, p, rng);
    const double expected = p * static_cast<double>(n * (n - 1) / 2);
    EXPECT_NEAR(static_cast<double>(g.edge_count()), expected, expected * 0.25);
}

TEST(Generators, ErdosRenyiExtremes) {
    Rng rng(5);
    EXPECT_EQ(make_erdos_renyi(10, 0.0, rng).edge_count(), 0u);
    EXPECT_EQ(make_erdos_renyi(10, 1.0, rng).edge_count(), 45u);
}

TEST(Generators, RandomRegularDegreeCap) {
    Rng rng(8);
    const Graph g = make_random_regular(50, 4, rng);
    EXPECT_EQ(g.node_count(), 50u);
    EXPECT_LE(g.max_degree(), 4u);
    // The pairing model drops few edges: expect close to regular.
    EXPECT_GE(g.edge_count(), 90u);
    EXPECT_THROW(make_random_regular(5, 3, rng), precondition_error);  // odd n*d
}

TEST(Generators, RandomGeometricMonotoneInRadius) {
    Rng rng1(9);
    Rng rng2(9);
    const Graph sparse = make_random_geometric(100, 0.05, rng1);
    const Graph dense = make_random_geometric(100, 0.3, rng2);
    EXPECT_LT(sparse.edge_count(), dense.edge_count());
}

TEST(Algorithms, BfsDistancesOnPath) {
    const Graph g = make_path(5);
    const auto dist = bfs_distances(g, 0);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(dist[i], i);
    }
}

TEST(Algorithms, BfsUnreachable) {
    Graph g = Graph::from_edges(4, {{0, 1}});
    const auto dist = bfs_distances(g, 0);
    EXPECT_EQ(dist[1], 1u);
    EXPECT_EQ(dist[2], unreachable);
    EXPECT_EQ(dist[3], unreachable);
}

TEST(Algorithms, DiameterOfRing) {
    EXPECT_EQ(diameter(make_ring(8)), 4u);
    EXPECT_EQ(diameter(make_ring(9)), 4u);
    EXPECT_EQ(diameter(make_path(6)), 5u);
    EXPECT_EQ(diameter(make_complete(5)), 1u);
}

TEST(Algorithms, Components) {
    const Graph g = Graph::from_edges(6, {{0, 1}, {2, 3}});
    EXPECT_EQ(connected_component_count(g), 4u);
    EXPECT_FALSE(is_connected(g));
    EXPECT_TRUE(is_connected(make_ring(4)));
}

TEST(Coloring, GreedyProper) {
    Rng rng(5);
    const Graph g = make_erdos_renyi(80, 0.1, rng);
    const auto colors = greedy_coloring(g);
    EXPECT_TRUE(is_proper_coloring(g, colors));
    EXPECT_LE(color_count(colors), g.max_degree() + 1);
}

TEST(Coloring, GreedyDistance2Proper) {
    Rng rng(6);
    const Graph g = make_erdos_renyi(80, 0.07, rng);
    const auto colors = greedy_distance2_coloring(g);
    EXPECT_TRUE(is_distance2_coloring(g, colors));
    EXPECT_LE(color_count(colors), g.max_degree() * g.max_degree() + 1);
}

TEST(Coloring, Distance2ValidatorCatchesViolations) {
    // On a star, all leaves are within distance 2 of each other.
    const Graph g = make_star(5);
    std::vector<std::size_t> bad(5, 0);
    bad[0] = 1;  // leaves all share color 0 -> invalid
    EXPECT_FALSE(is_distance2_coloring(g, bad));
    std::vector<std::size_t> good{4, 0, 1, 2, 3};
    EXPECT_TRUE(is_distance2_coloring(g, good));
}

TEST(Coloring, ProperValidatorCatchesViolations) {
    const Graph g = make_path(3);
    EXPECT_FALSE(is_proper_coloring(g, {0, 0, 1}));
    EXPECT_TRUE(is_proper_coloring(g, {0, 1, 0}));
}

TEST(Coloring, Distance2ColorCountOnBipartite) {
    // On K_{d,d} all nodes are within distance 2: need exactly 2d colors.
    const Graph g = make_complete_bipartite(5, 5);
    const auto colors = greedy_distance2_coloring(g);
    EXPECT_TRUE(is_distance2_coloring(g, colors));
    EXPECT_EQ(color_count(colors), 10u);
}

}  // namespace
}  // namespace nb
