// Edge-case and boundary tests across the stack: degenerate graphs
// (edgeless, single node, two nodes), boundary message widths, code corner
// parameters, and adapter limits.
#include <gtest/gtest.h>

#include <optional>

#include "apps/matching.h"
#include "apps/mis.h"
#include "codes/distance_code.h"
#include "codes/kautz_singleton.h"
#include "common/error.h"
#include "congest/native_engine.h"
#include "graph/generators.h"
#include "lowerbound/local_broadcast.h"
#include "sim/broadcast_congest_sim.h"
#include "sim/congest_adapter.h"
#include "sim/transport.h"

namespace nb {
namespace {

SimulationParams tiny_params(std::size_t message_bits) {
    SimulationParams params;
    params.message_bits = message_bits;
    params.c_eps = 3;
    return params;
}

TEST(EdgeCases, TransportOnEdgelessGraph) {
    // Delta = 0: b = 2*c^3*(0+1)*(B+1) rounds, nobody hears anything.
    const Graph g(5);
    const BeepTransport transport(g, tiny_params(4));
    std::vector<std::optional<Bitstring>> messages(5, Bitstring::from_string("1010"));
    const auto round = transport.simulate_round(messages, 0);
    EXPECT_TRUE(round.perfect);
    for (const auto& delivered : round.delivered) {
        EXPECT_TRUE(delivered.empty());
    }
}

TEST(EdgeCases, TransportOnSingleNode) {
    const Graph g(1);
    const BeepTransport transport(g, tiny_params(4));
    std::vector<std::optional<Bitstring>> messages(1, Bitstring::from_string("1111"));
    const auto round = transport.simulate_round(messages, 0);
    EXPECT_TRUE(round.perfect);
    EXPECT_TRUE(round.delivered[0].empty());
}

TEST(EdgeCases, TransportOnSingleEdge) {
    const Graph g = make_path(2);
    const BeepTransport transport(g, tiny_params(6));
    std::vector<std::optional<Bitstring>> messages(2);
    messages[0] = Bitstring::from_string("101010");
    messages[1] = Bitstring::from_string("010101");
    const auto round = transport.simulate_round(messages, 0);
    EXPECT_TRUE(round.perfect);
    ASSERT_EQ(round.delivered[0].size(), 1u);
    ASSERT_EQ(round.delivered[1].size(), 1u);
    EXPECT_EQ(round.delivered[0][0], *messages[1]);
    EXPECT_EQ(round.delivered[1][0], *messages[0]);
}

TEST(EdgeCases, TransportOneBitMessages) {
    const Graph g = make_ring(6);
    const BeepTransport transport(g, tiny_params(1));
    std::vector<std::optional<Bitstring>> messages(6);
    for (NodeId v = 0; v < 6; ++v) {
        Bitstring m(1);
        if (v % 2 == 0) {
            m.set(0);
        }
        messages[v] = m;
    }
    const auto round = transport.simulate_round(messages, 0);
    EXPECT_TRUE(round.perfect);
}

TEST(EdgeCases, TransportMessageExactlyAtBudget) {
    const Graph g = make_path(3);
    const BeepTransport transport(g, tiny_params(8));
    std::vector<std::optional<Bitstring>> messages(3);
    messages[1] = Bitstring::from_string("11111111");  // exactly 8 bits
    EXPECT_NO_THROW(transport.simulate_round(messages, 0));
}

TEST(EdgeCases, MatchingOnEdgelessGraphFinishesImmediately) {
    const Graph g(7);
    auto nodes = make_matching_nodes(g);
    CongestParams params;
    params.message_bits = MatchingAlgorithm::required_message_bits(7);
    NativeBroadcastCongestEngine engine(g, params);
    const auto stats = engine.run(nodes, matching_rounds_for_iterations(5));
    EXPECT_TRUE(stats.all_finished);
    for (const auto& output : collect_matching_outputs(nodes)) {
        EXPECT_FALSE(output.partner.has_value());
    }
}

TEST(EdgeCases, MisOnTwoNodes) {
    const Graph g = make_path(2);
    auto nodes = make_mis_nodes(g);
    CongestParams params;
    params.message_bits = MisAlgorithm::required_message_bits(2);
    NativeBroadcastCongestEngine engine(g, params);
    engine.run(nodes, 50);
    const auto verdict = verify_mis(g, collect_mis_outputs(nodes));
    EXPECT_TRUE(verdict.valid());
    EXPECT_EQ(verdict.size, 1u);
}

TEST(EdgeCases, DistanceCodeTieReporting) {
    // Two identical candidates force a tie: unique must be false and the
    // canonical smaller message wins deterministically.
    const DistanceCode code(4, 64, 1);
    const Bitstring a = Bitstring::from_string("0101");
    std::vector<Bitstring> candidates{a, a};
    const auto decoded = code.decode(code.encode(a), candidates);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_FALSE(decoded->unique);
    EXPECT_EQ(decoded->message, a);
}

TEST(EdgeCases, DistanceCodeSingleCandidate) {
    const DistanceCode code(4, 64, 2);
    const Bitstring a = Bitstring::from_string("1100");
    std::vector<Bitstring> candidates{a};
    const auto decoded = code.decode(Bitstring(64), candidates);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->message, a);
    EXPECT_GT(decoded->runner_up, code.length());  // sentinel: no runner-up
}

TEST(EdgeCases, KautzSingletonKOne) {
    // k=1: any prime q with q^t >= 2^a works; decoding a single codeword.
    const KautzSingletonCode code(8, 1);
    Bitstring heard = code.codeword(200);
    const std::vector<std::uint64_t> dictionary{199, 200, 201};
    EXPECT_EQ(code.decode(heard, dictionary), (std::vector<std::uint64_t>{200}));
}

TEST(EdgeCases, AdapterOnEdgelessGraph) {
    // No neighbors: one id round, superrounds have a single empty slot.
    const Graph g(4);
    const LocalBroadcastInstance instance{4, {}};
    auto nodes = make_local_broadcast_nodes(g, instance, 4);
    const auto result = run_congest_via_broadcast(g, std::move(nodes), 4, 1, 3);
    EXPECT_EQ(result.congest_rounds, 1u);
    for (NodeId v = 0; v < 4; ++v) {
        const auto& solver = dynamic_cast<const LocalBroadcastNode&>(result.inner_algorithm(v));
        EXPECT_TRUE(solver.received().empty());
    }
}

TEST(EdgeCases, SimEngineWithAllSilentAlgorithms) {
    // An algorithm that finishes instantly: the simulated engine must stop
    // without burning beep rounds.
    class Instant final : public BroadcastCongestAlgorithm {
    public:
        void initialize(NodeId, const CongestInfo&, Rng&) override {}
        std::optional<Bitstring> broadcast(std::size_t, Rng&) override { return std::nullopt; }
        void receive(std::size_t, const std::vector<Bitstring>&, Rng&) override { done_ = true; }
        bool finished() const override { return done_; }

    private:
        bool done_ = false;
    };
    const Graph g = make_ring(4);
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> nodes;
    for (int i = 0; i < 4; ++i) {
        nodes.push_back(std::make_unique<Instant>());
    }
    BroadcastCongestOverBeeps engine(g, tiny_params(4), CongestParams{4, 1});
    const auto stats = engine.run(nodes, 10);
    EXPECT_TRUE(stats.all_finished);
    EXPECT_EQ(stats.congest_rounds, 1u);
}

TEST(EdgeCases, HardInstanceMinimalDelta) {
    const Graph g = make_hard_instance(2, 1);  // K_{1,1}, no isolated nodes
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_EQ(g.max_degree(), 1u);
    const BeepTransport transport(g, tiny_params(4));
    std::vector<std::optional<Bitstring>> messages(2, Bitstring::from_string("1001"));
    EXPECT_TRUE(transport.simulate_round(messages, 0).perfect);
}

}  // namespace
}  // namespace nb
