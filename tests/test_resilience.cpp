// Resilient-sweep property tests (scenarios/sweep.h + scenarios/journal.h):
// fault-injected sweeps with retry budgets serialize byte-identically to
// clean runs at 1 and 8 workers, the watchdog classifies timeouts, the
// journal checkpoint replays across a simulated crash (including a torn
// trailing line), and fingerprint mismatches invalidate exactly the records
// they should (see DESIGN.md section 9).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/failpoint.h"
#include "scenarios/journal.h"
#include "scenarios/sweep.h"
#include "sim/codebook_cache.h"

namespace nb {
namespace {

using failpoint::Config;
using failpoint::Mode;

class ResilienceTest : public ::testing::Test {
protected:
    void TearDown() override { failpoint::clear_all(); }

    /// A per-test scratch path (gtest's temp dir persists across tests, so
    /// names carry the test name).
    std::string scratch(const std::string& leaf) {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        return ::testing::TempDir() + info->name() + "." + leaf;
    }
};

ScenarioSpec tiny_base(const std::string& name) {
    ScenarioSpec spec;
    spec.name = name;
    spec.topology.family = TopologySpec::Family::random_regular;
    spec.topology.n = 16;
    spec.topology.degree = 4;
    spec.topology.seed = 7;
    spec.channel = ChannelModel::iid(0.1);
    spec.workload.message_bits = 4;
    spec.workload.seed = 3;
    spec.rounds = 2;
    return spec;
}

SweepSpec tiny_sweep(std::size_t max_retries = 0) {
    SweepSpec sweep;
    sweep.name = "resilience";
    sweep.bases = {tiny_base("a"), tiny_base("b")};
    sweep.axes.seeds = {1, 2, 3};
    sweep.max_retries = max_retries;
    return sweep;
}

std::string sweep_json(const SweepResult& result) {
    std::ostringstream out;
    JsonWriter json(out);
    sweep_results_json(json, result);
    return out.str();
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// The headline property: a sweep whose jobs fail transiently (injected
// faults with a bounded budget) but eventually succeed under retries is
// byte-identical to a clean run — at 1 worker and at 8. The budget (2) is
// below the per-job retry budget (3), so success is guaranteed no matter
// which jobs absorb the fires under either scheduling.
TEST_F(ResilienceTest, FaultInjectedSweepWithRetriesIsByteIdenticalToClean) {
    const SweepSpec clean_spec = tiny_sweep();
    SweepOptions options;
    options.workers = 1;
    CodebookCache::instance().clear();
    const std::string clean = sweep_json(run_sweep(clean_spec, options));

    for (const std::size_t workers : {1u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        Config config;
        config.mode = Mode::inject_throw;
        config.max_hits = 2;
        failpoint::configure("sweep.job", config);

        SweepOptions faulted;
        faulted.workers = workers;
        CodebookCache::instance().clear();
        const SweepResult result = run_sweep(tiny_sweep(/*max_retries=*/3), faulted);
        failpoint::clear_all();

        EXPECT_EQ(result.failed_jobs, 0u);
        std::size_t total_attempts = 0;
        for (const auto& record : result.job_records) {
            total_attempts += record.attempts;
        }
        // Exactly the budgeted fires were absorbed as extra attempts.
        EXPECT_EQ(total_attempts, result.jobs + 2);
        EXPECT_EQ(sweep_json(result), clean);
    }
}

TEST_F(ResilienceTest, RetryBudgetExhaustionReportsTransientFailure) {
    // Unlimited fires, one retry: every job must permanently fail, the sweep
    // must still complete, and the artifact must carry error entries.
    Config config;
    config.mode = Mode::inject_throw;
    failpoint::configure("sweep.job", config);

    SweepOptions options;
    options.workers = 2;
    const SweepResult result = run_sweep(tiny_sweep(/*max_retries=*/1), options);
    failpoint::clear_all();

    EXPECT_EQ(result.failed_jobs, result.jobs);
    for (const auto& record : result.job_records) {
        ASSERT_TRUE(record.error.has_value());
        EXPECT_EQ(record.error->kind, "transient");
        EXPECT_EQ(record.error->site, "sweep.job");
        EXPECT_EQ(record.attempts, 2u);
    }
    const std::string json = sweep_json(result);
    EXPECT_NE(json.find("\"error\""), std::string::npos);
    EXPECT_NE(json.find("\"transient\""), std::string::npos);
}

TEST_F(ResilienceTest, WatchdogDeadlineClassifiesAsTimeout) {
    SweepOptions options;
    options.workers = 2;
    options.job_timeout_seconds = 1e-9;  // expires before the first round poll
    const SweepResult result = run_sweep(tiny_sweep(), options);

    EXPECT_EQ(result.failed_jobs, result.jobs);
    for (const auto& record : result.job_records) {
        ASSERT_TRUE(record.error.has_value());
        EXPECT_EQ(record.error->kind, "timeout");
    }
}

TEST_F(ResilienceTest, JournalCheckpointThenResumeIsByteIdentical) {
    const std::string journal_path = scratch("journal.jsonl");
    const SweepSpec sweep = tiny_sweep();

    SweepOptions options;
    options.workers = 1;
    options.journal_path = journal_path;
    CodebookCache::instance().clear();
    const SweepResult full = run_sweep(sweep, options);
    const std::string clean = sweep_json(full);

    // Simulate a crash after 3 completed jobs plus a torn half-record (what
    // SIGKILL mid-append leaves): keep the header + 3 records, append junk.
    const JournalContents contents = read_journal(journal_path);
    ASSERT_TRUE(contents.header_ok);
    ASSERT_EQ(contents.records.size(), full.jobs);
    {
        const std::string text = read_file(journal_path);
        std::size_t pos = 0;
        for (int lines = 0; lines < 4; ++lines) {  // header + 3 records
            pos = text.find('\n', pos) + 1;
        }
        std::ofstream out(journal_path, std::ios::binary | std::ios::trunc);
        out << text.substr(0, pos) << "{\"job\": 3, \"finge";  // torn tail
    }

    SweepOptions resume_options = options;
    resume_options.resume = true;
    CodebookCache::instance().clear();
    const SweepResult resumed = run_sweep(sweep, resume_options);

    EXPECT_EQ(resumed.resumed_jobs, 3u);
    EXPECT_EQ(resumed.failed_jobs, 0u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(resumed.job_records[i].resumed);
    }
    EXPECT_EQ(sweep_json(resumed), clean);

    // The resumed run appended the re-run jobs: the journal is whole again
    // (and replayable in full — the torn line was overwritten by appends or
    // tolerated by the reader).
    const JournalContents after = read_journal(journal_path);
    EXPECT_TRUE(after.header_ok);
    std::vector<bool> seen(full.jobs, false);
    for (const auto& record : after.records) {
        ASSERT_LT(record.job, seen.size());
        seen[record.job] = true;
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_TRUE(seen[i]) << "job " << i << " missing from the healed journal";
    }
}

TEST_F(ResilienceTest, SpecEditInvalidatesTheJournalWholesale) {
    const std::string journal_path = scratch("journal.jsonl");
    SweepOptions options;
    options.workers = 2;
    options.journal_path = journal_path;
    run_sweep(tiny_sweep(), options);

    // Any result-affecting edit (rounds here) changes every job fingerprint
    // and therefore the sweep fingerprint: resume must ignore the journal
    // and recompute everything rather than replay stale numbers.
    SweepSpec edited = tiny_sweep();
    edited.bases[0].rounds = 3;
    edited.bases[1].rounds = 3;
    SweepOptions resume_options = options;
    resume_options.resume = true;
    const SweepResult result = run_sweep(edited, resume_options);
    EXPECT_EQ(result.resumed_jobs, 0u);
    EXPECT_EQ(result.failed_jobs, 0u);

    // And the journal was rewritten for the edited sweep.
    const JournalContents contents = read_journal(journal_path);
    ASSERT_TRUE(contents.header_ok);
    EXPECT_EQ(contents.fingerprint, result.fingerprint);
    EXPECT_EQ(contents.records.size(), result.jobs);
}

TEST_F(ResilienceTest, ThreadsAreExcludedFromTheFingerprint) {
    // threads_per_job is an execution knob: a resumed sweep may change it
    // (or --workers) and still replay its journal.
    const std::string journal_path = scratch("journal.jsonl");
    SweepOptions options;
    options.workers = 2;
    options.threads_per_job = 1;
    options.journal_path = journal_path;
    const SweepResult first = run_sweep(tiny_sweep(), options);

    SweepOptions resumed_options = options;
    resumed_options.workers = 1;
    resumed_options.threads_per_job = 2;
    resumed_options.resume = true;
    const SweepResult resumed = run_sweep(tiny_sweep(), resumed_options);
    EXPECT_EQ(resumed.fingerprint, first.fingerprint);
    EXPECT_EQ(resumed.resumed_jobs, first.jobs);
}

TEST_F(ResilienceTest, JournalReaderToleratesCorruptInteriorAndBadHeader) {
    const std::string path = scratch("tolerant.jsonl");
    {
        std::ofstream out(path, std::ios::binary);
        out << R"({"schema": "nb-sweep-journal/v1","sweep": "t","fingerprint": 1,"jobs": 2})"
            << "\n"
            << "this line is not JSON\n"
            << R"({"job": 1,"fingerprint": 5,"attempts": 2,"result": )"
            << R"({"name": "x","description": "","topology": "t","channel": "c",)"
            << R"("transport": "beep","n": 4,"delta": 2,"rounds": 1,"perfect_rounds": 1,)"
            << R"("perfect_fraction": 1,"beep_rounds_per_round": 8,"total_beeps": 9,)"
            << R"("phase1_false_negatives": 0,"phase1_false_positives": 0,)"
            << R"("phase2_errors": 0,"delivery_mismatches": 0}})"
            << "\n";
    }
    const JournalContents contents = read_journal(path);
    EXPECT_TRUE(contents.header_ok);
    EXPECT_EQ(contents.fingerprint, 1u);
    ASSERT_EQ(contents.records.size(), 1u);  // corrupt interior line skipped
    EXPECT_EQ(contents.records[0].job, 1u);
    EXPECT_EQ(contents.records[0].attempts, 2u);
    EXPECT_EQ(contents.records[0].result.total_beeps, 9u);

    // An unusable header poisons the whole file.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << R"({"schema": "something-else/v9"})" << "\n";
    }
    EXPECT_FALSE(read_journal(path).header_ok);

    // A missing file is simply "nothing to resume".
    std::remove(path.c_str());
    EXPECT_FALSE(read_journal(path).header_ok);
}

TEST_F(ResilienceTest, JournalDisablesItselfOnWriteFailureWithoutLosingTheSweep) {
    // Open against a path whose parent vanishes before the first append:
    // the journal warns, disables, and the sweep still completes.
    SweepJournal journal;
    const std::string path = scratch("doomed.jsonl");
    journal.open(path, "t", 1, 1, /*append=*/false);
    EXPECT_TRUE(journal.is_open());
    std::remove(path.c_str());
    // fsync still succeeds on the open descriptor, so this tests the no-op
    // close path instead when removal doesn't break the write; either way
    // append must not throw.
    JournalRecord record;
    record.job = 0;
    record.fingerprint = 2;
    record.result.name = "x";
    EXPECT_NO_THROW(journal.append(record));
    journal.close();
    EXPECT_NO_THROW(journal.append(record));  // closed: silent no-op
}

TEST_F(ResilienceTest, OpenFailureIsAPreconditionError) {
    SweepJournal journal;
    EXPECT_THROW(journal.open("/nonexistent-dir/x/journal.jsonl", "t", 1, 1, false),
                 precondition_error);
}

}  // namespace
}  // namespace nb
