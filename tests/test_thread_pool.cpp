// ThreadPool stress tests for the sweep-scheduler usage patterns: nested
// submits from worker threads, exception propagation out of a job (and the
// pool's reusability afterwards), and shutdown while external callers have
// jobs queued behind run_mutex. The CI ASan+UBSan job runs these under the
// sanitizers; explicit ctest timeouts turn a deadlocked scheduler into a
// fast failure instead of a hung workflow.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/error.h"
#include "common/thread_pool.h"

namespace nb {
namespace {

TEST(ThreadPoolStress, NestedSubmitFromWorkerThreadsRunsInline) {
    ThreadPool pool(4);
    constexpr std::size_t kOuter = 16;
    constexpr std::size_t kInner = 32;
    std::atomic<std::size_t> inner_total{0};
    std::vector<std::size_t> outer_hits(kOuter, 0);

    pool.parallel_for(kOuter, [&](std::size_t worker, std::size_t outer) {
        ASSERT_LT(worker, pool.worker_count());
        outer_hits[outer] += 1;
        // Nested submit on the same pool: must complete (not deadlock on
        // run_mutex) and must reuse the calling worker's id so per-worker
        // scratch stays single-threaded.
        pool.parallel_for(kInner, [&, worker](std::size_t nested_worker, std::size_t) {
            EXPECT_EQ(nested_worker, worker);
            inner_total.fetch_add(1, std::memory_order_relaxed);
        });
    });

    EXPECT_EQ(inner_total.load(), kOuter * kInner);
    for (const auto hits : outer_hits) {
        EXPECT_EQ(hits, 1u);
    }
}

TEST(ThreadPoolStress, DoublyNestedSubmitStillCompletes) {
    ThreadPool pool(3);
    std::atomic<std::size_t> leaves{0};
    pool.parallel_for(6, [&](std::size_t, std::size_t) {
        pool.parallel_for(4, [&](std::size_t, std::size_t) {
            pool.parallel_for(2, [&](std::size_t, std::size_t) {
                leaves.fetch_add(1, std::memory_order_relaxed);
            });
        });
    });
    EXPECT_EQ(leaves.load(), 6u * 4u * 2u);
}

TEST(ThreadPoolStress, ExceptionPropagatesAndPoolStaysUsable) {
    ThreadPool pool(4);
    std::atomic<std::size_t> completed{0};
    EXPECT_THROW(
        pool.parallel_for(64,
                          [&](std::size_t, std::size_t index) {
                              if (index == 17) {
                                  throw std::runtime_error("job failure");
                              }
                              completed.fetch_add(1, std::memory_order_relaxed);
                          }),
        std::runtime_error);

    // The failed job must leave the pool reusable, and the next job intact.
    completed.store(0);
    pool.parallel_for(128, [&](std::size_t, std::size_t) {
        completed.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(completed.load(), 128u);
}

TEST(ThreadPoolStress, ExceptionFromNestedSubmitPropagatesToOuterCaller) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(8,
                                   [&](std::size_t, std::size_t) {
                                       pool.parallel_for(8, [](std::size_t, std::size_t) {
                                           throw precondition_error("nested failure");
                                       });
                                   }),
                 precondition_error);
}

TEST(ThreadPoolStress, ConcurrentExternalCallersSerializeThenShutdownCleanly) {
    constexpr std::size_t kCallers = 8;
    constexpr std::size_t kJobsPerCaller = 16;
    constexpr std::size_t kIndices = 64;
    std::atomic<std::size_t> total{0};
    {
        // Destroyed at scope exit, immediately after the callers finish: a
        // use-after-free or unjoined helper here is what the sanitizer job
        // exists to catch.
        ThreadPool pool(4);
        std::vector<std::thread> callers;
        callers.reserve(kCallers);
        for (std::size_t caller = 0; caller < kCallers; ++caller) {
            callers.emplace_back([&pool, &total] {
                for (std::size_t job = 0; job < kJobsPerCaller; ++job) {
                    // Whole jobs queue on run_mutex and never interleave.
                    pool.parallel_for(kIndices, [&total](std::size_t, std::size_t) {
                        total.fetch_add(1, std::memory_order_relaxed);
                    });
                }
            });
        }
        for (auto& caller : callers) {
            caller.join();
        }
    }
    EXPECT_EQ(total.load(), kCallers * kJobsPerCaller * kIndices);
}

TEST(ThreadPoolStress, CancelledParallelForThrowsAndLeavesPoolReusable) {
    ThreadPool pool(4);
    CancelToken token;
    std::atomic<std::size_t> started{0};

    // Cancel from inside an early index: the token overload checks before
    // every chunk claim, so the fan-out stops within one chunk per worker
    // and the wave's cancelled_error reaches the caller.
    EXPECT_THROW(pool.parallel_for(
                     10000,
                     [&](std::size_t, std::size_t) {
                         if (started.fetch_add(1, std::memory_order_relaxed) == 0) {
                             token.cancel();
                         }
                     },
                     &token),
                 cancelled_error);
    EXPECT_LT(started.load(), 10000u);

    // The cancelled wave must not wedge the pool: a plain parallel_for and a
    // token run with a fresh (unarmed) token both complete in full.
    std::atomic<std::size_t> completed{0};
    pool.parallel_for(256, [&](std::size_t, std::size_t) {
        completed.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(completed.load(), 256u);

    token.reset();
    completed.store(0);
    pool.parallel_for(
        256, [&](std::size_t, std::size_t) { completed.fetch_add(1, std::memory_order_relaxed); },
        &token);
    EXPECT_EQ(completed.load(), 256u);
}

TEST(ThreadPoolStress, AlreadyCancelledTokenStopsBeforeAnyIndexRuns) {
    ThreadPool pool(2);
    CancelToken token;
    token.cancel();
    std::atomic<std::size_t> ran{0};
    EXPECT_THROW(pool.parallel_for(
                     64, [&](std::size_t, std::size_t) { ran.fetch_add(1); }, &token),
                 cancelled_error);
    EXPECT_EQ(ran.load(), 0u);
}

TEST(ThreadPoolStress, PastDeadlineTokenCancelsLikeAnExplicitCancel) {
    // The watchdog shape: no one calls cancel(); the deadline alone flips
    // cancelled() and the next chunk claim throws.
    ThreadPool pool(2);
    CancelToken token;
    token.set_timeout(std::chrono::nanoseconds(1));
    EXPECT_THROW(pool.parallel_for(
                     64, [](std::size_t, std::size_t) {}, &token),
                 cancelled_error);

    // reset() disarms the deadline too — the sweep engine reuses one token
    // per job slot across retries.
    token.reset();
    std::atomic<std::size_t> completed{0};
    pool.parallel_for(
        64, [&](std::size_t, std::size_t) { completed.fetch_add(1); }, &token);
    EXPECT_EQ(completed.load(), 64u);
}

TEST(ThreadPoolStress, CancelPollReadsTheScopedToken) {
    // cancel_poll() is how deep callees (the transports' round loops) see
    // the job token without signature plumbing: installed via CancelScope,
    // thread-local, nestable, restored on exit.
    EXPECT_NO_THROW(cancel_poll());  // no scope installed: no-op

    CancelToken token;
    {
        CancelScope scope(&token);
        EXPECT_NO_THROW(cancel_poll());
        token.cancel();
        EXPECT_THROW(cancel_poll(), cancelled_error);
        {
            CancelScope inner(nullptr);  // shadow: callee opted out
            EXPECT_NO_THROW(cancel_poll());
        }
        EXPECT_THROW(cancel_poll(), cancelled_error);  // restored on exit
    }
    EXPECT_NO_THROW(cancel_poll());  // scope gone
}

TEST(ThreadPoolStress, SingleWorkerPoolRunsEverythingInline) {
    ThreadPool pool(1);
    std::size_t count = 0;  // no atomic needed: one worker means one thread
    pool.parallel_for(32, [&](std::size_t worker, std::size_t) {
        EXPECT_EQ(worker, 0u);
        pool.parallel_for(4, [&](std::size_t, std::size_t) { ++count; });
    });
    EXPECT_EQ(count, 128u);
}

}  // namespace
}  // namespace nb
