// Tests for the pluggable channel-model layer: validation, the statistical
// properties of each non-i.i.d. model (burst lengths, per-node rates,
// adversarial budgets), engine-level equivalence between RoundEngine and
// BatchEngine under every samplable model, and determinism of transports
// driven with non-i.i.d. channels.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>

#include "baselines/tdma_transport.h"
#include "beep/batch_engine.h"
#include "beep/channel_model.h"
#include "beep/round_engine.h"
#include "common/error.h"
#include "graph/generators.h"
#include "sim/transport.h"

namespace nb {
namespace {

TEST(ChannelModel, ValidatesParameterRanges) {
    EXPECT_NO_THROW(ChannelModel::iid(0.49).validate());
    EXPECT_THROW(ChannelModel::iid(0.5).validate(), precondition_error);
    EXPECT_THROW(ChannelModel::iid(-0.01).validate(), precondition_error);

    EXPECT_NO_THROW(ChannelModel::gilbert_elliott(0.1, 0.2, 0.05, 1.0).validate());
    EXPECT_THROW(ChannelModel::gilbert_elliott(0.0, 0.2, 0.05, 0.4).validate(),
                 precondition_error);
    EXPECT_THROW(ChannelModel::gilbert_elliott(0.1, 1.5, 0.05, 0.4).validate(),
                 precondition_error);
    EXPECT_THROW(ChannelModel::gilbert_elliott(0.1, 0.2, -0.1, 0.4).validate(),
                 precondition_error);

    EXPECT_NO_THROW(ChannelModel::heterogeneous(0.0, 0.3, 7).validate());
    EXPECT_THROW(ChannelModel::heterogeneous(0.3, 0.2, 7).validate(), precondition_error);
    EXPECT_THROW(ChannelModel::heterogeneous(0.1, 0.5, 7).validate(), precondition_error);

    EXPECT_NO_THROW(ChannelModel::adversarial_budget(0).validate());
    EXPECT_NO_THROW(ChannelModel::adversarial_budget(1 << 20).validate());

    // Only iid supports the practical own-beep exemption: stateful models
    // would desynchronize if per-bit draws were skipped.
    ChannelModel ge = ChannelModel::gilbert_elliott(0.1, 0.2, 0.05, 0.4);
    ge.noise_on_own_beep = false;
    EXPECT_THROW(ge.validate(), precondition_error);
    EXPECT_NO_THROW(ChannelModel::iid(0.1, /*noise_on_own_beep=*/false).validate());
}

TEST(ChannelModel, NoiselessDetection) {
    EXPECT_TRUE(ChannelModel::iid(0.0).noiseless());
    EXPECT_FALSE(ChannelModel::iid(0.01).noiseless());
    EXPECT_TRUE(ChannelModel::gilbert_elliott(0.1, 0.2, 0.0, 0.0).noiseless());
    EXPECT_FALSE(ChannelModel::gilbert_elliott(0.1, 0.2, 0.0, 0.3).noiseless());
    EXPECT_TRUE(ChannelModel::heterogeneous(0.0, 0.0, 1).noiseless());
    EXPECT_FALSE(ChannelModel::heterogeneous(0.0, 0.2, 1).noiseless());
    EXPECT_TRUE(ChannelModel::adversarial_budget(0).noiseless());
    EXPECT_FALSE(ChannelModel::adversarial_budget(1).noiseless());
}

TEST(ChannelModel, DesignEpsilon) {
    EXPECT_DOUBLE_EQ(ChannelModel::iid(0.2).design_epsilon(), 0.2);
    // Stationary rate: P(bad) = 0.1/(0.1+0.3) = 0.25 -> 0.75*0.0 + 0.25*0.4.
    EXPECT_NEAR(ChannelModel::gilbert_elliott(0.1, 0.3, 0.0, 0.4).design_epsilon(), 0.1,
                1e-12);
    EXPECT_DOUBLE_EQ(ChannelModel::heterogeneous(0.1, 0.3, 1).design_epsilon(), 0.2);
    EXPECT_DOUBLE_EQ(ChannelModel::adversarial_budget(100).design_epsilon(), 0.0);
    // Always a valid SimulationParams epsilon, even for saturated bursts.
    EXPECT_LT(ChannelModel::gilbert_elliott(1.0, 0.01, 1.0, 1.0).design_epsilon(), 0.5);
}

TEST(ChannelModel, IidSamplerMatchesLegacyNoisePath) {
    // The sampler must reproduce Bitstring::apply_noise on the same derived
    // stream — this is the exact hook BatchEngine drives, so equality here
    // is what keeps every pre-ChannelModel golden fingerprint unchanged.
    const Rng base(123);
    Bitstring via_sampler(4096);
    ChannelNoiseSampler sampler(ChannelModel::iid(0.17), 5, base.derive(0x6e6f6973u, 5));
    sampler.apply(via_sampler, /*dense=*/false);

    Bitstring via_legacy(4096);
    Rng legacy = base.derive(0x6e6f6973u, 5);
    via_legacy.apply_noise(legacy, 0.17);
    EXPECT_EQ(via_sampler, via_legacy);
}

TEST(ChannelModel, GilbertElliottBurstStatistics) {
    // With eps_good = 0 and eps_bad = 1 the flip pattern IS the burst
    // indicator: 1-runs are bursts (Geometric(p_exit), mean 1/p_exit) and
    // the long-run burst fraction is p_enter / (p_enter + p_exit).
    const double p_enter = 0.02;
    const double p_exit = 0.2;
    const std::size_t length = 200000;
    Bitstring transcript(length);
    ChannelNoiseSampler sampler(ChannelModel::gilbert_elliott(p_enter, p_exit, 0.0, 1.0), 0,
                                Rng(99));
    sampler.apply(transcript, /*dense=*/true);

    std::size_t runs = 0;
    bool previous = false;
    for (std::size_t i = 0; i < length; ++i) {
        const bool bit = transcript.test(i);
        if (bit && !previous) {
            ++runs;
        }
        previous = bit;
    }
    ASSERT_GT(runs, 1000u);
    const double mean_burst =
        static_cast<double>(transcript.count()) / static_cast<double>(runs);
    EXPECT_NEAR(mean_burst, 1.0 / p_exit, 0.5);
    const double burst_fraction =
        static_cast<double>(transcript.count()) / static_cast<double>(length);
    EXPECT_NEAR(burst_fraction, p_enter / (p_enter + p_exit), 0.02);
}

TEST(ChannelModel, HeterogeneousPerNodeRates) {
    const ChannelModel model = ChannelModel::heterogeneous(0.05, 0.30, 0xfeed);
    const std::size_t length = 50000;
    bool saw_distinct = false;
    double previous_rate = -1.0;
    for (std::uint64_t node = 0; node < 6; ++node) {
        const double expected = model.node_epsilon(node);
        EXPECT_GE(expected, 0.05);
        EXPECT_LE(expected, 0.30);
        // The draw is deterministic in (seed, node) — stable across rounds
        // and engines.
        EXPECT_DOUBLE_EQ(expected, model.node_epsilon(node));

        Bitstring transcript(length);
        ChannelNoiseSampler sampler(model, node, Rng(1000 + node));
        sampler.apply(transcript, /*dense=*/false);
        const double measured =
            static_cast<double>(transcript.count()) / static_cast<double>(length);
        EXPECT_NEAR(measured, expected, 0.012) << "node " << node;
        if (previous_rate >= 0.0 && std::abs(expected - previous_rate) > 1e-6) {
            saw_distinct = true;
        }
        previous_rate = expected;
    }
    EXPECT_TRUE(saw_distinct);  // heterogeneity is real, not a constant
}

TEST(ChannelModel, AdversarialBudgetRespected) {
    Rng rng(5);
    const Bitstring original = Bitstring::random(rng, 2048);
    const std::size_t ones = original.count();
    ASSERT_GT(ones, 64u);

    // Budget below the transcript weight: exactly `budget` erasures, all of
    // them on the earliest 1s, and never an insertion.
    Bitstring damaged = original;
    ChannelNoiseSampler sampler(ChannelModel::adversarial_budget(64), 0, Rng(1));
    sampler.apply(damaged, /*dense=*/false);
    EXPECT_EQ(damaged.count(), ones - 64);
    EXPECT_EQ(damaged.hamming_distance(original), 64u);
    EXPECT_EQ((damaged & ~original).count(), 0u);  // erasures only
    const auto original_positions = original.one_positions();
    const auto damaged_positions = damaged.one_positions();
    for (std::size_t i = 0; i < damaged_positions.size(); ++i) {
        EXPECT_EQ(damaged_positions[i], original_positions[i + 64]);
    }

    // Budget above the weight: the whole transcript is erased, no more.
    Bitstring wiped = original;
    ChannelNoiseSampler greedy(ChannelModel::adversarial_budget(ones + 1000), 0, Rng(1));
    greedy.apply(wiped, /*dense=*/false);
    EXPECT_EQ(wiped.count(), 0u);
}

/// Minimal oblivious schedule player (mirrors test_beep_engines) for the
/// cross-engine equivalence property under the new models.
class SchedulePlayer final : public BeepAlgorithm {
public:
    explicit SchedulePlayer(Bitstring schedule)
        : schedule_(std::move(schedule)), heard_(schedule_.size()) {}

    void initialize(NodeId, const NetworkInfo&, Rng&) override {}
    BeepAction act(std::size_t round, Rng&) override {
        return schedule_.test(round) ? BeepAction::beep : BeepAction::listen;
    }
    void receive(std::size_t round, bool received, Rng&) override {
        if (received) {
            heard_.set(round);
        }
        done_ = round + 1 == schedule_.size();
    }
    bool finished() const override { return done_; }
    const Bitstring& heard() const noexcept { return heard_; }

private:
    Bitstring schedule_;
    Bitstring heard_;
    bool done_ = false;
};

void expect_engines_agree(const ChannelModel& model, std::uint64_t seed) {
    Rng graph_rng(seed);
    const Graph g = make_erdos_renyi(16, 0.25, graph_rng);
    const std::size_t length = 128;
    Rng schedule_rng(seed + 1);
    std::vector<Bitstring> schedules;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        schedules.push_back(Bitstring::random(schedule_rng, length));
    }

    const Rng base(424242);
    BatchParams params;
    params.channel = model;
    params.dense_noise = true;
    const BatchEngine batch(g, params, base);

    std::vector<std::unique_ptr<BeepAlgorithm>> nodes;
    std::vector<SchedulePlayer*> players;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        auto player = std::make_unique<SchedulePlayer>(schedules[v]);
        players.push_back(player.get());
        nodes.push_back(std::move(player));
    }
    RoundEngine round_engine(g, model, base);
    round_engine.run(nodes, length);

    for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_EQ(players[v]->heard(), batch.hear(v, schedules))
            << model.describe() << " node " << v;
    }
}

TEST(ChannelModel, EnginesAgreeOnEveryModel) {
    expect_engines_agree(ChannelModel::iid(0.2), 3);
    expect_engines_agree(ChannelModel::gilbert_elliott(0.05, 0.25, 0.02, 0.45), 4);
    expect_engines_agree(ChannelModel::heterogeneous(0.05, 0.35, 0xabc), 5);
    expect_engines_agree(ChannelModel::adversarial_budget(9), 6);
}

TEST(ChannelModel, TransportWithNonIidChannelIsThreadInvariant) {
    Rng rng(21);
    const Graph g = make_erdos_renyi(24, 0.2, rng);
    Rng message_rng(3);
    std::vector<std::optional<Bitstring>> messages(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        messages[v] = Bitstring::random(message_rng, 8);
    }
    for (const ChannelModel& model :
         {ChannelModel::gilbert_elliott(0.03, 0.15, 0.02, 0.35),
          ChannelModel::heterogeneous(0.02, 0.25, 0x9), ChannelModel::adversarial_budget(32)}) {
        SimulationParams params;
        params.epsilon = 0.1;  // design epsilon for the decoder thresholds
        params.channel = model;
        params.message_bits = 8;
        params.c_eps = 4;
        params.threads = 1;
        SimulationParams threaded_params = params;
        threaded_params.threads = 4;
        const BeepTransport serial(g, params);
        const BeepTransport threaded(g, threaded_params);
        for (std::uint64_t nonce = 0; nonce < 2; ++nonce) {
            const auto a = serial.simulate_round(messages, nonce);
            const auto b = threaded.simulate_round(messages, nonce);
            EXPECT_EQ(a.delivered, b.delivered) << model.describe();
            EXPECT_EQ(a.phase1_false_negatives, b.phase1_false_negatives);
            EXPECT_EQ(a.phase1_false_positives, b.phase1_false_positives);
            EXPECT_EQ(a.delivery_mismatches, b.delivery_mismatches);
        }
    }
}

TEST(ChannelModel, TdmaTransportAcceptsChannelModels) {
    Rng rng(31);
    const Graph g = make_erdos_renyi(16, 0.25, rng);
    Rng message_rng(4);
    std::vector<std::optional<Bitstring>> messages(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        messages[v] = Bitstring::random(message_rng, 8);
    }
    TdmaParams params;
    params.epsilon = 0.1;
    params.channel = ChannelModel::gilbert_elliott(0.03, 0.2, 0.02, 0.3);
    params.message_bits = 8;
    params.repetitions = 9;
    params.threads = 1;
    const TdmaTransport transport(g, params);
    const auto round = transport.simulate_round(messages, 0);
    EXPECT_EQ(round.delivered.size(), g.node_count());
    // Determinism: the same nonce reproduces the same round.
    const auto again = transport.simulate_round(messages, 0);
    EXPECT_EQ(round.delivered, again.delivered);
    EXPECT_EQ(round.delivery_mismatches, again.delivery_mismatches);
}

TEST(ChannelModel, RejectsNonIidOwnBeepExemptionInEngines) {
    const Graph g = make_path(3);
    ChannelModel model = ChannelModel::heterogeneous(0.0, 0.2, 1);
    model.noise_on_own_beep = false;
    EXPECT_THROW(RoundEngine(g, model, Rng(1)), precondition_error);
    BatchParams params;
    params.channel = ChannelModel::iid(0.1, /*noise_on_own_beep=*/false);
    EXPECT_THROW(BatchEngine(g, params, Rng(1)), precondition_error);
}

}  // namespace
}  // namespace nb
