// nb_serve end-to-end robustness tests (serve/server.h): submit round-trips
// with byte-identical stored artifacts, typed load-shedding at the admission
// bound, per-job deadlines through the CancelToken chain, transient-fault
// retry at the server boundary, store faults mid-job, graceful drain (finish
// in-flight, reject new, hard-cancel stragglers), and the wire-level error
// contract for malformed requests. The server runs in-process; clients talk
// to it over its real unix socket.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/json.h"
#include "scenarios/spec_json.h"
#include "scenarios/sweep.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "sim/codebook_cache.h"

namespace nb {
namespace {

std::string scratch(const std::string& leaf) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->name() + "." + leaf;
}

void remove_tree(const std::string& path) {
    const std::string command = "rm -rf '" + path + "'";
    [[maybe_unused]] const int rc = std::system(command.c_str());
}

/// The tiny sweep every serve test submits: milliseconds of work, real
/// noise, deterministic artifact.
std::string tiny_spec(std::uint64_t seed = 3, std::size_t rounds = 2) {
    std::ostringstream out;
    out << R"({"schema":"nb-spec/v1","sweep":"serve-test","scenarios":[{"name":"job",)"
        << R"("rounds":)" << rounds
        << R"(,"topology":{"family":"random_regular","n":16,"degree":4,"seed":7},)"
        << R"("channel":{"kind":"iid","epsilon":0.1},)"
        << R"("workload":{"message_bits":4,"seed":)" << seed << "}}]}";
    return out.str();
}

std::string submit_line(const std::string& spec, const std::string& extra_fields = "") {
    return "{\"op\":\"submit\"" + extra_fields + ",\"spec\":" + spec + "}";
}

class ServeTest : public ::testing::Test {
protected:
    void TearDown() override {
        if (server_ != nullptr) {
            server_->request_drain();
            server_->wait();
            server_.reset();
        }
        failpoint::clear_all();
        remove_tree(store_dir_);
        ::unlink(socket_path_.c_str());
    }

    serve::Server& start(serve::ServerConfig config = {}) {
        socket_path_ = scratch("sock");
        store_dir_ = scratch("store");
        ::unlink(socket_path_.c_str());
        remove_tree(store_dir_);
        config.socket_path = socket_path_;
        config.store_dir = store_dir_;
        server_ = std::make_unique<serve::Server>(config);
        server_->start();
        return *server_;
    }

    serve::Client connect() {
        serve::Client client;
        EXPECT_TRUE(client.connect_wait(socket_path_, 5.0));
        return client;
    }

    std::string socket_path_;
    std::string store_dir_;
    std::unique_ptr<serve::Server> server_;
};

/// Field access with hard failure on shape mismatch.
const JsonValue& member(const JsonValue& value, const char* key) {
    const JsonValue* found = value.find(key);
    EXPECT_NE(found, nullptr) << "missing field " << key;
    return *found;
}

TEST_F(ServeTest, PingAnswersSchema) {
    start();
    serve::Client client = connect();
    const auto response = client.request(R"({"op":"ping"})");
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(member(*response, "ok").as_bool());
    EXPECT_EQ(member(*response, "schema").as_string(), "nb-serve/v1");
}

TEST_F(ServeTest, SubmitExecutesAndStoresByteIdenticalArtifact) {
    start();
    serve::Client client = connect();
    const std::string spec_text = tiny_spec();
    const auto response =
        client.request(submit_line(spec_text, R"(,"store_as":"artifact")"));
    ASSERT_TRUE(response.has_value());
    ASSERT_TRUE(member(*response, "ok").as_bool())
        << member(*response, "status").as_string();
    EXPECT_EQ(member(*response, "status").as_string(), "done");
    EXPECT_EQ(member(*response, "attempts").as_uint64(), 1u);
    EXPECT_EQ(member(*response, "stored_version").as_uint64(), 1u);

    // The artifact is the canonical nb-sweep/v1 bytes: byte-identical to
    // running the same spec locally (analytic cache block, no timing).
    const SweepSpec spec = sweep_spec_from_json(spec_text, "test");
    const SweepResult local = run_sweep(spec);
    std::ostringstream expected;
    JsonWriter json(expected);
    sweep_results_json(json, local);
    EXPECT_EQ(member(*response, "artifact").as_string(), expected.str());

    // And the stored object is those same bytes, via the store protocol.
    const auto stored = client.request(R"({"op":"get","name":"artifact"})");
    ASSERT_TRUE(stored.has_value());
    ASSERT_TRUE(member(*stored, "ok").as_bool());
    EXPECT_EQ(member(*stored, "version").as_uint64(), 1u);
    EXPECT_EQ(member(*stored, "bytes").as_string(), expected.str());
}

TEST_F(ServeTest, StoreOpsRoundTripThroughTheWire) {
    start();
    serve::Client client = connect();
    auto response = client.request(R"({"op":"put","name":"obj","bytes":"hello"})");
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(member(*response, "ok").as_bool());
    EXPECT_EQ(member(*response, "version").as_uint64(), 1u);

    response = client.request(R"({"op":"cput","name":"obj","bytes":"v2","expected":1})");
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(member(*response, "ok").as_bool());

    // Stale expectation: typed conflict, not an error.
    response = client.request(R"({"op":"cput","name":"obj","bytes":"v3","expected":1})");
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(member(*response, "ok").as_bool());
    EXPECT_EQ(member(*response, "status").as_string(), "conflict");

    response = client.request(R"({"op":"list"})");
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(member(*response, "objects").items().size(), 1u);
    EXPECT_EQ(member(member(*response, "objects").items()[0], "version").as_uint64(), 2u);
}

TEST_F(ServeTest, OverloadShedsTypedRejectionsImmediately) {
    serve::ServerConfig config;
    config.queue_capacity = 1;
    config.executors = 1;
    config.max_retries = 0;
    start(config);

    // Slow every job down so concurrent submits pile onto the full queue.
    failpoint::Config slow;
    slow.mode = failpoint::Mode::delay;
    slow.delay_ms = 150;
    failpoint::configure("serve.job", slow);

    constexpr int clients = 6;
    std::atomic<int> done{0};
    std::atomic<int> shed{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&] {
            serve::Client client;
            ASSERT_TRUE(client.connect_wait(socket_path_, 5.0));
            const auto response = client.request(submit_line(tiny_spec()));
            ASSERT_TRUE(response.has_value());
            if (member(*response, "ok").as_bool()) {
                done.fetch_add(1);
            } else if (member(*response, "status").as_string() == "rejected") {
                EXPECT_EQ(member(*response, "reason").as_string(), "overloaded");
                shed.fetch_add(1);
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    failpoint::clear("serve.job");

    // With one executor, one queue slot, and 150 ms jobs, six simultaneous
    // submits cannot all be admitted — and nothing may fall through the
    // typed done/rejected taxonomy.
    EXPECT_GE(done.load(), 1);
    EXPECT_GE(shed.load(), 1);
    EXPECT_EQ(done.load() + shed.load(), clients);
    EXPECT_EQ(server_->counters().shed_overloaded,
              static_cast<std::uint64_t>(shed.load()));
}

TEST_F(ServeTest, DeadlineSpentInQueueClassifiesAsTimeout) {
    serve::ServerConfig config;
    config.max_retries = 3;  // a timeout on a dead token must NOT retry
    start(config);
    serve::Client client = connect();
    // A deadline so small it expires before the executor can pick the job
    // up: the first poll kills it, classified timeout, zero sweep work.
    const auto response =
        client.request(submit_line(tiny_spec(), R"(,"deadline_seconds":1e-9)"));
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(member(*response, "ok").as_bool());
    EXPECT_EQ(member(*response, "status").as_string(), "error");
    EXPECT_EQ(member(member(*response, "error"), "kind").as_string(), "timeout");
    EXPECT_EQ(member(*response, "attempts").as_uint64(), 1u);
}

TEST_F(ServeTest, TransientFaultIsRetriedWithBackoffAndSucceeds) {
    serve::ServerConfig config;
    config.max_retries = 2;
    config.retry_backoff_ms = 1;
    start(config);

    failpoint::Config fault;
    fault.mode = failpoint::Mode::inject_throw;
    fault.max_hits = 1;  // fail once, then heal — the transient model
    failpoint::configure("serve.job", fault);

    serve::Client client = connect();
    const auto response = client.request(submit_line(tiny_spec()));
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(member(*response, "ok").as_bool());
    EXPECT_EQ(member(*response, "attempts").as_uint64(), 2u);
    EXPECT_EQ(server_->counters().retries, 1u);
}

TEST_F(ServeTest, ExhaustedRetriesReportTheClassifiedError) {
    serve::ServerConfig config;
    config.max_retries = 1;
    config.retry_backoff_ms = 1;
    start(config);

    failpoint::Config fault;
    fault.mode = failpoint::Mode::inject_throw;  // fires forever
    failpoint::configure("serve.job", fault);

    serve::Client client = connect();
    const auto response = client.request(submit_line(tiny_spec()));
    failpoint::clear("serve.job");
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(member(*response, "ok").as_bool());
    EXPECT_EQ(member(*response, "attempts").as_uint64(), 2u);  // 1 + max_retries
    const JsonValue& error = member(*response, "error");
    EXPECT_EQ(member(error, "kind").as_string(), "transient");
    EXPECT_EQ(member(error, "site").as_string(), "serve.job");
}

TEST_F(ServeTest, FatalSpecErrorsAnswerImmediatelyWithoutRetry) {
    serve::ServerConfig config;
    config.max_retries = 3;
    start(config);
    serve::Client client = connect();
    // Structurally valid JSON, semantically broken spec (unknown family):
    // precondition_error → fatal → exactly one attempt.
    const std::string broken =
        R"({"schema":"nb-spec/v1","scenarios":[{"name":"x","topology":{"family":"nope"}}]})";
    const auto response = client.request(submit_line(broken));
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(member(*response, "ok").as_bool());
    EXPECT_EQ(member(member(*response, "error"), "kind").as_string(), "fatal");
    EXPECT_EQ(member(*response, "attempts").as_uint64(), 1u);
}

TEST_F(ServeTest, StorePutOomMidJobIsTransientAndStoreStaysRecoverable) {
    serve::ServerConfig config;
    config.max_retries = 0;  // surface the first failure to the client
    start(config);

    failpoint::Config fault;
    fault.mode = failpoint::Mode::oom;
    fault.max_hits = 1;
    failpoint::configure("store.put", fault);

    serve::Client client = connect();
    auto response = client.request(submit_line(tiny_spec(), R"(,"store_as":"artifact")"));
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(member(*response, "ok").as_bool());
    EXPECT_EQ(member(member(*response, "error"), "kind").as_string(), "transient");

    // The failed put published nothing.
    response = client.request(R"({"op":"get","name":"artifact"})");
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(member(*response, "ok").as_bool());

    // Healed: the client-level retry succeeds and the store serves it.
    response = client.request(submit_line(tiny_spec(), R"(,"store_as":"artifact")"));
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(member(*response, "ok").as_bool());
    EXPECT_EQ(member(*response, "stored_version").as_uint64(), 1u);
}

TEST_F(ServeTest, DrainFinishesInFlightAndRejectsNewSubmits) {
    serve::ServerConfig config;
    config.executors = 1;
    config.drain_seconds = 10.0;
    start(config);

    // First job runs slow enough for the drain to start while it executes.
    failpoint::Config slow;
    slow.mode = failpoint::Mode::delay;
    slow.delay_ms = 300;
    slow.max_hits = 1;
    failpoint::configure("serve.job", slow);

    std::optional<JsonValue> in_flight;
    std::thread submitter([&] {
        serve::Client client;
        ASSERT_TRUE(client.connect_wait(socket_path_, 5.0));
        in_flight = client.request(submit_line(tiny_spec()));
    });
    // A second connection opened BEFORE the drain (after it, connect fails
    // outright — the listener is closed and the socket unlinked).
    serve::Client late = connect();

    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server_->request_drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    const auto rejected = late.request(submit_line(tiny_spec()));
    ASSERT_TRUE(rejected.has_value());
    EXPECT_FALSE(member(*rejected, "ok").as_bool());
    EXPECT_EQ(member(*rejected, "status").as_string(), "rejected");
    EXPECT_EQ(member(*rejected, "reason").as_string(), "draining");

    submitter.join();
    server_->wait();

    // The in-flight job finished normally inside the grace period.
    ASSERT_TRUE(in_flight.has_value());
    EXPECT_TRUE(member(*in_flight, "ok").as_bool());
    EXPECT_EQ(server_->counters().drain_cancelled, 0u);
    server_.reset();
}

TEST_F(ServeTest, DrainDeadlineHardCancelsStragglers) {
    serve::ServerConfig config;
    config.drain_seconds = 0.05;
    config.max_retries = 3;  // a drain cancel must not be retried either
    start(config);

    // A job long enough to outlive the 50 ms grace period by far: the drain
    // token must reach its transport polls through the parent chain.
    std::optional<JsonValue> response;
    std::thread submitter([&] {
        serve::Client client;
        ASSERT_TRUE(client.connect_wait(socket_path_, 5.0));
        response = client.request(submit_line(tiny_spec(/*seed=*/9, /*rounds=*/2000)));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    server_->request_drain();
    server_->wait();
    submitter.join();

    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(member(*response, "ok").as_bool());
    EXPECT_EQ(member(member(*response, "error"), "kind").as_string(), "timeout");
    EXPECT_EQ(member(*response, "attempts").as_uint64(), 1u);
    EXPECT_GE(server_->counters().drain_cancelled, 1u);
    server_.reset();
}

TEST(LineReaderWire, PipelinedBurstReturnsEveryLineInOrder) {
    // A client may write many frames in one burst; the reader must hand
    // them back one by one without re-scanning or memmoving the remainder
    // per line (the erase-per-line implementation was O(bytes^2) here).
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    const std::size_t lines = 500;
    std::string burst;
    for (std::size_t i = 0; i < lines; ++i) {
        burst += "{\"op\":\"ping\",\"seq\":" + std::to_string(i) + "}\n";
    }
    // Writer thread: one socketpair buffer may not hold the whole burst.
    std::thread writer([&] {
        std::size_t sent = 0;
        while (sent < burst.size()) {
            const ssize_t n = ::send(fds[1], burst.data() + sent, burst.size() - sent,
                                     MSG_NOSIGNAL);
            if (n <= 0) {
                break;
            }
            sent += static_cast<std::size_t>(n);
        }
        ::close(fds[1]);
    });

    serve::LineReader reader(fds[0]);
    std::string line;
    for (std::size_t i = 0; i < lines; ++i) {
        ASSERT_TRUE(reader.read_line(line, 1 << 20)) << "line " << i;
        EXPECT_EQ(line, "{\"op\":\"ping\",\"seq\":" + std::to_string(i) + "}");
    }
    EXPECT_FALSE(reader.read_line(line, 1 << 20));  // clean EOF
    writer.join();
    ::close(fds[0]);
}

TEST(LineReaderWire, LengthBoundAppliesPerLineNotPerBufferPosition) {
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // Two short lines followed by one exactly at the bound, all in one
    // burst: the third line starts deep into the buffer, and the bound must
    // be measured from the line's own start (the consumed-prefix cursor),
    // not from the buffer base.
    const std::size_t max_bytes = 64;
    const std::string a(40, 'a');
    const std::string b(40, 'b');
    const std::string c(max_bytes, 'c');
    const std::string burst = a + "\n" + b + "\n" + c + "\n";
    ASSERT_EQ(::send(fds[1], burst.data(), burst.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(burst.size()));

    serve::LineReader reader(fds[0]);
    std::string line;
    ASSERT_TRUE(reader.read_line(line, max_bytes));
    EXPECT_EQ(line, a);
    ASSERT_TRUE(reader.read_line(line, max_bytes));
    EXPECT_EQ(line, b);
    ASSERT_TRUE(reader.read_line(line, max_bytes));
    EXPECT_EQ(line, c);

    // One byte past the bound is cut off.
    const std::string too_long(max_bytes + 1, 'd');
    const std::string tail = too_long + "\n";
    ASSERT_EQ(::send(fds[1], tail.data(), tail.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(tail.size()));
    EXPECT_FALSE(reader.read_line(line, max_bytes));

    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(LineReaderWire, LineSplitAcrossRecvBoundariesAssembles) {
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    serve::LineReader reader(fds[0]);
    std::string line;
    const std::string full = "{\"op\":\"submit\",\"payload\":\"0123456789\"}";
    std::thread writer([&] {
        for (const char ch : full) {
            ASSERT_EQ(::send(fds[1], &ch, 1, MSG_NOSIGNAL), 1);
        }
        const char newline = '\n';
        ASSERT_EQ(::send(fds[1], &newline, 1, MSG_NOSIGNAL), 1);
        ::close(fds[1]);
    });
    ASSERT_TRUE(reader.read_line(line, 1 << 10));
    EXPECT_EQ(line, full);
    EXPECT_FALSE(reader.read_line(line, 1 << 10));  // EOF, no torn frame left
    writer.join();
    ::close(fds[0]);
}

TEST_F(ServeTest, DrainInterruptsRetryBackoffWithinGracePeriod) {
    // Regression test: the retry backoff was a monolithic sleep_for that
    // ignored the CancelToken — with a seconds-scale backoff cap, a SIGTERM
    // drain arriving mid-backoff blocked wait() for the full backoff, far
    // past the grace period. The backoff now sleeps in token-polling slices.
    serve::ServerConfig config;
    config.max_retries = 3;
    config.retry_backoff_ms = 60000;  // one backoff alone dwarfs the test budget
    config.retry_backoff_cap_ms = 60000;
    config.drain_seconds = 0.2;
    start(config);

    failpoint::Config fault;
    fault.mode = failpoint::Mode::inject_throw;  // fires forever: always retrying
    failpoint::configure("serve.job", fault);

    std::optional<JsonValue> response;
    std::thread submitter([&] {
        serve::Client client;
        ASSERT_TRUE(client.connect_wait(socket_path_, 5.0));
        response = client.request(submit_line(tiny_spec()));
    });
    // Give the job time to fail its first attempt and enter the backoff.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    const auto drain_start = std::chrono::steady_clock::now();
    server_->request_drain();
    server_->wait();
    const double drain_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - drain_start)
            .count();
    submitter.join();
    failpoint::clear("serve.job");

    // Well within the grace period + slack; without the fix this is >= 60 s.
    EXPECT_LT(drain_seconds, 10.0);
    // The pending client still got a typed answer, not a dropped socket.
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(member(*response, "ok").as_bool());
    server_.reset();
}

TEST_F(ServeTest, StatsReportConsistentCacheSnapshotAndServerCounters) {
    start();
    serve::Client client = connect();
    ASSERT_TRUE(client.request(submit_line(tiny_spec())).has_value());
    ASSERT_TRUE(client.request(submit_line(tiny_spec())).has_value());  // cache hit

    const auto response = client.request(R"({"op":"stats"})");
    ASSERT_TRUE(response.has_value());
    const JsonValue& cache = member(*response, "cache");
    // Two identical submits: at least one build and at least one hit, and
    // hit_rate is consistent with the hits/builds in the SAME snapshot.
    EXPECT_GE(member(cache, "builds").as_uint64() + member(cache, "hits").as_uint64(), 2u);
    const double rate = member(cache, "hit_rate").as_double();
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);

    const JsonValue& server = member(*response, "server");
    EXPECT_EQ(member(server, "completed").as_uint64(), 2u);
    EXPECT_EQ(member(server, "submitted").as_uint64(), 2u);
    EXPECT_EQ(member(server, "queue_capacity").as_uint64(), 16u);
    EXPECT_FALSE(member(server, "draining").as_bool());
}

TEST_F(ServeTest, AcceptFailpointDropsTheConnectionBeforeAnyRead) {
    start();
    failpoint::Config fault;
    fault.mode = failpoint::Mode::inject_throw;
    fault.max_hits = 1;
    failpoint::configure("serve.accept", fault);

    // The dropped connection: connect() succeeds at the OS level, the first
    // request observes EOF. Transient by contract — the next connection
    // works.
    serve::Client dropped;
    ASSERT_TRUE(dropped.connect_wait(socket_path_, 5.0));
    EXPECT_FALSE(dropped.request(R"({"op":"ping"})").has_value());

    serve::Client retry = connect();
    const auto response = retry.request(R"({"op":"ping"})");
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(member(*response, "ok").as_bool());
}

TEST_F(ServeTest, MalformedRequestsAnswerTypedErrorsNotDisconnects) {
    start();
    serve::Client client = connect();
    for (const char* bad : {
             "this is not json",
             R"("a string, not an object")",
             R"({"no_op":true})",
             R"({"op":"submit"})",                       // missing spec
             R"({"op":"submit","spec":{"schema":"x"}})",  // wrong schema
             R"({"op":"get"})",                           // missing name
             R"({"op":"warp"})",                          // unknown op
         }) {
        SCOPED_TRACE(bad);
        const auto response = client.request(bad);
        ASSERT_TRUE(response.has_value());  // still answered, same connection
        EXPECT_FALSE(member(*response, "ok").as_bool());
    }
    // The connection survives the whole gauntlet.
    const auto ping = client.request(R"({"op":"ping"})");
    ASSERT_TRUE(ping.has_value());
    EXPECT_TRUE(member(*ping, "ok").as_bool());
}

}  // namespace
}  // namespace nb
