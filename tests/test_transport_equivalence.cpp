// Transport equivalence: the codebook-cached, thread-pooled simulate_round
// must be a pure refactor of the original implementation. Every scenario
// here is pinned against 64-bit fingerprints captured from the pre-refactor
// (seed) BeepTransport on the same inputs — across both dictionary
// policies, with and without a FaultModel — and the outputs must not depend
// on the worker-thread count.
#include <gtest/gtest.h>

#include <optional>

#include "baselines/tdma_transport.h"
#include "common/error.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "sim/codebook_cache.h"
#include "sim/params.h"
#include "sim/transport.h"

namespace nb {
namespace {

std::vector<std::optional<Bitstring>> make_messages(const Graph& graph, std::size_t bits,
                                                    std::uint64_t seed,
                                                    double silent_fraction = 0.25) {
    Rng rng(seed);
    std::vector<std::optional<Bitstring>> messages(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        if (!rng.bernoulli(silent_fraction)) {
            messages[v] = Bitstring::random(rng, bits);
        }
    }
    return messages;
}

/// Order- and content-sensitive digest of everything a TransportRound
/// reports. Must stay byte-for-byte in sync with the harness that captured
/// the golden values from the seed implementation.
std::uint64_t fingerprint(const TransportRound& round) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    for (const auto& messages : round.delivered) {
        mix(messages.size());
        for (const auto& message : messages) {
            mix(message.hash());
        }
    }
    mix(round.beep_rounds);
    mix(round.total_beeps);
    mix(round.phase1_false_negatives);
    mix(round.phase1_false_positives);
    mix(round.phase2_errors);
    mix(round.delivery_mismatches);
    return h;
}

std::uint64_t run_fingerprint(const BeepTransport& transport,
                              const std::vector<std::optional<Bitstring>>& messages,
                              const FaultModel& faults) {
    std::uint64_t h = 0;
    for (std::uint64_t nonce = 0; nonce < 3; ++nonce) {
        h = mix64(h ^ fingerprint(transport.simulate_round(messages, nonce, faults)));
    }
    return h;
}

/// The same three-round digest as run_fingerprint, but simulated through a
/// single batched simulate_rounds call — the goldens must not care which
/// path produced the rounds.
std::uint64_t batched_fingerprint(const Transport& transport,
                                  const std::vector<std::optional<Bitstring>>& messages,
                                  const FaultModel& faults) {
    std::vector<RoundSpec> specs;
    for (std::uint64_t nonce = 0; nonce < 3; ++nonce) {
        specs.push_back(RoundSpec{&messages, nonce, faults.empty() ? nullptr : &faults});
    }
    std::uint64_t h = 0;
    for (const auto& round : transport.simulate_rounds(specs)) {
        h = mix64(h ^ fingerprint(round));
    }
    return h;
}

SimulationParams noisy_params(DictionaryPolicy policy, std::size_t threads = 1) {
    SimulationParams params;
    params.epsilon = 0.1;
    params.message_bits = 10;
    params.c_eps = 4;
    params.dictionary = policy;
    params.threads = threads;
    return params;
}

void expect_equal_rounds(const TransportRound& a, const TransportRound& b) {
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.beep_rounds, b.beep_rounds);
    EXPECT_EQ(a.total_beeps, b.total_beeps);
    EXPECT_EQ(a.phase1_false_negatives, b.phase1_false_negatives);
    EXPECT_EQ(a.phase1_false_positives, b.phase1_false_positives);
    EXPECT_EQ(a.phase2_errors, b.phase2_errors);
    EXPECT_EQ(a.delivery_mismatches, b.delivery_mismatches);
    EXPECT_EQ(a.perfect, b.perfect);
}

// Golden fingerprints captured by running the scenarios below on the seed
// (pre-codebook) implementation of BeepTransport at commit 6b6a934.
constexpr std::uint64_t kGoldenTwoHopPlain = 0x82c6aaa1661aa3eaULL;
constexpr std::uint64_t kGoldenTwoHopFaults = 0x2d7eb0a121342769ULL;
constexpr std::uint64_t kGoldenAllNodesPlain = 0x82c6aaa1661aa3eaULL;
constexpr std::uint64_t kGoldenAllNodesFaults = 0xcf836c6fc717b592ULL;
constexpr std::uint64_t kGoldenNoiseless = 0x4c90d81a92c67923ULL;

class TransportEquivalence : public ::testing::Test {
protected:
    TransportEquivalence() : graph_(make_graph()), messages_(make_messages(graph_, 10, 1234)) {
        faults_.jammers = {3};
        faults_.crashed = {7, 11};
    }

    static Graph make_graph() {
        Rng rng(42);
        return make_erdos_renyi(32, 0.18, rng);
    }

    Graph graph_;
    std::vector<std::optional<Bitstring>> messages_;
    FaultModel faults_;
};

TEST_F(TransportEquivalence, MatchesSeedTwoHop) {
    const BeepTransport transport(graph_, noisy_params(DictionaryPolicy::two_hop));
    EXPECT_EQ(run_fingerprint(transport, messages_, FaultModel{}), kGoldenTwoHopPlain);
    EXPECT_EQ(run_fingerprint(transport, messages_, faults_), kGoldenTwoHopFaults);
}

TEST_F(TransportEquivalence, MatchesSeedAllNodes) {
    const BeepTransport transport(graph_, noisy_params(DictionaryPolicy::all_nodes));
    EXPECT_EQ(run_fingerprint(transport, messages_, FaultModel{}), kGoldenAllNodesPlain);
    EXPECT_EQ(run_fingerprint(transport, messages_, faults_), kGoldenAllNodesFaults);
}

TEST_F(TransportEquivalence, MatchesSeedNoiseless) {
    Rng rng(7);
    const Graph g = make_random_regular(20, 4, rng);
    const auto messages = make_messages(g, 8, 99, /*silent_fraction=*/0.0);
    SimulationParams params;
    params.epsilon = 0.0;
    params.message_bits = 8;
    params.c_eps = 4;
    params.threads = 1;
    const BeepTransport transport(g, params);
    EXPECT_EQ(fingerprint(transport.simulate_round(messages, 5)), kGoldenNoiseless);
}

TEST_F(TransportEquivalence, BatchedRoundsMatchGoldenFingerprints) {
    // simulate_rounds with batch size 3 must reproduce the seed-pinned
    // fingerprints exactly, for both policies, with and without faults.
    const BeepTransport two_hop(graph_, noisy_params(DictionaryPolicy::two_hop));
    EXPECT_EQ(batched_fingerprint(two_hop, messages_, FaultModel{}), kGoldenTwoHopPlain);
    EXPECT_EQ(batched_fingerprint(two_hop, messages_, faults_), kGoldenTwoHopFaults);
    const BeepTransport all_nodes(graph_, noisy_params(DictionaryPolicy::all_nodes));
    EXPECT_EQ(batched_fingerprint(all_nodes, messages_, FaultModel{}), kGoldenAllNodesPlain);
    EXPECT_EQ(batched_fingerprint(all_nodes, messages_, faults_), kGoldenAllNodesFaults);
}

TEST_F(TransportEquivalence, BitslicedDecoderMatchesGoldenFingerprints) {
    // Forcing the bitsliced phase-1 kernel below its size crossover must
    // not change a single output bit: the goldens pin the bitsliced decode
    // end to end (single and batched paths).
    SimulationParams params = noisy_params(DictionaryPolicy::all_nodes);
    params.bitslice_min_candidates = 0;
    const BeepTransport transport(graph_, params);
    EXPECT_EQ(run_fingerprint(transport, messages_, FaultModel{}), kGoldenAllNodesPlain);
    EXPECT_EQ(run_fingerprint(transport, messages_, faults_), kGoldenAllNodesFaults);
    EXPECT_EQ(batched_fingerprint(transport, messages_, FaultModel{}), kGoldenAllNodesPlain);
    EXPECT_EQ(batched_fingerprint(transport, messages_, faults_), kGoldenAllNodesFaults);
}

TEST_F(TransportEquivalence, ExplicitIidChannelMatchesGoldenFingerprints) {
    // Carrying the channel as an explicit ChannelModel::iid instead of the
    // legacy epsilon-only configuration must not change a single bit: the
    // ChannelModel refactor is golden-pinned for the paper's channel.
    SimulationParams params = noisy_params(DictionaryPolicy::two_hop);
    params.channel = ChannelModel::iid(params.epsilon);
    const BeepTransport transport(graph_, params);
    EXPECT_EQ(run_fingerprint(transport, messages_, FaultModel{}), kGoldenTwoHopPlain);
    EXPECT_EQ(run_fingerprint(transport, messages_, faults_), kGoldenTwoHopFaults);
}

TEST_F(TransportEquivalence, NullMessagesAreRejectedPerSpec) {
    // RoundSpec::messages is a non-owning pointer; both transports must
    // require() it non-null per spec instead of dereferencing.
    const BeepTransport transport(graph_, noisy_params(DictionaryPolicy::two_hop));
    const RoundSpec good{&messages_, 0, nullptr};
    const RoundSpec null_spec{nullptr, 1, nullptr};
    const std::vector<RoundSpec> specs{good, null_spec};
    EXPECT_THROW(transport.simulate_rounds(specs), precondition_error);

    TdmaParams tdma_params;
    tdma_params.message_bits = 10;
    const TdmaTransport tdma(graph_, tdma_params);
    EXPECT_THROW(tdma.simulate_rounds({&null_spec, 1}), precondition_error);
}

TEST_F(TransportEquivalence, BatchSizeOneMatchesSimulateRound) {
    for (const auto policy : {DictionaryPolicy::two_hop, DictionaryPolicy::all_nodes}) {
        const BeepTransport transport(graph_, noisy_params(policy));
        const RoundSpec spec{&messages_, 7, &faults_};
        const auto batched = transport.simulate_rounds({&spec, 1});
        ASSERT_EQ(batched.size(), 1u);
        expect_equal_rounds(batched.front(), transport.simulate_round(messages_, 7, faults_));
    }
}

TEST_F(TransportEquivalence, BatchedThreadCountDoesNotChangeOutputs) {
    // The pipelined batch (threads > 1 overlaps codebook builds with
    // decoding) must agree round-for-round with the serial batch.
    for (const auto policy : {DictionaryPolicy::two_hop, DictionaryPolicy::all_nodes}) {
        const BeepTransport serial(graph_, noisy_params(policy, 1));
        const BeepTransport threaded(graph_, noisy_params(policy, 4));
        std::vector<RoundSpec> specs;
        for (std::uint64_t nonce = 0; nonce < 4; ++nonce) {
            specs.push_back(RoundSpec{&messages_, nonce, nonce % 2 == 0 ? nullptr : &faults_});
        }
        const auto serial_rounds = serial.simulate_rounds(specs);
        const auto threaded_rounds = threaded.simulate_rounds(specs);
        ASSERT_EQ(serial_rounds.size(), threaded_rounds.size());
        for (std::size_t i = 0; i < serial_rounds.size(); ++i) {
            expect_equal_rounds(serial_rounds[i], threaded_rounds[i]);
        }
    }
}

TEST_F(TransportEquivalence, ThreadCountDoesNotChangeOutputs) {
    for (const auto policy : {DictionaryPolicy::two_hop, DictionaryPolicy::all_nodes}) {
        const BeepTransport serial(graph_, noisy_params(policy, 1));
        const BeepTransport threaded(graph_, noisy_params(policy, 4));
        for (std::uint64_t nonce = 0; nonce < 2; ++nonce) {
            expect_equal_rounds(serial.simulate_round(messages_, nonce),
                                threaded.simulate_round(messages_, nonce));
            expect_equal_rounds(serial.simulate_round(messages_, nonce, faults_),
                                threaded.simulate_round(messages_, nonce, faults_));
        }
    }
}

TEST_F(TransportEquivalence, SharedCodebookCacheMatchesGoldenFingerprints) {
    // With the process-wide CodebookCache enabled (the default), every seed
    // fingerprint is unchanged, and two transports agreeing on the
    // codebook-relevant parameters decode through the same Codebook object
    // even when they disagree on thread count.
    CodebookCache::instance().clear();
    const BeepTransport two_hop(graph_, noisy_params(DictionaryPolicy::two_hop, 1));
    const BeepTransport two_hop_threaded(graph_, noisy_params(DictionaryPolicy::two_hop, 4));
    EXPECT_EQ(&two_hop.codebook(), &two_hop_threaded.codebook());
    EXPECT_EQ(run_fingerprint(two_hop, messages_, FaultModel{}), kGoldenTwoHopPlain);
    EXPECT_EQ(run_fingerprint(two_hop_threaded, messages_, faults_), kGoldenTwoHopFaults);

    const BeepTransport all_nodes(graph_, noisy_params(DictionaryPolicy::all_nodes));
    EXPECT_EQ(batched_fingerprint(all_nodes, messages_, FaultModel{}), kGoldenAllNodesPlain);
    EXPECT_EQ(batched_fingerprint(all_nodes, messages_, faults_), kGoldenAllNodesFaults);

    const auto stats = CodebookCache::instance().stats();
    EXPECT_EQ(stats.builds, 2u);  // one per dictionary policy
    EXPECT_EQ(stats.hits, 1u);    // the threaded two_hop transport
}

TEST_F(TransportEquivalence, PrivateCodebookMatchesGoldenFingerprints) {
    // Opting out of the shared cache must not change a single bit either:
    // the two build modes are golden-pinned against the same seed values.
    SimulationParams params = noisy_params(DictionaryPolicy::two_hop);
    params.shared_codebook = false;
    const BeepTransport transport(graph_, params);
    EXPECT_EQ(run_fingerprint(transport, messages_, FaultModel{}), kGoldenTwoHopPlain);
    EXPECT_EQ(run_fingerprint(transport, messages_, faults_), kGoldenTwoHopFaults);
}

TEST_F(TransportEquivalence, CodesAndCodewordsBuiltOncePerRound) {
    // The once-per-transport counters need a private codebook: a shared one
    // aggregates every transport that ever hit the same cache entry.
    SimulationParams private_params = noisy_params(DictionaryPolicy::two_hop);
    private_params.shared_codebook = false;
    const BeepTransport transport(graph_, private_params);
    const std::size_t n = graph_.node_count();
    const std::size_t decoys = transport.params().decoy_count;

    auto stats = transport.codebook().stats();
    EXPECT_EQ(stats.code_builds, 1u);   // built in the constructor
    EXPECT_EQ(stats.round_builds, 0u);  // no round simulated yet

    transport.simulate_round(messages_, 0);
    stats = transport.codebook().stats();
    EXPECT_EQ(stats.round_builds, 1u);
    EXPECT_EQ(stats.codeword_builds, n + decoys);
    EXPECT_EQ(stats.payload_encodes, n + 1 + decoys);

    // Re-simulating the same round (same messages + nonce, faults included)
    // must not regenerate any code, codeword, or encoding.
    transport.simulate_round(messages_, 0);
    transport.simulate_round(messages_, 0, faults_);
    stats = transport.codebook().stats();
    EXPECT_EQ(stats.code_builds, 1u);
    EXPECT_EQ(stats.round_builds, 1u);
    EXPECT_EQ(stats.codeword_builds, n + decoys);
    EXPECT_EQ(stats.payload_encodes, n + 1 + decoys);

    // A fresh nonce is a new round: exactly one more rebuild.
    transport.simulate_round(messages_, 1);
    stats = transport.codebook().stats();
    EXPECT_EQ(stats.code_builds, 1u);
    EXPECT_EQ(stats.round_builds, 2u);
    EXPECT_EQ(stats.codeword_builds, 2 * (n + decoys));
}

TEST(TdmaEquivalence, ThreadCountDoesNotChangeOutputs) {
    Rng rng(11);
    const Graph g = make_erdos_renyi(24, 0.2, rng);
    const auto messages = make_messages(g, 8, 5);
    TdmaParams serial_params;
    serial_params.epsilon = 0.1;
    serial_params.message_bits = 8;
    serial_params.repetitions = 9;
    serial_params.threads = 1;
    TdmaParams threaded_params = serial_params;
    threaded_params.threads = 4;
    const TdmaTransport serial(g, serial_params);
    const TdmaTransport threaded(g, threaded_params);
    for (std::uint64_t nonce = 0; nonce < 3; ++nonce) {
        expect_equal_rounds(serial.simulate_round(messages, nonce),
                            threaded.simulate_round(messages, nonce));
    }
}

TEST(TdmaEquivalence, BatchedRoundsMatchSingleRounds) {
    Rng rng(12);
    const Graph g = make_erdos_renyi(20, 0.25, rng);
    const auto messages = make_messages(g, 8, 17);
    TdmaParams params;
    params.epsilon = 0.1;
    params.message_bits = 8;
    params.repetitions = 7;
    params.threads = 1;
    const TdmaTransport transport(g, params);
    std::vector<RoundSpec> specs;
    for (std::uint64_t nonce = 0; nonce < 3; ++nonce) {
        specs.push_back(RoundSpec{&messages, nonce, nullptr});
    }
    const auto batched = transport.simulate_rounds(specs);
    ASSERT_EQ(batched.size(), specs.size());
    for (std::uint64_t nonce = 0; nonce < specs.size(); ++nonce) {
        expect_equal_rounds(batched[nonce], transport.simulate_round(messages, nonce));
    }
    FaultModel faults;
    faults.jammers = {1};
    const RoundSpec faulty{&messages, 0, &faults};
    EXPECT_THROW(transport.simulate_rounds({&faulty, 1}), precondition_error);
}

}  // namespace
}  // namespace nb
