// ArtifactStore tests (serve/store.h): versioned puts, cput semantics and
// the two-writer race, and the crash-safety property the store exists for —
// recovery from temp debris and from finals truncated at EVERY byte
// boundary always lands on the last complete version, never a torn one.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/failpoint.h"
#include "scenarios/sweep.h"
#include "serve/store.h"

namespace nb {
namespace {

std::string scratch(const std::string& leaf) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->name() + "." + leaf;
}

void remove_tree(const std::string& dir) {
    // Test scratch directories are flat; remove files then the directory.
    const std::string command = "rm -rf '" + dir + "'";
    [[maybe_unused]] const int rc = std::system(command.c_str());
}

std::string read_file(const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        return {};
    }
    std::string text;
    char buffer[1 << 12];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
        text.append(buffer, got);
    }
    std::fclose(file);
    return text;
}

void write_file(const std::string& path, const std::string& text) {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr) << path;
    ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), file), text.size());
    std::fclose(file);
}

class StoreTest : public ::testing::Test {
protected:
    void TearDown() override {
        failpoint::clear_all();
        if (!dir_.empty()) {
            remove_tree(dir_);
        }
    }

    std::string fresh_dir(const std::string& leaf) {
        dir_ = scratch(leaf);
        remove_tree(dir_);
        return dir_;
    }

    std::string dir_;
};

TEST_F(StoreTest, PutGetRoundTripsAndVersionsAreMonotonic) {
    ArtifactStore store(fresh_dir("roundtrip"));
    EXPECT_EQ(store.put("result", "alpha"), 1u);
    EXPECT_EQ(store.put("result", "beta"), 2u);
    EXPECT_EQ(store.put("other", ""), 1u);  // empty payloads are valid

    const auto latest = store.get("result");
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->version, 2u);
    EXPECT_EQ(latest->bytes, "beta");

    // History is retained: the superseded version is still readable.
    const auto v1 = store.get("result", 1);
    ASSERT_TRUE(v1.has_value());
    EXPECT_EQ(v1->bytes, "alpha");

    const auto empty = store.get("other");
    ASSERT_TRUE(empty.has_value());
    EXPECT_EQ(empty->bytes, "");

    EXPECT_FALSE(store.get("missing").has_value());
    EXPECT_FALSE(store.get("result", 3).has_value());

    const auto entries = store.list();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].name, "other");
    EXPECT_EQ(entries[1].name, "result");
    EXPECT_EQ(entries[1].latest_version, 2u);
    EXPECT_EQ(entries[1].bytes, 4u);
}

TEST_F(StoreTest, RejectsInvalidNames) {
    ArtifactStore store(fresh_dir("names"));
    EXPECT_THROW(store.put("", "x"), precondition_error);
    EXPECT_THROW(store.put("../escape", "x"), precondition_error);
    EXPECT_THROW(store.put("a/b", "x"), precondition_error);
    EXPECT_THROW(store.put(".hidden", "x"), precondition_error);
    EXPECT_THROW(store.put(std::string(300, 'a'), "x"), precondition_error);
    EXPECT_EQ(store.put("ok-name_1.json", "x"), 1u);
}

TEST_F(StoreTest, VersionsSurviveReopen) {
    const std::string dir = fresh_dir("reopen");
    {
        ArtifactStore store(dir);
        store.put("result", "v1");
        store.put("result", "v2");
    }
    ArtifactStore reopened(dir);
    const auto latest = reopened.get("result");
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->version, 2u);
    EXPECT_EQ(latest->bytes, "v2");
    // Monotonic across restarts: the next put does not reuse version 3... 2.
    EXPECT_EQ(reopened.put("result", "v3"), 3u);
}

TEST_F(StoreTest, CputPublishesOnlyOnMatchingVersion) {
    ArtifactStore store(fresh_dir("cput"));
    // expected=0 means "must not exist".
    EXPECT_EQ(store.cput("obj", "first", 0), std::optional<std::uint64_t>(1));
    EXPECT_EQ(store.cput("obj", "dup", 0), std::nullopt);
    // Normal compare-and-put chain.
    EXPECT_EQ(store.cput("obj", "second", 1), std::optional<std::uint64_t>(2));
    EXPECT_EQ(store.cput("obj", "stale", 1), std::nullopt);
    const auto latest = store.get("obj");
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->bytes, "second");
}

TEST_F(StoreTest, CputRaceHasExactlyOneWinner) {
    ArtifactStore store(fresh_dir("race"));
    store.put("contended", "base");  // version 1

    std::atomic<int> ready{0};
    std::atomic<int> winners{0};
    std::vector<std::thread> writers;
    for (int i = 0; i < 2; ++i) {
        writers.emplace_back([&, i] {
            // Barrier so both writers observe version 1 before either puts.
            ready.fetch_add(1);
            while (ready.load() < 2) {
            }
            if (store.cput("contended", "writer-" + std::to_string(i), 1).has_value()) {
                winners.fetch_add(1);
            }
        });
    }
    for (auto& writer : writers) {
        writer.join();
    }
    EXPECT_EQ(winners.load(), 1);
    const auto latest = store.get("contended");
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->version, 2u);
}

TEST_F(StoreTest, RecoveryDeletesTempDebris) {
    const std::string dir = fresh_dir("debris");
    {
        ArtifactStore store(dir);
        store.put("result", "good");
    }
    // What a crash between fsync and rename leaves behind.
    write_file(dir + "/result.v2.tmp", "half-written");
    write_file(dir + "/unrelated.v1.tmp", "junk");

    ArtifactStore recovered(dir);
    EXPECT_EQ(read_file(dir + "/result.v2.tmp"), "");
    EXPECT_EQ(read_file(dir + "/unrelated.v1.tmp"), "");
    const auto latest = recovered.get("result");
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->version, 1u);
    EXPECT_EQ(latest->bytes, "good");
    // The unpublished version number is reused — it never existed.
    EXPECT_EQ(recovered.put("result", "next"), 2u);
}

// The crash-safety property: truncate the NEWEST version's file at every
// byte boundary (including zero) and reopen. Whatever the cut point, the
// store must recover to the last complete version — the torn file is
// deleted, never served, and the older version is intact.
TEST_F(StoreTest, TruncationAtEveryByteBoundaryRecoversToLastCompleteVersion) {
    const std::string dir = fresh_dir("torn");
    std::string full;
    {
        ArtifactStore store(dir);
        store.put("result", "the first complete version");
        store.put("result", "the second version, about to be torn");
        full = read_file(dir + "/result.v2");
        ASSERT_FALSE(full.empty());
    }

    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        write_file(dir + "/result.v2", full.substr(0, cut));
        ArtifactStore recovered(dir);
        const auto latest = recovered.get("result");
        ASSERT_TRUE(latest.has_value()) << "cut=" << cut;
        EXPECT_EQ(latest->version, 1u) << "cut=" << cut;
        EXPECT_EQ(latest->bytes, "the first complete version") << "cut=" << cut;
        // The torn file is gone, not just ignored.
        EXPECT_EQ(read_file(dir + "/result.v2"), "") << "cut=" << cut;
    }

    // The untruncated file survives recovery unchanged.
    write_file(dir + "/result.v2", full);
    ArtifactStore recovered(dir);
    const auto latest = recovered.get("result");
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->version, 2u);
}

TEST_F(StoreTest, CorruptPayloadFailsTheChecksumAndIsDeleted) {
    const std::string dir = fresh_dir("checksum");
    {
        ArtifactStore store(dir);
        store.put("result", "payload-bytes");
    }
    std::string text = read_file(dir + "/result.v1");
    ASSERT_FALSE(text.empty());
    text.back() = text.back() == 'x' ? 'y' : 'x';  // same length, wrong bytes
    write_file(dir + "/result.v1", text);

    ArtifactStore recovered(dir);
    EXPECT_FALSE(recovered.get("result").has_value());
    EXPECT_EQ(read_file(dir + "/result.v1"), "");
}

// The store.put failpoint fires in the durable-but-unpublished window. The
// put must fail cleanly (bad_alloc → classified transient by the serve
// boundary), leave no debris behind the RAII guard, keep the store fully
// usable, and a reopened store must recover to the last published version.
TEST_F(StoreTest, InjectedOomMidPutLeavesStoreRecoverable) {
    const std::string dir = fresh_dir("oom");
    {
        ArtifactStore store(dir);
        store.put("result", "published");

        failpoint::Config config;
        config.mode = failpoint::Mode::oom;
        config.max_hits = 1;
        failpoint::configure("store.put", config);
        EXPECT_THROW(store.put("result", "never-published"), std::bad_alloc);

        // The fault is classified transient — exactly what the serve
        // executor's retry boundary needs.
        try {
            failpoint::Config again;
            again.mode = failpoint::Mode::oom;
            again.max_hits = 1;
            failpoint::configure("store.put", again);
            store.put("result", "never-published");
            FAIL() << "second injected put should have thrown";
        } catch (...) {
            const JobError error = classify_job_error(std::current_exception());
            EXPECT_EQ(error.kind, "transient");
        }

        // In-process state is untouched: same version, same bytes, and the
        // healed put continues the version chain.
        const auto latest = store.get("result");
        ASSERT_TRUE(latest.has_value());
        EXPECT_EQ(latest->version, 1u);
        EXPECT_EQ(latest->bytes, "published");
        EXPECT_EQ(store.put("result", "after-heal"), 2u);
    }

    // No temp debris; recovery sees only complete versions.
    ArtifactStore recovered(dir);
    const auto latest = recovered.get("result");
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->version, 2u);
    EXPECT_EQ(latest->bytes, "after-heal");
}

}  // namespace
}  // namespace nb
