// Unit tests for math utilities, bit packing, and the table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "common/bitpack.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/table.h"

namespace nb {
namespace {

TEST(MathUtil, CeilLog2) {
    EXPECT_EQ(ceil_log2(1), 0u);
    EXPECT_EQ(ceil_log2(2), 1u);
    EXPECT_EQ(ceil_log2(3), 2u);
    EXPECT_EQ(ceil_log2(4), 2u);
    EXPECT_EQ(ceil_log2(5), 3u);
    EXPECT_EQ(ceil_log2(1024), 10u);
    EXPECT_EQ(ceil_log2(1025), 11u);
    EXPECT_THROW(ceil_log2(0), precondition_error);
}

TEST(MathUtil, FloorLog2) {
    EXPECT_EQ(floor_log2(1), 0u);
    EXPECT_EQ(floor_log2(2), 1u);
    EXPECT_EQ(floor_log2(3), 1u);
    EXPECT_EQ(floor_log2(1024), 10u);
    EXPECT_THROW(floor_log2(0), precondition_error);
}

TEST(MathUtil, CeilDiv) {
    EXPECT_EQ(ceil_div(0, 3), 0u);
    EXPECT_EQ(ceil_div(1, 3), 1u);
    EXPECT_EQ(ceil_div(3, 3), 1u);
    EXPECT_EQ(ceil_div(4, 3), 2u);
    EXPECT_THROW(ceil_div(4, 0), precondition_error);
}

TEST(MathUtil, LogStar) {
    EXPECT_EQ(log_star(1.0), 0u);
    EXPECT_EQ(log_star(2.0), 1u);
    EXPECT_EQ(log_star(4.0), 2u);
    EXPECT_EQ(log_star(16.0), 3u);
    EXPECT_EQ(log_star(65536.0), 4u);
}

TEST(MathUtil, RoundUpToMultiple) {
    EXPECT_EQ(round_up_to_multiple(0, 4), 0u);
    EXPECT_EQ(round_up_to_multiple(1, 4), 4u);
    EXPECT_EQ(round_up_to_multiple(4, 4), 4u);
    EXPECT_EQ(round_up_to_multiple(5, 4), 8u);
}

TEST(Summary, Statistics) {
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(BitPack, RoundTrip) {
    BitWriter writer(32);
    writer.write(5, 3);
    writer.write(0, 4);
    writer.write(1023, 10);
    EXPECT_EQ(writer.written(), 17u);

    BitReader reader(writer.bits());
    EXPECT_EQ(reader.read(3), 5u);
    EXPECT_EQ(reader.read(4), 0u);
    EXPECT_EQ(reader.read(10), 1023u);
    EXPECT_EQ(reader.remaining(), 15u);
}

TEST(BitPack, Full64BitField) {
    BitWriter writer(64);
    const std::uint64_t value = 0xdeadbeefcafef00dULL;
    writer.write(value, 64);
    BitReader reader(writer.bits());
    EXPECT_EQ(reader.read(64), value);
}

TEST(BitPack, OverflowChecks) {
    BitWriter writer(8);
    EXPECT_THROW(writer.write(4, 2), precondition_error);  // value does not fit
    writer.write(3, 2);
    EXPECT_THROW(writer.write(0, 7), precondition_error);  // capacity exceeded

    BitReader reader(writer.bits());
    reader.read(8);
    EXPECT_THROW(reader.read(1), precondition_error);  // out of data
}

TEST(Table, PrintsAlignedRows) {
    Table table({"x", "value"});
    table.add_row({"1", "10.00"});
    table.add_row({"2", "20.50"});
    std::ostringstream out;
    table.print(out, "demo");
    const std::string text = out.str();
    EXPECT_NE(text.find("== demo =="), std::string::npos);
    EXPECT_NE(text.find("| 1"), std::string::npos);
    EXPECT_NE(text.find("20.50"), std::string::npos);
}

TEST(Table, NumberFormatting) {
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(std::size_t{42}), "42");
}

TEST(Table, RejectsTooManyCells) {
    Table table({"only"});
    EXPECT_THROW(table.add_row({"a", "b"}), precondition_error);
}

}  // namespace
}  // namespace nb
