// Tests for the native Broadcast CONGEST / CONGEST engines.
#include <gtest/gtest.h>

#include <memory>

#include "common/bitpack.h"
#include "common/error.h"
#include "congest/algorithm.h"
#include "congest/native_engine.h"
#include "graph/generators.h"

namespace nb {
namespace {

/// Broadcasts its own id once and records everything heard per round.
class EchoNode final : public BroadcastCongestAlgorithm {
public:
    void initialize(NodeId self, const CongestInfo& info, Rng&) override {
        self_ = self;
        info_ = info;
    }

    std::optional<Bitstring> broadcast(std::size_t round, Rng&) override {
        if (round == 0) {
            BitWriter writer(info_.message_bits);
            writer.write(self_, 16);
            return writer.bits();
        }
        return std::nullopt;
    }

    void receive(std::size_t round, const std::vector<Bitstring>& messages, Rng&) override {
        if (round == 0) {
            for (const auto& message : messages) {
                BitReader reader(message);
                heard_.push_back(static_cast<NodeId>(reader.read(16)));
            }
        }
        done_ = true;
    }

    bool finished() const override { return done_; }

    const std::vector<NodeId>& heard() const noexcept { return heard_; }

private:
    NodeId self_ = 0;
    CongestInfo info_{};
    std::vector<NodeId> heard_;
    bool done_ = false;
};

/// CONGEST node that sends <self, neighbor> tagged payloads to each neighbor.
class DirectedNode final : public CongestAlgorithm {
public:
    void initialize(NodeId self, const CongestInfo& info, Rng&) override {
        self_ = self;
        info_ = info;
    }

    std::optional<Bitstring> send(std::size_t round, NodeId neighbor, Rng&) override {
        if (round > 0) {
            return std::nullopt;
        }
        BitWriter writer(info_.message_bits);
        writer.write(self_, 12);
        writer.write(neighbor, 12);
        return writer.bits();
    }

    void receive(std::size_t, const std::vector<AddressedMessage>& messages, Rng&) override {
        for (const auto& delivery : messages) {
            BitReader reader(delivery.payload);
            const auto claimed_sender = static_cast<NodeId>(reader.read(12));
            const auto target = static_cast<NodeId>(reader.read(12));
            correct_ &= claimed_sender == delivery.sender && target == self_;
            ++received_;
        }
        done_ = true;
    }

    bool finished() const override { return done_; }

    bool correct() const noexcept { return correct_; }
    std::size_t received() const noexcept { return received_; }

private:
    NodeId self_ = 0;
    CongestInfo info_{};
    bool correct_ = true;
    std::size_t received_ = 0;
    bool done_ = false;
};

TEST(NativeBroadcastCongest, DeliversNeighborMultiset) {
    const Graph g = make_ring(6);
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> nodes;
    std::vector<EchoNode*> raw;
    for (NodeId v = 0; v < 6; ++v) {
        auto node = std::make_unique<EchoNode>();
        raw.push_back(node.get());
        nodes.push_back(std::move(node));
    }
    NativeBroadcastCongestEngine engine(g, CongestParams{32, 7});
    const auto stats = engine.run(nodes, 10);
    EXPECT_TRUE(stats.all_finished);
    EXPECT_EQ(stats.rounds, 1u);
    EXPECT_EQ(stats.messages_sent, 6u);
    for (NodeId v = 0; v < 6; ++v) {
        ASSERT_EQ(raw[v]->heard().size(), 2u);
        const NodeId left = (v + 5) % 6;
        const NodeId right = (v + 1) % 6;
        EXPECT_TRUE((raw[v]->heard()[0] == left && raw[v]->heard()[1] == right) ||
                    (raw[v]->heard()[0] == right && raw[v]->heard()[1] == left));
    }
}

TEST(NativeBroadcastCongest, EnforcesMessageBudget) {
    class Oversender final : public BroadcastCongestAlgorithm {
    public:
        void initialize(NodeId, const CongestInfo&, Rng&) override {}
        std::optional<Bitstring> broadcast(std::size_t, Rng&) override {
            return Bitstring(64);
        }
        void receive(std::size_t, const std::vector<Bitstring>&, Rng&) override {}
        bool finished() const override { return false; }
    };
    const Graph g = make_path(2);
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> nodes;
    nodes.push_back(std::make_unique<Oversender>());
    nodes.push_back(std::make_unique<Oversender>());
    NativeBroadcastCongestEngine engine(g, CongestParams{32, 0});
    EXPECT_THROW(engine.run(nodes, 2), precondition_error);
}

TEST(NativeBroadcastCongest, RoundObserverFires) {
    const Graph g = make_ring(4);
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> nodes;
    for (NodeId v = 0; v < 4; ++v) {
        nodes.push_back(std::make_unique<EchoNode>());
    }
    NativeBroadcastCongestEngine engine(g, CongestParams{32, 1});
    std::vector<std::size_t> observed;
    engine.set_round_observer([&observed](std::size_t round) { observed.push_back(round); });
    engine.run(nodes, 10);
    EXPECT_EQ(observed, (std::vector<std::size_t>{0}));
}

TEST(NativeCongest, DeliversAddressedMessages) {
    Rng rng(3);
    const Graph g = make_erdos_renyi(12, 0.3, rng);
    std::vector<std::unique_ptr<CongestAlgorithm>> nodes;
    std::vector<DirectedNode*> raw;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        auto node = std::make_unique<DirectedNode>();
        raw.push_back(node.get());
        nodes.push_back(std::move(node));
    }
    NativeCongestEngine engine(g, CongestParams{32, 5});
    const auto stats = engine.run(nodes, 5);
    EXPECT_TRUE(stats.all_finished);
    EXPECT_EQ(stats.messages_sent, 2 * g.edge_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_TRUE(raw[v]->correct());
        EXPECT_EQ(raw[v]->received(), g.degree(v));
    }
}

TEST(NativeCongest, SortsDeliveriesBySender) {
    const Graph g = make_star(5);
    std::vector<std::unique_ptr<CongestAlgorithm>> nodes;
    std::vector<DirectedNode*> raw;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        auto node = std::make_unique<DirectedNode>();
        raw.push_back(node.get());
        nodes.push_back(std::move(node));
    }

    class Recorder final : public CongestAlgorithm {
    public:
        void initialize(NodeId, const CongestInfo&, Rng&) override {}
        std::optional<Bitstring> send(std::size_t, NodeId, Rng&) override {
            return std::nullopt;
        }
        void receive(std::size_t, const std::vector<AddressedMessage>& messages, Rng&) override {
            for (std::size_t i = 1; i < messages.size(); ++i) {
                sorted_ &= messages[i - 1].sender < messages[i].sender;
            }
            done_ = true;
        }
        bool finished() const override { return done_; }
        bool sorted() const noexcept { return sorted_; }

    private:
        bool sorted_ = true;
        bool done_ = false;
    };

    auto recorder = std::make_unique<Recorder>();
    const Recorder* recorder_ptr = recorder.get();
    nodes[0] = std::move(recorder);
    NativeCongestEngine engine(g, CongestParams{32, 5});
    engine.run(nodes, 3);
    EXPECT_TRUE(recorder_ptr->sorted());
}

TEST(MessageOrdering, CanonicalAndTotal) {
    const auto a = Bitstring::from_string("01");
    const auto b = Bitstring::from_string("10");
    const auto c = Bitstring::from_string("101");
    EXPECT_TRUE(message_less(a, c));   // shorter first
    EXPECT_FALSE(message_less(a, a));  // irreflexive
    EXPECT_TRUE(message_less(a, b) != message_less(b, a));  // antisymmetric
    std::vector<Bitstring> messages{c, b, a};
    sort_messages(messages);
    EXPECT_EQ(messages[2], c);
}

TEST(AlgorithmStream, MatchesAcrossEngines) {
    // The derivation used by native engines and beep simulation must agree.
    Rng a = algorithm_stream(42, 7);
    Rng b = algorithm_stream(42, 7);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
    Rng c = algorithm_stream(42, 8);
    bool differs = false;
    for (int i = 0; i < 10; ++i) {
        differs |= b.next_u64() != c.next_u64();
    }
    EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace nb
