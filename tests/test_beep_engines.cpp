// Tests for the two beeping-network engines, including the bit-exact
// equivalence property between RoundEngine and BatchEngine (dense noise).
#include <gtest/gtest.h>

#include <memory>

#include "beep/batch_engine.h"
#include "beep/round_engine.h"
#include "common/error.h"
#include "graph/generators.h"

namespace nb {
namespace {

/// Plays a fixed schedule on the round engine and records received bits.
class SchedulePlayer final : public BeepAlgorithm {
public:
    explicit SchedulePlayer(Bitstring schedule) : schedule_(std::move(schedule)) {}

    void initialize(NodeId, const NetworkInfo&, Rng&) override {}

    BeepAction act(std::size_t round, Rng&) override {
        return schedule_.test(round) ? BeepAction::beep : BeepAction::listen;
    }

    void receive(std::size_t round, bool received, Rng&) override {
        if (received) {
            heard_.set(round);
        }
        if (round + 1 == schedule_.size()) {
            done_ = true;
        }
    }

    bool finished() const override { return done_; }

    const Bitstring& heard() const noexcept { return heard_; }

    void reset() {
        heard_ = Bitstring(schedule_.size());
        done_ = false;
    }

    void prepare() { heard_ = Bitstring(schedule_.size()); }

private:
    Bitstring schedule_;
    Bitstring heard_;
    bool done_ = false;
};

std::vector<Bitstring> random_schedules(const Graph& graph, std::size_t length,
                                        std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Bitstring> schedules;
    schedules.reserve(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        schedules.push_back(Bitstring::random(rng, length));
    }
    return schedules;
}

TEST(BatchEngine, SuperimposeIsNeighborhoodOr) {
    const Graph g = make_path(3);  // 0-1-2
    std::vector<Bitstring> schedules{Bitstring::from_string("100"),
                                     Bitstring::from_string("010"),
                                     Bitstring::from_string("001")};
    const BatchEngine engine(g, BatchParams{}, Rng(1));
    // Node 0 hears itself + node 1.
    EXPECT_EQ(engine.superimpose(0, schedules).to_string(), "110");
    // Node 1 hears all three.
    EXPECT_EQ(engine.superimpose(1, schedules).to_string(), "111");
    // Exclusive: node 1 without its own beeps.
    EXPECT_EQ(engine.superimpose(1, schedules, false).to_string(), "101");
}

TEST(BatchEngine, NoiselessHearEqualsSuperimpose) {
    Rng rng(3);
    const Graph g = make_erdos_renyi(20, 0.2, rng);
    const auto schedules = random_schedules(g, 256, 17);
    const BatchEngine engine(g, BatchParams{}, Rng(5));
    for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_EQ(engine.hear(v, schedules), engine.superimpose(v, schedules));
    }
}

TEST(BatchEngine, ChecksScheduleShape) {
    const Graph g = make_path(3);
    const BatchEngine engine(g, BatchParams{}, Rng(1));
    std::vector<Bitstring> wrong_count{Bitstring(4), Bitstring(4)};
    EXPECT_THROW(engine.hear(0, wrong_count), precondition_error);
    std::vector<Bitstring> mismatched{Bitstring(4), Bitstring(5), Bitstring(4)};
    EXPECT_THROW(engine.hear(0, mismatched), precondition_error);
}

TEST(BatchEngine, NoiseFlipRate) {
    const Graph g = make_path(2);
    const std::size_t length = 100000;
    std::vector<Bitstring> silent{Bitstring(length), Bitstring(length)};
    BatchParams params;
    params.channel.epsilon = 0.15;
    const BatchEngine engine(g, params, Rng(7));
    const Bitstring heard = engine.hear(0, silent);
    EXPECT_NEAR(static_cast<double>(heard.count()) / length, 0.15, 0.01);
}

TEST(BatchEngine, HearIsDeterministicPerNode) {
    Rng rng(3);
    const Graph g = make_ring(10);
    const auto schedules = random_schedules(g, 128, 21);
    BatchParams params;
    params.channel.epsilon = 0.2;
    const BatchEngine engine(g, params, Rng(9));
    // Same node twice -> identical noise; evaluation order must not matter.
    EXPECT_EQ(engine.hear(3, schedules), engine.hear(3, schedules));
    const Bitstring first = engine.hear(7, schedules);
    engine.hear(2, schedules);
    EXPECT_EQ(engine.hear(7, schedules), first);
}

TEST(RoundEngine, DeliversNeighborhoodOr) {
    const Graph g = make_path(3);
    std::vector<std::unique_ptr<BeepAlgorithm>> nodes;
    std::vector<SchedulePlayer*> players;
    const std::vector<std::string> patterns{"1000", "0100", "0011"};
    for (const auto& pattern : patterns) {
        auto player = std::make_unique<SchedulePlayer>(Bitstring::from_string(pattern));
        player->prepare();
        players.push_back(player.get());
        nodes.push_back(std::move(player));
    }
    RoundEngine engine(g, ChannelParams{0.0, true}, Rng(1));
    const RunStats stats = engine.run(nodes, 10);
    EXPECT_EQ(stats.rounds, 4u);
    EXPECT_TRUE(stats.all_finished);
    EXPECT_EQ(stats.total_beeps, 4u);
    EXPECT_EQ(players[0]->heard().to_string(), "1100");
    EXPECT_EQ(players[1]->heard().to_string(), "1111");
    EXPECT_EQ(players[2]->heard().to_string(), "0111");
}

TEST(RoundEngine, StopsWhenAllFinish) {
    const Graph g = make_path(2);
    std::vector<std::unique_ptr<BeepAlgorithm>> nodes;
    for (int i = 0; i < 2; ++i) {
        auto player = std::make_unique<SchedulePlayer>(Bitstring::from_string("10"));
        player->prepare();
        nodes.push_back(std::move(player));
    }
    RoundEngine engine(g, ChannelParams{0.0, true}, Rng(1));
    const RunStats stats = engine.run(nodes, 100);
    EXPECT_EQ(stats.rounds, 2u);
    EXPECT_TRUE(stats.all_finished);
}

TEST(RoundEngine, RequiresOneAlgorithmPerNode) {
    const Graph g = make_path(3);
    std::vector<std::unique_ptr<BeepAlgorithm>> nodes;
    RoundEngine engine(g, ChannelParams{}, Rng(1));
    EXPECT_THROW(engine.run(nodes, 10), precondition_error);
}

TEST(ChannelParams, ValidatesEpsilon) {
    ChannelParams good{0.49, true};
    EXPECT_NO_THROW(good.validate());
    ChannelParams bad{0.5, true};
    EXPECT_THROW(bad.validate(), precondition_error);
    ChannelParams negative{-0.01, true};
    EXPECT_THROW(negative.validate(), precondition_error);
}

/// Property: playing schedules through RoundEngine matches BatchEngine in
/// dense-noise mode bit for bit (same base seed), across graphs and noise.
class EngineEquivalence : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(EngineEquivalence, BatchMatchesRound) {
    const auto [graph_id, epsilon] = GetParam();
    Rng graph_rng(graph_id);
    Graph g = [&]() {
        switch (graph_id % 4) {
            case 0:
                return make_ring(12);
            case 1:
                return make_complete_bipartite(4, 4);
            case 2:
                return make_erdos_renyi(20, 0.25, graph_rng);
            default:
                return make_star(9);
        }
    }();
    const std::size_t length = 96;
    const auto schedules = random_schedules(g, length, 1000 + graph_id);

    const Rng base(424242);

    // Batch side.
    BatchParams params;
    params.channel.epsilon = epsilon;
    params.dense_noise = true;
    const BatchEngine batch(g, params, base);

    // Round side.
    std::vector<std::unique_ptr<BeepAlgorithm>> nodes;
    std::vector<SchedulePlayer*> players;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        auto player = std::make_unique<SchedulePlayer>(schedules[v]);
        player->prepare();
        players.push_back(player.get());
        nodes.push_back(std::move(player));
    }
    RoundEngine round_engine(g, ChannelParams{epsilon, true}, base);
    round_engine.run(nodes, length);

    for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_EQ(players[v]->heard(), batch.hear(v, schedules))
            << "node " << v << " graph " << graph_id << " eps " << epsilon;
    }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndNoise, EngineEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(0.0, 0.05, 0.2, 0.45)));

}  // namespace
}  // namespace nb
