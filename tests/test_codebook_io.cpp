// Property tests for the codebook's three construction paths (DESIGN.md
// section 12): serialize -> mmap-load and delta builds must both be
// fingerprint-identical to a fresh build (for every shipped registry spec
// and for targeted graph edits), a file truncated at EVERY byte boundary
// must be rejected rather than half-adopted (mirroring test_store.cpp's
// torn-final property), and a warm directory must serve a second process's
// cold start from disk with zero rebuilds.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "graph/generators.h"
#include "scenarios/registry.h"
#include "sim/codebook.h"
#include "sim/codebook_cache.h"
#include "sim/codebook_io.h"
#include "sim/transport.h"

namespace nb {
namespace {

std::string scratch(const std::string& leaf) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->name() + "." + leaf;
}

void remove_tree(const std::string& dir) {
    const std::string command = "rm -rf '" + dir + "'";
    [[maybe_unused]] const int rc = std::system(command.c_str());
}

std::string read_file(const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        return {};
    }
    std::string text;
    char buffer[1 << 12];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
        text.append(buffer, got);
    }
    std::fclose(file);
    return text;
}

void write_file(const std::string& path, const std::string& text) {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr) << path;
    ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), file), text.size());
    std::fclose(file);
}

SimulationParams small_params() {
    SimulationParams params;
    params.message_bits = 8;
    params.c_eps = 4;
    params.decoy_count = 4;
    return params;
}

std::vector<std::optional<Bitstring>> random_messages(const Graph& graph,
                                                      std::size_t message_bits,
                                                      std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::optional<Bitstring>> messages(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        messages[v] = Bitstring::random(rng, message_bits);
    }
    return messages;
}

TEST(CodebookIoProperty, MmapLoadIsFingerprintIdenticalForEveryShippedSpec) {
    const std::string path = scratch("spec.nbc");
    for (const auto& spec : scenarios::shipped_scenarios()) {
        if (spec.transport == TransportKind::tdma) {
            continue;  // the baseline has no codebook to serialize
        }
        SCOPED_TRACE(spec.name);
        const Graph graph = spec.topology.build();
        const SimulationParams params = CodebookCache::canonical_params(spec.sim_params());
        const Codebook fresh(graph, params);

        save_codebook(fresh, path);
        std::string error;
        const auto file = CodebookFile::map(path, &error);
        ASSERT_NE(file, nullptr) << error;
        EXPECT_EQ(file->header().fingerprint, fresh.fingerprint());

        const Codebook loaded(graph, params, file);
        EXPECT_EQ(loaded.fingerprint(), fresh.fingerprint());
        EXPECT_EQ(loaded.backing_file(), file.get());
        EXPECT_EQ(loaded.memory_bytes(), fresh.memory_bytes());
    }
    ::unlink(path.c_str());
}

TEST(CodebookIoProperty, TruncationAtEveryByteBoundaryIsRejected) {
    const std::string path = scratch("full.nbc");
    const std::string torn_path = scratch("torn.nbc");
    Rng rng(0x10);
    const Graph graph = make_random_regular(24, 4, rng);
    const Codebook fresh(graph, small_params());
    save_codebook(fresh, path);

    const std::string full = read_file(path);
    ASSERT_FALSE(full.empty());
    ASSERT_NE(CodebookFile::map(path), nullptr) << "untruncated file must load";

    for (std::size_t keep = 0; keep < full.size(); ++keep) {
        write_file(torn_path, full.substr(0, keep));
        EXPECT_EQ(CodebookFile::map(torn_path), nullptr) << "accepted at byte " << keep;
    }
    // Trailing garbage is torn-in-reverse: the exact-size check rejects it.
    write_file(torn_path, full + "x");
    EXPECT_EQ(CodebookFile::map(torn_path), nullptr);
    // A payload bit flip survives the size check and dies on the checksum.
    std::string corrupt = full;
    corrupt[full.size() - 1] ^= 1;
    write_file(torn_path, corrupt);
    EXPECT_EQ(CodebookFile::map(torn_path), nullptr);

    ::unlink(path.c_str());
    ::unlink(torn_path.c_str());
}

TEST(CodebookIoProperty, MmapAdoptionRejectsMismatchedGraphAndParams) {
    const std::string path = scratch("identity.nbc");
    Rng rng(0x11);
    const Graph graph = make_random_regular(24, 4, rng);
    const SimulationParams params = small_params();
    const Codebook fresh(graph, params);
    save_codebook(fresh, path);
    const auto file = CodebookFile::map(path);
    ASSERT_NE(file, nullptr);

    Rng rng2(0x12);
    const Graph other = make_random_regular(24, 4, rng2);
    EXPECT_THROW(Codebook(other, params, file), precondition_error);

    SimulationParams other_params = params;
    other_params.transport_seed += 1;
    EXPECT_THROW(Codebook(graph, other_params, file), precondition_error);

    // The fields canonical_params normalizes away are NOT identity: a
    // different epsilon adopts the same file.
    SimulationParams non_key = params;
    non_key.epsilon = 0.25;
    const Codebook adopted(graph, non_key, file);
    EXPECT_EQ(adopted.fingerprint(), fresh.fingerprint());
    ::unlink(path.c_str());
}

TEST(CodebookDeltaProperty, GraphEditsAreFingerprintIdenticalAndReuseRows) {
    Rng rng(0x21);
    const std::size_t n = 96;
    const Graph base_graph = make_random_regular(n, 6, rng);
    const SimulationParams params = small_params();
    const Codebook base(base_graph, params);
    const std::vector<Edge> base_edges = base_graph.edges();

    struct Case {
        const char* name;
        std::size_t node_count;
        std::vector<Edge> edges;
    };
    std::vector<Case> cases;
    {
        // Add one node wired to three existing nodes.
        std::vector<Edge> edges = base_edges;
        edges.push_back(Edge{3, static_cast<NodeId>(n)});
        edges.push_back(Edge{40, static_cast<NodeId>(n)});
        edges.push_back(Edge{77, static_cast<NodeId>(n)});
        cases.push_back({"add-node", n + 1, std::move(edges)});
    }
    {
        // Remove a node, modeled as isolating it (node ids are stable).
        std::vector<Edge> edges;
        for (const Edge& e : base_edges) {
            if (e.first != 17 && e.second != 17) {
                edges.push_back(e);
            }
        }
        cases.push_back({"isolate-node", n, std::move(edges)});
    }
    {
        // Rewire: drop one edge, add a currently-absent one elsewhere.
        std::vector<Edge> edges = base_edges;
        edges.erase(edges.begin());
        const auto present = [&edges](NodeId a, NodeId b) {
            for (const Edge& e : edges) {
                if ((e.first == a && e.second == b) || (e.first == b && e.second == a)) {
                    return true;
                }
            }
            return false;
        };
        NodeId b = 60;
        while (present(5, b) || b == 5) {
            ++b;
        }
        edges.push_back(Edge{5, b});
        cases.push_back({"edge-edit", n, std::move(edges)});
    }

    for (const Case& c : cases) {
        SCOPED_TRACE(c.name);
        const Graph edited = Graph::from_edges(c.node_count, c.edges);
        const Codebook fresh(edited, params);
        const Codebook delta(edited, params, base);

        EXPECT_EQ(delta.fingerprint(), fresh.fingerprint());
        const Codebook::Stats stats = delta.stats();
        EXPECT_GT(stats.dictionary_rows_reused, 0u) << "delta degraded to a full rebuild";
        EXPECT_EQ(stats.dictionary_rows_built + stats.dictionary_rows_reused,
                  edited.node_count());
        EXPECT_EQ(stats.delta_full_rebuilds, 0u);
        // The code triple is shared exactly when the beep-code geometry is
        // unchanged — i.e. when the edit kept the max degree (isolate-node
        // here; the add/rewire cases push a regular graph's degree up).
        const bool same_geometry =
            params.beep_code_length(edited.max_degree()) ==
            params.beep_code_length(base_graph.max_degree());
        EXPECT_EQ(stats.code_builds, same_geometry ? 0u : 1u);
    }

    // Shrinking the node count falls back (entry ids renumber under rows)
    // but still lands on the fresh fingerprint.
    const Graph shrunk = make_random_regular(n / 2, 6, rng);
    const Codebook fresh_shrunk(shrunk, params);
    const Codebook delta_shrunk(shrunk, params, base);
    EXPECT_EQ(delta_shrunk.fingerprint(), fresh_shrunk.fingerprint());
    EXPECT_EQ(delta_shrunk.stats().delta_full_rebuilds, 1u);
}

TEST(CodebookDeltaProperty, SameNonceRoundReuseIsBitIdentical) {
    Rng rng(0x31);
    const std::size_t n = 64;
    const Graph graph = make_random_regular(n, 6, rng);
    const SimulationParams params = small_params();
    const Codebook book(graph, params);

    const auto messages_a = random_messages(graph, params.message_bits, 1);
    auto messages_b = messages_a;
    messages_b[10] = Bitstring::random(rng, params.message_bits);  // one changed
    messages_b[11].reset();                                        // one went silent

    const std::uint64_t nonce = 7;
    (void)book.round(messages_a, nonce);
    const std::size_t codewords_after_first = book.stats().codeword_builds;
    const auto reused = book.round(messages_b, nonce);

    // Reference: a codebook that never saw messages_a.
    const Codebook fresh(graph, params);
    const auto reference = fresh.round(messages_b, nonce);

    ASSERT_EQ(reused->codewords.size(), reference->codewords.size());
    for (std::size_t v = 0; v < reference->codewords.size(); ++v) {
        EXPECT_EQ(reused->codewords[v], reference->codewords[v]) << "codeword " << v;
        EXPECT_EQ(reused->one_positions[v], reference->one_positions[v]);
    }
    EXPECT_EQ(reused->inputs, reference->inputs);
    EXPECT_EQ(reused->decoy_inputs, reference->decoy_inputs);
    EXPECT_EQ(reused->candidate_messages, reference->candidate_messages);
    EXPECT_EQ(reused->candidate_encoded, reference->candidate_encoded);
    EXPECT_EQ(reused->candidate_tails, reference->candidate_tails);
    EXPECT_EQ(reused->combined_schedules, reference->combined_schedules);
    EXPECT_EQ(reused->phase1_beeps, reference->phase1_beeps);
    EXPECT_EQ(reused->phase2_beeps, reference->phase2_beeps);

    // Every codeword is a pure function of (seed, nonce, id): the rebuild
    // under the same nonce copied them all instead of regenerating.
    const Codebook::Stats stats = book.stats();
    EXPECT_EQ(stats.codeword_builds, codewords_after_first);
    EXPECT_GT(stats.codeword_reuses, 0u);
    EXPECT_GT(stats.payload_encode_reuses, 0u);
}

TEST(CodebookWarmStart, SecondCacheColdStartsFromDiskWithZeroBuilds) {
    const std::string dir = scratch("warmdir");
    remove_tree(dir);
    Rng rng(0x41);
    const Graph graph = make_random_regular(48, 6, rng);
    const SimulationParams params = small_params();

    // First "process": builds once and persists.
    CodebookCache first(2, 4);
    first.set_directory(dir);
    const auto built = first.acquire(graph, params);
    const CodebookCache::Stats cold = first.stats();
    EXPECT_EQ(cold.builds, 1u);
    EXPECT_EQ(cold.disk_loads, 0u);
    EXPECT_EQ(cold.disk_saves, 1u);

    // Second "process": same directory, zero builds — and the loaded
    // codebook is bit-identical to the built one.
    CodebookCache second(2, 4);
    second.set_directory(dir);
    const auto loaded = second.acquire(graph, params);
    const CodebookCache::Stats warm = second.stats();
    EXPECT_EQ(warm.builds, 0u);
    EXPECT_EQ(warm.disk_loads, 1u);
    EXPECT_EQ(loaded->codebook().fingerprint(), built->codebook().fingerprint());
    ASSERT_NE(loaded->codebook().backing_file(), nullptr);

    // `.tmp` debris from a crashed saver is swept on set_directory.
    write_file(dir + "/cb-dead.nbc.tmp", "half a write");
    CodebookCache third(2, 4);
    third.set_directory(dir);
    EXPECT_NE(::access((dir + "/cb-dead.nbc.tmp").c_str(), F_OK), 0);
    remove_tree(dir);
}

TEST(CodebookWarmStart, TransportThroughMmapLoadedCodebookDecodesIdentically) {
    const std::string dir = scratch("warmdir");
    remove_tree(dir);
    Rng rng(0x51);
    const Graph graph = make_random_regular(32, 4, rng);
    SimulationParams params = small_params();
    params.epsilon = 0.2;
    params.shared_codebook = false;
    const BeepTransport reference(graph, params);
    const auto messages = random_messages(graph, params.message_bits, 3);

    // Save the reference's codebook, then derive a round through a codebook
    // adopted from the mapped file: all round material must match exactly.
    ::mkdir(dir.c_str(), 0755);
    save_codebook(reference.codebook(), dir + "/cb.nbc");
    const auto file = CodebookFile::map(dir + "/cb.nbc");
    ASSERT_NE(file, nullptr);
    const Codebook loaded(graph, CodebookCache::canonical_params(params), file);
    EXPECT_EQ(loaded.fingerprint(), reference.codebook().fingerprint());
    const auto round_fresh = reference.codebook().round(messages, 1);
    const auto round_loaded = loaded.round(messages, 1);
    EXPECT_EQ(round_fresh->codewords, round_loaded->codewords);
    EXPECT_EQ(round_fresh->candidate_encoded, round_loaded->candidate_encoded);
    remove_tree(dir);
}

}  // namespace
}  // namespace nb
