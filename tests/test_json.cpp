// JsonWriter double formatting: non-finite values must normalize to null
// (JSON has no NaN/Inf tokens — "nan" in an artifact is invalid JSON), and
// finite values must serialize in shortest round-trip form: the fewest
// digits that strtod back to exactly the same double.
#include <gtest/gtest.h>

#include <clocale>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/json.h"
#include "common/json_parse.h"

namespace nb {
namespace {

std::string formatted(double value) {
    std::ostringstream out;
    JsonWriter json(out);
    json.value(value);
    return out.str();
}

TEST(JsonDoubles, NonFiniteValuesNormalizeToNull) {
    EXPECT_EQ(formatted(std::numeric_limits<double>::quiet_NaN()), "null");
    EXPECT_EQ(formatted(std::numeric_limits<double>::signaling_NaN()), "null");
    EXPECT_EQ(formatted(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(formatted(-std::numeric_limits<double>::infinity()), "null");

    // Inside containers too, where a bare "nan" would also break the
    // surrounding structure for strict parsers.
    std::ostringstream out;
    JsonWriter json(out, /*indent=*/0);
    json.begin_object();
    json.kv("bad", std::numeric_limits<double>::quiet_NaN());
    json.kv("good", 0.5);
    json.end_object();
    EXPECT_EQ(out.str(), "{\"bad\": null,\"good\": 0.5}");
}

TEST(JsonDoubles, RepresentativeValuesUseShortestForm) {
    // Decimal fractions print as typed, not as 17-digit binary expansions.
    EXPECT_EQ(formatted(0.1), "0.1");
    EXPECT_EQ(formatted(0.05), "0.05");
    EXPECT_EQ(formatted(0.95), "0.95");
    EXPECT_EQ(formatted(-2.5), "-2.5");

    // Integral doubles drop the fraction entirely (still a JSON number).
    EXPECT_EQ(formatted(0.0), "0");
    EXPECT_EQ(formatted(1.0), "1");
    EXPECT_EQ(formatted(1000000.0), "1e+06");

    // Values that need all their digits keep them.
    EXPECT_EQ(formatted(1.0 / 3.0), "0.3333333333333333");
    EXPECT_EQ(formatted(2.0 / 3.0), "0.6666666666666666");

    // Extreme magnitudes stay valid JSON numbers (no overflow to inf text).
    EXPECT_EQ(formatted(1e300), "1e+300");
    EXPECT_EQ(formatted(5e-324), "5e-324");  // smallest denormal
}

TEST(JsonDoubles, EveryFormattedValueRoundTripsExactly) {
    const double values[] = {0.1,
                             0.05,
                             1.0 / 3.0,
                             2.0 / 3.0,
                             3.141592653589793,
                             1e300,
                             5e-324,
                             -1.2345678901234567e-89,
                             123456789.123456789,
                             std::numeric_limits<double>::max(),
                             std::numeric_limits<double>::min(),
                             0.49999999999999994};
    for (const double value : values) {
        const std::string text = formatted(value);
        char* end = nullptr;
        const double parsed = std::strtod(text.c_str(), &end);
        EXPECT_EQ(*end, '\0') << text;
        EXPECT_EQ(parsed, value) << text;  // bit-exact round trip
    }
}

/// Restores the process LC_NUMERIC on scope exit, so an assertion failure
/// inside the locale test cannot leak a comma-decimal locale into every
/// later test in the same process.
class ScopedNumericLocale {
public:
    ScopedNumericLocale() : saved_(std::setlocale(LC_NUMERIC, nullptr)) {}
    ~ScopedNumericLocale() { std::setlocale(LC_NUMERIC, saved_.c_str()); }
    ScopedNumericLocale(const ScopedNumericLocale&) = delete;
    ScopedNumericLocale& operator=(const ScopedNumericLocale&) = delete;

private:
    std::string saved_;
};

TEST(JsonDoubles, ParsingIsLocaleIndependent) {
    // Regression test: as_double used strtod, which honors LC_NUMERIC — a
    // host application that had called setlocale() with a comma-decimal
    // locale got every fractional JSON number silently truncated at the
    // '.' ("0.25" -> parse error or 0.0). as_double now uses
    // std::from_chars, which is locale-independent by specification.
    ScopedNumericLocale restore;
    const char* locale_set = nullptr;
    for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8"}) {
        if (std::setlocale(LC_NUMERIC, name) != nullptr) {
            locale_set = name;
            break;
        }
    }
    if (locale_set == nullptr) {
        GTEST_SKIP() << "no comma-decimal locale installed on this machine";
    }
    // Sanity: under this locale the libc parser really does use ','.
    ASSERT_EQ(std::strtod("0,5", nullptr), 0.5) << locale_set;

    const JsonValue doc = JsonValue::parse(R"({"x":0.25,"y":-1.5e-3,"n":7})");
    EXPECT_EQ(doc.find("x")->as_double(), 0.25);
    EXPECT_EQ(doc.find("y")->as_double(), -1.5e-3);
    EXPECT_EQ(doc.find("n")->as_uint64(), 7u);
    // Malformed numbers still fail cleanly under the foreign locale.
    EXPECT_THROW(JsonValue::parse(R"({"x":0,25})"), precondition_error);
}

}  // namespace
}  // namespace nb
