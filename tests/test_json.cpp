// JsonWriter double formatting: non-finite values must normalize to null
// (JSON has no NaN/Inf tokens — "nan" in an artifact is invalid JSON), and
// finite values must serialize in shortest round-trip form: the fewest
// digits that strtod back to exactly the same double.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

#include "common/json.h"

namespace nb {
namespace {

std::string formatted(double value) {
    std::ostringstream out;
    JsonWriter json(out);
    json.value(value);
    return out.str();
}

TEST(JsonDoubles, NonFiniteValuesNormalizeToNull) {
    EXPECT_EQ(formatted(std::numeric_limits<double>::quiet_NaN()), "null");
    EXPECT_EQ(formatted(std::numeric_limits<double>::signaling_NaN()), "null");
    EXPECT_EQ(formatted(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(formatted(-std::numeric_limits<double>::infinity()), "null");

    // Inside containers too, where a bare "nan" would also break the
    // surrounding structure for strict parsers.
    std::ostringstream out;
    JsonWriter json(out, /*indent=*/0);
    json.begin_object();
    json.kv("bad", std::numeric_limits<double>::quiet_NaN());
    json.kv("good", 0.5);
    json.end_object();
    EXPECT_EQ(out.str(), "{\"bad\": null,\"good\": 0.5}");
}

TEST(JsonDoubles, RepresentativeValuesUseShortestForm) {
    // Decimal fractions print as typed, not as 17-digit binary expansions.
    EXPECT_EQ(formatted(0.1), "0.1");
    EXPECT_EQ(formatted(0.05), "0.05");
    EXPECT_EQ(formatted(0.95), "0.95");
    EXPECT_EQ(formatted(-2.5), "-2.5");

    // Integral doubles drop the fraction entirely (still a JSON number).
    EXPECT_EQ(formatted(0.0), "0");
    EXPECT_EQ(formatted(1.0), "1");
    EXPECT_EQ(formatted(1000000.0), "1e+06");

    // Values that need all their digits keep them.
    EXPECT_EQ(formatted(1.0 / 3.0), "0.3333333333333333");
    EXPECT_EQ(formatted(2.0 / 3.0), "0.6666666666666666");

    // Extreme magnitudes stay valid JSON numbers (no overflow to inf text).
    EXPECT_EQ(formatted(1e300), "1e+300");
    EXPECT_EQ(formatted(5e-324), "5e-324");  // smallest denormal
}

TEST(JsonDoubles, EveryFormattedValueRoundTripsExactly) {
    const double values[] = {0.1,
                             0.05,
                             1.0 / 3.0,
                             2.0 / 3.0,
                             3.141592653589793,
                             1e300,
                             5e-324,
                             -1.2345678901234567e-89,
                             123456789.123456789,
                             std::numeric_limits<double>::max(),
                             std::numeric_limits<double>::min(),
                             0.49999999999999994};
    for (const double value : values) {
        const std::string text = formatted(value);
        char* end = nullptr;
        const double parsed = std::strtod(text.c_str(), &end);
        EXPECT_EQ(*end, '\0') << text;
        EXPECT_EQ(parsed, value) << text;  // bit-exact round trip
    }
}

}  // namespace
}  // namespace nb
