// Tests for the prior-work baselines: the G^2-coloring TDMA transport and
// the closed-form cost models.
#include <gtest/gtest.h>

#include "apps/matching.h"
#include "baselines/cost_models.h"
#include "baselines/tdma_transport.h"
#include "common/math_util.h"
#include "graph/generators.h"
#include "sim/broadcast_congest_sim.h"

namespace nb {
namespace {

std::vector<std::optional<Bitstring>> random_messages_for(const Graph& graph,
                                                          std::size_t bits,
                                                          std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::optional<Bitstring>> messages(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        messages[v] = Bitstring::random(rng, bits);
    }
    return messages;
}

TEST(TdmaTransport, NoiselessDeliversExactly) {
    Rng rng(4);
    const Graph g = make_erdos_renyi(30, 0.15, rng);
    TdmaParams params;
    params.message_bits = 12;
    const TdmaTransport transport(g, params);
    const auto messages = random_messages_for(g, 12, 9);
    const auto round = transport.simulate_round(messages, 0);
    EXPECT_TRUE(round.perfect);
    EXPECT_EQ(round.beep_rounds, transport.rounds_per_broadcast_round());
}

TEST(TdmaTransport, RoundCostIsColorsTimesPayload) {
    const Graph g = make_complete_bipartite(5, 5);
    TdmaParams params;
    params.message_bits = 10;
    params.repetitions = 3;
    const TdmaTransport transport(g, params);
    // K_{5,5}: all nodes within distance 2 -> 10 colors.
    EXPECT_EQ(transport.color_count(), 10u);
    EXPECT_EQ(transport.rounds_per_broadcast_round(), 10u * 11u * 3u);
}

TEST(TdmaTransport, NoisyNeedsRepetition) {
    Rng rng(5);
    const Graph g = make_erdos_renyi(20, 0.2, rng);
    const auto messages = random_messages_for(g, 10, 10);

    TdmaParams bare;
    bare.message_bits = 10;
    bare.epsilon = 0.1;
    bare.repetitions = 1;
    const TdmaTransport unprotected(g, bare);

    TdmaParams coded = bare;
    coded.repetitions = TdmaParams::recommended_repetitions(g.node_count(), 0.1);
    const TdmaTransport protected_transport(g, coded);

    std::size_t bare_mismatches = 0;
    std::size_t coded_mismatches = 0;
    for (std::uint64_t nonce = 0; nonce < 5; ++nonce) {
        bare_mismatches += unprotected.simulate_round(messages, nonce).delivery_mismatches;
        coded_mismatches += protected_transport.simulate_round(messages, nonce).delivery_mismatches;
    }
    EXPECT_GT(bare_mismatches, 0u);   // eps=0.1 per bit destroys unprotected rounds
    EXPECT_EQ(coded_mismatches, 0u);  // majority coding restores delivery
}

TEST(TdmaTransport, RecommendedRepetitionsScale) {
    EXPECT_EQ(TdmaParams::recommended_repetitions(1000, 0.0), 1u);
    const std::size_t low = TdmaParams::recommended_repetitions(1000, 0.1);
    const std::size_t high = TdmaParams::recommended_repetitions(1000, 0.4);
    EXPECT_GT(low, 1u);
    EXPECT_GT(high, low);                // shrinking margin needs more repetition
    EXPECT_EQ(low % 2, 1u);              // odd, so majorities are unambiguous
}

TEST(TdmaTransport, RunsAlgorithmsViaSharedEngine) {
    // The TDMA baseline plugs into the same simulated engine as Algorithm 1.
    const Graph g = make_ring(8);
    const std::size_t width = MatchingAlgorithm::required_message_bits(8);
    TdmaParams params;
    params.message_bits = width;
    const TdmaTransport transport(g, params);
    BroadcastCongestOverBeeps engine(transport, CongestParams{width, 3});
    auto nodes = make_matching_nodes(g);
    const auto stats = engine.run(nodes, matching_rounds_for_iterations(60));
    EXPECT_TRUE(stats.all_finished);
    EXPECT_TRUE(verify_matching(g, collect_matching_outputs(nodes)).valid());
    EXPECT_EQ(stats.beep_rounds,
              stats.congest_rounds * transport.rounds_per_broadcast_round());
}

TEST(CostModels, OursIsLinearInDelta) {
    const std::size_t at8 = ours_broadcast_overhead(8, 16, 4);
    const std::size_t at16 = ours_broadcast_overhead(16, 16, 4);
    const std::size_t at32 = ours_broadcast_overhead(32, 16, 4);
    // Doubling Delta roughly doubles the overhead ((Delta+1) factor).
    EXPECT_NEAR(static_cast<double>(at16) / at8, 2.0, 0.15);
    EXPECT_NEAR(static_cast<double>(at32) / at16, 2.0, 0.15);
}

TEST(CostModels, AglIsCubicInDeltaBelowSqrtN) {
    const std::size_t n = 1u << 20;  // Delta^2 << n regime
    const double r1 = static_cast<double>(agl_congest_overhead(n, 16, 20));
    const double r2 = static_cast<double>(agl_congest_overhead(n, 32, 20));
    EXPECT_NEAR(r2 / r1, 8.0, 0.2);  // Delta * Delta^2 scaling
}

TEST(CostModels, OursBeatsAglForLargeDelta) {
    // Theorem statement: improvement factor Theta(min{n/Delta, Delta}).
    // With concrete c_eps=4 constants the crossover sits at
    // Delta ~ 2*c^3*(B+1)/log n; beyond it ours wins and the gap widens
    // linearly in Delta (the Theta(Delta) improvement regime).
    const std::size_t n = 1u << 20;
    const std::size_t log_n = 20;
    const std::size_t B = log_n;
    const double gap256 = static_cast<double>(agl_congest_overhead(n, 256, log_n)) /
                          static_cast<double>(ours_congest_overhead(256, B, 4));
    const double gap512 = static_cast<double>(agl_congest_overhead(n, 512, log_n)) /
                          static_cast<double>(ours_congest_overhead(512, B, 4));
    EXPECT_GT(gap256, 1.0);
    EXPECT_GT(gap512, gap256);
    // Below the crossover the asymptotic gap has not kicked in yet.
    const double gap16 = static_cast<double>(agl_congest_overhead(n, 16, log_n)) /
                         static_cast<double>(ours_congest_overhead(16, B, 4));
    EXPECT_LT(gap16, gap256);
}

TEST(CostModels, LowerBoundsBelowOurCosts) {
    // Our upper bounds must sit above the Corollary 16 lower bounds.
    for (const std::size_t delta : {4u, 16u, 64u}) {
        EXPECT_GE(ours_broadcast_overhead(delta, 12, 3),
                  lower_bound_broadcast_overhead(delta, 12));
        EXPECT_GE(ours_congest_overhead(delta, 12, 3),
                  lower_bound_congest_overhead(delta, 12));
    }
}

TEST(CostModels, MatchingImprovementFactor) {
    // Section 6: ours improves on the prior route by ~Delta^3 / log n.
    const std::size_t n = 1u << 16;
    const std::size_t log_n = 16;
    const std::size_t delta = 64;
    const std::size_t ours = ours_matching_rounds(delta, log_n, 4, 2 * log_n + 50);
    const std::size_t prior = prior_matching_rounds(n, delta, log_n, log_star(n));
    EXPECT_GT(prior, ours);
}

TEST(CostModels, LocalBroadcastBound) {
    EXPECT_EQ(local_broadcast_lower_bound(8, 16), 8u * 8u * 16u / 2u);
    EXPECT_EQ(matching_lower_bound(16, 10), 160u);
}

}  // namespace
}  // namespace nb
