// Sensor-field pairing: run the paper's maximal-matching algorithm
// (Section 6, Algorithm 3) end-to-end over a noisy beeping network.
//
//   build/examples/sensor_matching
//
// Scenario: sensors scattered in a field pair up with a radio neighbor for
// redundant sampling / duty cycling. Communication is carrier-sense only
// (beeps) and every received bit can flip with 10% probability. The matching
// algorithm is written once against the Broadcast CONGEST interface and runs
// unchanged on (a) the native message-passing engine and (b) the beeping
// simulation — this example runs both and checks they agree.
#include <iostream>

#include "apps/matching.h"
#include "common/math_util.h"
#include "congest/native_engine.h"
#include "graph/generators.h"
#include "sim/broadcast_congest_sim.h"

int main() {
    using namespace nb;

    // 48 sensors uniform in the unit square; radio range 0.22.
    Rng field_rng(99);
    const Graph field = make_random_geometric(48, 0.22, field_rng);
    std::cout << "sensor field: n=" << field.node_count() << ", links=" << field.edge_count()
              << ", Delta=" << field.max_degree() << "\n\n";

    const std::size_t width = MatchingAlgorithm::required_message_bits(field.node_count());
    CongestParams congest;
    congest.message_bits = width;
    congest.algorithm_seed = 1234;  // same seed => same algorithm-level choices
    const std::size_t max_rounds = matching_rounds_for_iterations(8 * ceil_log2(48));

    // (a) Native Broadcast CONGEST reference run.
    auto native_nodes = make_matching_nodes(field);
    NativeBroadcastCongestEngine native(field, congest);
    const auto native_stats = native.run(native_nodes, max_rounds);
    const auto native_out = collect_matching_outputs(native_nodes);

    // (b) The same algorithm over noisy beeps (Theorem 11 + Theorem 21).
    SimulationParams sim;
    sim.epsilon = 0.10;
    sim.message_bits = width;
    sim.c_eps = 4;
    auto beep_nodes = make_matching_nodes(field);
    BroadcastCongestOverBeeps beeps(field, sim, congest);
    const auto beep_stats = beeps.run(beep_nodes, max_rounds);
    const auto beep_out = collect_matching_outputs(beep_nodes);

    const auto native_verdict = verify_matching(field, native_out);
    const auto beep_verdict = verify_matching(field, beep_out);

    std::cout << "native run:   " << native_stats.rounds << " Broadcast CONGEST rounds, "
              << native_verdict.matched_pairs << " pairs, valid="
              << (native_verdict.valid() ? "yes" : "NO") << '\n';
    std::cout << "beeping run:  " << beep_stats.congest_rounds << " simulated rounds = "
              << beep_stats.beep_rounds << " noisy-beep rounds ("
              << beep_stats.beep_rounds / std::max<std::size_t>(1, beep_stats.congest_rounds)
              << " per round), " << beep_verdict.matched_pairs << " pairs, valid="
              << (beep_verdict.valid() ? "yes" : "NO") << ", misdelivered rounds="
              << beep_stats.imperfect_rounds << "\n\n";

    bool identical = true;
    for (NodeId v = 0; v < field.node_count(); ++v) {
        identical &= native_out[v].partner == beep_out[v].partner;
    }
    std::cout << (identical ? "beeping output is IDENTICAL to the native run"
                            : "outputs differ (a noisy round misdelivered)")
              << "\n\npairs:";
    for (NodeId v = 0; v < field.node_count(); ++v) {
        if (beep_out[v].partner.has_value() && v < *beep_out[v].partner) {
            std::cout << " {" << v << "," << *beep_out[v].partner << "}";
        }
    }
    std::cout << '\n';
    return 0;
}
