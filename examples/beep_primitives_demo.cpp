// Native beeping primitives: beep-wave broadcast and single-hop leader
// election, run on the adaptive round engine.
//
//   build/examples/beep_primitives_demo
//
// These are the classic tools of the beeping literature the paper builds on
// (beep waves: Ghaffari-Haeupler / Czumaj-Davies). A beep wave floods a grid
// network from a corner — each node's beep time IS its BFS distance — and a
// clique of devices elects a leader by bitwise rank elimination.
#include <iostream>

#include "apps/beep_primitives.h"
#include "apps/multihop_election.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

int main() {
    using namespace nb;

    // Beep wave across a 6x10 grid from the top-left corner.
    const Graph grid = make_grid(6, 10);
    const auto wave = beep_wave(grid, /*source=*/0, /*epsilon=*/0.0, /*seed=*/42,
                                grid.node_count() + 2);
    std::cout << "beep wave over a 6x10 grid (" << wave.stats.rounds << " rounds, "
              << wave.stats.total_beeps << " beeps total — one per node):\n";
    const auto reference = bfs_distances(grid, 0);
    bool all_match = true;
    for (std::size_t row = 0; row < 6; ++row) {
        for (std::size_t col = 0; col < 10; ++col) {
            const auto v = static_cast<NodeId>(row * 10 + col);
            std::cout.width(4);
            std::cout << wave.arrival[v];
            all_match &= wave.arrival[v] == reference[v];
        }
        std::cout << '\n';
    }
    std::cout << "arrival times " << (all_match ? "match" : "DO NOT match")
              << " BFS distances exactly (noiseless model)\n\n";

    // Multi-bit broadcast by pipelined waves: the whole message crosses the
    // network in D + 3(b+1) rounds.
    const Bitstring payload = Bitstring::from_string("1011001110001111");
    const auto broadcast = beep_broadcast(grid, 0, payload, 7);
    bool everyone = true;
    for (NodeId v = 0; v < grid.node_count(); ++v) {
        everyone &= broadcast.decoded[v] == payload;
    }
    std::cout << "\n16-bit beep broadcast: " << (everyone ? "all 60 nodes decoded " : "FAILED ")
              << payload.to_string() << " in " << broadcast.stats.rounds
              << " rounds (D + 3(b+1))\n\n";

    // Leader election on a 25-device clique (single-hop radio network).
    const Graph clique = make_complete(25);
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto election = single_hop_leader_election(clique, /*rank_bits=*/48,
                                                         /*epsilon=*/0.0, seed);
        std::cout << "single-hop election (seed " << seed << "): "
                  << election.leaders_declared << " leader(s) declared";
        if (election.leader.has_value()) {
            std::cout << " -> node " << *election.leader;
        }
        std::cout << " in " << election.stats.rounds << " rounds\n";
    }

    // Multi-hop election on the grid: phased waves carry rank bits so every
    // node learns the winning rank.
    const auto multihop = multihop_leader_election(grid, /*rank_bits=*/48,
                                                   /*phase_length=*/diameter(grid) + 2,
                                                   /*seed=*/5);
    std::cout << "\nmulti-hop election on the grid: " << multihop.leaders_declared
              << " leader(s)";
    if (multihop.leader.has_value()) {
        std::cout << " -> node " << *multihop.leader;
    }
    std::cout << ", all nodes agree on winning rank: "
              << (multihop.all_agree_on_rank ? "yes" : "no") << " ("
              << multihop.stats.rounds << " rounds)\n";
    return 0;
}
