// Full CONGEST over noisy beeps (Corollary 12): every node sends a distinct
// message to each neighbor, across a carrier-sense-only noisy channel.
//
//   build/examples/congest_over_beeps
//
// Uses the paper's lower-bound topology (K_{Delta,Delta} plus isolated
// nodes, Definition 13's B-bit Local Broadcast) so the measured cost can be
// compared directly against the Omega(Delta^2 B / 2) counting bound of
// Lemma 14.
#include <iostream>

#include "baselines/cost_models.h"
#include "graph/generators.h"
#include "lowerbound/local_broadcast.h"
#include "sim/congest_adapter.h"

int main() {
    using namespace nb;

    const std::size_t n = 32;
    const std::size_t delta = 6;
    const std::size_t B = 12;

    const Graph g = make_hard_instance(n, delta);
    std::cout << "hard instance: K_{" << delta << "," << delta << "} + " << (n - 2 * delta)
              << " isolated nodes (Lemma 14)\n";

    Rng rng(321);
    const auto instance = make_local_broadcast_instance(g, B, rng);
    std::cout << "task: " << instance.messages.size() << " directed " << B
              << "-bit messages, one per adjacent ordered pair\n\n";

    auto nodes = make_local_broadcast_nodes(g, instance, /*chunk_bits=*/B);

    const std::size_t width = CongestViaBroadcastAdapter::required_message_bits(n, B);
    SimulationParams sim;
    sim.epsilon = 0.10;
    sim.message_bits = width;
    sim.c_eps = 4;

    const auto result = run_congest_over_beeps(g, std::move(nodes), B, sim,
                                               /*algorithm_seed=*/5,
                                               /*max_congest_rounds=*/2);

    std::cout << "completed " << result.congest_rounds << " CONGEST round(s) in "
              << result.broadcast_stats.beep_rounds << " noisy-beep rounds\n";
    std::cout << "lower bound (Lemma 14): " << local_broadcast_lower_bound(delta, B)
              << " beep rounds; misdelivered simulated rounds: "
              << result.broadcast_stats.imperfect_rounds << "\n\n";

    std::size_t correct = 0;
    std::size_t expected = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const auto& solver = dynamic_cast<const LocalBroadcastNode&>(result.inner_algorithm(v));
        for (const auto u : g.neighbors(v)) {
            ++expected;
            const auto& received = solver.received();
            const auto it = received.find(u);
            if (it != received.end() && it->second == instance.messages.at({u, v})) {
                ++correct;
            }
        }
    }
    std::cout << "verified deliveries: " << correct << "/" << expected
              << (correct == expected ? " — every directed message arrived intact\n"
                                      : " — some messages were lost to noise\n");
    return 0;
}
