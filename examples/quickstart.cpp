// Quickstart: simulate one Broadcast CONGEST round over a noisy beeping
// network (the paper's Algorithm 1) and read back every node's decoded
// messages.
//
//   build/examples/quickstart
//
// Walks the core public API: build a Graph, choose SimulationParams, run
// BeepTransport::simulate_round, inspect deliveries and diagnostics.
#include <iostream>
#include <optional>

#include "common/bitpack.h"
#include "graph/generators.h"
#include "sim/transport.h"

int main() {
    using namespace nb;

    // A small wireless network: 12 devices in a ring plus chords.
    Rng graph_rng(2024);
    const Graph network = make_erdos_renyi(12, 0.35, graph_rng);
    std::cout << "network: n=" << network.node_count() << " nodes, m=" << network.edge_count()
              << " links, max degree Delta=" << network.max_degree() << "\n\n";

    // Channel and code parameters: 10% noise, 16-bit messages, tuned constant.
    SimulationParams params;
    params.epsilon = 0.10;
    params.message_bits = 16;
    params.c_eps = 4;

    const BeepTransport transport(network, params);
    std::cout << "one Broadcast CONGEST round costs "
              << transport.rounds_per_broadcast_round()
              << " beep rounds (2 * c^3 * (Delta+1) * (B+1); Theorem 11: O(Delta log n))\n\n";

    // Every node broadcasts <its id, a sensor reading>.
    std::vector<std::optional<Bitstring>> messages(network.node_count());
    Rng reading_rng(7);
    for (NodeId v = 0; v < network.node_count(); ++v) {
        BitWriter writer(params.message_bits);
        writer.write(v, 4);                            // node id
        writer.write(reading_rng.next_below(4096), 12);  // sensor reading
        messages[v] = writer.bits();
    }

    // Simulate the round: two phases of beeps, then decode.
    const TransportRound round = transport.simulate_round(messages, /*round_nonce=*/0);

    std::cout << "delivery " << (round.perfect ? "PERFECT" : "imperfect") << " — "
              << round.beep_rounds << " beep rounds, " << round.total_beeps
              << " total beeps (energy)\n";
    std::cout << "phase-1 errors: " << round.phase1_false_negatives << " missed, "
              << round.phase1_false_positives << " spurious; phase-2 errors: "
              << round.phase2_errors << "\n\n";

    for (NodeId v = 0; v < network.node_count(); ++v) {
        std::cout << "node " << v << " decoded " << round.delivered[v].size()
                  << " neighbor messages:";
        for (const auto& message : round.delivered[v]) {
            BitReader reader(message);
            const auto sender = reader.read(4);
            const auto reading = reader.read(12);
            std::cout << " <" << sender << ":" << reading << ">";
        }
        std::cout << '\n';
    }
    return 0;
}
