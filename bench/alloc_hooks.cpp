// Counting replacements for the global allocation functions (see
// alloc_hooks.h). Every operator-new variant funnels through one of two
// helpers so the counter can't miss a path: plain sizes go to malloc,
// over-aligned ones (e.g. the 64-byte arenas of common/aligned.h) to
// posix_memalign — free() releases both, so every delete variant is free().
// Under sanitizer builds the malloc underneath is still the intercepted
// one, so ASan's heap checking keeps working through these wrappers.
#include "alloc_hooks.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* do_alloc(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (size == 0) {
        size = 1;  // operator new must return a unique pointer
    }
    if (void* p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc{};
}

void* do_alloc_aligned(std::size_t size, std::size_t align) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (size == 0) {
        size = 1;
    }
    if (align < sizeof(void*)) {
        align = sizeof(void*);  // posix_memalign's minimum
    }
    void* p = nullptr;
    if (posix_memalign(&p, align, size) != 0) {
        throw std::bad_alloc{};
    }
    return p;
}

}  // namespace

namespace nb::alloc_hooks {

std::uint64_t count() noexcept { return g_alloc_count.load(std::memory_order_relaxed); }

}  // namespace nb::alloc_hooks

void* operator new(std::size_t size) { return do_alloc(size); }
void* operator new[](std::size_t size) { return do_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
    return do_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return do_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    try {
        return do_alloc(size);
    } catch (...) {
        return nullptr;
    }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    try {
        return do_alloc(size);
    } catch (...) {
        return nullptr;
    }
}
void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
    try {
        return do_alloc_aligned(size, static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}
void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
    try {
        return do_alloc_aligned(size, static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
    std::free(p);
}
