// Shared helpers for the experiment benches.
//
// Every bench binary regenerates one "table" of the paper (see DESIGN.md
// section 4): it prints a header naming the paper claim, the experiment
// setup, one or more tables, and a VERDICT line summarizing how the measured
// shape compares to the claim. EXPERIMENTS.md records these outputs.
#pragma once

#include <iostream>
#include <string>

#include "common/rng.h"
#include "common/table.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace nb::bench {

inline void header(const std::string& id, const std::string& title, const std::string& claim) {
    std::cout << "==================================================================\n"
              << id << ": " << title << '\n'
              << "paper claim: " << claim << '\n'
              << "==================================================================\n\n";
}

inline void verdict(const std::string& text) { std::cout << "VERDICT: " << text << "\n\n"; }

/// Random near-regular graph with max degree ~d (pairing model).
inline Graph regular_graph(std::size_t n, std::size_t d, std::uint64_t seed) {
    Rng rng(seed);
    if ((n * d) % 2 != 0) {
        ++d;
    }
    return make_random_regular(n, d, rng);
}

}  // namespace nb::bench
