// Shared helpers for the experiment benches.
//
// Every bench binary regenerates one "table" of the paper (see DESIGN.md
// section 4): it prints a header naming the paper claim, the experiment
// setup, one or more tables, and a VERDICT line summarizing how the measured
// shape compares to the claim. EXPERIMENTS.md records these outputs.
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "common/json.h"
#include "common/rng.h"
#include "common/table.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace nb::bench {

inline void header(const std::string& id, const std::string& title, const std::string& claim) {
    std::cout << "==================================================================\n"
              << id << ": " << title << '\n'
              << "paper claim: " << claim << '\n'
              << "==================================================================\n\n";
}

inline void verdict(const std::string& text) { std::cout << "VERDICT: " << text << "\n\n"; }

/// Random near-regular graph with max degree ~d (pairing model).
inline Graph regular_graph(std::size_t n, std::size_t d, std::uint64_t seed) {
    Rng rng(seed);
    if ((n * d) % 2 != 0) {
        ++d;
    }
    return make_random_regular(n, d, rng);
}

/// The one machine-readable-artifact writer every bench and the scenario
/// runner share: opens `path`, hands the callback a JsonWriter (so
/// escaping, number formatting, and comma/indent discipline come from
/// common/json.h instead of per-bench stream code), and announces the file
/// on stdout. Returns false (after a stderr note) if the file cannot be
/// opened — benches keep exiting 0 so unattended runs never wedge on a
/// read-only working directory.
template <typename Fn>
bool write_json_file(const std::string& path, Fn&& fill) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot open " << path << " for writing\n";
        return false;
    }
    JsonWriter json(out);
    fill(json);
    out << '\n';
    out.flush();
    if (!out.good()) {  // truncated artifact (disk full, I/O error)
        std::cerr << "warning: writing " << path << " failed\n";
        return false;
    }
    std::cout << "wrote " << path << "\n\n";
    return true;
}

}  // namespace nb::bench
