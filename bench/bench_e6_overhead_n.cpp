// E6 — Theorem 11, n-scaling: at fixed Delta the per-round overhead grows as
// Theta(log n).
//
// Sweeps n at fixed degree and reports the measured per-round beep cost and
// its ratio to Delta*log n (flat ratio = the claimed log n scaling). Each
// sweep point is a ScenarioSpec run through the unified scenario runner;
// the registry's e6-n256 spec is this bench's n=256 row.
#include <iostream>

#include "bench_util.h"
#include "common/math_util.h"
#include "scenarios/registry.h"

int main() {
    using namespace nb;
    bench::header("E6", "Broadcast CONGEST overhead vs n (Theorem 11)",
                  "per-round cost O(Delta log n): doubling n adds one log-unit");

    Table table({"n", "log n", "Delta", "B=log n", "ours (beeps/round)", "ours/(D*logn)",
                 "round ok"});
    for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
        const ScenarioResult result = run_scenario(scenarios::e6_overhead_point(n));
        const std::size_t delta = result.max_degree;
        const std::size_t log_n = ceil_log2(n);
        const double normalized = static_cast<double>(result.beep_rounds_per_round) /
                                  (static_cast<double>(delta) * static_cast<double>(log_n));
        table.add_row({Table::num(n), Table::num(log_n), Table::num(delta), Table::num(log_n),
                       Table::num(result.beep_rounds_per_round), Table::num(normalized, 1),
                       result.perfect_rounds == result.rounds ? "yes" : "partial"});
    }
    table.print(std::cout, "beep rounds per Broadcast CONGEST round (Delta~8, eps=0.1)");

    bench::verdict(
        "cost per round grows proportionally to log n at fixed Delta "
        "(flat ours/(Delta*logn) column): the Theorem 11 n-dependence");
    return 0;
}
