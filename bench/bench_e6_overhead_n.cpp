// E6 — Theorem 11, n-scaling: at fixed Delta the per-round overhead grows as
// Theta(log n).
//
// Sweeps n at fixed degree and reports the measured per-round beep cost and
// its ratio to Delta*log n (flat ratio = the claimed log n scaling).
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "common/math_util.h"
#include "sim/transport.h"

int main() {
    using namespace nb;
    bench::header("E6", "Broadcast CONGEST overhead vs n (Theorem 11)",
                  "per-round cost O(Delta log n): doubling n adds one log-unit");

    const std::size_t d = 8;
    const double eps = 0.1;

    Table table({"n", "log n", "Delta", "B=log n", "ours (beeps/round)", "ours/(D*logn)",
                 "round ok"});
    for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
        const Graph g = bench::regular_graph(n, d, 0xe6 + n);
        const std::size_t delta = g.max_degree();
        const std::size_t log_n = ceil_log2(n);

        SimulationParams params;
        params.epsilon = eps;
        params.message_bits = log_n;
        params.c_eps = 4;
        const BeepTransport transport(g, params);

        Rng message_rng(n);
        std::vector<std::optional<Bitstring>> messages(g.node_count());
        for (NodeId v = 0; v < g.node_count(); ++v) {
            messages[v] = Bitstring::random(message_rng, log_n);
        }
        // One batched call simulates the whole nonce sweep for this n.
        std::vector<RoundSpec> specs;
        for (std::uint64_t nonce = 0; nonce < 4; ++nonce) {
            specs.push_back(RoundSpec{&messages, nonce, nullptr});
        }
        const auto rounds = transport.simulate_rounds(specs);
        bool all_perfect = true;
        for (const auto& round : rounds) {
            all_perfect = all_perfect && round.perfect;
        }
        const double normalized = static_cast<double>(rounds.front().beep_rounds) /
                                  (static_cast<double>(delta) * static_cast<double>(log_n));
        table.add_row({Table::num(n), Table::num(log_n), Table::num(delta), Table::num(log_n),
                       Table::num(rounds.front().beep_rounds), Table::num(normalized, 1),
                       all_perfect ? "yes" : "partial"});
    }
    table.print(std::cout, "beep rounds per Broadcast CONGEST round (Delta~8, eps=0.1)");

    bench::verdict(
        "cost per round grows proportionally to log n at fixed Delta "
        "(flat ours/(Delta*logn) column): the Theorem 11 n-dependence");
    return 0;
}
