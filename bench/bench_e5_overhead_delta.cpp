// E5 — Theorem 11: simulating one Broadcast CONGEST round costs
// O(Delta log n) noisy-beep rounds; prior work pays Theta(min{n, Delta^2})
// more; no simulation can beat Omega(Delta log n) (Corollary 16).
//
// Sweeps Delta at fixed n and prints, per simulated round: our measured cost
// (executed), the G^2-TDMA baseline's measured cost (executed), the
// [4]/[7] cost models, and the lower bound. The "ours/(Delta*logn)" column
// flattening to a constant is the linear-in-Delta shape.
//
// Each sweep point is a declarative ScenarioSpec executed by the unified
// scenario runner — the registry's e5-delta8-* specs are these exact points,
// so `nb_run e5-delta8-beep` reproduces this bench's delta=8 row.
#include <iostream>

#include "baselines/cost_models.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "scenarios/registry.h"

int main() {
    using namespace nb;
    bench::header("E5", "Broadcast CONGEST overhead vs Delta (Theorem 11)",
                  "ours: O(Delta log n) per round (noisy or noiseless); "
                  "prior [4]: O(Delta log n min{n,Delta^2}); LB: Omega(Delta log n)");

    const std::size_t n = 256;
    const std::size_t log_n = ceil_log2(n);

    Table table({"Delta", "ours (beeps/round)", "ours/(D*logn)", "TDMA measured",
                 "[4] model", "[7] model", "LB D*logn/2", "round ok"});
    for (const std::size_t d : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const ScenarioResult ours =
            run_scenario(scenarios::e5_overhead_point(d, TransportKind::beep));
        const ScenarioResult tdma =
            run_scenario(scenarios::e5_overhead_point(d, TransportKind::tdma));
        const std::size_t delta = ours.max_degree;
        const bool all_perfect = ours.perfect_rounds == ours.rounds &&
                                 tdma.perfect_rounds == tdma.rounds;

        const double normalized = static_cast<double>(ours.beep_rounds_per_round) /
                                  (static_cast<double>(delta) * static_cast<double>(log_n));
        table.add_row({Table::num(delta), Table::num(ours.beep_rounds_per_round),
                       Table::num(normalized, 1), Table::num(tdma.beep_rounds_per_round),
                       Table::num(agl_congest_overhead(n, delta, log_n)),
                       Table::num(beauquier_congest_overhead(delta, log_n)),
                       Table::num(lower_bound_broadcast_overhead(delta, log_n)),
                       all_perfect ? "yes" : "partial"});
    }
    table.print(std::cout, "beep rounds per Broadcast CONGEST round (n=256, eps=0.1)");

    std::cout << "note: '[4] model' counts a CONGEST round; on Broadcast CONGEST inputs\n"
                 "it is the relevant prior per-round cost since [4]/[7] simulate via\n"
                 "G^2 color classes either way. Setup costs excluded (ours has none;\n"
                 "[4] pays Delta^4 log n, [7] pays Delta^6 once).\n\n";

    bench::verdict(
        "ours/(Delta*logn) is flat => linear-in-Delta overhead as Theorem 11 "
        "states; TDMA and the [4]/[7] models grow ~Delta^2 faster; every cost "
        "sits above the Omega(Delta log n) lower bound");
    return 0;
}
