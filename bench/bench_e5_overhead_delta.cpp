// E5 — Theorem 11: simulating one Broadcast CONGEST round costs
// O(Delta log n) noisy-beep rounds; prior work pays Theta(min{n, Delta^2})
// more; no simulation can beat Omega(Delta log n) (Corollary 16).
//
// Sweeps Delta at fixed n and prints, per simulated round: our measured cost
// (executed), the G^2-TDMA baseline's measured cost (executed), the
// [4]/[7] cost models, and the lower bound. The "ours/(Delta*logn)" column
// flattening to a constant is the linear-in-Delta shape.
#include <iostream>
#include <optional>

#include "baselines/cost_models.h"
#include "baselines/tdma_transport.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "sim/transport.h"

int main() {
    using namespace nb;
    bench::header("E5", "Broadcast CONGEST overhead vs Delta (Theorem 11)",
                  "ours: O(Delta log n) per round (noisy or noiseless); "
                  "prior [4]: O(Delta log n min{n,Delta^2}); LB: Omega(Delta log n)");

    const std::size_t n = 256;
    const std::size_t log_n = ceil_log2(n);
    const std::size_t message_bits = log_n;  // gamma = 1
    const double eps = 0.1;

    Table table({"Delta", "ours (beeps/round)", "ours/(D*logn)", "TDMA measured",
                 "[4] model", "[7] model", "LB D*logn/2", "round ok"});
    for (const std::size_t d : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const Graph g = bench::regular_graph(n, d, 0xe5 + d);
        const std::size_t delta = g.max_degree();

        SimulationParams params;
        params.epsilon = eps;
        params.message_bits = message_bits;
        params.c_eps = 4;
        const BeepTransport ours(g, params);

        TdmaParams tdma_params;
        tdma_params.epsilon = eps;
        tdma_params.message_bits = message_bits;
        tdma_params.repetitions = TdmaParams::recommended_repetitions(n, eps);
        const TdmaTransport tdma(g, tdma_params);

        // Execute a small batch of rounds of each (one simulate_rounds call
        // per transport) to confirm the costs are real and check delivery
        // success across fresh per-round randomness.
        Rng message_rng(5 + d);
        std::vector<std::optional<Bitstring>> messages(g.node_count());
        for (NodeId v = 0; v < g.node_count(); ++v) {
            messages[v] = Bitstring::random(message_rng, message_bits);
        }
        std::vector<RoundSpec> specs;
        for (std::uint64_t nonce = 0; nonce < 4; ++nonce) {
            specs.push_back(RoundSpec{&messages, nonce, nullptr});
        }
        const auto ours_rounds = ours.simulate_rounds(specs);
        const auto tdma_rounds = tdma.simulate_rounds(specs);
        bool all_perfect = true;
        for (const auto& round : ours_rounds) {
            all_perfect = all_perfect && round.perfect;
        }
        for (const auto& round : tdma_rounds) {
            all_perfect = all_perfect && round.perfect;
        }

        const double normalized = static_cast<double>(ours_rounds.front().beep_rounds) /
                                  (static_cast<double>(delta) * static_cast<double>(log_n));
        table.add_row({Table::num(delta), Table::num(ours_rounds.front().beep_rounds),
                       Table::num(normalized, 1), Table::num(tdma_rounds.front().beep_rounds),
                       Table::num(agl_congest_overhead(n, delta, log_n)),
                       Table::num(beauquier_congest_overhead(delta, log_n)),
                       Table::num(lower_bound_broadcast_overhead(delta, log_n)),
                       all_perfect ? "yes" : "partial"});
    }
    table.print(std::cout, "beep rounds per Broadcast CONGEST round (n=256, eps=0.1)");

    std::cout << "note: '[4] model' counts a CONGEST round; on Broadcast CONGEST inputs\n"
                 "it is the relevant prior per-round cost since [4]/[7] simulate via\n"
                 "G^2 color classes either way. Setup costs excluded (ours has none;\n"
                 "[4] pays Delta^4 log n, [7] pays Delta^6 once).\n\n";

    bench::verdict(
        "ours/(Delta*logn) is flat => linear-in-Delta overhead as Theorem 11 "
        "states; TDMA and the [4]/[7] models grow ~Delta^2 faster; every cost "
        "sits above the Omega(Delta log n) lower bound");
    return 0;
}
