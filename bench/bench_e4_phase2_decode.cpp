// E4 — Lemma 10: phase-2 message decoding succeeds w.h.p.
//
// Runs Algorithm 1 rounds and reports per-edge message decode error rates
// and end-to-end delivery mismatches as epsilon sweeps, at two constants.
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "sim/transport.h"

int main() {
    using namespace nb;
    bench::header("E4", "phase-2 message decoding (Lemma 10)",
                  "every node decodes every neighbor's message w.h.p.; the "
                  "distance-code margin absorbs superimposition overlap and noise");

    const std::size_t n = 64;
    const std::size_t d = 8;
    const std::size_t message_bits = 12;
    const std::size_t rounds = 10;
    const Graph g = bench::regular_graph(n, d, 0xe4);

    Rng message_rng(23);
    std::vector<std::optional<Bitstring>> messages(g.node_count());
    std::size_t directed_edges = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        messages[v] = Bitstring::random(message_rng, message_bits);
        directed_edges += g.degree(v);
    }

    Table table({"eps", "c_eps", "phase-2 error rate", "node mismatch rate",
                 "perfect rounds"});
    for (const std::size_t c_eps : {4u, 6u}) {
        for (const double eps : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4}) {
            SimulationParams params;
            params.epsilon = eps;
            params.message_bits = message_bits;
            params.c_eps = c_eps;
            const BeepTransport transport(g, params);

            std::size_t p2 = 0;
            std::size_t mismatches = 0;
            std::size_t perfect = 0;
            for (std::uint64_t nonce = 0; nonce < rounds; ++nonce) {
                const auto round = transport.simulate_round(messages, nonce);
                p2 += round.phase2_errors;
                mismatches += round.delivery_mismatches;
                perfect += round.perfect ? 1 : 0;
            }
            table.add_row(
                {Table::num(eps, 2), Table::num(c_eps),
                 Table::num(static_cast<double>(p2) / static_cast<double>(directed_edges * rounds), 5),
                 Table::num(static_cast<double>(mismatches) / static_cast<double>(n * rounds), 4),
                 Table::num(perfect) + "/" + Table::num(rounds)});
        }
    }
    table.print(std::cout, "phase-2 decode errors (n=64, Delta=8)");

    bench::verdict(
        "message decoding is exact without noise and degrades only at high eps "
        "with small constants; raising c_eps restores it (Lemma 10's 'sufficiently "
        "large c_eps')");
    return 0;
}
