// E15 — implementation ablation: decoding-dictionary policy.
//
// The paper's decoder ranges over all 2^a inputs; our tractable realization
// tests the identical threshold rule over a candidate dictionary (DESIGN.md
// section 3). This bench compares the two policies — all in-use inputs vs
// only inputs within two hops — plus decoy count, on both delivered
// correctness and wall-clock, showing the two-hop restriction loses nothing
// (far inputs are i.i.d. uniform exactly like decoys).
#include <chrono>
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "sim/transport.h"

int main() {
    using namespace nb;
    bench::header("E15", "decoding-dictionary policy ablation (implementation)",
                  "testing the Lemma 9 rule on two-hop candidates + decoys is "
                  "statistically equivalent to testing every in-use input");

    const std::size_t n = 128;
    const std::size_t d = 8;
    const std::size_t message_bits = 12;
    const double eps = 0.2;
    const std::size_t rounds = 6;
    const Graph g = bench::regular_graph(n, d, 0xe15);

    Rng message_rng(9);
    std::vector<std::optional<Bitstring>> messages(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        messages[v] = Bitstring::random(message_rng, message_bits);
    }

    Table table({"policy", "decoys", "perfect rounds", "FP total", "FN total", "ms/round"});
    struct Config {
        DictionaryPolicy policy;
        std::size_t decoys;
        const char* name;
    };
    const Config configs[] = {
        {DictionaryPolicy::two_hop, 0, "two_hop"},
        {DictionaryPolicy::two_hop, 32, "two_hop"},
        {DictionaryPolicy::two_hop, 128, "two_hop"},
        {DictionaryPolicy::all_nodes, 32, "all_nodes"},
    };
    for (const auto& config : configs) {
        SimulationParams params;
        params.epsilon = eps;
        params.message_bits = message_bits;
        params.c_eps = 4;
        params.dictionary = config.policy;
        params.decoy_count = config.decoys;
        const BeepTransport transport(g, params);

        std::size_t perfect = 0;
        std::size_t fp = 0;
        std::size_t fn = 0;
        const auto start = std::chrono::steady_clock::now();
        for (std::uint64_t nonce = 0; nonce < rounds; ++nonce) {
            const auto round = transport.simulate_round(messages, nonce);
            perfect += round.perfect ? 1 : 0;
            fp += round.phase1_false_positives;
            fn += round.phase1_false_negatives;
        }
        const auto elapsed = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        table.add_row({config.name, Table::num(config.decoys),
                       Table::num(perfect) + "/" + Table::num(rounds), Table::num(fp),
                       Table::num(fn), Table::num(elapsed / static_cast<double>(rounds), 1)});
    }
    table.print(std::cout, "dictionary policies (n=128, Delta=8, eps=0.2, c_eps=4)");

    bench::verdict(
        "identical correctness across policies and decoy counts (zero false "
        "positives everywhere: the threshold margin rejects independent "
        "codewords), while two_hop cuts decode time — the restriction is sound");
    return 0;
}
