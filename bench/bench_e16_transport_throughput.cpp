// E16 — transport throughput: simulated Broadcast CONGEST rounds per second
// on the Algorithm 1 transport, single-round loop vs the batched
// simulate_rounds_into path, at n in {256, 1024} with the all_nodes
// dictionary — measured once per SIMD kernel set this machine supports, so
// the JSON records what runtime dispatch actually buys.
//
// This is the implementation-performance bench backing the ROADMAP's "as
// fast as the hardware allows" goal: it prints the usual table AND writes
// machine-readable BENCH_transport.json (in the working directory) so CI
// can archive the perf trajectory across PRs and the perf-smoke job can
// diff it against bench/baselines/BENCH_transport.baseline.json.
//
// Reference points (1-core container, Release, hardware popcount): PR 1
// measured 27.6 rounds/s at n=256 and 2.28 at n=1024 on this workload;
// PR 2's batched path reached 92 and 10.9.
//
// The steady-state allocation column counts operator-new calls (see
// alloc_hooks.h) during a warm simulate_rounds_into batch over a cached
// codebook round — the zero-copy arena contract says it is exactly 0.
#include <chrono>
#include <iostream>
#include <optional>
#include <vector>

#include "alloc_hooks.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "common/simd/simd.h"
#include "sim/codebook_cache.h"
#include "sim/transport.h"

namespace {

using namespace nb;

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct Measurement {
    std::size_t n = 0;
    std::size_t delta = 0;
    simd::Kernel kernel = simd::Kernel::auto_best;  ///< requested
    simd::Kernel resolved = simd::Kernel::scalar;   ///< what actually ran
    double single_rounds_per_s = 0.0;
    double batched_rounds_per_s = 0.0;
    std::uint64_t steady_allocs = 0;  ///< operator-new calls in the warm batch
    std::size_t arena_words = 0;      ///< result-ring high-water mark
};

Measurement measure(std::size_t n, std::size_t degree, std::size_t rounds,
                    simd::Kernel kernel) {
    const Graph g = bench::regular_graph(n, degree, 0xe16 + n);
    SimulationParams params;
    params.epsilon = 0.1;
    params.message_bits = ceil_log2(n);
    params.c_eps = 4;
    params.dictionary = DictionaryPolicy::all_nodes;
    params.simd_kernel = kernel;
    const BeepTransport transport(g, params);

    Rng message_rng(7);
    std::vector<std::optional<Bitstring>> messages(n);
    for (NodeId v = 0; v < n; ++v) {
        messages[v] = Bitstring::random(message_rng, params.message_bits);
    }

    Measurement m;
    m.n = n;
    m.delta = g.max_degree();
    m.kernel = kernel;
    m.resolved = simd::resolve_kernel(kernel);

    transport.simulate_round(messages, 0);  // warm caches and workspaces

    auto start = std::chrono::steady_clock::now();
    for (std::uint64_t nonce = 1; nonce <= rounds; ++nonce) {
        transport.simulate_round(messages, nonce);
    }
    m.single_rounds_per_s = static_cast<double>(rounds) / seconds_since(start);

    std::vector<RoundSpec> specs;
    specs.reserve(rounds);
    for (std::uint64_t nonce = 1; nonce <= rounds; ++nonce) {
        specs.push_back(RoundSpec{&messages, nonce, nullptr});
    }
    TransportBatch batch;
    start = std::chrono::steady_clock::now();
    transport.simulate_rounds_into(specs, batch);
    m.batched_rounds_per_s = static_cast<double>(batch.rounds()) / seconds_since(start);

    // Steady-state allocation count: a warm batch over one cached codebook
    // round (same messages + nonce throughout) is pure decoding — the arena
    // contract says zero operator-new calls.
    const std::vector<RoundSpec> steady(4, RoundSpec{&messages, 1, nullptr});
    transport.simulate_rounds_into(steady, batch);  // reach high-water
    const std::uint64_t before = alloc_hooks::count();
    transport.simulate_rounds_into(steady, batch);
    m.steady_allocs = alloc_hooks::count() - before;
    m.arena_words = batch.arena_words();
    return m;
}

}  // namespace

int main() {
    using namespace nb;
    bench::header("E16", "transport throughput: single vs batched simulation path",
                  "implementation bench (no paper claim): simulated rounds per "
                  "second with the all_nodes dictionary, eps=0.1, Delta~8, per "
                  "SIMD kernel set");

    std::vector<simd::Kernel> kernels;
    for (const auto k : {simd::Kernel::scalar, simd::Kernel::avx2, simd::Kernel::avx512}) {
        if (simd::kernel_supported(k)) {
            kernels.push_back(k);
        }
    }

    std::vector<Measurement> measurements;
    for (const auto kernel : kernels) {
        measurements.push_back(measure(256, 8, 24, kernel));
        measurements.push_back(measure(1024, 8, 12, kernel));
    }

    Table table({"n", "Delta", "kernel", "single (rounds/s)", "batched (rounds/s)",
                 "batched/single", "steady allocs"});
    for (const auto& m : measurements) {
        table.add_row({Table::num(m.n), Table::num(m.delta), simd::kernel_name(m.resolved),
                       Table::num(m.single_rounds_per_s, 1),
                       Table::num(m.batched_rounds_per_s, 1),
                       Table::num(m.batched_rounds_per_s / m.single_rounds_per_s, 2),
                       Table::num(m.steady_allocs)});
    }
    table.print(std::cout, "simulate_round loop vs simulate_rounds_into batch");

    // Cache pressure over the whole bench: every transport above acquired its
    // codebook through the process-wide cache, so byte-capacity evictions or
    // oversize fallbacks here mean the shipped workloads no longer fit the
    // cache budget — rebuild churn that perf-smoke gates on (exactly 0).
    const CodebookCache::Stats cache_stats = CodebookCache::instance().stats();
    std::cout << "codebook cache: " << cache_stats.builds << " builds, "
              << cache_stats.hits << " hits, " << cache_stats.bytes_resident
              << " bytes resident, " << cache_stats.evictions_capacity
              << " byte-cap evictions, " << cache_stats.oversize_uncached
              << " oversize uncached\n\n";

    // The shared bench/scenario serializer (common/json.h via bench_util):
    // this bench is a caller of the one JSON writer, not a copy of it.
    bench::write_json_file("BENCH_transport.json", [&](JsonWriter& json) {
        json.begin_object();
        json.kv("bench", "transport_throughput");
        json.kv("policy", "all_nodes");
        json.kv("epsilon", 0.1);
        // The dispatch decision on this machine: what auto_best resolves to
        // and which kernel sets were available to choose from.
        json.key("dispatch").begin_object();
        json.kv("best_kernel", simd::kernel_name(simd::best_kernel()));
        json.kv("auto_resolves_to",
                simd::kernel_name(simd::resolve_kernel(simd::Kernel::auto_best)));
        json.key("supported").begin_array();
        for (const auto k : kernels) {
            json.value(simd::kernel_name(k));
        }
        json.end_array();
        json.end_object();
        // Cache-pressure telemetry for the perf gate: rates above stay
        // meaningful only while codebooks stay resident between transports.
        json.key("codebook_cache").begin_object();
        json.kv("builds", cache_stats.builds);
        json.kv("hits", cache_stats.hits);
        json.kv("bytes_resident", cache_stats.bytes_resident);
        json.kv("evictions_capacity", cache_stats.evictions_capacity);
        json.kv("oversize_uncached", cache_stats.oversize_uncached);
        json.end_object();
        json.key("results").begin_array();
        for (const auto& m : measurements) {
            json.begin_object();
            json.kv("n", m.n);
            json.kv("delta", m.delta);
            json.kv("kernel", simd::kernel_name(m.resolved));
            json.kv("single_rounds_per_s", m.single_rounds_per_s);
            json.kv("batched_rounds_per_s", m.batched_rounds_per_s);
            json.kv("steady_state_allocs", m.steady_allocs);
            json.kv("arena_words", m.arena_words);
            json.end_object();
        }
        json.end_array();
        json.end_object();
    });

    bench::verdict(
        "the batched arena path beats the single-round loop on every kernel "
        "set, the vector kernels beat scalar, and the steady-state allocation "
        "count on the batched decode path is exactly 0");
    return 0;
}
