// E16 — transport throughput: simulated Broadcast CONGEST rounds per second
// on the Algorithm 1 transport, single-round loop vs the batched
// simulate_rounds path, at n in {256, 1024} with the all_nodes dictionary.
//
// This is the implementation-performance bench backing the ROADMAP's "as
// fast as the hardware allows" goal: it prints the usual table AND writes
// machine-readable BENCH_transport.json (in the working directory) so CI
// can archive the perf trajectory across PRs.
//
// Reference points (1-core container, Release, hardware popcount): the PR 1
// implementation of this loop measured 27.6 rounds/s at n=256 and 2.28
// rounds/s at n=1024 on the same workload.
#include <chrono>
#include <iostream>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "common/math_util.h"
#include "sim/transport.h"

namespace {

using namespace nb;

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct Measurement {
    std::size_t n = 0;
    std::size_t delta = 0;
    double single_rounds_per_s = 0.0;
    double batched_rounds_per_s = 0.0;
};

Measurement measure(std::size_t n, std::size_t degree, std::size_t rounds) {
    Rng rng(0xbe);
    const Graph g = bench::regular_graph(n, degree, 0xe16 + n);
    SimulationParams params;
    params.epsilon = 0.1;
    params.message_bits = ceil_log2(n);
    params.c_eps = 4;
    params.dictionary = DictionaryPolicy::all_nodes;
    const BeepTransport transport(g, params);

    Rng message_rng(7);
    std::vector<std::optional<Bitstring>> messages(n);
    for (NodeId v = 0; v < n; ++v) {
        messages[v] = Bitstring::random(message_rng, params.message_bits);
    }

    Measurement m;
    m.n = n;
    m.delta = g.max_degree();

    transport.simulate_round(messages, 0);  // warm caches and workspaces

    auto start = std::chrono::steady_clock::now();
    for (std::uint64_t nonce = 1; nonce <= rounds; ++nonce) {
        transport.simulate_round(messages, nonce);
    }
    m.single_rounds_per_s = static_cast<double>(rounds) / seconds_since(start);

    std::vector<RoundSpec> specs;
    specs.reserve(rounds);
    for (std::uint64_t nonce = 1; nonce <= rounds; ++nonce) {
        specs.push_back(RoundSpec{&messages, nonce, nullptr});
    }
    start = std::chrono::steady_clock::now();
    const auto results = transport.simulate_rounds(specs);
    m.batched_rounds_per_s = static_cast<double>(results.size()) / seconds_since(start);
    return m;
}

}  // namespace

int main() {
    using namespace nb;
    bench::header("E16", "transport throughput: single vs batched simulation path",
                  "implementation bench (no paper claim): simulated rounds per "
                  "second with the all_nodes dictionary, eps=0.1, Delta~8");

    std::vector<Measurement> measurements;
    measurements.push_back(measure(256, 8, 24));
    measurements.push_back(measure(1024, 8, 12));

    Table table({"n", "Delta", "single (rounds/s)", "batched (rounds/s)", "batched/single"});
    for (const auto& m : measurements) {
        table.add_row({Table::num(m.n), Table::num(m.delta),
                       Table::num(m.single_rounds_per_s, 1),
                       Table::num(m.batched_rounds_per_s, 1),
                       Table::num(m.batched_rounds_per_s / m.single_rounds_per_s, 2)});
    }
    table.print(std::cout, "simulate_round loop vs simulate_rounds batch");

    // The shared bench/scenario serializer (common/json.h via bench_util):
    // this bench is a caller of the one JSON writer, not a copy of it.
    bench::write_json_file("BENCH_transport.json", [&](JsonWriter& json) {
        json.begin_object();
        json.kv("bench", "transport_throughput");
        json.kv("policy", "all_nodes");
        json.kv("epsilon", 0.1);
        json.key("results").begin_array();
        for (const auto& m : measurements) {
            json.begin_object();
            json.kv("n", m.n);
            json.kv("delta", m.delta);
            json.kv("single_rounds_per_s", m.single_rounds_per_s);
            json.kv("batched_rounds_per_s", m.batched_rounds_per_s);
            json.end_object();
        }
        json.end_array();
        json.end_object();
    });

    bench::verdict(
        "the batched path matches or beats the single-round loop (on multicore "
        "hardware the codebook build of round i+1 overlaps the decode of round "
        "i); both sit far above the PR 1 loop's 27.6 / 2.28 rounds/s baseline");
    return 0;
}
