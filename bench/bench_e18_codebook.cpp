// E18 — codebook construction modes: fresh vs incremental vs mmap-load.
//
// The candidate dictionary dominates Codebook construction cost (two-hop
// sets are O(sum deg^2)); ROADMAP item 5 adds two ways to avoid paying it:
// delta-updating an existing codebook after a graph edit, and mmap-loading
// a serialized nb-codebook/v1 file (sim/codebook_io.h). This bench measures
// all three modes on the same graphs and verifies the property contract —
// every mode yields a fingerprint identical to a fresh build — then
// demonstrates the warm-start cache path (build + save, clear, reload from
// disk) and reports its counters.
//
// BENCH_codebook.json (nb-codebook-bench/v1) is consumed by
// check_perf_regression.py --codebook, which gates on the mmap speedup, and
// by CI's codebook-warm smoke job.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/codebook.h"
#include "sim/codebook_cache.h"
#include "sim/codebook_io.h"

namespace {

/// Median wall-clock milliseconds of `reps` runs of `fn`.
template <typename Fn>
double median_ms(std::size_t reps, Fn&& fn) {
    std::vector<double> samples;
    samples.reserve(reps);
    for (std::size_t i = 0; i < reps; ++i) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        samples.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

struct ModeRow {
    std::size_t n = 0;
    double fresh_ms = 0;
    double incremental_ms = 0;
    double incremental_fresh_ms = 0;  ///< fresh build of the *edited* graph
    double mmap_load_ms = 0;
    std::size_t rows_reused = 0;
    bool identical = false;  ///< every mode fingerprint-matched fresh
};

}  // namespace

int main() {
    using namespace nb;
    bench::header("E18", "codebook build modes: fresh vs incremental vs mmap-load",
                  "delta updates and serialized indexes avoid re-running the "
                  "O(sum deg^2) dictionary construction; both are "
                  "fingerprint-identical to a fresh build");

    const std::size_t degree = 16;
    const std::size_t reps = 5;
    const std::string scratch_dir = "e18-codebook-scratch";
    ::mkdir(scratch_dir.c_str(), 0755);

    SimulationParams params;
    params.message_bits = 16;
    params.c_eps = 4;
    params.dictionary = DictionaryPolicy::two_hop;
    params.decoy_count = 16;

    std::vector<ModeRow> rows;
    Table table({"n", "fresh ms", "delta ms", "fresh-edit ms", "mmap ms", "rows reused",
                 "mmap speedup", "identical"});
    for (const std::size_t n : {std::size_t{1024}, std::size_t{4096}}) {
        const Graph g = bench::regular_graph(n, degree, 0xe18 + n);

        // The edit the incremental mode absorbs: one added node wired to
        // `degree` existing nodes — the "a sensor joined the deployment"
        // case the delta path exists for.
        std::vector<Edge> edited_edges = g.edges();
        for (std::size_t i = 0; i < degree; ++i) {
            edited_edges.push_back(
                Edge{static_cast<NodeId>((i * 97) % n), static_cast<NodeId>(n)});
        }
        const Graph g_edited = Graph::from_edges(n + 1, edited_edges);

        const Codebook base(g, params);
        const Codebook fresh_edited(g_edited, params);
        const std::string file_path = scratch_dir + "/e18-n" + std::to_string(n) + ".nbc";
        save_codebook(base, file_path);

        ModeRow row;
        row.n = n;
        row.fresh_ms = median_ms(reps, [&] { Codebook fresh(g, params); });
        row.incremental_ms =
            median_ms(reps, [&] { Codebook delta(g_edited, params, base); });
        row.incremental_fresh_ms =
            median_ms(reps, [&] { Codebook fresh(g_edited, params); });
        row.mmap_load_ms = median_ms(reps, [&] {
            auto file = CodebookFile::map(file_path);
            if (file == nullptr) {
                std::cerr << "error: cannot map " << file_path << '\n';
                std::exit(1);
            }
            Codebook loaded(g, params, std::move(file));
        });

        // The property contract, checked on the instances reported on.
        const Codebook delta(g_edited, params, base);
        const Codebook loaded(g, params, CodebookFile::map(file_path));
        row.rows_reused = delta.stats().dictionary_rows_reused;
        row.identical = delta.fingerprint() == fresh_edited.fingerprint() &&
                        loaded.fingerprint() == base.fingerprint();
        rows.push_back(row);

        table.add_row({Table::num(n), Table::num(row.fresh_ms, 2),
                       Table::num(row.incremental_ms, 2),
                       Table::num(row.incremental_fresh_ms, 2),
                       Table::num(row.mmap_load_ms, 3), Table::num(row.rows_reused),
                       Table::num(row.fresh_ms / std::max(row.mmap_load_ms, 1e-6), 1) + "x",
                       row.identical ? "yes" : "NO"});
    }
    table.print(std::cout, "build modes (random regular, Delta=" + std::to_string(degree) +
                               ", two_hop, " + std::to_string(reps) + "-rep medians)");

    // Warm-start path end to end: a directory-backed cache builds and saves
    // once, and after clear() (simulating a process restart) the same
    // acquire is served by an mmap load — zero builds.
    CodebookCache cache(2, 4);
    cache.set_directory(scratch_dir);
    const Graph g_cache = bench::regular_graph(1024, degree, 0xe18 + 1024);
    cache.acquire(g_cache, params);  // cold: build + disk save
    cache.clear();                   // drop entries AND counters, keep the directory
    cache.acquire(g_cache, params);  // warm: disk load, no build
    const CodebookCache::Stats warm = cache.stats();
    std::cout << "warm-start cache: " << warm.builds << " builds, " << warm.disk_loads
              << " disk loads, " << warm.disk_saves << " disk saves after simulated "
              << "restart (expect 0 builds, 1 load)\n\n";

    const bool all_identical =
        std::all_of(rows.begin(), rows.end(), [](const ModeRow& r) { return r.identical; });

    nb::bench::write_json_file("BENCH_codebook.json", [&](JsonWriter& json) {
        json.begin_object();
        json.kv("schema", "nb-codebook-bench/v1");
        json.kv("degree", static_cast<std::uint64_t>(degree));
        json.kv("reps", static_cast<std::uint64_t>(reps));
        json.key("results").begin_array();
        for (const ModeRow& row : rows) {
            json.begin_object();
            json.kv("n", static_cast<std::uint64_t>(row.n));
            json.kv("fresh_ms", row.fresh_ms);
            json.kv("incremental_ms", row.incremental_ms);
            json.kv("incremental_fresh_ms", row.incremental_fresh_ms);
            json.kv("mmap_load_ms", row.mmap_load_ms);
            json.kv("rows_reused", static_cast<std::uint64_t>(row.rows_reused));
            json.kv("identical", row.identical);
            json.end_object();
        }
        json.end_array();
        json.key("cache").begin_object();
        json.kv("builds", warm.builds);
        json.kv("hits", warm.hits);
        json.kv("disk_loads", warm.disk_loads);
        json.kv("disk_saves", warm.disk_saves);
        json.kv("hit_rate", warm.hit_rate());
        json.end_object();
        json.end_object();
    });

    bench::verdict(all_identical && warm.builds == 0 && warm.disk_loads == 1
                       ? "all modes fingerprint-identical to fresh builds; mmap load "
                         "skips construction entirely and the warm-start cache "
                         "restarts with zero builds"
                       : "MODE MISMATCH — a non-fresh build mode diverged from the "
                         "fresh fingerprint or the warm start rebuilt");
    return 0;
}
