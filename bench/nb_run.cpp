// nb_run — the unified scenario runner CLI.
//
// Executes named ScenarioSpecs from the registry (default: all shipped
// specs), prints one consistent table, and writes BENCH_scenarios.json in
// the nb-scenarios/v1 schema (the same serializer the tests pin). Every
// "what if the channel / topology / faults were X" question is a spec here,
// not a new binary — and every family of such questions is a sweep.
//
//   nb_run                    run all shipped scenarios
//   nb_run ge-burst e6-n256   run the named scenarios only
//   nb_run --list             list shipped scenario names and exit
//   nb_run --json PATH        write the JSON artifact to PATH
//                             (default BENCH_scenarios.json, or
//                             BENCH_sweep.json with --sweep)
//   nb_run --sweep            run the scenarios (all shipped, or the named
//                             ones) as a parallel sweep, crossed with the
//                             --seeds / --eps axes, and write the
//                             nb-sweep/v1 artifact (byte-identical for any
//                             --workers value)
//   nb_run --spec FILE        load the sweep from an nb-spec/v1 JSON file
//                             instead of the registry (implies --sweep; the
//                             file defines its own axes)
//   nb_run --workers N        sweep worker threads (0 = hardware)
//   nb_run --seeds 1,2,3      workload-seed axis (default 1,2,3)
//   nb_run --eps 0.05,0.1     optional iid noise-rate axis
//   nb_run --shards N         run beep scenarios through the sharded
//                             transport with N shards (both modes; results
//                             are bit-identical for any value, and a
//                             resumed sweep may change it freely)
//   nb_run --max-retries N    extra attempts per job after a transient or
//                             timeout failure (default 0)
//   nb_run --timeout SECONDS  watchdog deadline (0 = none): per job with
//                             --sweep, whole-run for plain scenario runs
//   nb_run --journal PATH     checkpoint journal path (default: the --json
//                             path with .json replaced by .journal.jsonl)
//   nb_run --resume           replay completed jobs from the journal before
//                             running the rest (byte-identical artifact)
//   nb_run --codebook-dir DIR warm-start directory: mmap-load serialized
//                             codebooks (nb-codebook/v1) on cache misses and
//                             persist new builds there, so a repeated run
//                             skips every dictionary construction
//   nb_run --codebook-stats F write the process-wide codebook cache counters
//                             (builds, hits, disk loads/saves, hit rate) to F
//                             as nb-codebook-stats/v1 after the run
//
// Robustness contract: bad input of any kind — unknown flags, malformed
// spec files, out-of-range values — produces a one-line diagnostic on
// stderr and exit code 2, never a crash or a stack trace. A sweep whose
// jobs permanently fail (after retries) still writes the artifact and the
// failure table, and exits 1.
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cancel.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "scenarios/registry.h"
#include "scenarios/scenario.h"
#include "scenarios/spec_json.h"
#include "scenarios/sweep.h"
#include "sim/codebook_cache.h"

namespace {

/// nb-codebook-stats/v1: the cache counter snapshot CI's warm-start smoke
/// job asserts on (a warm second run must show builds == 0). Best-effort on
/// top of the run's own exit code — a stats write failure is its own error.
bool write_codebook_stats(const std::string& path) {
    const nb::CodebookCache::Stats cache = nb::CodebookCache::instance().stats();
    return nb::bench::write_json_file(path, [&](nb::JsonWriter& json) {
        json.begin_object();
        json.kv("schema", "nb-codebook-stats/v1");
        json.key("cache").begin_object();
        json.kv("builds", cache.builds);
        json.kv("hits", cache.hits);
        json.kv("disk_loads", cache.disk_loads);
        json.kv("disk_saves", cache.disk_saves);
        json.kv("evictions", cache.evictions + cache.evictions_capacity);
        json.kv("bytes_resident", static_cast<std::uint64_t>(cache.bytes_resident));
        json.kv("hit_rate", cache.hit_rate());
        json.end_object();
        json.end_object();
    });
}

/// Parse "a,b,c" with the given per-item parser; exits with a usage error on
/// malformed input (this is a CLI boundary, not library validation).
template <typename T, typename Parse>
std::vector<T> parse_list(const std::string& arg, const char* flag, Parse parse) {
    std::vector<T> values;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        const std::string item =
            arg.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        char* end = nullptr;
        values.push_back(parse(item.c_str(), &end));
        if (item.empty() || end == nullptr || *end != '\0') {
            std::cerr << "error: " << flag << " expects a comma-separated list, got '"
                      << arg << "'\n";
            std::exit(2);
        }
        if (comma == std::string::npos) {
            break;
        }
        start = comma + 1;
    }
    return values;
}

/// BENCH_sweep.json -> BENCH_sweep.journal.jsonl (checkpoint rides next to
/// the artifact it protects); paths without a .json suffix get the journal
/// suffix appended.
std::string default_journal_path(const std::string& json_path) {
    const std::string suffix = ".json";
    if (json_path.size() > suffix.size() &&
        json_path.compare(json_path.size() - suffix.size(), suffix.size(), suffix) == 0) {
        return json_path.substr(0, json_path.size() - suffix.size()) + ".journal.jsonl";
    }
    return json_path + ".journal.jsonl";
}

int run_sweep_mode(nb::SweepSpec sweep, const std::string& json_path,
                   const nb::SweepOptions& options) {
    using namespace nb;

    bench::header("nb_run --sweep", "parallel scenario sweep",
                  "one SweepSpec expands to scenario jobs executed across workers; "
                  "aggregation is keyed by job index, so the artifact is "
                  "byte-identical for any worker count, and concurrent jobs share "
                  "codebook builds through the process-wide cache");

    const std::string active_failpoints = failpoint::active_summary();
    if (!active_failpoints.empty()) {
        std::cout << "failpoints armed: " << active_failpoints << "\n\n";
    }

    const SweepResult result = run_sweep(sweep, options);

    Table table({"job", "transport", "channel", "n", "rounds", "perfect", "p1 FN", "p1 FP",
                 "p2 err"});
    for (std::size_t i = 0; i < result.results.size(); ++i) {
        const auto& r = result.results[i];
        if (result.job_records[i].error.has_value()) {
            const JobError& error = *result.job_records[i].error;
            table.add_row({r.name, "FAILED: " + error.kind, error.site, "-", "-", "-", "-",
                           "-", "-"});
            continue;
        }
        table.add_row({r.name, r.transport, r.channel, Table::num(r.node_count),
                       Table::num(r.rounds), Table::num(r.perfect_rounds),
                       Table::num(r.phase1_false_negatives),
                       Table::num(r.phase1_false_positives), Table::num(r.phase2_errors)});
    }
    table.print(std::cout, "sweep results (" + std::to_string(result.jobs) + " jobs, " +
                               std::to_string(result.workers) + " workers)");

    std::cout << "codebook cache: " << result.cache.builds << " builds, "
              << result.cache.hits << " hits (" << result.cache.coloring_builds
              << " coloring builds, " << result.cache.coloring_hits
              << " coloring hits) across " << result.jobs << " jobs; wall "
              << result.wall_seconds << " s\n";
    if (result.resumed_jobs > 0) {
        std::cout << "resumed " << result.resumed_jobs << " of " << result.jobs
                  << " jobs from " << options.journal_path << '\n';
    }
    std::size_t retried = 0;
    for (const auto& record : result.job_records) {
        if (!record.resumed && record.attempts > 1 && !record.error.has_value()) {
            ++retried;
        }
    }
    if (retried > 0) {
        std::cout << retried << " jobs recovered by retry\n";
    }
    std::cout << '\n';

    if (result.failed_jobs > 0) {
        Table failures({"job", "kind", "site", "attempts", "error"});
        for (std::size_t i = 0; i < result.job_records.size(); ++i) {
            const auto& record = result.job_records[i];
            if (record.error.has_value()) {
                failures.add_row({result.results[i].name, record.error->kind,
                                  record.error->site, Table::num(record.attempts),
                                  record.error->what});
            }
        }
        failures.print(std::cout, "permanently failed jobs (" +
                                      std::to_string(result.failed_jobs) + " of " +
                                      std::to_string(result.jobs) + ")");
    }

    // The artifact is written even when jobs failed — partial results plus
    // explicit error entries beat losing the completed work — but the exit
    // code still reports the failure.
    const bool wrote = nb::bench::write_json_file(json_path, [&](JsonWriter& json) {
        sweep_results_json(json, result);
    });
    if (!wrote) {
        return 1;
    }
    return result.failed_jobs > 0 ? 1 : 0;
}

int run_main(int argc, char** argv) {
    using namespace nb;

    std::string json_path;
    std::string spec_path;
    std::string codebook_dir;
    std::string codebook_stats_path;
    std::vector<std::string> names;
    bool list_only = false;
    bool sweep_mode = false;
    const char* sweep_only_flag = nullptr;  // first axis/worker flag seen
    const char* axis_flag = nullptr;        // first --seeds/--eps seen (vs --spec)
    SweepOptions sweep_options;
    bool journal_overridden = false;
    std::size_t max_retries_flag = 0;
    bool max_retries_set = false;
    std::size_t shards_flag = 0;
    bool shards_set = false;
    std::vector<std::uint64_t> seeds = {1, 2, 3};
    std::vector<double> epsilons;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto flag_value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "error: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        auto flag_number = [&](const char* flag) -> std::size_t {
            const std::string value = flag_value(flag);
            char* end = nullptr;
            const auto parsed =
                static_cast<std::size_t>(std::strtoull(value.c_str(), &end, 10));
            if (value.empty() || end == nullptr || *end != '\0') {
                std::cerr << "error: " << flag << " expects a number, got '" << value
                          << "'\n";
                std::exit(2);
            }
            return parsed;
        };
        if (arg == "--list") {
            list_only = true;
        } else if (arg == "--json") {
            json_path = flag_value("--json");
        } else if (arg == "--sweep") {
            sweep_mode = true;
        } else if (arg == "--spec") {
            spec_path = flag_value("--spec");
            sweep_mode = true;
        } else if (arg == "--workers") {
            sweep_only_flag = "--workers";
            sweep_options.workers = flag_number("--workers");
        } else if (arg == "--seeds") {
            sweep_only_flag = "--seeds";
            axis_flag = "--seeds";
            seeds = parse_list<std::uint64_t>(
                flag_value("--seeds"), "--seeds",
                [](const char* s, char** end) { return std::strtoull(s, end, 10); });
        } else if (arg == "--eps") {
            sweep_only_flag = "--eps";
            axis_flag = "--eps";
            epsilons = parse_list<double>(
                flag_value("--eps"), "--eps",
                [](const char* s, char** end) { return std::strtod(s, end); });
        } else if (arg == "--shards") {
            // Valid in both modes: an execution knob like threads, applied
            // to every spec (or sweep base) that runs. Results are
            // bit-identical for any value, so it never invalidates a
            // journal (spec fingerprints exclude it) and a resumed sweep
            // may change it freely.
            shards_flag = flag_number("--shards");
            shards_set = true;
            if (shards_flag == 0) {
                std::cerr << "error: --shards expects a positive shard count\n";
                return 2;
            }
        } else if (arg == "--max-retries") {
            sweep_only_flag = "--max-retries";
            // Applied to the spec after it is assembled: retries are a
            // property of the sweep, and the flag overrides a spec file's
            // own max_retries when both are given.
            max_retries_flag = flag_number("--max-retries");
            max_retries_set = true;
        } else if (arg == "--timeout") {
            // Valid in both modes: the sweep engine arms each job's watchdog
            // with it, and a plain scenario run goes through
            // run_scenario_with_timeout — the same CancelToken path.
            const std::string value = flag_value("--timeout");
            char* end = nullptr;
            sweep_options.job_timeout_seconds = std::strtod(value.c_str(), &end);
            if (value.empty() || end == nullptr || *end != '\0' ||
                sweep_options.job_timeout_seconds < 0.0) {
                std::cerr << "error: --timeout expects a non-negative number of seconds, "
                             "got '"
                          << value << "'\n";
                return 2;
            }
        } else if (arg == "--journal") {
            sweep_only_flag = "--journal";
            sweep_options.journal_path = flag_value("--journal");
            journal_overridden = true;
        } else if (arg == "--resume") {
            sweep_only_flag = "--resume";
            sweep_options.resume = true;
        } else if (arg == "--codebook-dir") {
            // Valid in both modes: an execution knob like --shards — results
            // are bit-identical with or without it (the format pins the
            // builder's fingerprint), only the build cost moves.
            codebook_dir = flag_value("--codebook-dir");
        } else if (arg == "--codebook-stats") {
            codebook_stats_path = flag_value("--codebook-stats");
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: nb_run [--list] [--json PATH] [--sweep] [--spec FILE]\n"
                   "              [--workers N] [--seeds 1,2,3] [--eps 0.05,0.1]\n"
                   "              [--shards N] [--max-retries N] [--timeout SECONDS]\n"
                   "              [--journal PATH] [--resume] [--codebook-dir DIR]\n"
                   "              [--codebook-stats FILE] [scenario ...]\n";
            return 0;
        } else if (!arg.empty() && arg.front() == '-') {
            std::cerr << "error: unknown option " << arg << " (try --help)\n";
            return 2;
        } else {
            names.push_back(arg);
        }
    }
    if (json_path.empty()) {
        json_path = sweep_mode ? "BENCH_sweep.json" : "BENCH_scenarios.json";
    }
    if (sweep_only_flag != nullptr && !sweep_mode) {
        // Silently ignoring an axis flag would hand back results for the
        // wrong configuration with exit code 0.
        std::cerr << "error: " << sweep_only_flag << " requires --sweep\n";
        return 2;
    }
    if (!spec_path.empty() && axis_flag != nullptr) {
        std::cerr << "error: " << axis_flag
                  << " cannot be combined with --spec (the spec file defines its own "
                     "axes)\n";
        return 2;
    }
    if (!spec_path.empty() && !names.empty()) {
        std::cerr << "error: named scenarios cannot be combined with --spec\n";
        return 2;
    }

    if (!codebook_dir.empty()) {
        CodebookCache::instance().set_directory(codebook_dir);
    }

    if (list_only) {
        for (const auto& spec : scenarios::shipped_scenarios()) {
            std::cout << spec.name << "  —  " << spec.description << '\n';
        }
        for (const auto& spec : scenarios::demo_scenarios()) {
            std::cout << spec.name << "  —  " << spec.description << '\n';
        }
        return 0;
    }

    std::vector<ScenarioSpec> specs;
    if (spec_path.empty()) {
        if (names.empty()) {
            specs = scenarios::shipped_scenarios();
        } else {
            for (const auto& name : names) {
                const ScenarioSpec* spec = scenarios::find_scenario(name);
                if (spec == nullptr) {
                    std::cerr << "error: unknown scenario '" << name << "' (see --list)\n";
                    return 2;
                }
                specs.push_back(*spec);
            }
        }
    }

    if (sweep_mode) {
        SweepSpec sweep;
        if (!spec_path.empty()) {
            sweep = load_sweep_spec(spec_path);
        } else {
            sweep = scenarios::shipped_sweep(std::move(seeds));
            if (!names.empty()) {
                sweep.name = "named-x-seeds";
                sweep.bases = specs;
            }
            sweep.axes.epsilons = std::move(epsilons);
        }
        if (max_retries_set) {
            sweep.max_retries = max_retries_flag;
        }
        if (shards_set) {
            for (auto& base : sweep.bases) {
                base.shards = shards_flag;
            }
        }
        if (!journal_overridden) {
            // Checkpointing is on by default: a killed sweep resumes with
            // --resume, and a completed run leaves the journal beside its
            // artifact as the record of per-job attempts.
            sweep_options.journal_path = default_journal_path(json_path);
        }
        const int status = run_sweep_mode(std::move(sweep), json_path, sweep_options);
        if (!codebook_stats_path.empty() && !write_codebook_stats(codebook_stats_path)) {
            return 1;
        }
        return status;
    }

    bench::header("nb_run", "unified scenario runner",
                  "declarative scenarios (topology x channel x faults x workload) "
                  "through one execution path and one JSON schema");

    std::vector<ScenarioResult> results;
    results.reserve(specs.size());
    Table table({"scenario", "transport", "channel", "n", "Delta", "rounds", "perfect",
                 "beeps/round", "p1 FN", "p1 FP", "p2 err", "rounds/s"});
    for (auto& spec : specs) {
        if (shards_set) {
            spec.shards = shards_flag;
        }
        ScenarioResult result;
        try {
            result = run_scenario_with_timeout(spec, sweep_options.job_timeout_seconds);
        } catch (const cancelled_error&) {
            // Same taxonomy as the sweep's per-job watchdog, surfaced as one
            // line: a hung or over-budget scenario is a failed run (exit 1),
            // not a crash and not an indefinite hang.
            std::cerr << "error: scenario '" << spec.name << "' exceeded the --timeout "
                      << "deadline of " << sweep_options.job_timeout_seconds << " s\n";
            return 1;
        }
        table.add_row({result.name, result.transport, result.channel,
                       Table::num(result.node_count), Table::num(result.max_degree),
                       Table::num(result.rounds), Table::num(result.perfect_rounds),
                       Table::num(result.beep_rounds_per_round),
                       Table::num(result.phase1_false_negatives),
                       Table::num(result.phase1_false_positives),
                       Table::num(result.phase2_errors),
                       Table::num(result.rounds_per_second, 1)});
        results.push_back(std::move(result));
    }
    table.print(std::cout, "scenario results");

    // Unlike the benches (which exit 0 unconditionally so unattended
    // experiment runs never wedge), the JSON artifact is this tool's
    // contract: a missing or truncated file must fail the CI job.
    const bool wrote = bench::write_json_file(json_path, [&](JsonWriter& json) {
        scenario_results_json(json, results);
    });
    if (!codebook_stats_path.empty() && !write_codebook_stats(codebook_stats_path)) {
        return 1;
    }
    return wrote ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    // The whole-tool error boundary (the "never crashes on bad input"
    // contract): precondition violations — malformed spec files, bad flag
    // values, semantic errors in an assembled sweep — are usage errors
    // (one line, exit 2); anything else is an internal failure (exit 1).
    // No input reaches the user as a crash or an unhandled exception.
    try {
        return run_main(argc, argv);
    } catch (const nb::precondition_error& error) {
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    } catch (const std::exception& error) {
        std::cerr << "internal error: " << error.what() << '\n';
        return 1;
    }
}
