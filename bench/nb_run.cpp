// nb_run — the unified scenario runner CLI.
//
// Executes named ScenarioSpecs from the registry (default: all shipped
// specs), prints one consistent table, and writes BENCH_scenarios.json in
// the nb-scenarios/v1 schema (the same serializer the tests pin). Every
// "what if the channel / topology / faults were X" question is a spec here,
// not a new binary.
//
//   nb_run                    run all shipped scenarios
//   nb_run ge-burst e6-n256   run the named scenarios only
//   nb_run --list             list shipped scenario names and exit
//   nb_run --json PATH        write the JSON artifact to PATH
//                             (default BENCH_scenarios.json)
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenarios/registry.h"
#include "scenarios/scenario.h"

int main(int argc, char** argv) {
    using namespace nb;

    std::string json_path = "BENCH_scenarios.json";
    std::vector<std::string> names;
    bool list_only = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            list_only = true;
        } else if (arg == "--json") {
            if (i + 1 >= argc) {
                std::cerr << "error: --json needs a path\n";
                return 2;
            }
            json_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: nb_run [--list] [--json PATH] [scenario ...]\n";
            return 0;
        } else if (!arg.empty() && arg.front() == '-') {
            std::cerr << "error: unknown option " << arg << " (try --help)\n";
            return 2;
        } else {
            names.push_back(arg);
        }
    }

    if (list_only) {
        for (const auto& spec : scenarios::shipped_scenarios()) {
            std::cout << spec.name << "  —  " << spec.description << '\n';
        }
        return 0;
    }

    std::vector<ScenarioSpec> specs;
    if (names.empty()) {
        specs = scenarios::shipped_scenarios();
    } else {
        for (const auto& name : names) {
            const ScenarioSpec* spec = scenarios::find_scenario(name);
            if (spec == nullptr) {
                std::cerr << "error: unknown scenario '" << name << "' (see --list)\n";
                return 2;
            }
            specs.push_back(*spec);
        }
    }

    bench::header("nb_run", "unified scenario runner",
                  "declarative scenarios (topology x channel x faults x workload) "
                  "through one execution path and one JSON schema");

    std::vector<ScenarioResult> results;
    results.reserve(specs.size());
    Table table({"scenario", "transport", "channel", "n", "Delta", "rounds", "perfect",
                 "beeps/round", "p1 FN", "p1 FP", "p2 err", "rounds/s"});
    for (const auto& spec : specs) {
        ScenarioResult result = run_scenario(spec);
        table.add_row({result.name, result.transport, result.channel,
                       Table::num(result.node_count), Table::num(result.max_degree),
                       Table::num(result.rounds), Table::num(result.perfect_rounds),
                       Table::num(result.beep_rounds_per_round),
                       Table::num(result.phase1_false_negatives),
                       Table::num(result.phase1_false_positives),
                       Table::num(result.phase2_errors),
                       Table::num(result.rounds_per_second, 1)});
        results.push_back(std::move(result));
    }
    table.print(std::cout, "scenario results");

    // Unlike the benches (which exit 0 unconditionally so unattended
    // experiment runs never wedge), the JSON artifact is this tool's
    // contract: a missing or truncated file must fail the CI job.
    const bool wrote = bench::write_json_file(json_path, [&](JsonWriter& json) {
        scenario_results_json(json, results);
    });
    return wrote ? 0 : 1;
}
