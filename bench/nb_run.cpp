// nb_run — the unified scenario runner CLI.
//
// Executes named ScenarioSpecs from the registry (default: all shipped
// specs), prints one consistent table, and writes BENCH_scenarios.json in
// the nb-scenarios/v1 schema (the same serializer the tests pin). Every
// "what if the channel / topology / faults were X" question is a spec here,
// not a new binary — and every family of such questions is a sweep.
//
//   nb_run                    run all shipped scenarios
//   nb_run ge-burst e6-n256   run the named scenarios only
//   nb_run --list             list shipped scenario names and exit
//   nb_run --json PATH        write the JSON artifact to PATH
//                             (default BENCH_scenarios.json, or
//                             BENCH_sweep.json with --sweep)
//   nb_run --sweep            run the scenarios (all shipped, or the named
//                             ones) as a parallel sweep, crossed with the
//                             --seeds / --eps axes, and write the
//                             nb-sweep/v1 artifact (byte-identical for any
//                             --workers value)
//   nb_run --workers N        sweep worker threads (0 = hardware)
//   nb_run --seeds 1,2,3      workload-seed axis (default 1,2,3)
//   nb_run --eps 0.05,0.1     optional iid noise-rate axis
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "scenarios/registry.h"
#include "scenarios/scenario.h"
#include "scenarios/sweep.h"

namespace {

/// Parse "a,b,c" with the given per-item parser; exits with a usage error on
/// malformed input (this is a CLI boundary, not library validation).
template <typename T, typename Parse>
std::vector<T> parse_list(const std::string& arg, const char* flag, Parse parse) {
    std::vector<T> values;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        const std::string item =
            arg.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        char* end = nullptr;
        values.push_back(parse(item.c_str(), &end));
        if (item.empty() || end == nullptr || *end != '\0') {
            std::cerr << "error: " << flag << " expects a comma-separated list, got '"
                      << arg << "'\n";
            std::exit(2);
        }
        if (comma == std::string::npos) {
            break;
        }
        start = comma + 1;
    }
    return values;
}

int run_sweep_mode(const std::vector<nb::ScenarioSpec>& specs, bool named_subset,
                   const std::string& json_path, std::size_t workers,
                   std::vector<std::uint64_t> seeds, std::vector<double> epsilons) {
    using namespace nb;

    SweepSpec sweep = scenarios::shipped_sweep(std::move(seeds));
    if (named_subset) {
        sweep.name = "named-x-seeds";
        sweep.bases = specs;
    }
    sweep.axes.epsilons = std::move(epsilons);

    bench::header("nb_run --sweep", "parallel scenario sweep",
                  "one SweepSpec expands to scenario jobs executed across workers; "
                  "aggregation is keyed by job index, so the artifact is "
                  "byte-identical for any worker count, and concurrent jobs share "
                  "codebook builds through the process-wide cache");

    SweepOptions options;
    options.workers = workers;
    SweepResult result;
    try {
        result = run_sweep(sweep, options);
    } catch (const precondition_error& error) {
        // Semantic errors in the assembled sweep (duplicate scenario names,
        // an --eps value outside [0, 1/2), ...) are CLI-input errors here,
        // not programming bugs: report and exit like any other usage error.
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    }

    Table table({"job", "transport", "channel", "n", "rounds", "perfect", "p1 FN", "p1 FP",
                 "p2 err"});
    for (const auto& r : result.results) {
        table.add_row({r.name, r.transport, r.channel, Table::num(r.node_count),
                       Table::num(r.rounds), Table::num(r.perfect_rounds),
                       Table::num(r.phase1_false_negatives),
                       Table::num(r.phase1_false_positives), Table::num(r.phase2_errors)});
    }
    table.print(std::cout, "sweep results (" + std::to_string(result.jobs) + " jobs, " +
                               std::to_string(result.workers) + " workers)");

    std::cout << "codebook cache: " << result.cache.builds << " builds, "
              << result.cache.hits << " hits (" << result.cache.coloring_builds
              << " coloring builds, " << result.cache.coloring_hits
              << " coloring hits) across " << result.jobs << " jobs; wall "
              << result.wall_seconds << " s\n\n";

    const bool wrote = nb::bench::write_json_file(json_path, [&](JsonWriter& json) {
        sweep_results_json(json, result);
    });
    return wrote ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace nb;

    std::string json_path;
    std::vector<std::string> names;
    bool list_only = false;
    bool sweep_mode = false;
    const char* sweep_only_flag = nullptr;  // first axis/worker flag seen
    std::size_t workers = 0;
    std::vector<std::uint64_t> seeds = {1, 2, 3};
    std::vector<double> epsilons;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto flag_value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "error: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            list_only = true;
        } else if (arg == "--json") {
            json_path = flag_value("--json");
        } else if (arg == "--sweep") {
            sweep_mode = true;
        } else if (arg == "--workers") {
            sweep_only_flag = "--workers";
            const std::string value = flag_value("--workers");
            char* end = nullptr;
            workers = static_cast<std::size_t>(std::strtoull(value.c_str(), &end, 10));
            if (value.empty() || end == nullptr || *end != '\0') {
                std::cerr << "error: --workers expects a number, got '" << value << "'\n";
                return 2;
            }
        } else if (arg == "--seeds") {
            sweep_only_flag = "--seeds";
            seeds = parse_list<std::uint64_t>(
                flag_value("--seeds"), "--seeds",
                [](const char* s, char** end) { return std::strtoull(s, end, 10); });
        } else if (arg == "--eps") {
            sweep_only_flag = "--eps";
            epsilons = parse_list<double>(
                flag_value("--eps"), "--eps",
                [](const char* s, char** end) { return std::strtod(s, end); });
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: nb_run [--list] [--json PATH] [--sweep] [--workers N]\n"
                         "              [--seeds 1,2,3] [--eps 0.05,0.1] [scenario ...]\n";
            return 0;
        } else if (!arg.empty() && arg.front() == '-') {
            std::cerr << "error: unknown option " << arg << " (try --help)\n";
            return 2;
        } else {
            names.push_back(arg);
        }
    }
    if (json_path.empty()) {
        json_path = sweep_mode ? "BENCH_sweep.json" : "BENCH_scenarios.json";
    }
    if (sweep_only_flag != nullptr && !sweep_mode) {
        // Silently ignoring an axis flag would hand back results for the
        // wrong configuration with exit code 0.
        std::cerr << "error: " << sweep_only_flag << " requires --sweep\n";
        return 2;
    }

    if (list_only) {
        for (const auto& spec : scenarios::shipped_scenarios()) {
            std::cout << spec.name << "  —  " << spec.description << '\n';
        }
        return 0;
    }

    std::vector<ScenarioSpec> specs;
    if (names.empty()) {
        specs = scenarios::shipped_scenarios();
    } else {
        for (const auto& name : names) {
            const ScenarioSpec* spec = scenarios::find_scenario(name);
            if (spec == nullptr) {
                std::cerr << "error: unknown scenario '" << name << "' (see --list)\n";
                return 2;
            }
            specs.push_back(*spec);
        }
    }

    if (sweep_mode) {
        return run_sweep_mode(specs, /*named_subset=*/!names.empty(), json_path, workers,
                              std::move(seeds), std::move(epsilons));
    }

    bench::header("nb_run", "unified scenario runner",
                  "declarative scenarios (topology x channel x faults x workload) "
                  "through one execution path and one JSON schema");

    std::vector<ScenarioResult> results;
    results.reserve(specs.size());
    Table table({"scenario", "transport", "channel", "n", "Delta", "rounds", "perfect",
                 "beeps/round", "p1 FN", "p1 FP", "p2 err", "rounds/s"});
    for (const auto& spec : specs) {
        ScenarioResult result = run_scenario(spec);
        table.add_row({result.name, result.transport, result.channel,
                       Table::num(result.node_count), Table::num(result.max_degree),
                       Table::num(result.rounds), Table::num(result.perfect_rounds),
                       Table::num(result.beep_rounds_per_round),
                       Table::num(result.phase1_false_negatives),
                       Table::num(result.phase1_false_positives),
                       Table::num(result.phase2_errors),
                       Table::num(result.rounds_per_second, 1)});
        results.push_back(std::move(result));
    }
    table.print(std::cout, "scenario results");

    // Unlike the benches (which exit 0 unconditionally so unattended
    // experiment runs never wedge), the JSON artifact is this tool's
    // contract: a missing or truncated file must fail the CI job.
    const bool wrote = bench::write_json_file(json_path, [&](JsonWriter& json) {
        scenario_results_json(json, results);
    });
    return wrote ? 0 : 1;
}
