// E17 — sharded-transport scaling: batched simulated rounds per second at
// n = 65536 on a ring, through ShardedTransport at 1, 2, and 4 shards with
// a 4-thread pool. One shard runs the whole round on one worker (the
// sharded pool sizes itself to min(threads, shards)), so the 1→4 ratio
// isolates what partitioned round-build + decode actually buys; the gate
// (check_perf_regression.py --shard) requires >= 2x when the machine has
// at least 4 cores and only sanity-checks the rates elsewhere — the JSON
// records hardware_concurrency so the gate can tell which case it is in.
//
// The workload mirrors the demo-shard-* registry specs: a ring keeps the
// max degree (and so the beep-code length) constant while n drives the
// interior-decode work, the regime sharding is built for. Determinism is
// not re-proven here — the sharding goldens in test_sharded_transport.cpp
// pin bit-identity; this bench only measures wall-clock.
#include <chrono>
#include <iostream>
#include <optional>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "graph/generators.h"
#include "sim/sharded_transport.h"

namespace {

using namespace nb;

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct Measurement {
    std::size_t shards = 0;
    std::size_t beep_rounds = 0;
    double batched_rounds_per_s = 0.0;
};

Measurement measure(const Graph& graph, std::size_t shards, std::size_t rounds) {
    SimulationParams params;
    params.epsilon = 0.05;
    params.message_bits = 2;
    params.c_eps = 4;
    params.decoy_count = 8;
    params.threads = 4;
    const ShardedTransport transport(graph, params, shards);

    Rng message_rng(0xe17);
    std::vector<std::optional<Bitstring>> messages(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        messages[v] = Bitstring::random(message_rng, params.message_bits);
    }

    std::vector<RoundSpec> specs;
    specs.reserve(rounds);
    for (std::uint64_t nonce = 0; nonce < rounds; ++nonce) {
        specs.push_back(RoundSpec{&messages, nonce, nullptr});
    }

    TransportBatch batch;
    transport.simulate_rounds_into(specs, batch);  // warm codebook + arenas

    Measurement m;
    m.shards = shards;
    m.beep_rounds = transport.rounds_per_broadcast_round();
    const auto start = std::chrono::steady_clock::now();
    transport.simulate_rounds_into(specs, batch);
    m.batched_rounds_per_s = static_cast<double>(rounds) / seconds_since(start);
    return m;
}

}  // namespace

int main() {
    using namespace nb;
    bench::header("E17", "sharded transport scaling at n=65536",
                  "implementation bench (no paper claim): batched rounds per "
                  "second on a ring through ShardedTransport at 1/2/4 shards, "
                  "4-thread pool");

    const Graph graph = make_ring(65536);
    const std::size_t cores = std::thread::hardware_concurrency();

    std::vector<Measurement> measurements;
    for (const std::size_t shards : {1, 2, 4}) {
        measurements.push_back(measure(graph, shards, /*rounds=*/4));
    }

    const double base = measurements.front().batched_rounds_per_s;
    Table table({"shards", "beep rounds", "batched (rounds/s)", "speedup vs 1"});
    for (const auto& m : measurements) {
        table.add_row({Table::num(m.shards), Table::num(m.beep_rounds),
                       Table::num(m.batched_rounds_per_s, 2),
                       Table::num(m.batched_rounds_per_s / base, 2)});
    }
    table.print(std::cout, "ShardedTransport::simulate_rounds_into, ring n=65536");
    std::cout << "hardware_concurrency: " << cores << "\n\n";

    bench::write_json_file("BENCH_shard.json", [&](JsonWriter& json) {
        json.begin_object();
        json.kv("bench", "shard_scaling");
        json.kv("n", std::size_t{65536});
        json.kv("topology", "ring");
        json.kv("message_bits", std::size_t{2});
        json.kv("threads", std::size_t{4});
        json.kv("hardware_concurrency", cores);
        json.key("results").begin_array();
        for (const auto& m : measurements) {
            json.begin_object();
            json.kv("shards", m.shards);
            json.kv("beep_rounds_per_round", m.beep_rounds);
            json.kv("batched_rounds_per_s", m.batched_rounds_per_s);
            json.end_object();
        }
        json.end_array();
        json.end_object();
    });

    bench::verdict(
        "throughput scales with the shard count on multi-core hardware; the "
        "1->4 shard ratio is gated at >= 2x by check_perf_regression.py "
        "--shard when hardware_concurrency >= 4");
    return 0;
}
