// E11 — Section 1.3's "surprising implication": noise does not asymptotically
// increase the cost of message-passing simulation — only the constant
// c_eps(epsilon) grows.
//
// At fixed (n, Delta), sweeps epsilon toward 1/2, reports the smallest
// tested constant that keeps rounds >=95% perfect, the resulting overhead,
// and the paper's proof constant — showing the Delta*log n shape is
// untouched by noise.
//
// Every (epsilon, c) evaluation is the registry's e11 ScenarioSpec run
// through the sweep engine: the per-epsilon constant ladder is evaluated in
// small run_sweep batches (parallel across the batch, sharing codebook
// builds where the parameters allow), so `nb_run e11-eps0.10-c4`
// reproduces any single point and `nb_run --sweep` the whole family.
#include <algorithm>
#include <iostream>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "scenarios/registry.h"
#include "scenarios/sweep.h"

namespace {

/// The smallest constant on the ladder (from `start` up) whose e11 scenario
/// keeps >= 95% of rounds perfect, searched in run_sweep batches of two:
/// ladder order is preserved (the first passing rung wins, exactly as the
/// sequential search chose), but the rungs of a batch evaluate in parallel.
std::pair<std::size_t, double> min_constant(double eps, std::size_t start) {
    using namespace nb;
    constexpr std::size_t kLadder[] = {3, 4, 5, 6, 8, 10, 12, 16, 20, 24};
    constexpr std::size_t kBatch = 2;

    std::vector<std::size_t> rungs;
    for (const auto c : kLadder) {
        if (c >= start) {
            rungs.push_back(c);
        }
    }
    double rate = 0.0;
    for (std::size_t i = 0; i < rungs.size(); i += kBatch) {
        SweepSpec batch;
        batch.name = "e11-ladder";
        for (std::size_t j = i; j < std::min(i + kBatch, rungs.size()); ++j) {
            batch.bases.push_back(scenarios::e11_noise_point(eps, rungs[j]));
        }
        SweepOptions options;
        options.workers = batch.bases.size();
        const SweepResult evaluated = run_sweep(batch, options);
        for (std::size_t j = 0; j < evaluated.results.size(); ++j) {
            rate = evaluated.results[j].perfect_fraction();
            if (rate >= 0.95) {
                return {rungs[i + j], rate};
            }
        }
    }
    return {0, rate};
}

}  // namespace

int main() {
    using namespace nb;
    bench::header("E11", "noise sweep: overhead vs epsilon (Section 1.3)",
                  "introducing noise does not asymptotically increase simulation "
                  "cost: only the constant c_eps grows with epsilon");

    // Every sweep point shares one topology and workload; read the fixed
    // dimensions off the spec once.
    const ScenarioSpec reference = scenarios::e11_noise_point(0.0, 3);
    const std::size_t delta = reference.topology.build().max_degree();
    const std::size_t message_bits = reference.workload.message_bits;

    Table table({"eps", "min c_eps (>=95%)", "overhead 2c^3(D+1)(B+1)", "over/(D*logn)",
                 "paper c_eps", "success at min"});
    for (const double eps : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45}) {
        // Start the search higher for harsher noise (low constants are known
        // to fail there; skipping them keeps the sweep fast).
        const std::size_t start = eps >= 0.4 ? 10 : (eps >= 0.25 ? 6 : 3);
        const auto [chosen, rate] = min_constant(eps, start);
        SimulationParams params;
        params.epsilon = eps;
        params.message_bits = message_bits;
        params.c_eps = chosen == 0 ? 24 : chosen;
        const std::size_t overhead = params.rounds_per_broadcast_round(delta);
        table.add_row(
            {Table::num(eps, 2), chosen == 0 ? ">24" : Table::num(chosen),
             Table::num(overhead),
             Table::num(static_cast<double>(overhead) /
                            (static_cast<double>(delta) * static_cast<double>(message_bits)),
                        0),
             Table::num(SimulationParams::paper_c_eps(eps)), Table::num(rate, 2)});
    }
    table.print(std::cout, "empirical constant frontier vs noise (n=64, Delta=8)");

    bench::verdict(
        "the required constant grows smoothly with epsilon (and is orders of "
        "magnitude below the worst-case proof constants); the Delta*log n shape "
        "of the overhead is identical at every epsilon — noise costs a constant");
    return 0;
}
