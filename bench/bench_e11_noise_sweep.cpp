// E11 — Section 1.3's "surprising implication": noise does not asymptotically
// increase the cost of message-passing simulation — only the constant
// c_eps(epsilon) grows.
//
// At fixed (n, Delta), sweeps epsilon toward 1/2, reports the smallest
// tested constant that keeps rounds >=95% perfect, the resulting overhead,
// and the paper's proof constant — showing the Delta*log n shape is
// untouched by noise.
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "common/math_util.h"
#include "sim/transport.h"

namespace {

/// Fraction of perfect rounds out of `rounds` at the given constant.
double success_rate(const nb::Graph& g, double eps, std::size_t c_eps,
                    std::size_t message_bits, std::size_t rounds) {
    nb::SimulationParams params;
    params.epsilon = eps;
    params.message_bits = message_bits;
    params.c_eps = c_eps;
    const nb::BeepTransport transport(g, params);
    nb::Rng message_rng(11);
    std::vector<std::optional<nb::Bitstring>> messages(g.node_count());
    for (nb::NodeId v = 0; v < g.node_count(); ++v) {
        messages[v] = nb::Bitstring::random(message_rng, message_bits);
    }
    // The whole nonce sweep is one batched transport call.
    std::vector<nb::RoundSpec> specs;
    specs.reserve(rounds);
    for (std::uint64_t nonce = 0; nonce < rounds; ++nonce) {
        specs.push_back(nb::RoundSpec{&messages, nonce, nullptr});
    }
    std::size_t perfect = 0;
    for (const auto& round : transport.simulate_rounds(specs)) {
        perfect += round.perfect ? 1 : 0;
    }
    return static_cast<double>(perfect) / static_cast<double>(rounds);
}

}  // namespace

int main() {
    using namespace nb;
    bench::header("E11", "noise sweep: overhead vs epsilon (Section 1.3)",
                  "introducing noise does not asymptotically increase simulation "
                  "cost: only the constant c_eps grows with epsilon");

    const std::size_t n = 64;
    const std::size_t d = 8;
    const std::size_t message_bits = ceil_log2(n);
    const std::size_t rounds = 8;
    const Graph g = bench::regular_graph(n, d, 0xe11);
    const std::size_t delta = g.max_degree();

    Table table({"eps", "min c_eps (>=95%)", "overhead 2c^3(D+1)(B+1)", "over/(D*logn)",
                 "paper c_eps", "success at min"});
    for (const double eps : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45}) {
        std::size_t chosen = 0;
        double rate = 0.0;
        // Start the search higher for harsher noise (low constants are known
        // to fail there; skipping them keeps the sweep fast).
        const std::size_t start = eps >= 0.4 ? 10 : (eps >= 0.25 ? 6 : 3);
        for (const std::size_t c : {3u, 4u, 5u, 6u, 8u, 10u, 12u, 16u, 20u, 24u}) {
            if (c < start) {
                continue;
            }
            rate = success_rate(g, eps, c, message_bits, rounds);
            if (rate >= 0.95) {
                chosen = c;
                break;
            }
        }
        SimulationParams params;
        params.epsilon = eps;
        params.message_bits = message_bits;
        params.c_eps = chosen == 0 ? 24 : chosen;
        const std::size_t overhead = params.rounds_per_broadcast_round(delta);
        table.add_row(
            {Table::num(eps, 2), chosen == 0 ? ">24" : Table::num(chosen),
             Table::num(overhead),
             Table::num(static_cast<double>(overhead) /
                            (static_cast<double>(delta) * static_cast<double>(message_bits)),
                        0),
             Table::num(SimulationParams::paper_c_eps(eps)), Table::num(rate, 2)});
    }
    table.print(std::cout, "empirical constant frontier vs noise (n=64, Delta=8)");

    bench::verdict(
        "the required constant grows smoothly with epsilon (and is orders of "
        "magnitude below the worst-case proof constants); the Delta*log n shape "
        "of the overhead is identical at every epsilon — noise costs a constant");
    return 0;
}
