// nb_load — load generator for nb_serve (DESIGN.md section 11).
//
// Drives a running server with concurrent submit streams of tiny sweep
// specs, classifies every response (done / rejected:overloaded /
// rejected:draining / error / transport failure), measures per-request
// latency, and writes BENCH_serve.json (nb-serve-bench/v1): throughput,
// p50/p90/p99 latency, shed rate, and the server's codebook-cache hit rate.
//
//   nb_load --socket PATH       server socket (required)
//   nb_load --clients N         concurrent connections (default 4)
//   nb_load --requests N        submit requests per client (default 8)
//   nb_load --deadline SECONDS  per-job deadline sent with each submit
//                               (default 30)
//   nb_load --rounds N          simulated rounds per scenario (default 2)
//   nb_load --n N               scenario node count (default 16)
//   nb_load --distinct-seeds N  workload seeds cycled across requests
//                               (default 4 — so the server's codebook cache
//                               sees repeats and the hit rate is meaningful)
//   nb_load --store             store each artifact (load-NNN objects)
//   nb_load --json PATH         artifact path (default BENCH_serve.json)
//   nb_load --wait SECONDS      retry the initial connect this long
//                               (default 5; covers server startup in CI)
//   nb_load --assert-sheds      exit 1 unless at least one submit was shed
//                               with rejected:overloaded (the overload test)
//   nb_load --assert-clean      exit 1 if any response was an error or a
//                               transport failure (sheds are allowed)
//
// Exit code: 0 on a clean run (modulo the assert flags), 1 when the server
// is unreachable or an assert flag fails, 2 on usage errors.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "serve/client.h"

namespace {

struct LoadConfig {
    std::string socket_path;
    std::size_t clients = 4;
    std::size_t requests = 8;
    double deadline_seconds = 30.0;
    std::size_t rounds = 2;
    std::size_t node_count = 16;
    std::size_t distinct_seeds = 4;
    bool store = false;
    std::string json_path = "BENCH_serve.json";
    double wait_seconds = 5.0;
    bool assert_sheds = false;
    bool assert_clean = false;
};

struct Outcome {
    std::vector<double> latencies_ms;  ///< completed submits only
    std::uint64_t done = 0;
    std::uint64_t shed_overloaded = 0;
    std::uint64_t shed_draining = 0;
    std::uint64_t errors = 0;
    std::uint64_t transport_failures = 0;
};

/// One tiny nb-spec/v1 submit request: a single-scenario sweep sized to take
/// milliseconds, with the workload seed cycling so the server's codebook
/// cache sees repeated build keys across requests.
std::string submit_request(const LoadConfig& config, std::size_t client,
                           std::size_t request_index) {
    std::ostringstream out;
    nb::JsonWriter json(out, /*indent=*/0);
    json.begin_object();
    json.kv("op", "submit");
    json.kv("deadline_seconds", config.deadline_seconds);
    if (config.store) {
        json.kv("store_as", "load-" + std::to_string(client) + "-" +
                                std::to_string(request_index));
    }
    json.key("spec").begin_object();
    json.kv("schema", "nb-spec/v1");
    json.kv("sweep", "load");
    json.key("scenarios").begin_array().begin_object();
    json.kv("name", "load-point");
    json.kv("rounds", static_cast<std::uint64_t>(config.rounds));
    json.key("topology").begin_object();
    json.kv("family", "random_regular");
    json.kv("n", static_cast<std::uint64_t>(config.node_count));
    json.kv("degree", 4);
    json.kv("seed", 7);
    json.end_object();
    json.key("channel").begin_object();
    json.kv("kind", "iid");
    json.kv("epsilon", 0.1);
    json.end_object();
    json.key("workload").begin_object();
    json.kv("message_bits", 4);
    json.kv("seed", static_cast<std::uint64_t>(
                        1 + (client * config.requests + request_index) %
                                std::max<std::size_t>(1, config.distinct_seeds)));
    json.end_object();
    json.end_object().end_array();
    json.end_object();  // spec
    json.end_object();
    return out.str();
}

void run_client(const LoadConfig& config, std::size_t client, Outcome& outcome) {
    nb::serve::Client connection;
    if (!connection.connect_wait(config.socket_path, config.wait_seconds)) {
        outcome.transport_failures += config.requests;
        return;
    }
    for (std::size_t i = 0; i < config.requests; ++i) {
        const auto start = std::chrono::steady_clock::now();
        const auto response = connection.request(submit_request(config, client, i));
        const double ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                      start)
                .count();
        if (!response.has_value()) {
            ++outcome.transport_failures;
            // The server may have dropped the connection (serve.accept
            // faults, drain); try once to reconnect for the rest.
            if (!connection.connect(config.socket_path)) {
                outcome.transport_failures += config.requests - i - 1;
                return;
            }
            continue;
        }
        const nb::JsonValue* ok = response->find("ok");
        const nb::JsonValue* status = response->find("status");
        if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
            ++outcome.done;
            outcome.latencies_ms.push_back(ms);
        } else if (status != nullptr && status->is_string() &&
                   status->as_string() == "rejected") {
            const nb::JsonValue* reason = response->find("reason");
            if (reason != nullptr && reason->is_string() &&
                reason->as_string() == "draining") {
                ++outcome.shed_draining;
            } else {
                ++outcome.shed_overloaded;
            }
        } else {
            ++outcome.errors;
        }
    }
}

double percentile(std::vector<double> sorted, double p) {
    if (sorted.empty()) {
        return 0.0;
    }
    const std::size_t index = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5));
    return sorted[index];
}

int run_main(int argc, char** argv) {
    LoadConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto flag_value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "error: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        auto flag_number = [&](const char* flag) -> std::size_t {
            const std::string value = flag_value(flag);
            char* end = nullptr;
            const auto parsed =
                static_cast<std::size_t>(std::strtoull(value.c_str(), &end, 10));
            if (value.empty() || end == nullptr || *end != '\0') {
                std::cerr << "error: " << flag << " expects a number, got '" << value
                          << "'\n";
                std::exit(2);
            }
            return parsed;
        };
        auto flag_seconds = [&](const char* flag) -> double {
            const std::string value = flag_value(flag);
            char* end = nullptr;
            const double parsed = std::strtod(value.c_str(), &end);
            if (value.empty() || end == nullptr || *end != '\0' || parsed < 0.0) {
                std::cerr << "error: " << flag
                          << " expects a non-negative number of seconds, got '" << value
                          << "'\n";
                std::exit(2);
            }
            return parsed;
        };
        if (arg == "--socket") {
            config.socket_path = flag_value("--socket");
        } else if (arg == "--clients") {
            config.clients = std::max<std::size_t>(1, flag_number("--clients"));
        } else if (arg == "--requests") {
            config.requests = std::max<std::size_t>(1, flag_number("--requests"));
        } else if (arg == "--deadline") {
            config.deadline_seconds = flag_seconds("--deadline");
        } else if (arg == "--rounds") {
            config.rounds = std::max<std::size_t>(1, flag_number("--rounds"));
        } else if (arg == "--n") {
            config.node_count = std::max<std::size_t>(8, flag_number("--n"));
        } else if (arg == "--distinct-seeds") {
            config.distinct_seeds = std::max<std::size_t>(1, flag_number("--distinct-seeds"));
        } else if (arg == "--store") {
            config.store = true;
        } else if (arg == "--json") {
            config.json_path = flag_value("--json");
        } else if (arg == "--wait") {
            config.wait_seconds = flag_seconds("--wait");
        } else if (arg == "--assert-sheds") {
            config.assert_sheds = true;
        } else if (arg == "--assert-clean") {
            config.assert_clean = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: nb_load --socket PATH [--clients N] [--requests N]\n"
                         "               [--deadline S] [--rounds N] [--n N]\n"
                         "               [--distinct-seeds N] [--store] [--json PATH]\n"
                         "               [--wait S] [--assert-sheds] [--assert-clean]\n";
            return 0;
        } else {
            std::cerr << "error: unknown option " << arg << " (try --help)\n";
            return 2;
        }
    }
    if (config.socket_path.empty()) {
        std::cerr << "error: --socket is required (try --help)\n";
        return 2;
    }

    nb::bench::header("nb_load", "nb_serve load generator",
                      "admission control under concurrent load: completed jobs answer "
                      "within their deadline, overload sheds typed rejections in "
                      "microseconds, and the shared codebook cache amortizes builds "
                      "across submissions");

    std::vector<Outcome> outcomes(config.clients);
    std::vector<std::thread> threads;
    threads.reserve(config.clients);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < config.clients; ++c) {
        threads.emplace_back(run_client, std::cref(config), c, std::ref(outcomes[c]));
    }
    for (auto& thread : threads) {
        thread.join();
    }
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    Outcome total;
    for (const auto& outcome : outcomes) {
        total.done += outcome.done;
        total.shed_overloaded += outcome.shed_overloaded;
        total.shed_draining += outcome.shed_draining;
        total.errors += outcome.errors;
        total.transport_failures += outcome.transport_failures;
        total.latencies_ms.insert(total.latencies_ms.end(), outcome.latencies_ms.begin(),
                                  outcome.latencies_ms.end());
    }
    std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
    const std::uint64_t requests =
        static_cast<std::uint64_t>(config.clients) * config.requests;
    const double jobs_per_second =
        wall_seconds > 0.0 ? static_cast<double>(total.done) / wall_seconds : 0.0;
    const double shed_rate =
        requests > 0 ? static_cast<double>(total.shed_overloaded + total.shed_draining) /
                           static_cast<double>(requests)
                     : 0.0;
    const double p50 = percentile(total.latencies_ms, 0.50);
    const double p90 = percentile(total.latencies_ms, 0.90);
    const double p99 = percentile(total.latencies_ms, 0.99);

    // One stats request for the server-side view — cache hit rate and the
    // server's own shed/retry counters.
    double cache_hit_rate = 0.0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_builds = 0;
    bool have_stats = false;
    {
        nb::serve::Client connection;
        if (connection.connect(config.socket_path)) {
            if (const auto response = connection.request(R"({"op":"stats"})")) {
                if (const nb::JsonValue* cache = response->find("cache")) {
                    if (const nb::JsonValue* rate = cache->find("hit_rate")) {
                        cache_hit_rate = rate->as_double();
                    }
                    if (const nb::JsonValue* hits = cache->find("hits")) {
                        cache_hits = hits->as_uint64();
                    }
                    if (const nb::JsonValue* builds = cache->find("builds")) {
                        cache_builds = builds->as_uint64();
                    }
                    have_stats = true;
                }
            }
        }
    }

    nb::Table table({"metric", "value"});
    table.add_row({"requests", nb::Table::num(requests)});
    table.add_row({"done", nb::Table::num(total.done)});
    table.add_row({"shed (overloaded)", nb::Table::num(total.shed_overloaded)});
    table.add_row({"shed (draining)", nb::Table::num(total.shed_draining)});
    table.add_row({"errors", nb::Table::num(total.errors)});
    table.add_row({"transport failures", nb::Table::num(total.transport_failures)});
    table.add_row({"jobs/s", nb::Table::num(jobs_per_second, 1)});
    table.add_row({"p50 latency (ms)", nb::Table::num(p50, 2)});
    table.add_row({"p90 latency (ms)", nb::Table::num(p90, 2)});
    table.add_row({"p99 latency (ms)", nb::Table::num(p99, 2)});
    table.add_row({"shed rate", nb::Table::num(shed_rate, 3)});
    if (have_stats) {
        table.add_row({"cache hit rate", nb::Table::num(cache_hit_rate, 3)});
    }
    table.print(std::cout, "nb_load against " + config.socket_path + " (" +
                               std::to_string(config.clients) + " clients x " +
                               std::to_string(config.requests) + " submits)");

    nb::bench::write_json_file(config.json_path, [&](nb::JsonWriter& json) {
        json.begin_object();
        json.kv("schema", "nb-serve-bench/v1");
        json.kv("clients", static_cast<std::uint64_t>(config.clients));
        json.kv("requests", requests);
        json.kv("done", total.done);
        json.kv("shed_overloaded", total.shed_overloaded);
        json.kv("shed_draining", total.shed_draining);
        json.kv("errors", total.errors);
        json.kv("transport_failures", total.transport_failures);
        json.kv("wall_seconds", wall_seconds);
        json.kv("jobs_per_second", jobs_per_second);
        json.kv("latency_ms_p50", p50);
        json.kv("latency_ms_p90", p90);
        json.kv("latency_ms_p99", p99);
        json.kv("shed_rate", shed_rate);
        json.kv("cache_hits", cache_hits);
        json.kv("cache_builds", cache_builds);
        json.kv("cache_hit_rate", cache_hit_rate);
        json.end_object();
    });

    if (total.done == 0 && total.shed_overloaded + total.shed_draining == 0) {
        std::cerr << "error: no request reached the server at " << config.socket_path
                  << '\n';
        return 1;
    }
    if (config.assert_sheds && total.shed_overloaded == 0) {
        std::cerr << "error: --assert-sheds: expected at least one rejected:overloaded "
                     "response\n";
        return 1;
    }
    if (config.assert_clean && (total.errors > 0 || total.transport_failures > 0)) {
        std::cerr << "error: --assert-clean: " << total.errors << " errors, "
                  << total.transport_failures << " transport failures\n";
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        return run_main(argc, argv);
    } catch (const nb::precondition_error& error) {
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    } catch (const std::exception& error) {
        std::cerr << "internal error: " << error.what() << '\n';
        return 1;
    }
}
