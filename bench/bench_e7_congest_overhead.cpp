// E7 — Corollary 12: a CONGEST round is simulated in O(Delta^2 log n) noisy
// beep rounds (Delta Broadcast CONGEST slots, each O(Delta log n) beeps),
// matching the Omega(Delta^2 log n) lower bound of Corollary 16.
//
// Executes the full stack — CONGEST algorithm -> adapter -> Algorithm 1 ->
// noisy beeps — on B-bit Local Broadcast and reports measured beep rounds
// per CONGEST round vs the lower bound.
#include <iostream>

#include "baselines/cost_models.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "lowerbound/local_broadcast.h"
#include "sim/congest_adapter.h"

int main() {
    using namespace nb;
    bench::header("E7", "CONGEST overhead vs Delta (Corollary 12)",
                  "O(Delta^2 log n) noisy-beep rounds per CONGEST round; "
                  "LB: Omega(Delta^2 log n) (Corollary 16)");

    const std::size_t n = 64;
    const std::size_t log_n = ceil_log2(n);
    const double eps = 0.1;

    Table table({"Delta", "B", "beeps/CONGEST round", "per/(D^2*logn)", "LB D^2*logn/2",
                 "delivered"});
    for (const std::size_t d : {2u, 4u, 8u, 16u}) {
        const Graph g = bench::regular_graph(n, d, 0xe7 + d);
        const std::size_t delta = g.max_degree();
        const std::size_t B = log_n;

        Rng rng(3 + d);
        const auto instance = make_local_broadcast_instance(g, B, rng);
        auto nodes = make_local_broadcast_nodes(g, instance, B);

        const std::size_t width =
            CongestViaBroadcastAdapter::required_message_bits(g.node_count(), B);
        SimulationParams params;
        params.epsilon = eps;
        params.message_bits = width;
        params.c_eps = 4;

        const auto result = run_congest_over_beeps(g, std::move(nodes), B, params, 7, 2);
        const double per_round = static_cast<double>(result.broadcast_stats.beep_rounds) /
                                 static_cast<double>(std::max<std::size_t>(1, result.congest_rounds));
        const double normalized =
            per_round / (static_cast<double>(delta * delta) * static_cast<double>(log_n));
        table.add_row({Table::num(delta), Table::num(B), Table::num(per_round, 0),
                       Table::num(normalized, 1),
                       Table::num(lower_bound_congest_overhead(delta, log_n)),
                       result.broadcast_stats.imperfect_rounds == 0 ? "exact" : "partial"});
    }
    table.print(std::cout, "noisy-beep rounds per CONGEST round (n=64, eps=0.1)");

    bench::verdict(
        "per-CONGEST-round cost normalized by Delta^2*log n is flat: the "
        "Corollary 12 quadratic-in-Delta shape, sitting a constant factor above "
        "the Corollary 16 lower bound (simulation is optimal)");
    return 0;
}
