#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh BENCH_transport.json against the checked-in
baseline and fail on a batched-throughput regression.

CI runners and developer machines differ wildly in raw speed, so absolute
rounds/s are never compared. Instead both runs are normalized by their own
scalar n=256 batched throughput (the least SIMD- and memory-sensitive
configuration), and the regression threshold applies to the normalized
values. That catches the regressions this gate exists for — a slowdown
specific to the batched path, to large n, or to one kernel table — while
staying stable across machine generations. A perfectly uniform slowdown of
every configuration is invisible to this check by construction; that is the
price of a machine-portable gate (the absolute numbers are still archived
as artifacts for human eyes).

Configurations present in only one of the two files (e.g. no AVX-512 on the
runner) are skipped with a note. Steady-state allocation counts are an exact
gate: the zero-copy contract does not degrade gracefully.

A second, self-contained mode gates the sharded transport's scaling claim:
`--shard BENCH_shard.json` checks that batched throughput at 4 shards is at
least --shard-speedup (default 2.0) times the 1-shard rate. That ratio only
means anything when the machine can actually run 4 workers, so the gate
applies the threshold when the recorded hardware_concurrency is >= 4 and
otherwise just sanity-checks that every rate is positive — same-machine
self-comparison, so no baseline file and no normalization anchor needed.

A third self-contained mode gates the serialized-codebook claim:
`--codebook BENCH_codebook.json` checks that at n >= 4096 the mmap load is
at least --codebook-speedup (default 5.0) times faster than a fresh build,
that every mode stayed fingerprint-identical to fresh, and that the bench's
simulated restart recorded zero builds. Like --shard this is a same-machine
self-comparison (a ratio of two timings from one run), so it needs no
baseline and no normalization anchor.

Usage: check_perf_regression.py CURRENT BASELINE [--threshold 0.30]
       check_perf_regression.py --shard BENCH_shard.json [--shard-speedup 2.0]
       check_perf_regression.py --codebook BENCH_codebook.json [--codebook-speedup 5.0]
Exit status 0 = pass, 1 = regression or malformed input.
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def load_results(doc, path):
    results = {}
    for row in doc.get("results", []):
        key = (row["n"], row["kernel"])
        results[key] = row
    if not results:
        raise ValueError(f"{path}: no results")
    return results


def cache_pressure_failures(doc):
    """Exact gate on the codebook cache block (absent in old baselines):
    byte-capacity evictions or oversize fallbacks mean the shipped workloads
    outgrew the cache budget — every affected transport construction pays a
    full rebuild, which the throughput rows only partially expose."""
    cache = doc.get("codebook_cache")
    if cache is None:
        return []
    failures = []
    for counter in ("evictions_capacity", "oversize_uncached"):
        value = cache.get(counter, 0)
        if value != 0:
            failures.append(f"codebook_cache.{counter}={value} (cache pressure; "
                            f"expected 0)")
    return failures


def reference_rate(results, path):
    # The normalization anchor. Every run includes the scalar table, and
    # n=256 fits comfortably in cache everywhere.
    row = results.get((256, "scalar"))
    if row is None:
        raise ValueError(f"{path}: missing the scalar n=256 anchor row")
    rate = float(row["batched_rounds_per_s"])
    if rate <= 0:
        raise ValueError(f"{path}: non-positive anchor throughput {rate}")
    return rate


def check_shard_scaling(path, min_speedup):
    """The BENCH_shard.json gate: 4-shard batched throughput >= min_speedup
    times the 1-shard rate, enforced only where 4 workers can actually run
    in parallel."""
    doc = load_doc(path)
    rates = {}
    for row in doc.get("results", []):
        rate = float(row["batched_rounds_per_s"])
        if rate <= 0:
            print(f"check_perf_regression: {path}: non-positive rate at "
                  f"shards={row['shards']}", file=sys.stderr)
            return 1
        rates[int(row["shards"])] = rate
    for shards in (1, 4):
        if shards not in rates:
            print(f"check_perf_regression: {path}: missing shards={shards} row",
                  file=sys.stderr)
            return 1

    cores = int(doc.get("hardware_concurrency", 0))
    speedup = rates[4] / rates[1]
    for shards in sorted(rates):
        print(f"  shards={shards} batched {rates[shards]:10.2f} rounds/s "
              f"({rates[shards] / rates[1]:.2f}x vs 1 shard)")
    if cores < 4:
        print(f"check_perf_regression: hardware_concurrency={cores} < 4; "
              f"scaling threshold not applicable, rates sane")
        return 0
    if speedup < min_speedup:
        print(f"check_perf_regression: 1->4 shard speedup {speedup:.2f}x "
              f"below required {min_speedup:.2f}x", file=sys.stderr)
        return 1
    print(f"check_perf_regression: 1->4 shard speedup {speedup:.2f}x "
          f"(required {min_speedup:.2f}x)")
    return 0


def check_codebook(path, min_speedup):
    """The BENCH_codebook.json gate: correctness is exact (every build mode
    fingerprint-identical to fresh, warm restart rebuilt nothing), and the
    mmap-load speedup threshold applies at n >= 4096, where the dictionary
    construction being skipped is large enough to dominate timing noise."""
    doc = load_doc(path)
    results = doc.get("results", [])
    if not results:
        print(f"check_perf_regression: {path}: no results", file=sys.stderr)
        return 1
    failures = []
    gated = 0
    for row in results:
        n = int(row["n"])
        fresh = float(row["fresh_ms"])
        mmap_load = float(row["mmap_load_ms"])
        if fresh <= 0 or mmap_load <= 0:
            failures.append(f"n={n}: non-positive timing (fresh={fresh}, "
                            f"mmap={mmap_load})")
            continue
        if not row.get("identical", False):
            failures.append(f"n={n}: a build mode diverged from the fresh "
                            f"fingerprint")
        speedup = fresh / mmap_load
        gate = ""
        if n >= 4096:
            gated += 1
            if speedup < min_speedup:
                gate = " REGRESSION"
                failures.append(f"n={n}: mmap load speedup {speedup:.1f}x below "
                                f"required {min_speedup:.1f}x")
        print(f"  n={n:5d} fresh {fresh:9.2f} ms  mmap {mmap_load:8.3f} ms  "
              f"({speedup:7.1f}x){gate}")
    cache = doc.get("cache", {})
    if cache.get("builds", -1) != 0:
        failures.append(f"cache.builds={cache.get('builds')} after simulated "
                        f"restart (expected 0 — warm start rebuilt)")
    if cache.get("disk_loads", 0) < 1:
        failures.append("cache.disk_loads=0 after simulated restart (warm path "
                        "never exercised)")
    if gated == 0:
        failures.append("no n >= 4096 row to gate on")
    if failures:
        print(f"\ncheck_perf_regression: {len(failures)} failure(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_perf_regression: codebook mmap speedup >= {min_speedup:.1f}x, "
          f"all modes fingerprint-identical, warm restart built nothing")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", nargs="?",
                        help="BENCH_transport.json from this build")
    parser.add_argument("baseline", nargs="?", help="checked-in baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional drop in normalized batched "
                             "rounds/s (default 0.30)")
    parser.add_argument("--shard", metavar="BENCH_shard.json",
                        help="gate sharded-transport scaling instead of the "
                             "transport baseline comparison")
    parser.add_argument("--shard-speedup", type=float, default=2.0,
                        help="required 1->4 shard throughput ratio when the "
                             "machine has >= 4 cores (default 2.0)")
    parser.add_argument("--codebook", metavar="BENCH_codebook.json",
                        help="gate serialized-codebook load speedup and "
                             "fingerprint identity instead of the transport "
                             "baseline comparison")
    parser.add_argument("--codebook-speedup", type=float, default=5.0,
                        help="required fresh-build / mmap-load ratio at "
                             "n >= 4096 (default 5.0)")
    args = parser.parse_args()

    if args.shard is not None:
        try:
            return check_shard_scaling(args.shard, args.shard_speedup)
        except (OSError, KeyError, ValueError) as err:
            print(f"check_perf_regression: {err}", file=sys.stderr)
            return 1
    if args.codebook is not None:
        try:
            return check_codebook(args.codebook, args.codebook_speedup)
        except (OSError, KeyError, ValueError) as err:
            print(f"check_perf_regression: {err}", file=sys.stderr)
            return 1
    if args.current is None or args.baseline is None:
        parser.error("CURRENT and BASELINE are required without --shard")

    try:
        current_doc = load_doc(args.current)
        current = load_results(current_doc, args.current)
        baseline = load_results(load_doc(args.baseline), args.baseline)
        cur_ref = reference_rate(current, args.current)
        base_ref = reference_rate(baseline, args.baseline)
    except (OSError, KeyError, ValueError) as err:
        print(f"check_perf_regression: {err}", file=sys.stderr)
        return 1

    failures = cache_pressure_failures(current_doc)
    compared = 0
    for key in sorted(baseline):
        if key not in current:
            print(f"  skip n={key[0]} kernel={key[1]}: not measured on this machine")
            continue
        n, kernel = key
        base_row, cur_row = baseline[key], current[key]

        cur_allocs = cur_row.get("steady_state_allocs")
        if cur_allocs != base_row.get("steady_state_allocs", 0):
            failures.append(f"n={n} kernel={kernel}: steady_state_allocs="
                            f"{cur_allocs} (baseline "
                            f"{base_row.get('steady_state_allocs', 0)})")

        base_norm = float(base_row["batched_rounds_per_s"]) / base_ref
        cur_norm = float(cur_row["batched_rounds_per_s"]) / cur_ref
        compared += 1
        ratio = cur_norm / base_norm
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSION"
            failures.append(f"n={n} kernel={kernel}: normalized batched "
                            f"throughput {cur_norm:.3f} vs baseline "
                            f"{base_norm:.3f} ({ratio:.2f}x)")
        print(f"  n={n:5d} kernel={kernel:7s} normalized {cur_norm:6.3f} "
              f"(baseline {base_norm:6.3f}, {ratio:5.2f}x) {status}")

    if compared == 0:
        print("check_perf_regression: no overlapping configurations",
              file=sys.stderr)
        return 1
    if failures:
        print(f"\ncheck_perf_regression: {len(failures)} failure(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_perf_regression: {compared} configurations within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
