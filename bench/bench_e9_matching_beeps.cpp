// E9 — Theorem 21 / Theorem 22: maximal matching in the noisy beeping model
// in O(Delta log^2 n) rounds, ~Delta^3/log n faster than the prior route
// (Panconesi-Rizzi CONGEST matching under [4]'s simulation), and within a
// log-factor of the Omega(Delta log n) lower bound.
//
// Executes matching end-to-end over noisy beeps (Algorithm 3 + Algorithm 1)
// and compares measured beep rounds to the prior-route and lower-bound
// models.
#include <iostream>

#include "apps/matching.h"
#include "baselines/cost_models.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "sim/broadcast_congest_sim.h"

int main() {
    using namespace nb;
    bench::header("E9", "maximal matching over noisy beeps (Theorems 21-22)",
                  "O(Delta log^2 n) noisy-beep rounds; prior route costs "
                  "O(Delta^4 log n + Delta^3 log n log* n); LB Omega(Delta log n)");

    const double eps = 0.1;

    Table table({"n", "Delta", "BC rounds", "beeps measured", "per-BC/(D+1)(B+1)",
                 "model speedup vs [4]", "LB D*logn", "valid"});
    for (const std::size_t n : {32u, 64u, 128u}) {
        for (const std::size_t d : {4u, 8u}) {
            const Graph g = bench::regular_graph(n, d, 0xe9 + n + d);
            const std::size_t delta = g.max_degree();
            const std::size_t log_n = ceil_log2(n);
            const std::size_t width = MatchingAlgorithm::required_message_bits(n);

            SimulationParams params;
            params.epsilon = eps;
            params.message_bits = width;
            params.c_eps = 4;
            CongestParams congest{width, 0x99 + n};

            auto nodes = make_matching_nodes(g);
            BroadcastCongestOverBeeps engine(g, params, congest);
            const auto stats = engine.run(nodes, matching_rounds_for_iterations(40 * log_n));
            const auto verdict = verify_matching(g, collect_matching_outputs(nodes));

            // Per-BC-round cost normalized by (Delta+1)(B+1): flat at 2*c^3
            // across every (n, Delta) = the Theorem 11 shape inside
            // Theorem 21's product.
            const double per_round =
                static_cast<double>(stats.beep_rounds) /
                static_cast<double>(std::max<std::size_t>(1, stats.congest_rounds));
            const double normalized = per_round / (static_cast<double>(delta + 1) *
                                                   static_cast<double>(width + 1));
            // Unit-constant model comparison: ours = O(log n) BC rounds *
            // O(Delta log n); prior = (Delta + log* n) CONGEST rounds under
            // [4]'s simulation + its setup. Ratio ~ Delta^3 / log n.
            const double ours_model =
                static_cast<double>(16 * log_n) * static_cast<double>(delta * log_n);
            const double prior_model =
                static_cast<double>(prior_matching_rounds(n, delta, log_n, log_star(n)));
            table.add_row({Table::num(n), Table::num(delta), Table::num(stats.congest_rounds),
                           Table::num(stats.beep_rounds), Table::num(normalized, 1),
                           Table::num(prior_model / ours_model, 2),
                           Table::num(matching_lower_bound(delta, log_n)),
                           verdict.valid() && stats.all_finished ? "yes" : "NO"});
        }
    }
    table.print(std::cout, "end-to-end noisy-beep maximal matching (eps=0.1, c_eps=4)");

    std::cout << "'per-BC/(D+1)(B+1)' is flat at 2*c_eps^3 = 128: each simulated round\n"
                 "costs Theta(Delta log n) beeps. 'model speedup' compares unit-constant\n"
                 "cost models (ours: 16 log n * Delta log n; prior: Panconesi-Rizzi under\n"
                 "[4] + setup) and grows ~Delta^3/log n as Section 6 derives.\n\n";

    bench::verdict(
        "matching over noisy beeps completes with verified maximal+symmetric "
        "outputs in O(log n) simulated rounds of O(Delta log n) beeps each "
        "(Theorem 21); the unit-constant speedup over the prior route grows "
        "with Delta, and the cost sits one log factor above the Theorem 22 bound");
    return 0;
}
