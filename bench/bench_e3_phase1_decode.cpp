// E3 — Lemmas 8 & 9: phase-1 decoding recovers the neighborhood codeword set
// R_v w.h.p., under noise.
//
// Runs Algorithm 1 rounds on near-regular graphs and reports phase-1
// false-negative / false-positive rates per (node, round) as epsilon and
// Delta sweep, at the default tuned constant.
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "sim/transport.h"

int main() {
    using namespace nb;
    bench::header("E3", "phase-1 neighborhood-set decoding (Lemmas 8-9)",
                  "R~_v = R_v for all v w.h.p.; noise epsilon in (0,1/2) only "
                  "affects the constant, not correctness");

    const std::size_t n = 64;
    const std::size_t message_bits = 12;
    const std::size_t rounds = 10;

    Table table({"Delta", "eps", "c_eps", "FN rate", "FP rate", "perfect rounds"});
    for (const std::size_t d : {4u, 8u, 16u}) {
        const Graph g = bench::regular_graph(n, d, 0xe3 + d);
        Rng message_rng(17 + d);
        std::vector<std::optional<Bitstring>> messages(g.node_count());
        for (NodeId v = 0; v < g.node_count(); ++v) {
            messages[v] = Bitstring::random(message_rng, message_bits);
        }
        for (const double eps : {0.0, 0.05, 0.1, 0.2, 0.3}) {
            SimulationParams params;
            params.epsilon = eps;
            params.message_bits = message_bits;
            params.c_eps = 4;
            const BeepTransport transport(g, params);

            std::size_t fn = 0;
            std::size_t fp = 0;
            std::size_t perfect = 0;
            for (std::uint64_t nonce = 0; nonce < rounds; ++nonce) {
                const auto round = transport.simulate_round(messages, nonce);
                fn += round.phase1_false_negatives;
                fp += round.phase1_false_positives;
                perfect += round.perfect ? 1 : 0;
            }
            const double decisions = static_cast<double>(n * rounds);
            table.add_row({Table::num(g.max_degree()), Table::num(eps, 2), Table::num(params.c_eps),
                           Table::num(static_cast<double>(fn) / decisions, 4),
                           Table::num(static_cast<double>(fp) / decisions, 4),
                           Table::num(perfect) + "/" + Table::num(rounds)});
        }
    }
    table.print(std::cout, "phase-1 decode errors per node-round (n=64, c_eps=4)");

    bench::verdict(
        "set decoding is exact in the noiseless model and stays near-exact for "
        "eps <= 0.2 at c_eps=4; higher eps needs the larger constants of E13 — "
        "noise shifts the constant only, as the paper claims");
    return 0;
}
