// E8 — Lemmas 19 & 20: Algorithm 3 (maximal matching) finishes in O(log n)
// Broadcast CONGEST rounds, removing >= half the edges per iteration in
// expectation.
//
// Part 1: iterations to termination vs n (native engine), against the
// 4*log2 n reference of Lemma 20.
// Part 2: per-iteration live edge counts on one instance (the Lemma 19
// halving), sampled via the engine's round observer.
#include <iostream>

#include "apps/matching.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "congest/native_engine.h"

int main() {
    using namespace nb;
    bench::header("E8", "maximal matching in Broadcast CONGEST (Lemmas 19-20)",
                  "O(log n) rounds w.h.p.; >= m/2 edges removed per iteration "
                  "in expectation");

    Table table({"n", "Delta", "edges", "iterations", "4*log2(n)", "valid", "matched pairs"});
    for (const std::size_t n : {64u, 256u, 1024u, 4096u}) {
        Rng rng(0xe8 + n);
        const Graph g = make_erdos_renyi(n, 6.0 / static_cast<double>(n), rng);
        auto nodes = make_matching_nodes(g);
        CongestParams params;
        params.message_bits = MatchingAlgorithm::required_message_bits(n);
        params.algorithm_seed = n;
        NativeBroadcastCongestEngine engine(g, params);
        const auto stats = engine.run(nodes, matching_rounds_for_iterations(40 * ceil_log2(n)));
        const std::size_t iterations = stats.rounds > 0 ? (stats.rounds - 1 + 3) / 4 : 0;
        const auto verdict = verify_matching(g, collect_matching_outputs(nodes));
        table.add_row({Table::num(n), Table::num(g.max_degree()), Table::num(g.edge_count()),
                       Table::num(iterations), Table::num(4 * ceil_log2(n)),
                       verdict.valid() ? "yes" : "NO", Table::num(verdict.matched_pairs)});
    }
    table.print(std::cout, "iterations to maximal matching, G(n, 6/n), native engine");

    // Part 2: edge decay per iteration (Lemma 19).
    {
        const std::size_t n = 1024;
        Rng rng(0x19);
        const Graph g = make_erdos_renyi(n, 10.0 / static_cast<double>(n), rng);
        auto nodes = make_matching_nodes(g);
        std::vector<MatchingAlgorithm*> raw;
        for (auto& node : nodes) {
            raw.push_back(dynamic_cast<MatchingAlgorithm*>(node.get()));
        }
        CongestParams params;
        params.message_bits = MatchingAlgorithm::required_message_bits(n);
        params.algorithm_seed = 77;
        NativeBroadcastCongestEngine engine(g, params);

        Table decay({"iteration", "live edges", "removal ratio", "Lemma 19 target"});
        std::size_t previous = g.edge_count();
        engine.set_round_observer([&](std::size_t round) {
            if (round == 0 || (round - 1) % 4 != 3) {
                return;  // sample at iteration boundaries only
            }
            std::size_t live = 0;
            for (const auto* node : raw) {
                live += node->active_edges();
            }
            live /= 2;
            const std::size_t iteration = (round - 1) / 4 + 1;
            const double ratio =
                previous == 0 ? 0.0
                              : 1.0 - static_cast<double>(live) / static_cast<double>(previous);
            if (previous > 0) {
                decay.add_row({Table::num(iteration), Table::num(live), Table::num(ratio, 3),
                               ">= 0.5 expected"});
            }
            previous = live;
        });
        engine.run(nodes, matching_rounds_for_iterations(40 * ceil_log2(n)));
        decay.print(std::cout, "live edges per iteration, G(1024, 10/n) (Lemma 19)");
    }

    bench::verdict(
        "iterations stay well inside 4*log2(n) at every n (Lemma 20), and each "
        "iteration removes around or above half the live edges (Lemma 19)");
    return 0;
}
