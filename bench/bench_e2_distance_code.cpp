// E2 — Lemma 6: (a, delta)-distance codes of length c_delta*a with
// c_delta >= 12*(1-2*delta)^-2 exist via random codewords.
//
// Measures the minimum pairwise Hamming distance of random codes as the
// length factor sweeps below and above the Lemma 6 requirement, for
// delta = 1/3 (the paper's instantiation, Section 3).
#include <iostream>

#include "bench_util.h"
#include "codes/analysis.h"
#include "codes/distance_code.h"

int main() {
    using namespace nb;
    bench::header("E2", "distance-code minimum distance (Lemma 6)",
                  "length 108*a suffices for relative distance 1/3 w.h.p. "
                  "(c_delta >= 12*(1-2/3)^-2 = 108)");

    const std::size_t a = 12;
    const double delta = 1.0 / 3.0;

    Table table({"length factor", "length b", "min d_H (exhaustive 2^12)", "min rel. dist",
                 "pairs below delta*b", "meets delta=1/3"});
    for (const std::size_t factor : {13u, 27u, 54u, 108u, 216u}) {
        const DistanceCode code(a, factor * a, 0xe2 + factor);
        const auto messages = all_messages(a);
        const std::size_t min_distance = min_pairwise_distance(code, messages);
        const double relative = static_cast<double>(min_distance) /
                                static_cast<double>(code.length());
        const double below = fraction_below_distance(
            code, messages, static_cast<std::size_t>(delta * static_cast<double>(code.length())));
        table.add_row({Table::num(factor), Table::num(code.length()), Table::num(min_distance),
                       Table::num(relative, 3), Table::num(below, 6),
                       relative >= delta ? "yes" : "no"});
    }
    table.print(std::cout, "minimum pairwise distance over all 2^12 codewords, delta=1/3");

    const DistanceCode paper_code = DistanceCode::lemma6(a, delta, 0x1234);
    std::cout << "Lemma 6 factory length for a=12, delta=1/3: " << paper_code.length()
              << " (= 108*a as the paper requires)\n\n";

    bench::verdict(
        "relative distance grows with the length factor and clears 1/3 at the "
        "Lemma 6 length; short codes (13a) fall below — matching the lemma's shape");
    return 0;
}
