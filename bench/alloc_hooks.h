// Process-wide heap allocation counter for steady-state assertions.
//
// Linking alloc_hooks.cpp into a binary replaces the global operator new /
// operator delete family with counting wrappers over malloc/posix_memalign.
// count() then reports the number of allocations performed so far, so a test
// or bench can assert that a warmed-up code path (e.g. a reused
// TransportBatch decode) performs exactly zero of them:
//
//   const auto before = nb::alloc_hooks::count();
//   transport.simulate_rounds_into(specs, batch);   // warm batch
//   EXPECT_EQ(nb::alloc_hooks::count() - before, 0);
//
// Deliberately NOT part of the noisy_beeps library: replacing global
// operator new is a whole-program decision, so only the binaries that
// measure allocation (nb_tests, bench_e14_micro, bench_e16) compile this TU
// in (see CMakeLists.txt).
#pragma once

#include <cstdint>

namespace nb::alloc_hooks {

/// Total operator-new invocations in this process so far. Thread-safe
/// (relaxed atomic); monotone.
std::uint64_t count() noexcept;

}  // namespace nb::alloc_hooks
