// E14 — engine and codec micro-benchmarks (google-benchmark).
//
// Throughput of the primitives everything else is built from: word-parallel
// superimposition, noise injection, codeword generation, threshold and
// nearest-codeword decoding, and a full Algorithm 1 round.
#include <benchmark/benchmark.h>

#include <optional>

#include "beep/batch_engine.h"
#include "codes/beep_code.h"
#include "codes/decoders.h"
#include "codes/distance_code.h"
#include "common/bitstring.h"
#include "graph/generators.h"
#include "sim/transport.h"

namespace {

using namespace nb;

void BM_BitstringOr(benchmark::State& state) {
    const auto bits = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    Bitstring a = Bitstring::random(rng, bits);
    const Bitstring b = Bitstring::random(rng, bits);
    for (auto _ : state) {
        a |= b;
        benchmark::DoNotOptimize(a);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_BitstringOr)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_NoiseInjection(benchmark::State& state) {
    const auto bits = static_cast<std::size_t>(state.range(0));
    Rng rng(2);
    for (auto _ : state) {
        Bitstring s(bits);
        s.apply_noise(rng, 0.1);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_NoiseInjection)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BeepCodeword(benchmark::State& state) {
    const BeepCode code(static_cast<std::size_t>(state.range(0)), 256, 3);
    std::uint64_t r = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.codeword(++r));
    }
}
BENCHMARK(BM_BeepCodeword)->Arg(1 << 12)->Arg(1 << 16);

void BM_Phase1Accept(benchmark::State& state) {
    const BeepCode code(1 << 14, 256, 5);
    const Phase1Decoder decoder(code, 0.1);
    Bitstring heard(1 << 14);
    for (std::uint64_t r = 0; r < 16; ++r) {
        heard |= code.codeword(r);
    }
    const Bitstring candidate = code.codeword(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(decoder.accepts_codeword(heard, candidate));
    }
}
BENCHMARK(BM_Phase1Accept);

void BM_Phase1Reject(benchmark::State& state) {
    // A candidate outside the superimposed set: the early-exit kernel stops
    // as soon as the missing-ones count reaches the threshold, so rejection
    // (the overwhelmingly common case in a dictionary scan) costs only a
    // prefix of the codeword.
    const BeepCode code(1 << 14, 256, 5);
    const Phase1Decoder decoder(code, 0.1);
    Bitstring heard(1 << 14);
    for (std::uint64_t r = 0; r < 16; ++r) {
        heard |= code.codeword(r);
    }
    const Bitstring candidate = code.codeword(99);  // not superimposed
    for (auto _ : state) {
        benchmark::DoNotOptimize(decoder.accepts_codeword(heard, candidate));
    }
}
BENCHMARK(BM_Phase1Reject);

void BM_DistanceDecode(benchmark::State& state) {
    const DistanceCode code(16, 512, 7);
    Rng rng(3);
    std::vector<Bitstring> candidates;
    for (int i = 0; i < 64; ++i) {
        candidates.push_back(Bitstring::random(rng, 16));
    }
    const Bitstring received = code.encode(candidates[17]);
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.decode(received, candidates));
    }
}
BENCHMARK(BM_DistanceDecode);

void BM_BatchHear(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(4);
    const Graph g = make_random_regular(n, 8, rng);
    std::vector<Bitstring> schedules;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        schedules.push_back(Bitstring::random(rng, 1 << 14));
    }
    BatchParams params;
    params.channel.epsilon = 0.1;
    const BatchEngine engine(g, params, Rng(5));
    NodeId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.hear(v, schedules));
        v = (v + 1) % g.node_count();
    }
}
BENCHMARK(BM_BatchHear)->Arg(64)->Arg(256);

void BM_TransportRound(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    const Graph g = make_random_regular(n, 8, rng);
    SimulationParams params;
    params.epsilon = 0.1;
    params.message_bits = 12;
    params.c_eps = 4;
    const BeepTransport transport(g, params);
    Rng message_rng(7);
    std::vector<std::optional<Bitstring>> messages(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        messages[v] = Bitstring::random(message_rng, 12);
    }
    std::uint64_t nonce = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(transport.simulate_round(messages, ++nonce));
    }
    state.counters["beep_rounds"] =
        static_cast<double>(transport.rounds_per_broadcast_round());
}
BENCHMARK(BM_TransportRound)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_TransportRoundCacheHit(benchmark::State& state) {
    // Re-simulating one (messages, nonce) round isolates the decode path:
    // the codebook serves codes, codewords, 1-positions, and dictionary
    // encodings from cache (simulate_round still re-runs both phases).
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    const Graph g = make_random_regular(n, 8, rng);
    SimulationParams params;
    params.epsilon = 0.1;
    params.message_bits = 12;
    params.c_eps = 4;
    const BeepTransport transport(g, params);
    Rng message_rng(7);
    std::vector<std::optional<Bitstring>> messages(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        messages[v] = Bitstring::random(message_rng, 12);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(transport.simulate_round(messages, 1));
    }
}
BENCHMARK(BM_TransportRoundCacheHit)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
