// E14 — engine and codec micro-benchmarks (google-benchmark).
//
// Throughput of the primitives everything else is built from: word-parallel
// superimposition, noise injection, codeword generation, threshold and
// nearest-codeword decoding, and a full Algorithm 1 round.
#include <benchmark/benchmark.h>

#include <cstring>
#include <optional>
#include <string>

#include "beep/batch_engine.h"
#include "common/aligned.h"
#include "common/simd/simd.h"
#include "codes/beep_code.h"
#include "codes/decoders.h"
#include "codes/distance_code.h"
#include "common/bitstring.h"
#include "graph/generators.h"
#include "sim/transport.h"

namespace {

using namespace nb;

void BM_BitstringOr(benchmark::State& state) {
    const auto bits = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    Bitstring a = Bitstring::random(rng, bits);
    const Bitstring b = Bitstring::random(rng, bits);
    for (auto _ : state) {
        a |= b;
        benchmark::DoNotOptimize(a);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_BitstringOr)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_NoiseInjection(benchmark::State& state) {
    const auto bits = static_cast<std::size_t>(state.range(0));
    Rng rng(2);
    for (auto _ : state) {
        Bitstring s(bits);
        s.apply_noise(rng, 0.1);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_NoiseInjection)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BeepCodeword(benchmark::State& state) {
    const BeepCode code(static_cast<std::size_t>(state.range(0)), 256, 3);
    std::uint64_t r = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.codeword(++r));
    }
}
BENCHMARK(BM_BeepCodeword)->Arg(1 << 12)->Arg(1 << 16);

void BM_Phase1Accept(benchmark::State& state) {
    const BeepCode code(1 << 14, 256, 5);
    const Phase1Decoder decoder(code, 0.1);
    Bitstring heard(1 << 14);
    for (std::uint64_t r = 0; r < 16; ++r) {
        heard |= code.codeword(r);
    }
    const Bitstring candidate = code.codeword(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(decoder.accepts_codeword(heard, candidate));
    }
}
BENCHMARK(BM_Phase1Accept);

void BM_Phase1Reject(benchmark::State& state) {
    // A candidate outside the superimposed set: the early-exit kernel stops
    // as soon as the missing-ones count reaches the threshold, so rejection
    // (the overwhelmingly common case in a dictionary scan) costs only a
    // prefix of the codeword.
    const BeepCode code(1 << 14, 256, 5);
    const Phase1Decoder decoder(code, 0.1);
    Bitstring heard(1 << 14);
    for (std::uint64_t r = 0; r < 16; ++r) {
        heard |= code.codeword(r);
    }
    const Bitstring candidate = code.codeword(99);  // not superimposed
    for (auto _ : state) {
        benchmark::DoNotOptimize(decoder.accepts_codeword(heard, candidate));
    }
}
BENCHMARK(BM_Phase1Reject);

void BM_DistanceDecode(benchmark::State& state) {
    const DistanceCode code(16, 512, 7);
    Rng rng(3);
    std::vector<Bitstring> candidates;
    for (int i = 0; i < 64; ++i) {
        candidates.push_back(Bitstring::random(rng, 16));
    }
    const Bitstring received = code.encode(candidates[17]);
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.decode(received, candidates));
    }
}
BENCHMARK(BM_DistanceDecode);

void BM_BatchHear(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(4);
    const Graph g = make_random_regular(n, 8, rng);
    std::vector<Bitstring> schedules;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        schedules.push_back(Bitstring::random(rng, 1 << 14));
    }
    BatchParams params;
    params.channel.epsilon = 0.1;
    const BatchEngine engine(g, params, Rng(5));
    NodeId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.hear(v, schedules));
        v = (v + 1) % g.node_count();
    }
}
BENCHMARK(BM_BatchHear)->Arg(64)->Arg(256);

void BM_TransportRound(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    const Graph g = make_random_regular(n, 8, rng);
    SimulationParams params;
    params.epsilon = 0.1;
    params.message_bits = 12;
    params.c_eps = 4;
    const BeepTransport transport(g, params);
    Rng message_rng(7);
    std::vector<std::optional<Bitstring>> messages(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        messages[v] = Bitstring::random(message_rng, 12);
    }
    std::uint64_t nonce = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(transport.simulate_round(messages, ++nonce));
    }
    state.counters["beep_rounds"] =
        static_cast<double>(transport.rounds_per_broadcast_round());
}
BENCHMARK(BM_TransportRound)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_TransportRoundCacheHit(benchmark::State& state) {
    // Re-simulating one (messages, nonce) round isolates the decode path:
    // the codebook serves codes, codewords, 1-positions, and dictionary
    // encodings from cache (simulate_round still re-runs both phases).
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    const Graph g = make_random_regular(n, 8, rng);
    SimulationParams params;
    params.epsilon = 0.1;
    params.message_bits = 12;
    params.c_eps = 4;
    const BeepTransport transport(g, params);
    Rng message_rng(7);
    std::vector<std::optional<Bitstring>> messages(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        messages[v] = Bitstring::random(message_rng, 12);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(transport.simulate_round(messages, 1));
    }
}
BENCHMARK(BM_TransportRoundCacheHit)->Arg(256)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Kernel-level microbenches, registered once per kernel the CPU supports
// (see main below). Workload shapes mirror the n=1024 decode hot path:
// 6336-bit beep codewords (99 words), weight 176, reject limit 53, a heard
// transcript at ~26% density, and a 1024-entry word-major dictionary.

constexpr std::size_t kBeepWords = 99;

AlignedWords random_density_words(Rng& rng, std::size_t words, int and_depth) {
    // AND of 2^and_depth random words: density 2^-and_depth.
    AlignedWords out(words);
    for (auto& w : out) {
        w = rng.next_u64();
        for (int d = 0; d < and_depth; ++d) {
            w &= rng.next_u64();
        }
    }
    return out;
}

void BM_SimdAndNotBelow(benchmark::State& state, simd::Kernel kernel) {
    // The packed phase-1 rejection test: early-exit popcount of
    // candidate & ~heard against the reject limit.
    Rng rng(8);
    const AlignedWords heard = random_density_words(rng, kBeepWords, 2);
    const AlignedWords candidate = random_density_words(rng, kBeepWords, 5);
    const auto& ops = simd::ops(kernel);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ops.and_not_count_below(candidate.data(), heard.data(), kBeepWords, 53));
    }
}

void BM_SimdHammingAll(benchmark::State& state, simd::Kernel kernel) {
    // The phase-2 dictionary scan over the word-major SoA encoding:
    // distance of one received word-row to every dictionary entry.
    Rng rng(9);
    const std::size_t words = 17;                  // 1056-bit phase-2 blocks
    const std::size_t stride = 1024;               // dictionary entries
    const AlignedWords soa = random_density_words(rng, words * stride, 0);
    const AlignedWords received = random_density_words(rng, words, 0);
    std::vector<std::uint32_t> distances(stride);
    const auto& ops = simd::ops(kernel);
    for (auto _ : state) {
        ops.hamming_all(received.data(), words, soa.data(), stride, distances.data());
        benchmark::DoNotOptimize(distances.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(stride));  // candidates/s
}

void BM_SimdBitslicePass(benchmark::State& state, simd::Kernel kernel) {
    // The transposed phase-1 pass: every 1-row of the transcript feeds the
    // vertical carry-save counters of 64 candidates per lane word.
    Rng rng(10);
    const std::size_t rows = 6336;
    const std::size_t lanes = 24;                  // 1056 candidates padded
    const std::size_t plane_count = 7;
    const AlignedWords matrix = random_density_words(rng, rows * lanes, 5);
    const AlignedWords transcript = random_density_words(rng, kBeepWords, 2);
    const AlignedWords bias = random_density_words(rng, plane_count * lanes, 1);
    AlignedWords low(4 * lanes, 0);
    AlignedWords planes(plane_count * lanes);
    AlignedWords accept(lanes);
    const auto& ops = simd::ops(kernel);
    for (auto _ : state) {
        // Per-call setup as on the real path: planes re-biased, accept cleared.
        std::memcpy(planes.data(), bias.data(), planes.size() * sizeof(std::uint64_t));
        std::memset(accept.data(), 0, accept.size() * sizeof(std::uint64_t));
        ops.bitslice_pass(transcript.data(), kBeepWords, matrix.data(), lanes, low.data(),
                          planes.data(), plane_count, accept.data());
        benchmark::DoNotOptimize(accept.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(lanes * 64));  // candidates/s
}

void BM_SimdGatherBits(benchmark::State& state, simd::Kernel kernel) {
    // The phase-2 subsequence gather: the heard transcript's bits at a
    // codeword's ~176 1-positions, packed (PEXT walk on the AVX tables).
    Rng rng(11);
    const AlignedWords heard = random_density_words(rng, kBeepWords, 2);
    const AlignedWords mask = random_density_words(rng, kBeepWords, 5);
    AlignedWords out(kBeepWords);
    const auto& ops = simd::ops(kernel);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ops.gather_bits(heard.data(), mask.data(), kBeepWords, out.data()));
    }
}

}  // namespace

int main(int argc, char** argv) {
    // The kernel microbenches register one instance per kernel this CPU can
    // run, named like BM_SimdHammingAll/avx512, so one invocation reports
    // the dispatch alternatives side by side.
    for (const auto kernel :
         {simd::Kernel::scalar, simd::Kernel::avx2, simd::Kernel::avx512}) {
        if (!simd::kernel_supported(kernel)) {
            continue;
        }
        const std::string suffix = std::string("/") + simd::kernel_name(kernel);
        benchmark::RegisterBenchmark(("BM_SimdAndNotBelow" + suffix).c_str(),
                                     BM_SimdAndNotBelow, kernel);
        benchmark::RegisterBenchmark(("BM_SimdHammingAll" + suffix).c_str(),
                                     BM_SimdHammingAll, kernel);
        benchmark::RegisterBenchmark(("BM_SimdBitslicePass" + suffix).c_str(),
                                     BM_SimdBitslicePass, kernel);
        benchmark::RegisterBenchmark(("BM_SimdGatherBits" + suffix).c_str(),
                                     BM_SimdGatherBits, kernel);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
