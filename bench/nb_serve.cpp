// nb_serve — the long-lived simulation service (DESIGN.md section 11).
//
// Accepts nb-serve/v1 requests (newline-delimited JSON) on a local unix
// socket, executes submitted nb-spec/v1 sweeps on the shared execution
// engine, and publishes results to a crash-safe versioned artifact store.
//
//   nb_serve --socket PATH        unix socket to listen on (required)
//   nb_serve --store DIR          artifact store directory (required)
//   nb_serve --queue N            admission bound: queued + running jobs;
//                                 beyond it submits are shed immediately
//                                 with rejected:overloaded (default 16)
//   nb_serve --executors N        concurrent job executors (default 2)
//   nb_serve --job-workers N      sweep workers inside each job (default 1)
//   nb_serve --deadline SECONDS   default per-job deadline (default 60)
//   nb_serve --max-deadline S     cap on client-requested deadlines (600)
//   nb_serve --max-retries N      server-side retries for transient job
//                                 failures (default 2)
//   nb_serve --drain SECONDS      grace period between a drain request and
//                                 hard-cancelling stragglers (default 5)
//   nb_serve --codebook-dir DIR   warm-start directory: mmap-load serialized
//                                 codebooks on cache misses and persist new
//                                 builds there, so a restart cold-starts warm
//
// Shutdown: SIGTERM or SIGINT starts a graceful drain — the listener
// closes, queued and new submissions answer `rejected:draining`, running
// jobs get the grace period, stragglers are cancelled through their tokens,
// every pending client gets a typed response, and the process exits 0.
#include <signal.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/error.h"
#include "common/failpoint.h"
#include "serve/server.h"

namespace {

int run_main(int argc, char** argv) {
    nb::serve::ServerConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto flag_value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "error: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        auto flag_number = [&](const char* flag) -> std::size_t {
            const std::string value = flag_value(flag);
            char* end = nullptr;
            const auto parsed =
                static_cast<std::size_t>(std::strtoull(value.c_str(), &end, 10));
            if (value.empty() || end == nullptr || *end != '\0') {
                std::cerr << "error: " << flag << " expects a number, got '" << value
                          << "'\n";
                std::exit(2);
            }
            return parsed;
        };
        auto flag_seconds = [&](const char* flag) -> double {
            const std::string value = flag_value(flag);
            char* end = nullptr;
            const double parsed = std::strtod(value.c_str(), &end);
            if (value.empty() || end == nullptr || *end != '\0' || parsed < 0.0) {
                std::cerr << "error: " << flag
                          << " expects a non-negative number of seconds, got '" << value
                          << "'\n";
                std::exit(2);
            }
            return parsed;
        };
        if (arg == "--socket") {
            config.socket_path = flag_value("--socket");
        } else if (arg == "--store") {
            config.store_dir = flag_value("--store");
        } else if (arg == "--queue") {
            config.queue_capacity = flag_number("--queue");
        } else if (arg == "--executors") {
            config.executors = flag_number("--executors");
        } else if (arg == "--job-workers") {
            config.job_workers = flag_number("--job-workers");
        } else if (arg == "--deadline") {
            config.default_deadline_seconds = flag_seconds("--deadline");
        } else if (arg == "--max-deadline") {
            config.max_deadline_seconds = flag_seconds("--max-deadline");
        } else if (arg == "--max-retries") {
            config.max_retries = flag_number("--max-retries");
        } else if (arg == "--drain") {
            config.drain_seconds = flag_seconds("--drain");
        } else if (arg == "--codebook-dir") {
            config.codebook_dir = flag_value("--codebook-dir");
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: nb_serve --socket PATH --store DIR [--queue N]\n"
                         "                [--executors N] [--job-workers N]\n"
                         "                [--deadline S] [--max-deadline S]\n"
                         "                [--max-retries N] [--drain S]\n"
                         "                [--codebook-dir DIR]\n";
            return 0;
        } else {
            std::cerr << "error: unknown option " << arg << " (try --help)\n";
            return 2;
        }
    }
    if (config.socket_path.empty() || config.store_dir.empty()) {
        std::cerr << "error: --socket and --store are required (try --help)\n";
        return 2;
    }

    // Block the shutdown signals BEFORE any thread exists, so every thread
    // the server spawns inherits the mask and sigwait below is the one
    // place they are delivered — no async-signal-safety gymnastics, no
    // self-pipe in a handler.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGTERM);
    sigaddset(&signals, SIGINT);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    nb::serve::Server server(config);
    server.start();

    const std::string active_failpoints = nb::failpoint::active_summary();
    if (!active_failpoints.empty()) {
        std::cout << "nb_serve: failpoints armed: " << active_failpoints << '\n';
    }
    std::cout << "nb_serve: listening on " << config.socket_path << " (store "
              << config.store_dir << ", queue " << config.queue_capacity << ", "
              << config.executors << " executors)\n"
              << std::flush;

    int signal_number = 0;
    sigwait(&signals, &signal_number);
    std::cout << "nb_serve: received "
              << (signal_number == SIGTERM ? "SIGTERM" : "SIGINT")
              << ", draining (grace " << config.drain_seconds << " s)\n"
              << std::flush;

    server.request_drain();
    server.wait();

    const nb::serve::ServerCounters counters = server.counters();
    std::cout << "nb_serve: drained — " << counters.completed << " completed, "
              << counters.failed << " failed, " << counters.shed_overloaded
              << " shed (overloaded), " << counters.shed_draining << " shed (draining), "
              << counters.drain_cancelled << " cancelled by the drain deadline\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        return run_main(argc, argv);
    } catch (const nb::precondition_error& error) {
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    } catch (const std::exception& error) {
        std::cerr << "internal error: " << error.what() << '\n';
        return 1;
    }
}
