// E1 — Theorem 4: (a, k, 1/c)-beep codes of length b = c^2*k*a exist and the
// random construction is decodable with high probability.
//
// Measures, for random codes at several (k, c): the rate at which a random
// size-k superimposition 5*delta^2*b/k-intersects an outside codeword (the
// Definition 3 event), the mean/max intersection, and the margin to the
// threshold. The paper proves the event probability is <= 2^-4a.
#include <iostream>

#include "bench_util.h"
#include "codes/analysis.h"
#include "codes/beep_code.h"

int main() {
    using namespace nb;
    bench::header("E1", "beep-code decodability (Theorem 4 / Definition 3)",
                  "random weight-(b/ck) codes of length b=c^2*k*a have decodable "
                  "superimpositions except with probability ~2^-4a");

    const std::size_t a = 16;
    const std::size_t trials = 400;

    Table table({"k", "c", "length b", "weight", "threshold 5a", "mean 1(x&S)", "max",
                 "violation rate"});
    bool any_violation = false;
    for (const std::size_t k : {2u, 4u, 8u, 16u, 32u}) {
        for (const std::size_t c : {3u, 4u, 6u}) {
            const BeepCode code = BeepCode::theorem4(a, k, c, 0xe1 + k * 100 + c);
            const std::size_t threshold = 5 * a;  // 5*delta^2*b/k = 5a
            Rng rng(k * 7919 + c);
            const auto stats = measure_superimposition(code, k, threshold, trials, rng);
            any_violation |= stats.violation_rate > 0.0;
            table.add_row({Table::num(k), Table::num(c), Table::num(code.length()),
                           Table::num(code.weight()), Table::num(threshold),
                           Table::num(stats.mean_intersection, 1),
                           Table::num(stats.max_intersection),
                           Table::num(stats.violation_rate, 4)});
        }
    }
    table.print(std::cout, "Definition 3 violation rate (a=16, 400 trials each)");

    bench::verdict(any_violation
                       ? "unexpected violations observed — investigate"
                       : "0 violations across all (k, c): matches the 2^-4a bound's "
                         "prediction that violations are never observed at this scale");
    return 0;
}
