// E10 — Lemma 14 + Corollary 16: B-bit Local Broadcast needs Omega(Delta^2 B)
// beep rounds on the hard instance (K_{Delta,Delta} + isolated vertices);
// our CONGEST simulation solves it within a constant-and-log factor.
//
// Runs the task end-to-end over beeps on the hard instance, prints measured
// cost vs the counting lower bound, and tabulates Lemma 14's success-
// probability exponent for sub-bound round budgets.
#include <iostream>

#include "baselines/cost_models.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "graph/generators.h"
#include "lowerbound/local_broadcast.h"
#include "sim/congest_adapter.h"

int main() {
    using namespace nb;
    bench::header("E10", "B-bit Local Broadcast on the hard instance (Lemma 14)",
                  "Omega(Delta^2 B / 2) beep rounds; our simulation is within an "
                  "O(c^3 log n / B) factor => simulation overhead is optimal");

    const std::size_t n = 64;
    const std::size_t B = 16;

    Table table({"Delta", "beeps measured", "LB D^2*B/2", "upper/lower", "delivered"});
    for (const std::size_t delta : {2u, 4u, 8u, 16u}) {
        const Graph g = make_hard_instance(n, delta);
        Rng rng(0xe10 + delta);
        const auto instance = make_local_broadcast_instance(g, B, rng);
        auto nodes = make_local_broadcast_nodes(g, instance, B);

        const std::size_t width = CongestViaBroadcastAdapter::required_message_bits(n, B);
        SimulationParams params;
        params.epsilon = 0.1;
        params.message_bits = width;
        params.c_eps = 4;
        const auto result = run_congest_over_beeps(g, std::move(nodes), B, params, 5, 2);

        const std::size_t lower = local_broadcast_lower_bound(delta, B);
        table.add_row({Table::num(delta), Table::num(result.broadcast_stats.beep_rounds),
                       Table::num(lower),
                       Table::num(static_cast<double>(result.broadcast_stats.beep_rounds) /
                                      static_cast<double>(std::max<std::size_t>(1, lower)),
                                  1),
                       result.broadcast_stats.imperfect_rounds == 0 ? "exact" : "partial"});
    }
    table.print(std::cout, "measured vs Lemma 14 bound (n=64, B=16, eps=0.1)");

    // Lemma 14's counting argument: success probability of ANY algorithm
    // using fewer rounds than the bound.
    Table counting({"Delta", "B", "rounds T", "log2 Pr[success] <= T - D^2*B"});
    for (const std::size_t delta : {4u, 8u}) {
        const std::size_t bound = local_broadcast_lower_bound(delta, B);
        for (const double fraction : {0.5, 1.0, 2.0}) {
            const auto rounds = static_cast<std::size_t>(fraction * static_cast<double>(bound));
            counting.add_row({Table::num(delta), Table::num(B), Table::num(rounds),
                              Table::num(local_broadcast_success_log2(rounds, delta, B), 1)});
        }
    }
    counting.print(std::cout, "Lemma 14 transcript-counting exponent");

    bench::verdict(
        "upper/lower ratio shrinks toward a constant*log-factor as Delta grows, "
        "and any algorithm below the bound has exponentially small success "
        "probability — Omega(Delta^2 B) is tight for the simulation route");
    return 0;
}
