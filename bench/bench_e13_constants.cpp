// E13 — engineering ablation behind "tuned" mode: how large does c_eps
// actually need to be?
//
// For each epsilon and Delta, reports the per-round perfect-delivery rate
// across the c_eps grid, locating the empirical frontier; the paper's
// proof constants (hundreds to thousands) are worst-case union-bound
// artifacts, which this table quantifies.
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "common/math_util.h"
#include "sim/transport.h"

int main() {
    using namespace nb;
    bench::header("E13", "constant-sensitivity ablation (tuned vs paper c_eps)",
                  "Lemmas 8-10 hold 'for sufficiently large c_eps'; this maps how "
                  "large is sufficient in practice");

    const std::size_t n = 32;
    const std::size_t message_bits = ceil_log2(n);
    const std::size_t rounds = 10;
    const std::vector<std::size_t> grid{3, 4, 6, 8, 12};

    std::vector<std::string> headers{"eps", "Delta"};
    for (const auto c : grid) {
        headers.push_back("c=" + std::to_string(c));
    }
    headers.push_back("paper c_eps");
    Table table(headers);

    for (const double eps : {0.0, 0.1, 0.2, 0.3, 0.4}) {
        for (const std::size_t d : {4u, 8u}) {
            const Graph g = bench::regular_graph(n, d, 0xe13 + d);
            Rng message_rng(5);
            std::vector<std::optional<Bitstring>> messages(g.node_count());
            for (NodeId v = 0; v < g.node_count(); ++v) {
                messages[v] = Bitstring::random(message_rng, message_bits);
            }
            std::vector<std::string> row{Table::num(eps, 2), Table::num(g.max_degree())};
            for (const auto c : grid) {
                SimulationParams params;
                params.epsilon = eps;
                params.message_bits = message_bits;
                params.c_eps = c;
                const BeepTransport transport(g, params);
                std::size_t perfect = 0;
                for (std::uint64_t nonce = 0; nonce < rounds; ++nonce) {
                    perfect += transport.simulate_round(messages, nonce).perfect ? 1 : 0;
                }
                row.push_back(Table::num(static_cast<double>(perfect) /
                                             static_cast<double>(rounds),
                                         2));
            }
            row.push_back(Table::num(SimulationParams::paper_c_eps(eps)));
            table.add_row(row);
        }
    }
    table.print(std::cout, "fraction of perfect rounds per c_eps (n=32, 10 rounds)");

    bench::verdict(
        "c_eps=4 already delivers perfectly up to eps~0.2; eps=0.4 needs c~12. "
        "All are 1-2 orders of magnitude below the proof constants — tuned mode "
        "is sound, and the frontier grows with eps exactly as the lemmas predict");
    return 0;
}
