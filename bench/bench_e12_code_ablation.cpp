// E12 — Section 1.4 ablation: why beep codes instead of classic superimposed
// codes. Kautz-Singleton codes on (c_eps*B)-bit inputs force length
// Theta(k^2 a / log^2 k) (=> Theta(Delta^2 log n) simulation overhead); the
// relaxed beep codes give Theta(k a) (=> Theta(Delta log n)).
//
// Also demonstrates KS cover-decoding working noiselessly but lacking a
// designed noise margin, which is the paper's second reason to replace it.
#include <iostream>

#include "bench_util.h"
#include "codes/beep_code.h"
#include "codes/kautz_singleton.h"
#include "common/math_util.h"
#include "sim/params.h"

int main() {
    using namespace nb;
    bench::header("E12", "beep codes vs Kautz-Singleton (Section 1.4 ablation)",
                  "classic superimposed codes force Theta(Delta^2 log n) length; "
                  "relaxed beep codes reach Theta(Delta log n)");

    const std::size_t n = 1024;
    const std::size_t B = ceil_log2(n);
    const std::size_t c_eps = 4;
    const std::size_t a = c_eps * (B + 1);  // beep-code input bits in Algorithm 1

    Table table({"Delta", "k=Delta+1", "beep-code 2b (ours)", "KS length (2 phases)",
                 "KS/ours", "KS q"});
    for (const std::size_t delta : {3u, 7u, 15u, 31u, 63u, 127u}) {
        const std::size_t k = delta + 1;
        SimulationParams params;
        params.message_bits = B;
        params.c_eps = c_eps;
        const std::size_t ours = params.rounds_per_broadcast_round(delta);
        // A KS-based variant of Algorithm 1 would use a k-disjunct code over
        // the same input space in phase 1 and mirror it in phase 2.
        const KautzSingletonCode ks(std::min<std::size_t>(64, a), k);
        const std::size_t ks_cost = 2 * ks.length();
        table.add_row({Table::num(delta), Table::num(k), Table::num(ours),
                       Table::num(ks_cost),
                       Table::num(static_cast<double>(ks_cost) / static_cast<double>(ours), 2),
                       Table::num(ks.q())});
    }
    table.print(std::cout, "per-round cost under each code family (n=1024)");

    // Noise robustness contrast: KS cover decode vs noise.
    {
        const std::size_t k = 8;
        const KautzSingletonCode ks(32, k);
        Rng rng(0xe12);
        Bitstring heard(ks.length());
        std::vector<std::uint64_t> members;
        for (std::uint64_t r = 1; r <= k; ++r) {
            members.push_back(r * 1001);
            heard |= ks.codeword(r * 1001);
        }
        std::vector<std::uint64_t> dictionary = members;
        for (std::uint64_t r = 0; r < 50; ++r) {
            dictionary.push_back(500000 + r);
        }
        Table noise({"eps", "KS exact-decode members found (of 8)"});
        for (const double eps : {0.0, 0.02, 0.05, 0.1}) {
            Bitstring noisy = heard;
            Rng noise_rng(rng.next_u64());
            noisy.apply_noise(noise_rng, eps);
            const auto found = ks.decode(noisy, dictionary, 0);
            std::size_t correct = 0;
            for (const auto r : found) {
                for (const auto m : members) {
                    correct += (r == m) ? 1 : 0;
                }
            }
            noise.add_row({Table::num(eps, 2), Table::num(correct)});
        }
        noise.print(std::cout, "KS cover decoding under channel noise (no margin)");
    }

    bench::verdict(
        "KS/ours ratio grows ~linearly in Delta (the Theta(Delta) gap of "
        "Section 1.4) and KS decoding collapses under any noise, while beep "
        "codes keep a designed threshold margin — both paper arguments check out");
    return 0;
}
