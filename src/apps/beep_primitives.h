// Native beeping-model primitives (round-engine users).
//
// These are classic tools from the beeping literature that the paper builds
// on conceptually: beep waves ([19], formalized in [9]) for single-source
// wake-up/broadcast, and single-hop randomized leader election by bitwise
// rank elimination. They demonstrate the adaptive (round-at-a-time) side of
// the beep substrate, complementing the oblivious batch side Algorithm 1
// uses.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "beep/round_engine.h"
#include "common/bitstring.h"
#include "graph/graph.h"

namespace nb {

/// Result of a beep wave from `source`: per-node wave arrival time (equal to
/// the BFS distance in the noiseless model) and rounds used.
struct BeepWaveResult {
    std::vector<std::size_t> arrival;  ///< round the wave reached each node;
                                       ///< SIZE_MAX if never
    RunStats stats;
};

/// Launch a beep wave: the source beeps in round 0; every node beeps once,
/// in the round after it first hears a beep. In the noiseless model node v's
/// arrival time is exactly dist(source, v).
/// `max_rounds` caps execution (n+1 always suffices in the noiseless model).
BeepWaveResult beep_wave(const Graph& graph, NodeId source, double epsilon,
                         std::uint64_t seed, std::size_t max_rounds);

/// Single-hop (clique) randomized leader election by bitwise elimination:
/// each node draws a `rank_bits`-bit rank; scanning bits high to low, nodes
/// still in contention beep iff their bit is 1, and any contender with bit 0
/// that hears a beep drops out. With distinct ranks exactly one leader
/// remains; ranks collide with probability <= n^2 / 2^rank_bits.
struct LeaderElectionResult {
    std::optional<NodeId> leader;      ///< unique self-declared leader, if any
    std::size_t leaders_declared = 0;  ///< should be 1 on success
    RunStats stats;
};

LeaderElectionResult single_hop_leader_election(const Graph& graph, std::size_t rank_bits,
                                                double epsilon, std::uint64_t seed);

/// Multi-bit single-source broadcast by pipelined beep waves ([9], [19]):
/// the source launches a pilot wave at round 0 and one wave per 1-bit of the
/// message at 3-round spacing; every node relays a heard beep one round
/// later unless it beeped in the previous two rounds (echo suppression).
/// A node decodes bit i as "did I relay a wave at (my pilot round) + 3(i+1)".
/// Completes in D + 3(b+1) + 1 rounds on a network of diameter D — the
/// O(D + b) bound from the literature. Noiseless model only (robust
/// broadcast under noise is exactly what Algorithm 1 provides instead).
struct BeepBroadcastResult {
    /// decoded[v] = message recovered by v (empty Bitstring if unreached).
    std::vector<Bitstring> decoded;
    std::vector<bool> reached;
    RunStats stats;
};

BeepBroadcastResult beep_broadcast(const Graph& graph, NodeId source, const Bitstring& message,
                                   std::uint64_t seed);

}  // namespace nb
