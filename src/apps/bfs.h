// BFS tree / single-source shortest paths in Broadcast CONGEST (flooding).
//
// The source announces distance 0; a node adopting distance d broadcasts
// <id, d> once in the following round. Parents are the smallest-id neighbor
// at distance d-1. Completes in eccentricity(source)+1 rounds; nodes stop
// after n rounds if unreached (they know n).
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "congest/algorithm.h"
#include "graph/graph.h"

namespace nb {

struct BfsOutput {
    std::size_t distance = std::numeric_limits<std::size_t>::max();  ///< hops; max = unreached
    std::optional<NodeId> parent;                                    ///< none for source/unreached
};

class BfsAlgorithm final : public BroadcastCongestAlgorithm {
public:
    explicit BfsAlgorithm(NodeId source) : source_(source) {}

    static std::size_t required_message_bits(std::size_t node_count);

    void initialize(NodeId self, const CongestInfo& info, Rng& rng) override;
    std::optional<Bitstring> broadcast(std::size_t round, Rng& rng) override;
    void receive(std::size_t round, const std::vector<Bitstring>& messages, Rng& rng) override;
    bool finished() const override;

    const BfsOutput& output() const noexcept { return output_; }

private:
    NodeId source_;
    NodeId self_ = 0;
    std::size_t id_bits_ = 0;
    std::size_t width_ = 0;
    std::size_t node_count_ = 0;

    bool reached_ = false;
    bool announced_ = false;
    std::size_t rounds_seen_ = 0;
    BfsOutput output_;
    bool done_ = false;
};

/// Check distances/parents against centralized BFS.
bool verify_bfs(const Graph& graph, NodeId source, const std::vector<BfsOutput>& outputs);

std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> make_bfs_nodes(const Graph& graph,
                                                                       NodeId source);

std::vector<BfsOutput> collect_bfs_outputs(
    const std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes);

}  // namespace nb
