#include "apps/multihop_election.h"

#include <memory>

#include "common/error.h"

namespace nb {

namespace {

/// One node of the phased-wave election protocol.
class ElectionNode final : public BeepAlgorithm {
public:
    ElectionNode(std::size_t rank_bits, std::size_t phase_length)
        : rank_bits_(rank_bits), phase_length_(phase_length) {}

    void initialize(NodeId, const NetworkInfo&, Rng& rng) override {
        rank_ = 0;
        for (std::size_t i = 0; i < rank_bits_; ++i) {
            rank_ = (rank_ << 1) | (rng.bernoulli(0.5) ? 1u : 0u);
        }
        observed_ = Bitstring(rank_bits_);
    }

    BeepAction act(std::size_t round, Rng&) override {
        const std::size_t phase = round / phase_length_;
        const std::size_t offset = round % phase_length_;
        if (offset == 0) {
            // Phase start: reset wave state; candidates with a 1 bit launch.
            wave_detected_ = false;
            relay_pending_ = false;
            beeped_last_ = false;
            beeped_second_last_ = false;
        }
        bool beep = false;
        if (offset == 0) {
            beep = contending_ && current_bit(phase);
        } else {
            beep = relay_pending_ && !beeped_last_ && !beeped_second_last_;
        }
        relay_pending_ = false;
        beeped_second_last_ = beeped_last_;
        beeped_last_ = beep;
        if (beep) {
            wave_detected_ = true;
        }
        return beep ? BeepAction::beep : BeepAction::listen;
    }

    void receive(std::size_t round, bool received, Rng&) override {
        const std::size_t phase = round / phase_length_;
        const std::size_t offset = round % phase_length_;
        if (received && !beeped_last_) {
            relay_pending_ = true;
            wave_detected_ = true;
        }
        if (offset + 1 == phase_length_) {
            // Phase end: record the bit; losing contenders drop out.
            if (wave_detected_) {
                observed_.set(rank_bits_ - 1 - phase);
                if (contending_ && !current_bit(phase)) {
                    contending_ = false;
                }
            }
            if (phase + 1 == rank_bits_) {
                is_leader_ = contending_;
                done_ = true;
            }
        }
    }

    bool finished() const override { return done_; }

    bool is_leader() const noexcept { return is_leader_; }
    const Bitstring& observed_rank() const noexcept { return observed_; }

private:
    bool current_bit(std::size_t phase) const noexcept {
        return (rank_ >> (rank_bits_ - 1 - phase)) & 1u;
    }

    std::size_t rank_bits_;
    std::size_t phase_length_;
    std::uint64_t rank_ = 0;
    Bitstring observed_;

    bool contending_ = true;
    bool wave_detected_ = false;
    bool relay_pending_ = false;
    bool beeped_last_ = false;
    bool beeped_second_last_ = false;
    bool is_leader_ = false;
    bool done_ = false;
};

}  // namespace

MultihopElectionResult multihop_leader_election(const Graph& graph, std::size_t rank_bits,
                                                std::size_t phase_length, std::uint64_t seed) {
    require(rank_bits >= 1 && rank_bits <= 64,
            "multihop_leader_election: rank_bits must be in [1, 64]");
    require(phase_length >= 2, "multihop_leader_election: phase_length must be >= 2");

    std::vector<std::unique_ptr<BeepAlgorithm>> nodes;
    std::vector<ElectionNode*> raw;
    nodes.reserve(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        auto node = std::make_unique<ElectionNode>(rank_bits, phase_length);
        raw.push_back(node.get());
        nodes.push_back(std::move(node));
    }
    RoundEngine engine(graph, ChannelParams{0.0, true}, Rng(seed));
    MultihopElectionResult result;
    result.stats = engine.run(nodes, rank_bits * phase_length + 1);

    for (NodeId v = 0; v < raw.size(); ++v) {
        if (raw[v]->is_leader()) {
            ++result.leaders_declared;
            result.leader = v;
        }
    }
    if (result.leaders_declared != 1) {
        result.leader.reset();
    }
    if (!raw.empty()) {
        result.winning_rank = raw[0]->observed_rank();
        for (const auto* node : raw) {
            result.all_agree_on_rank &= node->observed_rank() == result.winning_rank;
        }
    }
    return result;
}

}  // namespace nb
