// Maximal independent set in Broadcast CONGEST (Luby's algorithm [25]).
//
// Per iteration (2 Broadcast CONGEST rounds): every active node samples a
// random value and broadcasts <id, value>; a node whose value is a strict
// local minimum among active neighbors joins the MIS and announces it;
// neighbors of new MIS nodes drop out. O(log n) iterations w.h.p.
//
// Included as a second exercise of the simulation stack (the paper's
// Section 1.3 point: a host of algorithms transfer out-of-the-box).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "congest/algorithm.h"
#include "graph/graph.h"

namespace nb {

class MisAlgorithm final : public BroadcastCongestAlgorithm {
public:
    static std::size_t required_message_bits(std::size_t node_count);

    void initialize(NodeId self, const CongestInfo& info, Rng& rng) override;
    std::optional<Bitstring> broadcast(std::size_t round, Rng& rng) override;
    void receive(std::size_t round, const std::vector<Bitstring>& messages, Rng& rng) override;
    bool finished() const override;

    bool in_mis() const noexcept { return in_mis_; }

private:
    static constexpr std::size_t value_bits_ = 48;

    enum class Kind : std::uint64_t {
        announce = 0,  ///< round 0 id exchange
        candidate = 1, ///< <id, value> lottery ticket
        joined = 2,    ///< id joined the MIS
    };

    Bitstring encode(Kind kind, std::uint64_t id, std::uint64_t value) const;

    NodeId self_ = 0;
    std::size_t id_bits_ = 0;
    std::size_t width_ = 0;

    std::vector<NodeId> active_;  ///< active neighbors, sorted
    std::uint64_t my_value_ = 0;
    bool candidate_this_iteration_ = false;
    bool join_pending_ = false;

    bool in_mis_ = false;
    bool done_ = false;
};

/// Verdict of verify_mis.
struct MisVerdict {
    bool independent = true;
    bool maximal = true;
    std::size_t size = 0;

    bool valid() const noexcept { return independent && maximal; }
};

MisVerdict verify_mis(const Graph& graph, const std::vector<bool>& in_mis);

std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> make_mis_nodes(const Graph& graph);

std::vector<bool> collect_mis_outputs(
    const std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes);

}  // namespace nb
