// Maximal matching in Broadcast CONGEST (paper Section 6, Algorithm 3).
//
// Luby-style edge matching: per iteration, the higher-id endpoint of each
// edge samples a random value and Proposes its minimum edge; an endpoint
// that hears a proposal smaller than its own Replies; the proposer Confirms,
// the replier Confirms back, matched endpoints leave, and edges adjacent to
// the matched edge are discarded. O(log n) iterations suffice w.h.p.
// (Lemma 20); each iteration is 4 Broadcast CONGEST rounds here, after one
// initial id-announcement round.
//
// The paper samples edge values from [n^9] purely so all values are distinct
// w.h.p.; we use a fixed 48-bit value field, which gives the same
// distinctness guarantee for every graph this library can hold (documented
// substitution, DESIGN.md section 1). Ties are handled safely regardless:
// tied proposals draw no Reply, the edge simply waits for a later iteration.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "congest/algorithm.h"
#include "graph/graph.h"

namespace nb {

/// A node's final matching output: its partner's id, or unmatched.
struct MatchingOutput {
    std::optional<NodeId> partner;
};

/// Per-node Algorithm 3 instance.
class MatchingAlgorithm final : public BroadcastCongestAlgorithm {
public:
    /// Broadcast-message width this algorithm needs for `node_count` ids.
    static std::size_t required_message_bits(std::size_t node_count);

    void initialize(NodeId self, const CongestInfo& info, Rng& rng) override;
    std::optional<Bitstring> broadcast(std::size_t round, Rng& rng) override;
    void receive(std::size_t round, const std::vector<Bitstring>& messages, Rng& rng) override;
    bool finished() const override;

    const MatchingOutput& output() const noexcept { return output_; }

    /// Number of still-active incident edges (|E_v|); 0 once ceased.
    /// Observability hook for the Lemma 19 edge-decay experiment.
    std::size_t active_edges() const noexcept { return ceased_ ? 0 : active_.size(); }

private:
    static constexpr std::size_t value_bits_ = 48;

    enum class Kind : std::uint64_t {
        announce = 0,
        propose = 1,
        reply = 2,
        confirm = 3,
    };

    struct EdgeKey {
        NodeId lo = 0;
        NodeId hi = 0;
        friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
    };

    Bitstring encode(Kind kind, EdgeKey edge, std::uint64_t value) const;

    void handle_confirm(EdgeKey edge);
    void finish_iteration();

    NodeId self_ = 0;
    std::size_t id_bits_ = 0;
    std::size_t width_ = 0;

    std::vector<NodeId> active_;  ///< other endpoints of edges still in E_v, sorted

    // Per-iteration state.
    std::optional<EdgeKey> proposed_;       ///< own Propose edge e_v
    std::uint64_t proposed_value_ = 0;      ///< x(e_v)
    std::optional<EdgeKey> replied_to_;     ///< e'_v if v Replied this iteration
    std::optional<EdgeKey> confirm_now_;    ///< Confirm to broadcast this sub-round
    bool cease_after_receive_ = false;

    MatchingOutput output_;
    bool ceased_ = false;
};

/// Verdict of verify_matching.
struct MatchingVerdict {
    bool symmetric = true;    ///< partner-of-partner is self, pairs are edges
    bool maximal = true;      ///< no edge with both endpoints unmatched
    std::size_t matched_pairs = 0;

    bool valid() const noexcept { return symmetric && maximal; }
};

/// Check a matching output against the graph (Lemma 17's conditions).
MatchingVerdict verify_matching(const Graph& graph, const std::vector<MatchingOutput>& outputs);

/// Fresh per-node algorithm instances for `graph`.
std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> make_matching_nodes(const Graph& graph);

/// Collect outputs from nodes created by make_matching_nodes.
std::vector<MatchingOutput> collect_matching_outputs(
    const std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes);

/// Broadcast CONGEST rounds for `iterations` Algorithm 3 iterations.
std::size_t matching_rounds_for_iterations(std::size_t iterations);

}  // namespace nb
