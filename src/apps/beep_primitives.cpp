#include "apps/beep_primitives.h"

#include <memory>

#include "common/error.h"

namespace nb {

namespace {

class WaveNode final : public BeepAlgorithm {
public:
    explicit WaveNode(bool is_source) : is_source_(is_source) {}

    void initialize(NodeId self, const NetworkInfo& info, Rng& rng) override {
        (void)self;
        (void)info;
        (void)rng;
    }

    BeepAction act(std::size_t round, Rng& rng) override {
        (void)rng;
        if (is_source_ && round == 0) {
            beeped_round_ = 0;
            return BeepAction::beep;
        }
        if (heard_round_.has_value() && !beeped_round_.has_value()) {
            beeped_round_ = round;
            return BeepAction::beep;
        }
        return BeepAction::listen;
    }

    void receive(std::size_t round, bool received, Rng& rng) override {
        (void)rng;
        if (received && !heard_round_.has_value()) {
            heard_round_ = round;
        }
        if (beeped_round_.has_value() && round >= *beeped_round_) {
            done_ = true;
        }
    }

    bool finished() const override { return done_; }

    /// Arrival time: the round the node itself beeped (the wavefront).
    std::size_t arrival() const noexcept {
        return beeped_round_.value_or(std::numeric_limits<std::size_t>::max());
    }

private:
    bool is_source_;
    std::optional<std::size_t> heard_round_;
    std::optional<std::size_t> beeped_round_;
    bool done_ = false;
};

class LeaderNode final : public BeepAlgorithm {
public:
    explicit LeaderNode(std::size_t rank_bits) : rank_bits_(rank_bits) {}

    void initialize(NodeId self, const NetworkInfo& info, Rng& rng) override {
        (void)info;
        self_ = self;
        rank_ = 0;
        for (std::size_t i = 0; i < rank_bits_; ++i) {
            rank_ = (rank_ << 1) | (rng.bernoulli(0.5) ? 1u : 0u);
        }
    }

    BeepAction act(std::size_t round, Rng& rng) override {
        (void)rng;
        if (round >= rank_bits_ || !contending_) {
            return BeepAction::listen;
        }
        const std::size_t bit_index = rank_bits_ - 1 - round;
        const bool bit = (rank_ >> bit_index) & 1u;
        return bit ? BeepAction::beep : BeepAction::listen;
    }

    void receive(std::size_t round, bool received, Rng& rng) override {
        (void)rng;
        if (round < rank_bits_) {
            if (contending_) {
                const std::size_t bit_index = rank_bits_ - 1 - round;
                const bool bit = (rank_ >> bit_index) & 1u;
                if (!bit && received) {
                    contending_ = false;  // outranked: someone has a 1 here
                }
            }
            if (round + 1 == rank_bits_) {
                is_leader_ = contending_;
                done_ = true;
            }
        }
    }

    bool finished() const override { return done_; }

    bool is_leader() const noexcept { return is_leader_; }

private:
    std::size_t rank_bits_;
    NodeId self_ = 0;
    std::uint64_t rank_ = 0;
    bool contending_ = true;
    bool is_leader_ = false;
    bool done_ = false;
};

/// Node protocol for beep_broadcast: relay with 2-round echo suppression,
/// record own beep rounds, decode bits from relay timing.
class BroadcastNode final : public BeepAlgorithm {
public:
    BroadcastNode(bool is_source, const Bitstring& message)
        : is_source_(is_source), message_(message) {}

    void initialize(NodeId, const NetworkInfo& info, Rng&) override {
        node_count_ = info.node_count;
    }

    BeepAction act(std::size_t round, Rng&) override {
        bool beep = false;
        if (is_source_) {
            // Pilot at round 0; wave i+1 at round 3(i+1) iff bit i is set.
            if (round == 0) {
                beep = true;
            } else if (round % 3 == 0) {
                const std::size_t wave = round / 3;
                beep = wave >= 1 && wave <= message_.size() && message_.test(wave - 1);
            }
        } else {
            beep = relay_pending_ && !beeped_last_ && !beeped_second_last_;
        }
        relay_pending_ = false;
        beeped_second_last_ = beeped_last_;
        beeped_last_ = beep;
        if (beep) {
            if (!pilot_round_.has_value()) {
                pilot_round_ = round;
            }
            beep_rounds_.push_back(round);
        }
        return beep ? BeepAction::beep : BeepAction::listen;
    }

    void receive(std::size_t round, bool received, Rng&) override {
        // "Heard while listening": own-beep rounds do not count as hearing.
        if (received && !beeped_last_) {
            relay_pending_ = true;
        }
        // A node can stop once every wave that could reach it has passed:
        // its pilot round + 3*(b+1), plus one round to finish relaying.
        const std::size_t horizon =
            pilot_round_.has_value()
                ? *pilot_round_ + 3 * (message_.size() + 1) + 1
                : node_count_ + 3 * (message_.size() + 1) + 1;
        if (round >= horizon) {
            done_ = true;
        }
    }

    bool finished() const override { return done_; }

    bool reached() const noexcept { return pilot_round_.has_value(); }

    /// Reconstruct the message from this node's own relay times.
    Bitstring decode() const {
        Bitstring result(message_.size());
        if (is_source_) {
            return message_;
        }
        if (!pilot_round_.has_value()) {
            return result;
        }
        for (const auto round : beep_rounds_) {
            if (round > *pilot_round_ && (round - *pilot_round_) % 3 == 0) {
                const std::size_t wave = (round - *pilot_round_) / 3;
                if (wave >= 1 && wave <= message_.size()) {
                    result.set(wave - 1);
                }
            }
        }
        return result;
    }

private:
    bool is_source_;
    const Bitstring& message_;
    std::size_t node_count_ = 0;

    bool relay_pending_ = false;
    bool beeped_last_ = false;
    bool beeped_second_last_ = false;
    std::optional<std::size_t> pilot_round_;
    std::vector<std::size_t> beep_rounds_;
    bool done_ = false;
};

}  // namespace

BeepBroadcastResult beep_broadcast(const Graph& graph, NodeId source, const Bitstring& message,
                                   std::uint64_t seed) {
    require(source < graph.node_count(), "beep_broadcast: source out of range");
    std::vector<std::unique_ptr<BeepAlgorithm>> nodes;
    std::vector<BroadcastNode*> raw;
    nodes.reserve(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        auto node = std::make_unique<BroadcastNode>(v == source, message);
        raw.push_back(node.get());
        nodes.push_back(std::move(node));
    }
    RoundEngine engine(graph, ChannelParams{0.0, true}, Rng(seed));
    BeepBroadcastResult result;
    result.stats = engine.run(nodes, graph.node_count() + 3 * (message.size() + 2) + 2);
    result.decoded.reserve(raw.size());
    result.reached.reserve(raw.size());
    for (const auto* node : raw) {
        result.decoded.push_back(node->decode());
        result.reached.push_back(node->reached());
    }
    return result;
}

BeepWaveResult beep_wave(const Graph& graph, NodeId source, double epsilon, std::uint64_t seed,
                         std::size_t max_rounds) {
    require(source < graph.node_count(), "beep_wave: source out of range");
    std::vector<std::unique_ptr<BeepAlgorithm>> nodes;
    std::vector<WaveNode*> raw;
    nodes.reserve(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        auto node = std::make_unique<WaveNode>(v == source);
        raw.push_back(node.get());
        nodes.push_back(std::move(node));
    }
    RoundEngine engine(graph, ChannelParams{epsilon, true}, Rng(seed));
    BeepWaveResult result;
    result.stats = engine.run(nodes, max_rounds);
    result.arrival.reserve(raw.size());
    for (const auto* node : raw) {
        result.arrival.push_back(node->arrival());
    }
    return result;
}

LeaderElectionResult single_hop_leader_election(const Graph& graph, std::size_t rank_bits,
                                                double epsilon, std::uint64_t seed) {
    require(rank_bits >= 1 && rank_bits <= 64,
            "single_hop_leader_election: rank_bits must be in [1, 64]");
    std::vector<std::unique_ptr<BeepAlgorithm>> nodes;
    std::vector<LeaderNode*> raw;
    nodes.reserve(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        auto node = std::make_unique<LeaderNode>(rank_bits);
        raw.push_back(node.get());
        nodes.push_back(std::move(node));
    }
    RoundEngine engine(graph, ChannelParams{epsilon, true}, Rng(seed));
    LeaderElectionResult result;
    result.stats = engine.run(nodes, rank_bits + 1);
    for (NodeId v = 0; v < raw.size(); ++v) {
        if (raw[v]->is_leader()) {
            ++result.leaders_declared;
            result.leader = v;
        }
    }
    if (result.leaders_declared != 1) {
        result.leader.reset();
    }
    return result;
}

}  // namespace nb
