#include "apps/bfs.h"

#include <algorithm>

#include "common/bitpack.h"
#include "common/error.h"
#include "common/math_util.h"
#include "graph/algorithms.h"

namespace nb {

// Message layout (fixed width = 2*id_bits): sender:id_bits, distance:id_bits
// (distances are < n so id_bits suffice).

std::size_t BfsAlgorithm::required_message_bits(std::size_t node_count) {
    const std::size_t id_bits =
        std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, node_count)));
    return 2 * id_bits;
}

void BfsAlgorithm::initialize(NodeId self, const CongestInfo& info, Rng& rng) {
    (void)rng;
    self_ = self;
    node_count_ = info.node_count;
    id_bits_ = std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, info.node_count)));
    width_ = required_message_bits(info.node_count);
    require(info.message_bits == 0 || info.message_bits >= width_,
            "BfsAlgorithm: message budget too small");
    if (self == source_) {
        reached_ = true;
        output_.distance = 0;
    }
}

std::optional<Bitstring> BfsAlgorithm::broadcast(std::size_t round, Rng& rng) {
    (void)round;
    (void)rng;
    if (reached_ && !announced_) {
        announced_ = true;
        BitWriter writer(width_);
        writer.write(self_, id_bits_);
        writer.write(output_.distance, id_bits_);
        return writer.bits();
    }
    return std::nullopt;
}

void BfsAlgorithm::receive(std::size_t round, const std::vector<Bitstring>& messages, Rng& rng) {
    (void)round;
    (void)rng;
    ++rounds_seen_;
    if (!reached_) {
        // Adopt the smallest-distance announcement (smallest id on ties).
        for (const auto& message : messages) {
            BitReader reader(message);
            const auto id = static_cast<NodeId>(reader.read(id_bits_));
            const std::size_t distance = reader.read(id_bits_);
            if (!reached_ || distance + 1 < output_.distance ||
                (distance + 1 == output_.distance && id < *output_.parent)) {
                reached_ = true;
                output_.distance = distance + 1;
                output_.parent = id;
            }
        }
    }
    if (announced_ || rounds_seen_ > node_count_) {
        done_ = true;
    }
}

bool BfsAlgorithm::finished() const { return done_; }

bool verify_bfs(const Graph& graph, NodeId source, const std::vector<BfsOutput>& outputs) {
    require(outputs.size() == graph.node_count(), "verify_bfs: one output per node");
    const auto expected = bfs_distances(graph, source);
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        const bool expect_reached = expected[v] != unreachable;
        const bool got_reached =
            outputs[v].distance != std::numeric_limits<std::size_t>::max();
        if (expect_reached != got_reached) {
            return false;
        }
        if (!expect_reached) {
            continue;
        }
        if (outputs[v].distance != expected[v]) {
            return false;
        }
        if (v == source) {
            if (outputs[v].parent.has_value()) {
                return false;
            }
            continue;
        }
        if (!outputs[v].parent.has_value() || !graph.has_edge(v, *outputs[v].parent) ||
            expected[*outputs[v].parent] + 1 != expected[v]) {
            return false;
        }
    }
    return true;
}

std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> make_bfs_nodes(const Graph& graph,
                                                                       NodeId source) {
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> nodes;
    nodes.reserve(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        nodes.push_back(std::make_unique<BfsAlgorithm>(source));
    }
    return nodes;
}

std::vector<BfsOutput> collect_bfs_outputs(
    const std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes) {
    std::vector<BfsOutput> outputs;
    outputs.reserve(nodes.size());
    for (const auto& node : nodes) {
        const auto* bfs = dynamic_cast<const BfsAlgorithm*>(node.get());
        ensure(bfs != nullptr, "collect_bfs_outputs: not a BfsAlgorithm");
        outputs.push_back(bfs->output());
    }
    return outputs;
}

}  // namespace nb
