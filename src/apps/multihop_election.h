// Multi-hop leader election by phased beep waves.
//
// A simple wave-composed election in the spirit of the beeping leader-
// election literature ([19], [10], [16] — see paper Section 1.2): every node
// draws an L-bit rank; in phase i (a window of `phase_length` rounds, which
// must exceed the network diameter) every still-contending candidate whose
// i-th rank bit (MSB first) is 1 launches a beep wave; all nodes relay with
// echo suppression. Contenders with bit 0 that observe a wave drop out, and
// every node records the phase bit — so at the end all nodes know the
// winning rank and the unique maximum-rank candidate knows it leads.
//
// Round complexity L * phase_length = O(log n * n) with the safe defaults —
// deliberately simple rather than the literature's optimal O(D + log n);
// this is a demonstration of composing the wave primitive, not a
// reproduction of [11].
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "beep/round_engine.h"
#include "common/bitstring.h"
#include "graph/graph.h"

namespace nb {

struct MultihopElectionResult {
    std::optional<NodeId> leader;       ///< unique self-declared leader, if any
    std::size_t leaders_declared = 0;   ///< 1 on success
    Bitstring winning_rank;             ///< rank bits as observed by node 0
    bool all_agree_on_rank = true;      ///< every node observed the same bits
    RunStats stats;
};

/// Run the election. Preconditions: graph connected (callers on disconnected
/// graphs get one leader per component but `leader` reports uniqueness
/// globally), rank_bits in [1, 64], phase_length > diameter.
MultihopElectionResult multihop_leader_election(const Graph& graph, std::size_t rank_bits,
                                                std::size_t phase_length, std::uint64_t seed);

}  // namespace nb
