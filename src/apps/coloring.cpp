#include "apps/coloring.h"

#include <algorithm>

#include "common/bitpack.h"
#include "common/error.h"
#include "common/math_util.h"

namespace nb {

// Message layout (fixed width = 2 + id_bits + color_bits):
//   kind:2, id:id_bits, color:color_bits.
// Round structure: round 0 announces ids; then iterations of (trial, fix).

std::size_t ColoringAlgorithm::required_message_bits(std::size_t node_count,
                                                     std::size_t max_degree) {
    const std::size_t id_bits =
        std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, node_count)));
    const std::size_t color_bits =
        std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, max_degree + 1)));
    return 2 + id_bits + color_bits;
}

void ColoringAlgorithm::initialize(NodeId self, const CongestInfo& info, Rng& rng) {
    (void)rng;
    self_ = self;
    id_bits_ = std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, info.node_count)));
    palette_size_ = info.max_degree + 1;
    color_bits_ =
        std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, palette_size_)));
    width_ = required_message_bits(info.node_count, info.max_degree);
    require(info.message_bits == 0 || info.message_bits >= width_,
            "ColoringAlgorithm: message budget too small");
    taken_.assign(palette_size_, false);
}

Bitstring ColoringAlgorithm::encode(Kind kind, std::uint64_t id, std::uint64_t color) const {
    BitWriter writer(width_);
    writer.write(static_cast<std::uint64_t>(kind), 2);
    writer.write(id, id_bits_);
    writer.write(color, color_bits_);
    return writer.bits();
}

std::size_t ColoringAlgorithm::sample_free_color(Rng& rng) const {
    std::vector<std::size_t> free;
    free.reserve(palette_size_);
    for (std::size_t c = 0; c < palette_size_; ++c) {
        if (!taken_[c]) {
            free.push_back(c);
        }
    }
    ensure(!free.empty(), "ColoringAlgorithm: palette exhausted (impossible for Delta+1)");
    return free[static_cast<std::size_t>(rng.next_below(free.size()))];
}

std::optional<Bitstring> ColoringAlgorithm::broadcast(std::size_t round, Rng& rng) {
    if (round == 0) {
        return encode(Kind::announce, self_, 0);
    }
    const std::size_t phase = (round - 1) % 2;
    if (phase == 0) {
        trial_color_ = sample_free_color(rng);
        trialing_ = true;
        return encode(Kind::trial, self_, trial_color_);
    }
    if (fix_pending_) {
        fix_pending_ = false;
        announced_fix_ = true;
        color_ = trial_color_;
        return encode(Kind::fixed, self_, color_);
    }
    return std::nullopt;
}

void ColoringAlgorithm::receive(std::size_t round, const std::vector<Bitstring>& messages,
                                Rng& rng) {
    (void)rng;
    if (round == 0) {
        neighbors_.clear();
        for (const auto& message : messages) {
            BitReader reader(message);
            if (static_cast<Kind>(reader.read(2)) == Kind::announce) {
                neighbors_.push_back(static_cast<NodeId>(reader.read(id_bits_)));
            }
        }
        std::sort(neighbors_.begin(), neighbors_.end());
        if (neighbors_.empty()) {
            color_ = 0;
            done_ = true;
        }
        return;
    }
    const std::size_t phase = (round - 1) % 2;
    if (phase == 0) {
        if (!trialing_) {
            return;
        }
        // Keep the trial color iff no neighbor tried the same one; ties are
        // broken by id so exactly one of two clashing neighbors may keep it.
        bool keep = true;
        for (const auto& message : messages) {
            BitReader reader(message);
            if (static_cast<Kind>(reader.read(2)) != Kind::trial) {
                continue;
            }
            const auto id = static_cast<NodeId>(reader.read(id_bits_));
            const std::size_t color = reader.read(color_bits_);
            if (color == trial_color_ && id < self_) {
                keep = false;
                break;
            }
        }
        fix_pending_ = keep;
        return;
    }
    // phase 1: record neighbors' fixed colors, then finish if we announced.
    for (const auto& message : messages) {
        BitReader reader(message);
        if (static_cast<Kind>(reader.read(2)) != Kind::fixed) {
            continue;
        }
        reader.read(id_bits_);
        const std::size_t color = reader.read(color_bits_);
        if (color < taken_.size()) {
            taken_[color] = true;
        }
    }
    if (announced_fix_) {
        done_ = true;
    }
    trialing_ = false;
}

bool ColoringAlgorithm::finished() const { return done_; }

bool verify_coloring(const Graph& graph, const std::vector<std::size_t>& colors) {
    require(colors.size() == graph.node_count(), "verify_coloring: one color per node");
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        if (colors[v] > graph.max_degree()) {
            return false;
        }
        for (const auto u : graph.neighbors(v)) {
            if (colors[u] == colors[v]) {
                return false;
            }
        }
    }
    return true;
}

std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> make_coloring_nodes(const Graph& graph) {
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> nodes;
    nodes.reserve(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        nodes.push_back(std::make_unique<ColoringAlgorithm>());
    }
    return nodes;
}

std::vector<std::size_t> collect_coloring_outputs(
    const std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes) {
    std::vector<std::size_t> result;
    result.reserve(nodes.size());
    for (const auto& node : nodes) {
        const auto* coloring = dynamic_cast<const ColoringAlgorithm*>(node.get());
        ensure(coloring != nullptr, "collect_coloring_outputs: not a ColoringAlgorithm");
        result.push_back(coloring->color());
    }
    return result;
}

}  // namespace nb
