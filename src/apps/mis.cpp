#include "apps/mis.h"

#include <algorithm>

#include "common/bitpack.h"
#include "common/error.h"
#include "common/math_util.h"

namespace nb {

// Message layout (fixed width = 2 + id_bits + value_bits):
//   kind:2, id:id_bits, value:value_bits (zero for announce/joined).
//
// Round structure: round 0 announces ids; from round 1, iterations of two
// rounds: (candidate lottery, join announcements).

std::size_t MisAlgorithm::required_message_bits(std::size_t node_count) {
    const std::size_t id_bits =
        std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, node_count)));
    return 2 + id_bits + value_bits_;
}

void MisAlgorithm::initialize(NodeId self, const CongestInfo& info, Rng& rng) {
    (void)rng;
    self_ = self;
    id_bits_ = std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, info.node_count)));
    width_ = required_message_bits(info.node_count);
    require(info.message_bits == 0 || info.message_bits >= width_,
            "MisAlgorithm: message budget too small");
}

Bitstring MisAlgorithm::encode(Kind kind, std::uint64_t id, std::uint64_t value) const {
    BitWriter writer(width_);
    writer.write(static_cast<std::uint64_t>(kind), 2);
    writer.write(id, id_bits_);
    writer.write(value, value_bits_);
    return writer.bits();
}

std::optional<Bitstring> MisAlgorithm::broadcast(std::size_t round, Rng& rng) {
    if (round == 0) {
        return encode(Kind::announce, self_, 0);
    }
    const std::size_t phase = (round - 1) % 2;
    if (phase == 0) {
        my_value_ = rng.next_below(std::uint64_t{1} << value_bits_);
        candidate_this_iteration_ = true;
        return encode(Kind::candidate, self_, my_value_);
    }
    if (join_pending_) {
        join_pending_ = false;
        in_mis_ = true;
        // Announce joining; neighbors drop out on delivery, we finish after
        // this round's receive.
        return encode(Kind::joined, self_, 0);
    }
    return std::nullopt;
}

void MisAlgorithm::receive(std::size_t round, const std::vector<Bitstring>& messages, Rng& rng) {
    (void)rng;
    if (round == 0) {
        active_.clear();
        for (const auto& message : messages) {
            BitReader reader(message);
            if (static_cast<Kind>(reader.read(2)) == Kind::announce) {
                active_.push_back(static_cast<NodeId>(reader.read(id_bits_)));
            }
        }
        std::sort(active_.begin(), active_.end());
        active_.erase(std::unique(active_.begin(), active_.end()), active_.end());
        if (active_.empty()) {
            in_mis_ = true;  // isolated nodes are always in the MIS
            done_ = true;
        }
        return;
    }
    const std::size_t phase = (round - 1) % 2;
    if (phase == 0) {
        // Strict local minimum (ties broken by id) among active neighbors
        // joins the MIS next round.
        if (!candidate_this_iteration_) {
            return;
        }
        bool is_minimum = true;
        for (const auto& message : messages) {
            BitReader reader(message);
            if (static_cast<Kind>(reader.read(2)) != Kind::candidate) {
                continue;
            }
            const auto id = static_cast<NodeId>(reader.read(id_bits_));
            const std::uint64_t value = reader.read(value_bits_);
            if (!std::binary_search(active_.begin(), active_.end(), id)) {
                continue;
            }
            if (value < my_value_ || (value == my_value_ && id < self_)) {
                is_minimum = false;
                break;
            }
        }
        join_pending_ = is_minimum;
        return;
    }
    // phase 1: process join announcements.
    if (in_mis_) {
        done_ = true;  // we announced this round; leave
        return;
    }
    bool neighbor_joined = false;
    for (const auto& message : messages) {
        BitReader reader(message);
        if (static_cast<Kind>(reader.read(2)) != Kind::joined) {
            continue;
        }
        const auto id = static_cast<NodeId>(reader.read(id_bits_));
        const auto it = std::lower_bound(active_.begin(), active_.end(), id);
        if (it != active_.end() && *it == id) {
            active_.erase(it);
            neighbor_joined = true;
        }
    }
    if (neighbor_joined) {
        done_ = true;  // dominated: out of the MIS, stop participating
    } else if (active_.empty()) {
        in_mis_ = true;  // all neighbors gone without dominating us
        done_ = true;
    }
    candidate_this_iteration_ = false;
}

bool MisAlgorithm::finished() const { return done_; }

MisVerdict verify_mis(const Graph& graph, const std::vector<bool>& in_mis) {
    require(in_mis.size() == graph.node_count(), "verify_mis: one flag per node");
    MisVerdict verdict;
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        if (in_mis[v]) {
            ++verdict.size;
        }
        bool dominated = in_mis[v];
        for (const auto u : graph.neighbors(v)) {
            if (in_mis[v] && in_mis[u]) {
                verdict.independent = false;
            }
            if (in_mis[u]) {
                dominated = true;
            }
        }
        if (!dominated) {
            verdict.maximal = false;
        }
    }
    return verdict;
}

std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> make_mis_nodes(const Graph& graph) {
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> nodes;
    nodes.reserve(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        nodes.push_back(std::make_unique<MisAlgorithm>());
    }
    return nodes;
}

std::vector<bool> collect_mis_outputs(
    const std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes) {
    std::vector<bool> result;
    result.reserve(nodes.size());
    for (const auto& node : nodes) {
        const auto* mis = dynamic_cast<const MisAlgorithm*>(node.get());
        ensure(mis != nullptr, "collect_mis_outputs: not a MisAlgorithm");
        result.push_back(mis->in_mis());
    }
    return result;
}

}  // namespace nb
