// (Delta+1)-coloring in Broadcast CONGEST (random color trials).
//
// Per iteration (2 rounds): every uncolored node proposes a color sampled
// uniformly from its palette (colors in [0, Delta] not permanently taken by
// a neighbor) and broadcasts <id, color>; a node whose proposal conflicts
// with no neighboring proposal or fixed color keeps it and announces
// <id, color> as fixed. O(log n) iterations w.h.p.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "congest/algorithm.h"
#include "graph/graph.h"

namespace nb {

class ColoringAlgorithm final : public BroadcastCongestAlgorithm {
public:
    static std::size_t required_message_bits(std::size_t node_count, std::size_t max_degree);

    void initialize(NodeId self, const CongestInfo& info, Rng& rng) override;
    std::optional<Bitstring> broadcast(std::size_t round, Rng& rng) override;
    void receive(std::size_t round, const std::vector<Bitstring>& messages, Rng& rng) override;
    bool finished() const override;

    /// Final color in [0, Delta]; only meaningful once finished().
    std::size_t color() const noexcept { return color_; }

private:
    enum class Kind : std::uint64_t {
        announce = 0,
        trial = 1,
        fixed = 2,
    };

    Bitstring encode(Kind kind, std::uint64_t id, std::uint64_t color) const;
    std::size_t sample_free_color(Rng& rng) const;

    NodeId self_ = 0;
    std::size_t id_bits_ = 0;
    std::size_t color_bits_ = 0;
    std::size_t width_ = 0;
    std::size_t palette_size_ = 0;

    std::vector<NodeId> neighbors_;   ///< sorted neighbor ids
    std::vector<bool> taken_;         ///< colors fixed by neighbors
    std::size_t trial_color_ = 0;
    bool trialing_ = false;
    bool fix_pending_ = false;
    bool announced_fix_ = false;

    std::size_t color_ = 0;
    bool done_ = false;
};

/// True iff colors form a proper coloring with every color <= max_degree.
bool verify_coloring(const Graph& graph, const std::vector<std::size_t>& colors);

std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> make_coloring_nodes(const Graph& graph);

std::vector<std::size_t> collect_coloring_outputs(
    const std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes);

}  // namespace nb
