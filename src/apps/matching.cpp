#include "apps/matching.h"

#include <algorithm>
#include <limits>

#include "common/bitpack.h"
#include "common/error.h"
#include "common/math_util.h"

namespace nb {

// Message layout (fixed width = 2 + 2*id_bits + value_bits):
//   kind:2, lo:id_bits, hi:id_bits, value:value_bits
// announce carries self in `lo`; reply/confirm leave `value` zero.

std::size_t MatchingAlgorithm::required_message_bits(std::size_t node_count) {
    const std::size_t id_bits =
        std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, node_count)));
    return 2 + 2 * id_bits + value_bits_;
}

void MatchingAlgorithm::initialize(NodeId self, const CongestInfo& info, Rng& rng) {
    (void)rng;
    self_ = self;
    id_bits_ = std::max<std::size_t>(1, ceil_log2(std::max<std::size_t>(2, info.node_count)));
    width_ = required_message_bits(info.node_count);
    require(info.message_bits == 0 || info.message_bits >= width_,
            "MatchingAlgorithm: message budget too small");
}

Bitstring MatchingAlgorithm::encode(Kind kind, EdgeKey edge, std::uint64_t value) const {
    BitWriter writer(width_);
    writer.write(static_cast<std::uint64_t>(kind), 2);
    writer.write(edge.lo, id_bits_);
    writer.write(edge.hi, id_bits_);
    writer.write(value, value_bits_);
    return writer.bits();
}

std::optional<Bitstring> MatchingAlgorithm::broadcast(std::size_t round, Rng& rng) {
    if (round == 0) {
        return encode(Kind::announce, EdgeKey{self_, self_}, 0);
    }
    const std::size_t phase = (round - 1) % 4;
    switch (phase) {
        case 0: {
            // Propose: sample a value for each edge in H_v (edges whose
            // higher-id endpoint is v, i.e. active partners with smaller id),
            // broadcast the unique minimum if it exists.
            proposed_.reset();
            replied_to_.reset();
            confirm_now_.reset();
            proposed_value_ = std::numeric_limits<std::uint64_t>::max();
            std::optional<EdgeKey> best;
            std::uint64_t best_value = 0;
            bool best_unique = true;
            for (const auto u : active_) {
                if (u >= self_) {
                    continue;  // not in H_v
                }
                const std::uint64_t x = rng.next_below(std::uint64_t{1} << value_bits_);
                if (!best.has_value() || x < best_value) {
                    best = EdgeKey{u, self_};
                    best_value = x;
                    best_unique = true;
                } else if (x == best_value) {
                    best_unique = false;
                }
            }
            if (best.has_value() && best_unique) {
                proposed_ = best;
                proposed_value_ = best_value;
                return encode(Kind::propose, *best, best_value);
            }
            return std::nullopt;
        }
        case 1: {
            if (replied_to_.has_value()) {
                return encode(Kind::reply, *replied_to_, 0);
            }
            return std::nullopt;
        }
        case 2:
        case 3: {
            if (confirm_now_.has_value()) {
                const Bitstring message = encode(Kind::confirm, *confirm_now_, 0);
                confirm_now_.reset();
                cease_after_receive_ = true;
                return message;
            }
            return std::nullopt;
        }
        default:
            return std::nullopt;
    }
}

void MatchingAlgorithm::handle_confirm(EdgeKey edge) {
    // A confirmed edge adjacent to v (but not containing v) removes the
    // shared endpoints from v's active edge set.
    if (edge.lo != self_ && edge.hi != self_) {
        for (const auto endpoint : {edge.lo, edge.hi}) {
            const auto it = std::lower_bound(active_.begin(), active_.end(), endpoint);
            if (it != active_.end() && *it == endpoint) {
                active_.erase(it);
            }
        }
    }
}

void MatchingAlgorithm::finish_iteration() {
    if (cease_after_receive_) {
        ceased_ = true;
        return;
    }
    if (active_.empty()) {
        ceased_ = true;
    }
}

void MatchingAlgorithm::receive(std::size_t round, const std::vector<Bitstring>& messages,
                                Rng& rng) {
    (void)rng;
    if (round == 0) {
        active_.clear();
        for (const auto& message : messages) {
            BitReader reader(message);
            if (static_cast<Kind>(reader.read(2)) == Kind::announce) {
                active_.push_back(static_cast<NodeId>(reader.read(id_bits_)));
            }
        }
        std::sort(active_.begin(), active_.end());
        active_.erase(std::unique(active_.begin(), active_.end()), active_.end());
        if (active_.empty()) {
            ceased_ = true;  // isolated node: trivially done, unmatched
        }
        return;
    }

    const std::size_t phase = (round - 1) % 4;
    switch (phase) {
        case 0: {
            // Collect incident proposals; v can only be the lower endpoint
            // (proposers are higher endpoints). Pick minimum value; ties
            // between distinct edges resolve to the lexicographically
            // smaller edge (deterministic, and only delays matching).
            std::optional<EdgeKey> best;
            std::uint64_t best_value = 0;
            for (const auto& message : messages) {
                BitReader reader(message);
                if (static_cast<Kind>(reader.read(2)) != Kind::propose) {
                    continue;
                }
                const auto lo = static_cast<NodeId>(reader.read(id_bits_));
                const auto hi = static_cast<NodeId>(reader.read(id_bits_));
                const std::uint64_t value = reader.read(value_bits_);
                if (lo != self_) {
                    continue;
                }
                if (!std::binary_search(active_.begin(), active_.end(), hi)) {
                    continue;  // edge no longer active on v's side
                }
                if (!best.has_value() || value < best_value ||
                    (value == best_value && hi < best->hi)) {
                    best = EdgeKey{lo, hi};
                    best_value = value;
                }
            }
            if (best.has_value() && best_value < proposed_value_) {
                replied_to_ = best;
            }
            break;
        }
        case 1: {
            // The proposer matches if its edge drew a Reply and it did not
            // itself Reply to someone else's smaller proposal.
            if (!proposed_.has_value() || replied_to_.has_value()) {
                break;
            }
            for (const auto& message : messages) {
                BitReader reader(message);
                if (static_cast<Kind>(reader.read(2)) != Kind::reply) {
                    continue;
                }
                const auto lo = static_cast<NodeId>(reader.read(id_bits_));
                const auto hi = static_cast<NodeId>(reader.read(id_bits_));
                if (EdgeKey{lo, hi} == *proposed_) {
                    confirm_now_ = proposed_;
                    output_.partner = lo;  // v == hi of its own proposal
                    break;
                }
            }
            break;
        }
        case 2: {
            for (const auto& message : messages) {
                BitReader reader(message);
                if (static_cast<Kind>(reader.read(2)) != Kind::confirm) {
                    continue;
                }
                const auto lo = static_cast<NodeId>(reader.read(id_bits_));
                const auto hi = static_cast<NodeId>(reader.read(id_bits_));
                const EdgeKey edge{lo, hi};
                if (replied_to_.has_value() && edge == *replied_to_) {
                    // Our Reply was accepted: confirm back next sub-round.
                    confirm_now_ = edge;
                    output_.partner = (lo == self_) ? hi : lo;
                } else {
                    handle_confirm(edge);
                }
            }
            if (cease_after_receive_) {
                ceased_ = true;  // proposer leaves after broadcasting Confirm
            }
            break;
        }
        case 3: {
            for (const auto& message : messages) {
                BitReader reader(message);
                if (static_cast<Kind>(reader.read(2)) != Kind::confirm) {
                    continue;
                }
                const auto lo = static_cast<NodeId>(reader.read(id_bits_));
                const auto hi = static_cast<NodeId>(reader.read(id_bits_));
                handle_confirm(EdgeKey{lo, hi});
            }
            finish_iteration();
            break;
        }
        default:
            break;
    }
}

bool MatchingAlgorithm::finished() const { return ceased_; }

MatchingVerdict verify_matching(const Graph& graph, const std::vector<MatchingOutput>& outputs) {
    require(outputs.size() == graph.node_count(), "verify_matching: one output per node");
    MatchingVerdict verdict;
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        if (!outputs[v].partner.has_value()) {
            continue;
        }
        const NodeId u = *outputs[v].partner;
        if (u >= graph.node_count() || !graph.has_edge(u, v) ||
            !outputs[u].partner.has_value() || *outputs[u].partner != v) {
            verdict.symmetric = false;
            continue;
        }
        if (v < u) {
            ++verdict.matched_pairs;
        }
    }
    for (const auto& edge : graph.edges()) {
        if (!outputs[edge.first].partner.has_value() &&
            !outputs[edge.second].partner.has_value()) {
            verdict.maximal = false;
            break;
        }
    }
    return verdict;
}

std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> make_matching_nodes(const Graph& graph) {
    std::vector<std::unique_ptr<BroadcastCongestAlgorithm>> nodes;
    nodes.reserve(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        nodes.push_back(std::make_unique<MatchingAlgorithm>());
    }
    return nodes;
}

std::vector<MatchingOutput> collect_matching_outputs(
    const std::vector<std::unique_ptr<BroadcastCongestAlgorithm>>& nodes) {
    std::vector<MatchingOutput> outputs;
    outputs.reserve(nodes.size());
    for (const auto& node : nodes) {
        const auto* matching = dynamic_cast<const MatchingAlgorithm*>(node.get());
        ensure(matching != nullptr, "collect_matching_outputs: not a MatchingAlgorithm");
        outputs.push_back(matching->output());
    }
    return outputs;
}

std::size_t matching_rounds_for_iterations(std::size_t iterations) {
    return 1 + 4 * iterations;
}

}  // namespace nb
