#include "codes/distance_code.h"

#include <cmath>

#include "common/error.h"
#include "congest/algorithm.h"

namespace nb {

DistanceCode::DistanceCode(std::size_t message_bits, std::size_t length, std::uint64_t seed)
    : message_bits_(message_bits), length_(length), seed_(seed) {
    require(message_bits > 0, "DistanceCode: message_bits must be positive");
    require(length > 0, "DistanceCode: length must be positive");
}

DistanceCode DistanceCode::lemma6(std::size_t message_bits, double delta, std::uint64_t seed) {
    require(delta > 0.0 && delta < 0.5, "DistanceCode::lemma6: delta must be in (0, 1/2)");
    const double c_delta = 12.0 / ((1.0 - 2.0 * delta) * (1.0 - 2.0 * delta));
    const auto length = static_cast<std::size_t>(std::ceil(c_delta * static_cast<double>(message_bits)));
    return DistanceCode(message_bits, length, seed);
}

Bitstring DistanceCode::encode(const Bitstring& message) const {
    require(message.size() == message_bits_,
            "DistanceCode::encode: message has the wrong length");
    Rng generator = Rng(seed_).derive(0x64697374u, message.hash());
    return Bitstring::random(generator, length_);
}

namespace {

/// One step of the nearest-codeword scan shared by decode() and
/// decode_cached(): fold `candidate` at `distance` into the running best.
void consider_candidate(std::optional<DistanceCode::Decoded>& best, const Bitstring& candidate,
                        std::size_t distance, std::size_t code_length) {
    if (!best.has_value()) {
        best = DistanceCode::Decoded{candidate, distance, distance, true};
        // runner_up is undefined until a second candidate arrives; track
        // it as the best distance among non-winning candidates below.
        best->runner_up = code_length + 1;
        return;
    }
    if (distance < best->distance ||
        (distance == best->distance && message_less(candidate, best->message))) {
        const bool tied = distance == best->distance;
        best->runner_up = best->distance;
        best->message = candidate;
        best->distance = distance;
        best->unique = !tied;
    } else {
        if (distance == best->distance) {
            best->unique = false;
        }
        best->runner_up = std::min(best->runner_up, distance);
    }
}

}  // namespace

std::optional<DistanceCode::Decoded> DistanceCode::decode(
    const Bitstring& received, std::span<const Bitstring> candidates) const {
    require(received.size() == length_, "DistanceCode::decode: received has the wrong length");
    std::optional<Decoded> best;
    for (const auto& candidate : candidates) {
        consider_candidate(best, candidate, encode(candidate).hamming_distance(received),
                           length_);
    }
    return best;
}

std::optional<DistanceCode::Decoded> DistanceCode::decode_cached(
    const Bitstring& received, std::span<const Bitstring> messages,
    std::span<const Bitstring> encoded, std::span<const std::uint32_t> entries) const {
    require(received.size() == length_,
            "DistanceCode::decode_cached: received has the wrong length");
    require(encoded.size() == messages.size(),
            "DistanceCode::decode_cached: one encoding per candidate message");
    std::optional<Decoded> best;
    for (const auto entry : entries) {
        require(entry < messages.size(), "DistanceCode::decode_cached: entry out of range");
        consider_candidate(best, messages[entry], encoded[entry].hamming_distance(received),
                           length_);
    }
    return best;
}

DistanceCode::Decoded DistanceCode::decode_exhaustive(const Bitstring& received) const {
    require(message_bits_ <= 24,
            "DistanceCode::decode_exhaustive: message space too large (max 24 bits)");
    std::vector<Bitstring> all;
    all.reserve(std::size_t{1} << message_bits_);
    for (std::uint64_t value = 0; value < (std::uint64_t{1} << message_bits_); ++value) {
        Bitstring message(message_bits_);
        for (std::size_t bit = 0; bit < message_bits_; ++bit) {
            if ((value >> bit) & 1u) {
                message.set(bit);
            }
        }
        all.push_back(std::move(message));
    }
    auto result = decode(received, all);
    ensure(result.has_value(), "DistanceCode::decode_exhaustive: empty enumeration");
    return *result;
}

}  // namespace nb
