#include "codes/distance_code.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "congest/algorithm.h"

namespace nb {

DistanceCode::DistanceCode(std::size_t message_bits, std::size_t length, std::uint64_t seed)
    : message_bits_(message_bits), length_(length), seed_(seed) {
    require(message_bits > 0, "DistanceCode: message_bits must be positive");
    require(length > 0, "DistanceCode: length must be positive");
}

DistanceCode DistanceCode::lemma6(std::size_t message_bits, double delta, std::uint64_t seed) {
    require(delta > 0.0 && delta < 0.5, "DistanceCode::lemma6: delta must be in (0, 1/2)");
    const double c_delta = 12.0 / ((1.0 - 2.0 * delta) * (1.0 - 2.0 * delta));
    const auto length = static_cast<std::size_t>(std::ceil(c_delta * static_cast<double>(message_bits)));
    return DistanceCode(message_bits, length, seed);
}

Bitstring DistanceCode::encode(const Bitstring& message) const {
    require(message.size() == message_bits_,
            "DistanceCode::encode: message has the wrong length");
    Rng generator = Rng(seed_).derive(0x64697374u, message.hash());
    return Bitstring::random(generator, length_);
}

namespace {

/// One step of the nearest-codeword scan shared by decode() and
/// decode_cached(): fold `candidate` at `distance` into the running best.
void consider_candidate(std::optional<DistanceCode::Decoded>& best, const Bitstring& candidate,
                        std::size_t distance, std::size_t code_length) {
    if (!best.has_value()) {
        best = DistanceCode::Decoded{candidate, distance, distance, true};
        // runner_up is undefined until a second candidate arrives; track
        // it as the best distance among non-winning candidates below.
        best->runner_up = code_length + 1;
        return;
    }
    if (distance < best->distance ||
        (distance == best->distance && message_less(candidate, best->message))) {
        const bool tied = distance == best->distance;
        best->runner_up = best->distance;
        best->message = candidate;
        best->distance = distance;
        best->unique = !tied;
    } else {
        if (distance == best->distance) {
            best->unique = false;
        }
        best->runner_up = std::min(best->runner_up, distance);
    }
}

}  // namespace

std::optional<DistanceCode::Decoded> DistanceCode::decode(
    const Bitstring& received, std::span<const Bitstring> candidates) const {
    require(received.size() == length_, "DistanceCode::decode: received has the wrong length");
    std::optional<Decoded> best;
    for (const auto& candidate : candidates) {
        consider_candidate(best, candidate, encode(candidate).hamming_distance(received),
                           length_);
    }
    return best;
}

std::optional<DistanceCode::Decoded> DistanceCode::decode_cached(
    const Bitstring& received, std::span<const Bitstring> messages,
    std::span<const Bitstring> encoded, std::span<const std::uint32_t> entries) const {
    require(received.size() == length_,
            "DistanceCode::decode_cached: received has the wrong length");
    require(encoded.size() == messages.size(),
            "DistanceCode::decode_cached: one encoding per candidate message");
    std::optional<Decoded> best;
    for (const auto entry : entries) {
        require(entry < messages.size(), "DistanceCode::decode_cached: entry out of range");
        consider_candidate(best, messages[entry], encoded[entry].hamming_distance(received),
                           length_);
    }
    return best;
}

std::vector<std::uint32_t> DistanceCode::decode_gaps(std::span<const Bitstring> messages,
                                                     std::span<const Bitstring> encoded) const {
    return extend_decode_gaps(messages, encoded, {});
}

std::vector<std::uint32_t> DistanceCode::extend_decode_gaps(
    std::span<const Bitstring> messages, std::span<const Bitstring> encoded,
    std::span<const std::uint32_t> prefix_gaps) const {
    require(encoded.size() == messages.size(),
            "DistanceCode::decode_gaps: one encoding per candidate message");
    require(prefix_gaps.size() <= encoded.size(),
            "DistanceCode::extend_decode_gaps: prefix exceeds the dictionary");
    const std::size_t count = encoded.size();
    const std::size_t prefix = prefix_gaps.size();
    // length_ + 1 exceeds any real distance, so an entry with no distinct
    // neighbor keeps a gap the shortcut can always clear.
    std::vector<std::uint32_t> gaps(count, static_cast<std::uint32_t>(length_ + 1));
    std::copy(prefix_gaps.begin(), prefix_gaps.end(), gaps.begin());
    std::vector<bool> conflicted(count, false);
    for (std::size_t i = 0; i < count; ++i) {
        // Prefix-internal pairs are already folded into prefix_gaps.
        for (std::size_t j = std::max(i + 1, prefix); j < count; ++j) {
            const auto distance =
                static_cast<std::uint32_t>(encoded[i].hamming_distance(encoded[j]));
            if (distance == 0) {
                // Same encoding: harmless if the messages agree (one tie
                // class, one output), disqualifying otherwise.
                if (messages[i] != messages[j]) {
                    conflicted[i] = true;
                    conflicted[j] = true;
                }
                continue;
            }
            gaps[i] = std::min(gaps[i], distance);
            gaps[j] = std::min(gaps[j], distance);
        }
    }
    for (std::size_t i = 0; i < count; ++i) {
        if (conflicted[i]) {
            gaps[i] = 0;
        }
    }
    return gaps;
}

std::uint32_t DistanceCode::nearest_entry(const Bitstring& received,
                                          std::span<const Bitstring> messages,
                                          std::span<const Bitstring> encoded,
                                          std::span<const std::uint32_t> entries,
                                          std::uint32_t hint_entry,
                                          std::span<const std::uint32_t> gaps) const {
    require(received.size() == length_,
            "DistanceCode::nearest_entry: received has the wrong length");
    require(!entries.empty(), "DistanceCode::nearest_entry: empty dictionary");
    if (!gaps.empty()) {
        const std::size_t hint_distance = encoded[hint_entry].hamming_distance(received);
        if (2 * hint_distance < gaps[hint_entry]) {
            return hint_entry;
        }
    }
    // Full scan, replicating decode_cached()'s fold exactly: strictly
    // smaller distance wins; an equal distance wins only with a canonically
    // smaller message.
    std::uint32_t best_entry = entries.front();
    std::size_t best_distance = encoded[best_entry].hamming_distance(received);
    for (std::size_t i = 1; i < entries.size(); ++i) {
        const std::uint32_t entry = entries[i];
        const std::size_t distance = encoded[entry].hamming_distance(received);
        if (distance < best_distance ||
            (distance == best_distance &&
             message_less(messages[entry], messages[best_entry]))) {
            best_entry = entry;
            best_distance = distance;
        }
    }
    return best_entry;
}

std::uint32_t DistanceCode::nearest_entry_soa(const Bitstring& received,
                                              std::span<const Bitstring> messages,
                                              const WordSoa& encoded,
                                              std::span<const std::uint32_t> entries,
                                              std::uint32_t hint_entry,
                                              std::span<const std::uint32_t> gaps,
                                              std::vector<std::uint32_t>& distances,
                                              simd::Kernel kernel) const {
    require(received.size() == length_,
            "DistanceCode::nearest_entry_soa: received has the wrong length");
    require(!entries.empty(), "DistanceCode::nearest_entry_soa: empty dictionary");
    const std::uint64_t* received_words = received.words().data();
    if (!gaps.empty()) {
        const std::size_t hint_distance = encoded.column_distance(received_words, hint_entry);
        if (2 * hint_distance < gaps[hint_entry]) {
            return hint_entry;
        }
    }
    // All candidate distances in one vectorized sweep, then the exact
    // nearest_entry() fold over the entry order (padding columns are never
    // indexed by an entry, so their garbage-free zero-word distances are
    // computed and ignored).
    distances.resize(encoded.stride());
    simd::ops(kernel).hamming_all(received_words, encoded.words(), encoded.data(),
                                  encoded.stride(), distances.data());
    std::uint32_t best_entry = entries.front();
    std::uint32_t best_distance = distances[best_entry];
    for (std::size_t i = 1; i < entries.size(); ++i) {
        const std::uint32_t entry = entries[i];
        const std::uint32_t distance = distances[entry];
        if (distance < best_distance ||
            (distance == best_distance &&
             message_less(messages[entry], messages[best_entry]))) {
            best_entry = entry;
            best_distance = distance;
        }
    }
    return best_entry;
}

DistanceCode::Decoded DistanceCode::decode_exhaustive(const Bitstring& received) const {
    require(message_bits_ <= 24,
            "DistanceCode::decode_exhaustive: message space too large (max 24 bits)");
    std::vector<Bitstring> all;
    all.reserve(std::size_t{1} << message_bits_);
    for (std::uint64_t value = 0; value < (std::uint64_t{1} << message_bits_); ++value) {
        Bitstring message(message_bits_);
        for (std::size_t bit = 0; bit < message_bits_; ++bit) {
            if ((value >> bit) & 1u) {
                message.set(bit);
            }
        }
        all.push_back(std::move(message));
    }
    auto result = decode(received, all);
    ensure(result.has_value(), "DistanceCode::decode_exhaustive: empty enumeration");
    return *result;
}

}  // namespace nb
