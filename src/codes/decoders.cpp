#include "codes/decoders.h"

#include <cmath>

#include "common/error.h"

namespace nb {

Phase1Decoder::Phase1Decoder(const BeepCode& code, double epsilon) : code_(&code) {
    require(epsilon >= 0.0 && epsilon < 0.5, "Phase1Decoder: epsilon must be in [0, 1/2)");
    threshold_ = (2.0 * epsilon + 1.0) / 4.0 * static_cast<double>(code.weight());
    // count >= threshold_ for an integer count iff count >= ceil(threshold_).
    reject_limit_ = static_cast<std::size_t>(std::ceil(threshold_));
}

std::size_t Phase1Decoder::missing_ones(const Bitstring& heard, std::uint64_t r) const {
    require(heard.size() == code_->length(), "Phase1Decoder: wrong transcript length");
    return code_->codeword(r).and_not_count(heard);
}

bool Phase1Decoder::accepts(const Bitstring& heard, std::uint64_t r) const {
    return static_cast<double>(missing_ones(heard, r)) < threshold_;
}

bool Phase1Decoder::accepts_codeword(const Bitstring& heard, const Bitstring& codeword) const {
    require(codeword.size() == code_->length(), "Phase1Decoder: wrong codeword length");
    return codeword.and_not_count_below(heard, reject_limit_);
}

bool Phase1Decoder::accepts_codeword(const Bitstring& heard, const Bitstring& codeword,
                                     simd::Kernel kernel) const {
    require(codeword.size() == code_->length(), "Phase1Decoder: wrong codeword length");
    require(heard.size() == codeword.size(), "Phase1Decoder: wrong transcript length");
    return simd::ops(kernel).and_not_count_below(codeword.words().data(),
                                                 heard.words().data(),
                                                 codeword.words().size(), reject_limit_);
}

void Phase1Decoder::accept_all(const Bitstring& heard, const BitsliceMatrix& candidates,
                               BitsliceScratch& scratch, std::vector<std::uint64_t>& accept,
                               simd::Kernel kernel) const {
    require(candidates.empty() || candidates.rows() == code_->length(),
            "Phase1Decoder::accept_all: wrong codeword length");
    candidates.and_not_below(heard, reject_limit_, scratch, accept, kernel);
}

std::vector<std::uint64_t> Phase1Decoder::decode(
    const Bitstring& heard, std::span<const std::uint64_t> dictionary) const {
    std::vector<std::uint64_t> accepted;
    for (const auto r : dictionary) {
        if (accepts(heard, r)) {
            accepted.push_back(r);
        }
    }
    return accepted;
}

}  // namespace nb
