#include "codes/kautz_singleton.h"

#include "common/error.h"
#include "common/math_util.h"

namespace nb {

std::size_t next_prime(std::size_t value) {
    require(value >= 2, "next_prime: value must be >= 2");
    auto is_prime = [](std::size_t candidate) {
        if (candidate < 4) {
            return candidate >= 2;
        }
        if (candidate % 2 == 0) {
            return false;
        }
        for (std::size_t d = 3; d * d <= candidate; d += 2) {
            if (candidate % d == 0) {
                return false;
            }
        }
        return true;
    };
    std::size_t candidate = value;
    while (!is_prime(candidate)) {
        ++candidate;
    }
    return candidate;
}

KautzSingletonCode::KautzSingletonCode(std::size_t message_bits, std::size_t k)
    : message_bits_(message_bits), k_(k) {
    require(message_bits >= 1 && message_bits <= 64,
            "KautzSingletonCode: message_bits must be in [1, 64]");
    require(k >= 1, "KautzSingletonCode: k must be >= 1");
    // Find the smallest prime q with enough capacity (q^t >= 2^a) and
    // k-disjunctness (q > k*(t-1)). t shrinks as q grows, so iterate.
    std::size_t q = next_prime(std::max<std::size_t>(2, k + 1));
    while (true) {
        // Symbols needed so that q^t covers the message space
        // (q^t >= 2^message_bits), computed with saturating multiplication.
        std::size_t t = 1;
        std::uint64_t capacity = 1;
        bool saturated = false;
        while (true) {
            if (capacity > UINT64_MAX / q) {
                saturated = true;  // capacity >= 2^64 >= 2^message_bits
            } else {
                capacity *= q;
            }
            const bool enough =
                saturated || (message_bits_ < 64 && capacity >= (std::uint64_t{1} << message_bits_));
            if (enough) {
                break;
            }
            ++t;
        }
        if (t == 1 || q > k_ * (t - 1)) {
            q_ = q;
            t_ = t;
            break;
        }
        q = next_prime(q + 1);
    }
    ensure(q_ >= 2, "KautzSingletonCode: construction failed");
}

Bitstring KautzSingletonCode::codeword(std::uint64_t r) const {
    // Message digits base q are the polynomial coefficients.
    std::vector<std::size_t> coefficients(t_, 0);
    std::uint64_t rest = r;
    for (std::size_t i = 0; i < t_; ++i) {
        coefficients[i] = static_cast<std::size_t>(rest % q_);
        rest /= q_;
    }
    Bitstring word(length());
    for (std::size_t x = 0; x < q_; ++x) {
        // Horner evaluation of p(x) mod q.
        std::size_t value = 0;
        for (std::size_t i = t_; i-- > 0;) {
            value = (value * x + coefficients[i]) % q_;
        }
        word.set(x * q_ + value);
    }
    return word;
}

bool KautzSingletonCode::accepts(const Bitstring& heard, std::uint64_t r,
                                 std::size_t tolerated_missing) const {
    require(heard.size() == length(), "KautzSingletonCode::accepts: wrong transcript length");
    return codeword(r).and_not_count(heard) <= tolerated_missing;
}

std::vector<std::uint64_t> KautzSingletonCode::decode(const Bitstring& heard,
                                                      std::span<const std::uint64_t> dictionary,
                                                      std::size_t tolerated_missing) const {
    std::vector<std::uint64_t> accepted;
    for (const auto r : dictionary) {
        if (accepts(heard, r, tolerated_missing)) {
            accepted.push_back(r);
        }
    }
    return accepted;
}

}  // namespace nb
