// The combined code CD (paper Notation 7, Figure 1).
//
// CD(r, m) writes the distance codeword D(m) into the positions where the
// beep codeword C(r) is 1, leaving all other positions 0:
//
//     CD(r, m)_j = D(m)_i   if j is the position of the i-th 1 of C(r),
//                  0        otherwise.
//
// Phase 2 of Algorithm 1 transmits CD(r_v, m_v); a neighbor that learned r_v
// in phase 1 reads back the subsequence at C(r_v)'s 1-positions and decodes
// it with the distance code.
#pragma once

#include <cstdint>

#include "codes/beep_code.h"
#include "codes/distance_code.h"
#include "common/bitstring.h"

namespace nb {

class CombinedCode {
public:
    /// Compose a beep code and a distance code. Precondition: the beep-code
    /// weight equals the distance-code length (each codeword of C must have
    /// exactly one slot per bit of D(m)).
    CombinedCode(BeepCode beep, DistanceCode distance);

    /// CD(r, m): D(m) scattered into the 1-positions of C(r).
    Bitstring encode(std::uint64_t r, const Bitstring& message) const;

    /// The subsequence of `heard` at the 1-positions of C(r): the string
    /// y_{v,w} (Section 4) from which the message is decoded.
    Bitstring extract(std::uint64_t r, const Bitstring& heard) const;

    const BeepCode& beep() const noexcept { return beep_; }
    const DistanceCode& distance() const noexcept { return distance_; }

    /// Total codeword length (= beep-code length).
    std::size_t length() const noexcept { return beep_.length(); }

private:
    BeepCode beep_;
    DistanceCode distance_;
};

}  // namespace nb
