#include "codes/analysis.h"

#include <algorithm>
#include <unordered_set>

#include "common/error.h"

namespace nb {

SuperimpositionTrial superimposition_trial(const BeepCode& code, std::size_t k,
                                           std::size_t threshold, Rng& rng) {
    // Draw k inputs for S plus one for x, all distinct (64-bit draws collide
    // with negligible probability; regenerate defensively anyway).
    std::unordered_set<std::uint64_t> chosen;
    while (chosen.size() < k + 1) {
        chosen.insert(rng.next_u64());
    }
    std::vector<std::uint64_t> inputs(chosen.begin(), chosen.end());
    const std::uint64_t x = inputs.back();
    inputs.pop_back();

    Bitstring superimposition(code.length());
    for (const auto r : inputs) {
        superimposition |= code.codeword(r);
    }
    SuperimpositionTrial trial;
    trial.intersection = code.codeword(x).intersect_count(superimposition);
    trial.violates = trial.intersection >= threshold;
    return trial;
}

SuperimpositionStats measure_superimposition(const BeepCode& code, std::size_t k,
                                             std::size_t threshold, std::size_t trials,
                                             Rng& rng) {
    require(trials > 0, "measure_superimposition: trials must be positive");
    SuperimpositionStats stats;
    double intersection_sum = 0.0;
    std::size_t violations = 0;
    for (std::size_t i = 0; i < trials; ++i) {
        const auto trial = superimposition_trial(code, k, threshold, rng);
        intersection_sum += static_cast<double>(trial.intersection);
        stats.max_intersection = std::max(stats.max_intersection, trial.intersection);
        if (trial.violates) {
            ++violations;
        }
    }
    stats.violation_rate = static_cast<double>(violations) / static_cast<double>(trials);
    stats.mean_intersection = intersection_sum / static_cast<double>(trials);
    return stats;
}

std::size_t min_pairwise_distance(const DistanceCode& code,
                                  std::span<const Bitstring> messages) {
    require(messages.size() >= 2, "min_pairwise_distance: need at least two messages");
    std::vector<Bitstring> codewords;
    codewords.reserve(messages.size());
    for (const auto& message : messages) {
        codewords.push_back(code.encode(message));
    }
    std::size_t minimum = code.length() + 1;
    for (std::size_t i = 0; i < codewords.size(); ++i) {
        for (std::size_t j = i + 1; j < codewords.size(); ++j) {
            minimum = std::min(minimum, codewords[i].hamming_distance(codewords[j]));
        }
    }
    return minimum;
}

double fraction_below_distance(const DistanceCode& code, std::span<const Bitstring> messages,
                               std::size_t floor_distance) {
    require(messages.size() >= 2, "fraction_below_distance: need at least two messages");
    std::vector<Bitstring> codewords;
    codewords.reserve(messages.size());
    for (const auto& message : messages) {
        codewords.push_back(code.encode(message));
    }
    std::size_t below = 0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < codewords.size(); ++i) {
        for (std::size_t j = i + 1; j < codewords.size(); ++j) {
            ++pairs;
            if (codewords[i].hamming_distance(codewords[j]) < floor_distance) {
                ++below;
            }
        }
    }
    return static_cast<double>(below) / static_cast<double>(pairs);
}

std::vector<Bitstring> all_messages(std::size_t bits) {
    require(bits <= 24, "all_messages: message space too large (max 24 bits)");
    std::vector<Bitstring> result;
    result.reserve(std::size_t{1} << bits);
    for (std::uint64_t value = 0; value < (std::uint64_t{1} << bits); ++value) {
        Bitstring message(bits);
        for (std::size_t bit = 0; bit < bits; ++bit) {
            if ((value >> bit) & 1u) {
                message.set(bit);
            }
        }
        result.push_back(std::move(message));
    }
    return result;
}

std::vector<Bitstring> random_messages(std::size_t bits, std::size_t count, Rng& rng) {
    std::vector<Bitstring> result;
    std::unordered_set<std::uint64_t> seen;
    result.reserve(count);
    std::size_t guard = 0;
    while (result.size() < count) {
        Bitstring message = Bitstring::random(rng, bits);
        if (seen.insert(message.hash()).second) {
            result.push_back(std::move(message));
        }
        require(++guard < 100 * count + 1000,
                "random_messages: message space too small for the requested count");
    }
    return result;
}

}  // namespace nb
