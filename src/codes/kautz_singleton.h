// Kautz–Singleton superimposed codes [23] — the classic construction the
// paper discusses and rejects in Section 1.4.
//
// A Reed–Solomon code over GF(q) (q prime) of degree < t is concatenated
// with the unary/indicator inner code: each of the q output symbols becomes
// a q-bit block with a single 1. Codewords have length q^2 and weight q.
// Choosing q > k*(t-1) makes the code k-disjunct: any codeword outside a
// union of k codewords retains a 1 outside the union, so noiseless cover
// decoding is exact.
//
// For a-bit messages this yields length O(k^2 * a^2 / log^2 k) — in the
// simulation setting (a = Theta(log n), k = Delta+1) that is the
// Theta(Delta^2 log n)-per-round overhead the paper improves on; bench E12
// reproduces the comparison.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitstring.h"

namespace nb {

class KautzSingletonCode {
public:
    /// Code for `message_bits`-bit inputs tolerating superimpositions of up
    /// to `k` codewords (k-disjunct).
    KautzSingletonCode(std::size_t message_bits, std::size_t k);

    /// Codeword of input r (r < 2^message_bits; higher bits ignored for
    /// message_bits = 64).
    Bitstring codeword(std::uint64_t r) const;

    /// Exact noiseless cover decode: accept r iff every 1 of codeword(r) is
    /// present in `heard`. With `tolerated_missing` > 0, up to that many 1s
    /// may be absent (simple noise slack; the construction has no designed
    /// noise margin, which is part of why the paper replaces it).
    bool accepts(const Bitstring& heard, std::uint64_t r,
                 std::size_t tolerated_missing = 0) const;

    /// All accepted inputs among `dictionary`.
    std::vector<std::uint64_t> decode(const Bitstring& heard,
                                      std::span<const std::uint64_t> dictionary,
                                      std::size_t tolerated_missing = 0) const;

    std::size_t q() const noexcept { return q_; }
    std::size_t symbols() const noexcept { return t_; }
    std::size_t length() const noexcept { return q_ * q_; }
    std::size_t weight() const noexcept { return q_; }
    std::size_t message_bits() const noexcept { return message_bits_; }

private:
    std::size_t message_bits_;
    std::size_t k_;
    std::size_t q_ = 0;  ///< field size (prime)
    std::size_t t_ = 0;  ///< message symbols (polynomial coefficients)
};

/// Smallest prime >= value (value >= 2).
std::size_t next_prime(std::size_t value);

}  // namespace nb
