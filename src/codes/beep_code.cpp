#include "codes/beep_code.h"

#include "common/error.h"

namespace nb {

BeepCode::BeepCode(std::size_t length, std::size_t weight, std::uint64_t seed)
    : length_(length), weight_(weight), seed_(seed) {
    require(weight > 0, "BeepCode: weight must be positive");
    require(weight <= length, "BeepCode: weight must be <= length");
}

BeepCode BeepCode::theorem4(std::size_t a, std::size_t k, std::size_t c, std::uint64_t seed) {
    require(a > 0 && k > 0 && c > 0, "BeepCode::theorem4: a, k, c must be positive");
    // b = c^2 * k * a; weight = delta*b/k = b/(c*k) = c*a.
    const std::size_t length = c * c * k * a;
    const std::size_t weight = c * a;
    return BeepCode(length, weight, seed);
}

Bitstring BeepCode::codeword(std::uint64_t r) const {
    Rng generator = Rng(seed_).derive(0x62656570u, r);
    return Bitstring::random_with_weight(generator, length_, weight_);
}

std::vector<std::size_t> BeepCode::one_positions(std::uint64_t r) const {
    // random_with_weight places 1s at distinct_positions(), which returns a
    // sorted vector; regenerate it directly to avoid a length_-bit scan.
    Rng generator = Rng(seed_).derive(0x62656570u, r);
    return generator.distinct_positions(length_, weight_);
}

std::pair<Bitstring, std::vector<std::size_t>> BeepCode::codeword_and_positions(
    std::uint64_t r) const {
    Rng generator = Rng(seed_).derive(0x62656570u, r);
    std::vector<std::size_t> positions = generator.distinct_positions(length_, weight_);
    Bitstring codeword(length_);
    for (const auto position : positions) {
        codeword.set(position);
    }
    return {std::move(codeword), std::move(positions)};
}

}  // namespace nb
