// Empirical property checks for the code constructions.
//
// These functions measure exactly the quantities bounded in the paper's
// proofs (Theorem 4, Lemma 6), at sizes where the checks are affordable;
// tests and bench E1/E2 are built on them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codes/beep_code.h"
#include "codes/distance_code.h"
#include "common/rng.h"

namespace nb {

/// One trial of the Definition 3 event: draw `k` random distinct inputs S
/// plus one extra input x outside S, and report whether the superimposition
/// of S's codewords `threshold`-intersects C(x). Theorem 4 bounds the
/// probability of this event by ~2^-4a for threshold = 5*delta^2*b/k.
struct SuperimpositionTrial {
    std::size_t intersection = 0;  ///< 1(C(x) AND OR(S))
    bool violates = false;         ///< intersection >= threshold
};

SuperimpositionTrial superimposition_trial(const BeepCode& code, std::size_t k,
                                           std::size_t threshold, Rng& rng);

/// Fraction of `trials` independent Definition 3 events that violate, plus
/// the mean intersection size.
struct SuperimpositionStats {
    double violation_rate = 0.0;
    double mean_intersection = 0.0;
    std::size_t max_intersection = 0;
};

SuperimpositionStats measure_superimposition(const BeepCode& code, std::size_t k,
                                             std::size_t threshold, std::size_t trials,
                                             Rng& rng);

/// Minimum pairwise Hamming distance among the codewords of the given
/// messages (exact over the supplied set).
std::size_t min_pairwise_distance(const DistanceCode& code,
                                  std::span<const Bitstring> messages);

/// Fraction of pairs with distance below `floor_distance`.
double fraction_below_distance(const DistanceCode& code, std::span<const Bitstring> messages,
                               std::size_t floor_distance);

/// All 2^bits messages of the given width (for exhaustive small-space checks).
std::vector<Bitstring> all_messages(std::size_t bits);

/// `count` distinct random messages of the given width.
std::vector<Bitstring> random_messages(std::size_t bits, std::size_t count, Rng& rng);

}  // namespace nb
