// Decoders for the two phases of Algorithm 1.
//
// Phase 1 (Lemma 9): from the noisy superimposition transcript x~_v, recover
// the set R_v of beep-code inputs used in v's inclusive neighborhood. The
// paper's rule: accept r iff C(r) does NOT ((2*eps+1)/4 * weight)-intersect
// the complement of x~_v — i.e. fewer than that many of C(r)'s 1s are
// missing from the transcript.
//
// Phase 2 (Lemma 10): nearest-codeword distance decoding of the extracted
// subsequence y~_{v,w}; provided by DistanceCode::decode.
//
// The paper's decoder ranges over all 2^a inputs (local computation is free
// in beeping models); tractably, decode() tests the identical per-candidate
// rule over a caller-supplied dictionary (all in-use inputs plus decoys; see
// DESIGN.md section 3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codes/beep_code.h"
#include "common/bitslice.h"
#include "common/bitstring.h"

namespace nb {

class Phase1Decoder {
public:
    /// `epsilon` is the channel-noise constant used in the acceptance
    /// threshold (2*eps+1)/4 * weight. With epsilon = 0 the threshold is
    /// weight/4, which also serves the noiseless model.
    Phase1Decoder(const BeepCode& code, double epsilon);

    /// Number of missing 1s strictly below which a candidate is accepted.
    double threshold() const noexcept { return threshold_; }

    /// The acceptance test as an integer bound: a candidate is accepted iff
    /// its missing-ones count is < reject_limit() (= ceil(threshold), since
    /// counts are integers). This is the early-exit limit for the packed
    /// kernel Bitstring::and_not_count_below.
    std::size_t reject_limit() const noexcept { return reject_limit_; }

    /// Missing-ones count 1(C(r) AND NOT heard) for a single candidate.
    std::size_t missing_ones(const Bitstring& heard, std::uint64_t r) const;

    /// Lemma 9 acceptance test for a single candidate input.
    bool accepts(const Bitstring& heard, std::uint64_t r) const;

    /// Acceptance test given an already-generated codeword (avoids
    /// regenerating C(r) when the caller holds it, e.g. the transport's
    /// phase-1 schedules). The kernel overload runs the count on a specific
    /// dispatch table (bit-identical across kernels; see simd.h).
    bool accepts_codeword(const Bitstring& heard, const Bitstring& codeword) const;
    bool accepts_codeword(const Bitstring& heard, const Bitstring& codeword,
                          simd::Kernel kernel) const;

    /// All accepted inputs among `dictionary` (the decoded set R~_v).
    std::vector<std::uint64_t> decode(const Bitstring& heard,
                                      std::span<const std::uint64_t> dictionary) const;

    /// Bitsliced Lemma 9 test over a whole candidate matrix at once: after
    /// the call, bit c of `accept` is set iff
    /// accepts_codeword(heard, column c of `candidates`). One pass over the
    /// transcript scores all candidates word-parallel (64 per lane); see
    /// bitslice.h for the kernel. The transports call this in place of
    /// their per-candidate loops when the dictionary is large.
    /// Precondition: the matrix rows equal the code length.
    void accept_all(const Bitstring& heard, const BitsliceMatrix& candidates,
                    BitsliceScratch& scratch, std::vector<std::uint64_t>& accept,
                    simd::Kernel kernel = simd::Kernel::auto_best) const;

private:
    const BeepCode* code_;
    double threshold_;
    std::size_t reject_limit_;
};

}  // namespace nb
