#include "codes/combined_code.h"

#include "common/error.h"

namespace nb {

CombinedCode::CombinedCode(BeepCode beep, DistanceCode distance)
    : beep_(beep), distance_(distance) {
    require(beep_.weight() == distance_.length(),
            "CombinedCode: beep-code weight must equal distance-code length");
}

Bitstring CombinedCode::encode(std::uint64_t r, const Bitstring& message) const {
    const auto positions = beep_.one_positions(r);
    const Bitstring payload = distance_.encode(message);
    return Bitstring::scatter(beep_.length(), positions, payload);
}

Bitstring CombinedCode::extract(std::uint64_t r, const Bitstring& heard) const {
    require(heard.size() == beep_.length(), "CombinedCode::extract: wrong transcript length");
    return heard.gather(beep_.one_positions(r));
}

}  // namespace nb
