// Beep codes (paper Definition 3, Theorem 4).
//
// An (a, k, delta)-beep code of length b maps inputs to b-bit codewords of
// weight exactly delta*b/k such that almost every superimposition (bitwise
// OR) of k codewords is decodable: it does not 5*delta^2*b/k-intersect any
// codeword outside the superimposed set.
//
// Theorem 4 proves such codes of length b = c^2 * k * a (delta = 1/c) exist
// and that uniform random weight-(b/(ck)) codewords give one with probability
// >= 1 - 2^-a. We realize exactly that randomized construction, lazily:
// codeword(r) is generated on demand by a PRNG keyed by (code seed, r), so no
// 2^a-sized table is ever materialized. All nodes share the code seed (the
// code is public); only the inputs r are per-node random.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitstring.h"
#include "common/rng.h"

namespace nb {

class BeepCode {
public:
    /// A code with explicit length and codeword weight.
    /// Precondition: 0 < weight <= length.
    BeepCode(std::size_t length, std::size_t weight, std::uint64_t seed);

    /// Theorem 4 parameterization: an (a, k, 1/c)-beep code of length
    /// b = c^2 * k * a with codeword weight c * a.
    static BeepCode theorem4(std::size_t a, std::size_t k, std::size_t c, std::uint64_t seed);

    /// The codeword for input r: a weight-`weight()` string of length
    /// `length()`, a pure function of (seed, r).
    Bitstring codeword(std::uint64_t r) const;

    /// Sorted positions of the 1s of codeword(r) (the combined code writes
    /// the distance codeword into these positions, Notation 7).
    std::vector<std::size_t> one_positions(std::uint64_t r) const;

    /// codeword(r) and one_positions(r) from a single PRNG pass. The
    /// codebook caches both per round; generating them separately would
    /// sample the same distinct-position set twice.
    std::pair<Bitstring, std::vector<std::size_t>> codeword_and_positions(
        std::uint64_t r) const;

    std::size_t length() const noexcept { return length_; }
    std::size_t weight() const noexcept { return weight_; }
    std::uint64_t seed() const noexcept { return seed_; }

private:
    std::size_t length_;
    std::size_t weight_;
    std::uint64_t seed_;
};

}  // namespace nb
