// B-bit Local Broadcast (paper Definition 13) and its counting lower bounds.
//
// Every node v holds a B-bit message m_{v->u} for each neighbor u and must
// output {<u, m_{u->v}>}. Lemma 14: on K_{Delta,Delta} (+ isolated filler
// vertices) any beeping algorithm needs Delta^2*B/2 rounds to succeed with
// probability > 2^{-Delta^2*B/2}, because all right-part nodes hear one
// common transcript of at most 2^T possibilities while the correct output
// has 2^{Delta^2*B} possibilities. Lemma 15: O(ceil(B / budget)) CONGEST
// rounds suffice (chunked sends), so simulation overhead is
// Omega(Delta^2 log n) for CONGEST and Omega(Delta log n) for Broadcast
// CONGEST (Corollary 16).
//
// This module provides the task as a CongestAlgorithm (with chunked sends,
// implementing Lemma 15), instance generation, output verification, and the
// transcript-counting bound in log2 form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "congest/algorithm.h"
#include "graph/graph.h"

namespace nb {

/// All inputs of a Local Broadcast instance: messages[{v,u}] = m_{v->u}
/// for every ordered adjacent pair.
struct LocalBroadcastInstance {
    std::size_t message_bits = 0;
    std::map<std::pair<NodeId, NodeId>, Bitstring> messages;
};

/// Random instance on `graph` with B-bit messages.
LocalBroadcastInstance make_local_broadcast_instance(const Graph& graph,
                                                     std::size_t message_bits, Rng& rng);

/// Per-node solver implementing Lemma 15: message m_{v->u} is sent in
/// ceil(B / chunk_bits) rounds of chunk_bits-bit chunks.
class LocalBroadcastNode final : public CongestAlgorithm {
public:
    /// `outgoing[u]` = m_{self->u}; all must have the instance's B bits.
    LocalBroadcastNode(std::map<NodeId, Bitstring> outgoing, std::size_t message_bits,
                       std::size_t chunk_bits);

    void initialize(NodeId self, const CongestInfo& info, Rng& rng) override;
    std::optional<Bitstring> send(std::size_t round, NodeId neighbor, Rng& rng) override;
    void receive(std::size_t round, const std::vector<AddressedMessage>& messages,
                 Rng& rng) override;
    bool finished() const override;

    /// Assembled incoming messages keyed by sender.
    const std::map<NodeId, Bitstring>& received() const noexcept { return received_; }

    /// CONGEST rounds the task needs: ceil(B / chunk_bits).
    std::size_t rounds_needed() const noexcept;

private:
    std::map<NodeId, Bitstring> outgoing_;
    std::size_t message_bits_;
    std::size_t chunk_bits_;
    std::map<NodeId, Bitstring> received_;
    std::size_t rounds_done_ = 0;
    bool done_ = false;
};

/// Build solver nodes for an instance.
std::vector<std::unique_ptr<CongestAlgorithm>> make_local_broadcast_nodes(
    const Graph& graph, const LocalBroadcastInstance& instance, std::size_t chunk_bits);

/// Check every node's assembled inputs against the instance.
bool verify_local_broadcast(const Graph& graph, const LocalBroadcastInstance& instance,
                            const std::vector<std::unique_ptr<CongestAlgorithm>>& nodes);

/// Lemma 14's counting bound in log2: an algorithm running T beeping rounds
/// on the hard instance succeeds with probability at most
/// 2^{T - Delta^2 * B}; returns that exponent (may be negative).
double local_broadcast_success_log2(std::size_t rounds, std::size_t delta,
                                    std::size_t message_bits);

/// Theorem 22's counting bound in log2: an r-round maximal-matching
/// algorithm on K_{Delta,Delta} with ids from [n^4] succeeds with
/// probability at most 2^{r - 3*Delta*log2(n)}; returns the exponent.
double matching_success_log2(std::size_t rounds, std::size_t delta, std::size_t n);

}  // namespace nb
