#include "lowerbound/local_broadcast.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace nb {

LocalBroadcastInstance make_local_broadcast_instance(const Graph& graph,
                                                     std::size_t message_bits, Rng& rng) {
    require(message_bits >= 1, "make_local_broadcast_instance: message_bits must be >= 1");
    LocalBroadcastInstance instance;
    instance.message_bits = message_bits;
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        for (const auto u : graph.neighbors(v)) {
            instance.messages[{v, u}] = Bitstring::random(rng, message_bits);
        }
    }
    return instance;
}

LocalBroadcastNode::LocalBroadcastNode(std::map<NodeId, Bitstring> outgoing,
                                       std::size_t message_bits, std::size_t chunk_bits)
    : outgoing_(std::move(outgoing)), message_bits_(message_bits), chunk_bits_(chunk_bits) {
    require(chunk_bits_ >= 1, "LocalBroadcastNode: chunk_bits must be >= 1");
    for (const auto& [neighbor, message] : outgoing_) {
        require(message.size() == message_bits_,
                "LocalBroadcastNode: message width mismatch");
    }
}

std::size_t LocalBroadcastNode::rounds_needed() const noexcept {
    return ceil_div(message_bits_, chunk_bits_);
}

void LocalBroadcastNode::initialize(NodeId self, const CongestInfo& info, Rng& rng) {
    (void)self;
    (void)rng;
    require(info.message_bits == 0 || info.message_bits >= chunk_bits_,
            "LocalBroadcastNode: chunk does not fit the message budget");
    for (auto& [neighbor, message] : received_) {
        (void)neighbor;
        (void)message;
    }
    if (outgoing_.empty() && rounds_needed() == 0) {
        done_ = true;
    }
}

std::optional<Bitstring> LocalBroadcastNode::send(std::size_t round, NodeId neighbor, Rng& rng) {
    (void)rng;
    if (round >= rounds_needed()) {
        return std::nullopt;
    }
    const auto it = outgoing_.find(neighbor);
    if (it == outgoing_.end()) {
        return std::nullopt;
    }
    // Chunk `round` covers bits [round*chunk, min(B, (round+1)*chunk)).
    const std::size_t begin = round * chunk_bits_;
    const std::size_t end = std::min(message_bits_, begin + chunk_bits_);
    Bitstring chunk(chunk_bits_);
    for (std::size_t i = begin; i < end; ++i) {
        if (it->second.test(i)) {
            chunk.set(i - begin);
        }
    }
    return chunk;
}

void LocalBroadcastNode::receive(std::size_t round, const std::vector<AddressedMessage>& messages,
                                 Rng& rng) {
    (void)rng;
    for (const auto& delivery : messages) {
        auto [it, inserted] = received_.try_emplace(delivery.sender, Bitstring(message_bits_));
        const std::size_t begin = round * chunk_bits_;
        for (std::size_t i = 0; i < delivery.payload.size(); ++i) {
            if (begin + i < message_bits_ && delivery.payload.test(i)) {
                it->second.set(begin + i);
            }
        }
    }
    ++rounds_done_;
    if (rounds_done_ >= rounds_needed()) {
        done_ = true;
    }
}

bool LocalBroadcastNode::finished() const { return done_; }

std::vector<std::unique_ptr<CongestAlgorithm>> make_local_broadcast_nodes(
    const Graph& graph, const LocalBroadcastInstance& instance, std::size_t chunk_bits) {
    std::vector<std::unique_ptr<CongestAlgorithm>> nodes;
    nodes.reserve(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        std::map<NodeId, Bitstring> outgoing;
        for (const auto u : graph.neighbors(v)) {
            outgoing[u] = instance.messages.at({v, u});
        }
        nodes.push_back(std::make_unique<LocalBroadcastNode>(std::move(outgoing),
                                                             instance.message_bits, chunk_bits));
    }
    return nodes;
}

bool verify_local_broadcast(const Graph& graph, const LocalBroadcastInstance& instance,
                            const std::vector<std::unique_ptr<CongestAlgorithm>>& nodes) {
    require(nodes.size() == graph.node_count(), "verify_local_broadcast: one node per vertex");
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        const auto* solver = dynamic_cast<const LocalBroadcastNode*>(nodes[v].get());
        ensure(solver != nullptr, "verify_local_broadcast: not a LocalBroadcastNode");
        const auto& received = solver->received();
        if (received.size() != graph.degree(v)) {
            return false;
        }
        for (const auto u : graph.neighbors(v)) {
            const auto it = received.find(u);
            if (it == received.end() || it->second != instance.messages.at({u, v})) {
                return false;
            }
        }
    }
    return true;
}

double local_broadcast_success_log2(std::size_t rounds, std::size_t delta,
                                    std::size_t message_bits) {
    return static_cast<double>(rounds) -
           static_cast<double>(delta) * static_cast<double>(delta) *
               static_cast<double>(message_bits);
}

double matching_success_log2(std::size_t rounds, std::size_t delta, std::size_t n) {
    return static_cast<double>(rounds) -
           3.0 * static_cast<double>(delta) * std::log2(static_cast<double>(n));
}

}  // namespace nb
