#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/json.h"
#include "scenarios/spec_json.h"
#include "scenarios/sweep.h"
#include "serve/wire.h"
#include "sim/codebook_cache.h"

namespace nb::serve {

namespace {

// Fired between accept() and the connection thread spawn — a connection the
// server drops before reading a byte. Clients see EOF and must treat it as a
// transient, retryable condition.
NB_FAILPOINT_DEFINE(fp_serve_accept, "serve.accept");
// Fired at the top of every job execution attempt — the server-side
// error-boundary seam. throw/oom exercise the retry + classification path;
// delay simulates slow jobs for overload and drain tests.
NB_FAILPOINT_DEFINE(fp_serve_job, "serve.job");

constexpr const char* serve_schema = "nb-serve/v1";

std::string error_response(const char* op, const JobError& error, std::size_t attempts) {
    std::ostringstream out;
    JsonWriter json(out, /*indent=*/0);
    json.begin_object();
    json.kv("ok", false);
    json.kv("op", op);
    json.kv("status", "error");
    json.kv("attempts", static_cast<std::uint64_t>(attempts));
    json.key("error").begin_object();
    json.kv("kind", error.kind);
    json.kv("site", error.site);
    json.kv("what", error.what);
    json.end_object();
    json.end_object();
    return out.str();
}

std::string bad_request(const std::string& op, const std::string& what) {
    JobError error;
    error.kind = "bad_request";
    error.what = what;
    return error_response(op.empty() ? "?" : op.c_str(), error, 0);
}

std::string rejected_response(const char* reason) {
    std::ostringstream out;
    JsonWriter json(out, /*indent=*/0);
    json.begin_object();
    json.kv("ok", false);
    json.kv("op", "submit");
    json.kv("status", "rejected");
    json.kv("reason", reason);
    json.end_object();
    return out.str();
}

}  // namespace

/// One admitted submission: the parsed spec subtree, the result slot the
/// executor fills, and the CancelToken that carries the job's deadline and
/// links the drain token as parent.
struct Server::Job {
    JsonValue spec;
    std::string store_as;
    std::size_t max_retries = 0;
    CancelToken token;

    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::string response;

    void complete(std::string text) {
        {
            std::lock_guard<std::mutex> lock(mutex);
            response = std::move(text);
            done = true;
        }
        cv.notify_all();
    }
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
    require(!config_.socket_path.empty(), "serve: socket_path is required");
    require(!config_.store_dir.empty(), "serve: store_dir is required");
    config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
    config_.executors = std::max<std::size_t>(1, config_.executors);
}

Server::~Server() {
    if (started_) {
        request_drain();
        wait();
    }
}

void Server::start() {
    require(!started_, "serve: already started");
    if (!config_.codebook_dir.empty()) {
        // Warm cold-start: every codebook this process's predecessor built
        // against this directory is an mmap away instead of a rebuild.
        CodebookCache::instance().set_directory(config_.codebook_dir);
    }
    store_ = std::make_unique<ArtifactStore>(config_.store_dir);
    require(::pipe(wake_pipe_) == 0, "serve: cannot create the wake pipe");
    listen_fd_ = listen_unix(config_.socket_path, /*backlog=*/64);
    started_ = true;

    for (std::size_t i = 0; i < config_.executors; ++i) {
        executors_.emplace_back(&Server::executor_loop, this);
    }
    acceptor_ = std::thread(&Server::accept_loop, this);
}

void Server::request_drain() {
    if (draining_.exchange(true)) {
        return;
    }
    if (wake_pipe_[1] >= 0) {
        const char byte = 'q';
        [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
    }
}

void Server::accept_loop() {
    for (;;) {
        pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (draining_.load()) {
            break;
        }
        if (ready <= 0 || (fds[0].revents & POLLIN) == 0) {
            continue;
        }
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            continue;
        }
        try {
            fp_serve_accept.check();
        } catch (...) {
            // Injected accept fault: drop the connection before reading a
            // byte. The client observes EOF — transient by contract.
            ::close(fd);
            continue;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.connections;
        connection_fds_.push_back(fd);
        connections_.emplace_back(&Server::serve_connection, this, fd);
    }
    // Drain step 1: close the listening socket and remove its path, so new
    // connections fail at connect() rather than queueing behind a drain.
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
}

void Server::wait() {
    if (!started_) {
        return;
    }
    require(draining_.load(), "serve: wait() before request_drain()");
    acceptor_.join();

    // Drain step 2: the grace period. In-flight and queued jobs may finish
    // normally until drain_seconds elapse.
    {
        std::unique_lock<std::mutex> lock(mutex_);
        const auto grace = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::duration<double>(std::max(0.0, config_.drain_seconds)));
        const bool idle = idle_cv_.wait_for(
            lock, grace, [&] { return queue_.empty() && running_ == 0; });
        if (!idle) {
            // Drain step 3: the deadline passed. Queued jobs answer
            // `rejected:draining`; running jobs are hard-cancelled through
            // the drain token (their next poll unwinds, classified timeout).
            hard_draining_.store(true);
            counters_.drain_cancelled += running_;
            drain_token_.cancel();
            queue_cv_.notify_all();
            idle_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
        }
        stop_executors_ = true;
    }
    queue_cv_.notify_all();
    for (auto& executor : executors_) {
        executor.join();
    }
    executors_.clear();

    // Every pending submit is answered; wake connection threads blocked in
    // recv so they observe EOF and exit.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const int fd : connection_fds_) {
            ::shutdown(fd, SHUT_RDWR);
        }
    }
    for (auto& connection : connections_) {
        connection.join();
    }
    connections_.clear();

    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    // "Flush the store": every put was individually durable (fsync'd file +
    // directory), so the only remaining step is dropping the handle.
    store_.reset();
    started_ = false;
}

void Server::serve_connection(int fd) {
    LineReader reader(fd);
    std::string line;
    while (reader.read_line(line, config_.max_request_bytes)) {
        std::string response;
        try {
            response = handle_request(line);
        } catch (const std::exception& e) {
            response = bad_request("?", e.what());
        } catch (...) {
            response = bad_request("?", "unknown error");
        }
        if (!send_line(fd, response)) {
            break;
        }
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    connection_fds_.erase(std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
                          connection_fds_.end());
}

std::string Server::handle_request(const std::string& line) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.requests;
    }
    JsonValue request;
    try {
        request = JsonValue::parse(line);
    } catch (const precondition_error& e) {
        return bad_request("?", std::string("request is not valid JSON: ") + e.what());
    }
    if (!request.is_object()) {
        return bad_request("?", "request must be a JSON object");
    }
    const JsonValue* op_value = request.find("op");
    if (op_value == nullptr || !op_value->is_string()) {
        return bad_request("?", "missing string field 'op'");
    }
    const std::string& op = op_value->as_string();

    try {
        if (op == "ping") {
            std::ostringstream out;
            JsonWriter json(out, /*indent=*/0);
            json.begin_object();
            json.kv("ok", true);
            json.kv("op", "ping");
            json.kv("schema", serve_schema);
            json.end_object();
            return out.str();
        }
        if (op == "submit") {
            return handle_submit(request);
        }
        if (op == "get") {
            const JsonValue* name = request.find("name");
            if (name == nullptr || !name->is_string()) {
                return bad_request(op, "get: missing string field 'name'");
            }
            const JsonValue* version = request.find("version");
            const auto object = version != nullptr
                                    ? store_->get(name->as_string(), version->as_uint64())
                                    : store_->get(name->as_string());
            std::ostringstream out;
            JsonWriter json(out, /*indent=*/0);
            json.begin_object();
            json.kv("ok", object.has_value());
            json.kv("op", "get");
            json.kv("name", name->as_string());
            if (object.has_value()) {
                json.kv("version", object->version);
                json.kv("bytes", object->bytes);
            } else {
                json.kv("status", "not_found");
            }
            json.end_object();
            return out.str();
        }
        if (op == "put" || op == "cput") {
            const JsonValue* name = request.find("name");
            const JsonValue* bytes = request.find("bytes");
            if (name == nullptr || !name->is_string() || bytes == nullptr ||
                !bytes->is_string()) {
                return bad_request(op, op + ": required string fields 'name' and 'bytes'");
            }
            std::optional<std::uint64_t> version;
            if (op == "put") {
                version = store_->put(name->as_string(), bytes->as_string());
            } else {
                const JsonValue* expected = request.find("expected");
                if (expected == nullptr) {
                    return bad_request(op, "cput: missing field 'expected'");
                }
                version = store_->cput(name->as_string(), bytes->as_string(),
                                       expected->as_uint64());
            }
            std::ostringstream out;
            JsonWriter json(out, /*indent=*/0);
            json.begin_object();
            json.kv("ok", version.has_value());
            json.kv("op", op);
            json.kv("name", name->as_string());
            if (version.has_value()) {
                json.kv("version", *version);
            } else {
                json.kv("status", "conflict");
            }
            json.end_object();
            return out.str();
        }
        if (op == "list") {
            std::ostringstream out;
            JsonWriter json(out, /*indent=*/0);
            json.begin_object();
            json.kv("ok", true);
            json.kv("op", "list");
            json.key("objects").begin_array();
            for (const auto& entry : store_->list()) {
                json.begin_object();
                json.kv("name", entry.name);
                json.kv("version", entry.latest_version);
                json.kv("bytes", entry.bytes);
                json.end_object();
            }
            json.end_array();
            json.end_object();
            return out.str();
        }
        if (op == "stats") {
            const CodebookCache::Stats cache = CodebookCache::instance().stats();
            const ServerCounters server = counters();
            std::ostringstream out;
            JsonWriter json(out, /*indent=*/0);
            json.begin_object();
            json.kv("ok", true);
            json.kv("op", "stats");
            json.kv("schema", serve_schema);
            json.key("cache").begin_object();
            json.kv("hits", cache.hits);
            json.kv("builds", cache.builds);
            json.kv("evictions", cache.evictions + cache.evictions_capacity);
            json.kv("disk_loads", cache.disk_loads);
            json.kv("disk_saves", cache.disk_saves);
            json.kv("bytes_resident", static_cast<std::uint64_t>(cache.bytes_resident));
            json.kv("hit_rate", cache.hit_rate());
            json.end_object();
            json.key("server").begin_object();
            json.kv("connections", server.connections);
            json.kv("requests", server.requests);
            json.kv("submitted", server.submitted);
            json.kv("completed", server.completed);
            json.kv("failed", server.failed);
            json.kv("shed_overloaded", server.shed_overloaded);
            json.kv("shed_draining", server.shed_draining);
            json.kv("retries", server.retries);
            json.kv("drain_cancelled", server.drain_cancelled);
            json.kv("load", static_cast<std::uint64_t>(load()));
            json.kv("queue_capacity", static_cast<std::uint64_t>(config_.queue_capacity));
            json.kv("draining", draining_.load());
            json.end_object();
            json.end_object();
            return out.str();
        }
    } catch (const precondition_error& e) {
        return bad_request(op, e.what());
    }
    return bad_request(op, "unknown op '" + op + "'");
}

std::string Server::handle_submit(const JsonValue& request) {
    const JsonValue* spec = request.find("spec");
    if (spec == nullptr || !spec->is_object()) {
        return bad_request("submit", "submit: missing object field 'spec'");
    }

    auto job = std::make_shared<Job>();
    job->spec = *spec;
    job->max_retries = config_.max_retries;
    if (const JsonValue* retries = request.find("max_retries")) {
        job->max_retries = std::min<std::size_t>(
            config_.max_retries, static_cast<std::size_t>(retries->as_uint64()));
    }
    if (const JsonValue* store_as = request.find("store_as")) {
        if (!store_as->is_string() || !ArtifactStore::valid_name(store_as->as_string())) {
            return bad_request("submit", "submit: 'store_as' is not a valid object name");
        }
        job->store_as = store_as->as_string();
    }

    double deadline = config_.default_deadline_seconds;
    if (const JsonValue* requested = request.find("deadline_seconds")) {
        deadline = requested->as_double();
        if (deadline <= 0.0) {
            return bad_request("submit", "submit: 'deadline_seconds' must be > 0");
        }
    }
    if (config_.max_deadline_seconds > 0.0) {
        deadline = deadline <= 0.0 ? config_.max_deadline_seconds
                                   : std::min(deadline, config_.max_deadline_seconds);
    }

    // The deadline is armed at ADMISSION, before the queue: a job that sits
    // out its budget waiting dies at its first poll instead of running
    // stale. The drain token is the parent, so a drain hard-cancel reaches
    // this job wherever it is.
    job->token.set_parent(&drain_token_);
    if (deadline > 0.0) {
        job->token.set_timeout(std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(deadline)));
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_.load()) {
            ++counters_.shed_draining;
            return rejected_response("draining");
        }
        if (queue_.size() + running_ >= config_.queue_capacity) {
            // Load shedding: the client learns NOW, with a typed reason —
            // never an unbounded backlog that converts overload into
            // latency, memory growth, and eventually timeouts.
            ++counters_.shed_overloaded;
            return rejected_response("overloaded");
        }
        ++counters_.submitted;
        queue_.push_back(job);
    }
    queue_cv_.notify_one();

    std::unique_lock<std::mutex> lock(job->mutex);
    job->cv.wait(lock, [&] { return job->done; });
    return job->response;
}

void Server::executor_loop() {
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queue_cv_.wait(lock, [&] { return !queue_.empty() || stop_executors_; });
            if (queue_.empty()) {
                return;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        if (hard_draining_.load()) {
            // Past the drain deadline: queued jobs are not started, they are
            // answered — a typed rejection beats a cancelled half-run.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++counters_.shed_draining;
            }
            job->complete(rejected_response("draining"));
        } else {
            execute_job(*job);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
        }
        idle_cv_.notify_all();
    }
}

void Server::execute_job(Job& job) {
    job.complete(run_job_attempts(job));
}

std::string Server::run_job_attempts(Job& job) {
    const auto start = std::chrono::steady_clock::now();
    std::size_t attempts = 0;
    std::uint32_t backoff_ms = std::max<std::uint32_t>(1, config_.retry_backoff_ms);
    for (;;) {
        ++attempts;
        std::optional<JobError> error;
        try {
            fp_serve_job.check();
            job.token.poll();  // dead on arrival: deadline spent in the queue, or drain

            SweepSpec spec = sweep_spec_from_value(job.spec, "submit.spec");
            SweepOptions options;
            options.workers = config_.job_workers;
            options.cancel = &job.token;
            const SweepResult result = run_sweep(spec, options);

            if (result.failed_jobs > 0) {
                // The sweep's own per-job boundary already retried per the
                // spec; a surviving failure escalates to the server boundary
                // with its original classification.
                for (const auto& record : result.job_records) {
                    if (record.error.has_value()) {
                        error = record.error;
                        break;
                    }
                }
            } else {
                std::ostringstream artifact;
                JsonWriter json(artifact, /*indent=*/2);
                sweep_results_json(json, result);
                const std::string bytes = artifact.str();

                // Durable-before-acknowledged: the store put happens before
                // the client ever sees "done", so an acknowledged result
                // survives any later crash.
                std::optional<std::uint64_t> stored_version;
                if (!job.store_as.empty()) {
                    stored_version = store_->put(job.store_as, bytes);
                }

                const double wall = std::chrono::duration<double>(
                                        std::chrono::steady_clock::now() - start)
                                        .count();
                std::ostringstream out;
                JsonWriter response(out, /*indent=*/0);
                response.begin_object();
                response.kv("ok", true);
                response.kv("op", "submit");
                response.kv("status", "done");
                response.kv("attempts", static_cast<std::uint64_t>(attempts));
                response.kv("jobs", static_cast<std::uint64_t>(result.jobs));
                response.kv("wall_seconds", wall);
                if (stored_version.has_value()) {
                    response.kv("stored_as", job.store_as);
                    response.kv("stored_version", *stored_version);
                }
                response.kv("artifact", bytes);
                response.end_object();
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++counters_.completed;
                }
                return out.str();
            }
        } catch (...) {
            error = classify_job_error(std::current_exception());
        }

        const bool budget_left = attempts <= job.max_retries;
        const bool cancelled = job.token.cancelled();
        if (error->retryable() && budget_left && !cancelled) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++counters_.retries;
            }
            // Cancellable backoff: a monolithic sleep_for would hold this
            // executor hostage for the full backoff even after the drain
            // deadline hard-cancels the job — with the cap at seconds-scale
            // that blows straight through the drain grace period. Sleep in
            // small slices, polling the token, and on wake-by-cancel fall
            // through to the failure path instead of burning an attempt.
            const auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(std::min(backoff_ms, config_.retry_backoff_cap_ms));
            while (!job.token.cancelled()) {
                const auto now = std::chrono::steady_clock::now();
                if (now >= deadline) {
                    break;
                }
                std::this_thread::sleep_for(std::min<std::chrono::steady_clock::duration>(
                    deadline - now, std::chrono::milliseconds(5)));
            }
            if (!job.token.cancelled()) {
                backoff_ms = std::min(backoff_ms * 2, config_.retry_backoff_cap_ms);
                continue;
            }
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.failed;
        }
        return error_response("submit", *error, attempts);
    }
}

ServerCounters Server::counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::size_t Server::load() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size() + running_;
}

}  // namespace nb::serve
