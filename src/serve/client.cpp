#include "serve/client.h"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/error.h"

namespace nb::serve {

namespace {

// One response line can carry a whole artifact as a string value; size the
// client bound comfortably above the server's request bound.
constexpr std::size_t max_response_bytes = 64u << 20;

}  // namespace

Client::~Client() {
    close();
}

bool Client::connect(const std::string& socket_path) {
    close();
    fd_ = connect_unix(socket_path);
    if (fd_ < 0) {
        return false;
    }
    reader_.emplace(fd_);
    return true;
}

bool Client::connect_wait(const std::string& socket_path, double timeout_seconds) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::duration<double>(timeout_seconds));
    for (;;) {
        if (connect(socket_path)) {
            return true;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

void Client::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    reader_.reset();
}

std::optional<JsonValue> Client::request(std::string_view line) {
    if (fd_ < 0 || !send_line(fd_, line)) {
        close();
        return std::nullopt;
    }
    std::string response;
    if (!reader_->read_line(response, max_response_bytes)) {
        close();
        return std::nullopt;
    }
    try {
        return JsonValue::parse(response);
    } catch (const precondition_error&) {
        close();
        return std::nullopt;
    }
}

}  // namespace nb::serve
