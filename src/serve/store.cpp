#include "serve/store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/json.h"
#include "common/json_parse.h"

namespace nb {

namespace {

// Fired after the temp file is written and fsynced but before the rename
// publishes it — the expensive work is done, nothing is visible yet, and the
// recovery scan must clean up the durable-but-unpublished temp.
NB_FAILPOINT_DEFINE(fp_store_put, "store.put");

constexpr const char* store_schema = "nb-store-object/v1";

/// Parses "<name>.v<digits>" (the final-file shape). Returns false for
/// anything else — temps, strays, dotfiles.
bool parse_final_name(const std::string& file, std::string& name, std::uint64_t& version) {
    const std::size_t dot = file.rfind(".v");
    if (dot == std::string::npos || dot == 0 || dot + 2 >= file.size()) {
        return false;
    }
    std::uint64_t v = 0;
    for (std::size_t i = dot + 2; i < file.size(); ++i) {
        const char c = file[i];
        if (c < '0' || c > '9' || v > (UINT64_MAX - 9) / 10) {
            return false;
        }
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    name = file.substr(0, dot);
    version = v;
    return ArtifactStore::valid_name(name);
}

bool read_file(const std::string& path, std::string& out) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        return false;
    }
    out.clear();
    char buffer[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
        out.append(buffer, got);
    }
    const bool ok = std::ferror(file) == 0;
    std::fclose(file);
    return ok;
}

/// Validates one final file against its name-derived identity. A file that
/// fails any check is torn or foreign and must not be served.
bool validate_object(const std::string& text, const std::string& name,
                     std::uint64_t version, std::string* payload_out) {
    const std::size_t newline = text.find('\n');
    if (newline == std::string::npos) {
        return false;  // torn inside the header
    }
    JsonValue header;
    try {
        header = JsonValue::parse(std::string_view(text.data(), newline));
        const JsonValue* schema = header.find("schema");
        const JsonValue* object = header.find("object");
        const JsonValue* file_version = header.find("version");
        const JsonValue* bytes = header.find("bytes");
        const JsonValue* checksum = header.find("checksum");
        if (schema == nullptr || object == nullptr || file_version == nullptr ||
            bytes == nullptr || checksum == nullptr) {
            return false;
        }
        if (schema->as_string() != store_schema || object->as_string() != name ||
            file_version->as_uint64() != version) {
            return false;
        }
        const std::string_view payload(text.data() + newline + 1, text.size() - newline - 1);
        if (payload.size() != bytes->as_uint64() ||
            ArtifactStore::checksum(payload) != checksum->as_uint64()) {
            return false;
        }
        if (payload_out != nullptr) {
            payload_out->assign(payload);
        }
        return true;
    } catch (const precondition_error&) {
        return false;
    }
}

/// fsync the directory so a just-completed rename is durable. Failure is
/// not fatal to the caller's put — the data file itself is already synced —
/// but it narrows the crash window, so we try.
void fsync_directory(const std::string& directory) {
    const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

/// Deletes `path` on scope exit unless disarmed — the temp-file guard that
/// keeps an exception (I/O failure, injected store.put fault) from leaking
/// durable-but-unpublished debris into the directory.
class UnlinkGuard {
public:
    explicit UnlinkGuard(std::string path) : path_(std::move(path)) {}
    ~UnlinkGuard() {
        if (armed_) {
            ::unlink(path_.c_str());
        }
    }
    void disarm() noexcept { armed_ = false; }

private:
    std::string path_;
    bool armed_ = true;
};

}  // namespace

bool ArtifactStore::valid_name(const std::string& name) {
    if (name.empty() || name.size() > 200 || name.front() == '.') {
        return false;
    }
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
        if (!ok) {
            return false;
        }
    }
    return true;
}

std::uint64_t ArtifactStore::checksum(std::string_view bytes) {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

ArtifactStore::ArtifactStore(std::string directory) : directory_(std::move(directory)) {
    require(!directory_.empty(), "ArtifactStore: empty directory path");
    if (::mkdir(directory_.c_str(), 0755) != 0 && errno != EEXIST) {
        throw precondition_error("ArtifactStore: cannot create directory '" + directory_ +
                                 "': " + std::strerror(errno));
    }
    recover();
}

void ArtifactStore::recover() {
    DIR* dir = ::opendir(directory_.c_str());
    require(dir != nullptr, "ArtifactStore: cannot scan directory '" + directory_ + "'");

    std::vector<std::string> temps;
    std::vector<std::pair<std::string, std::uint64_t>> finals;
    while (const dirent* entry = ::readdir(dir)) {
        const std::string file = entry->d_name;
        if (file == "." || file == "..") {
            continue;
        }
        if (file.size() > 4 && file.compare(file.size() - 4, 4, ".tmp") == 0) {
            temps.push_back(file);
            continue;
        }
        std::string name;
        std::uint64_t version = 0;
        if (parse_final_name(file, name, version)) {
            finals.emplace_back(std::move(name), version);
        }
        // Anything else (stray files) is left alone: recovery only deletes
        // what the store's own protocol could have produced.
    }
    ::closedir(dir);

    // Temp debris: durable-but-unpublished writes from a crash (or injected
    // fault) between fsync and rename. Never visible, always safe to drop.
    for (const auto& temp : temps) {
        ::unlink((directory_ + "/" + temp).c_str());
    }

    for (auto& [name, version] : finals) {
        std::string text;
        const std::string path = directory_ + "/" + name + ".v" + std::to_string(version);
        if (!read_file(path, text) || !validate_object(text, name, version, nullptr)) {
            // Torn entry (crash mid-write without the protocol, external
            // corruption, byte-boundary truncation in the property tests):
            // truncate it out of existence so it can never be served.
            ::unlink(path.c_str());
            continue;
        }
        versions_[name].push_back(version);
    }
    for (auto& [name, list] : versions_) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    if (!temps.empty()) {
        fsync_directory(directory_);
    }
}

std::uint64_t ArtifactStore::put_locked(const std::string& name, std::string_view bytes) {
    require(valid_name(name), "ArtifactStore: invalid object name '" + name + "'");
    const auto it = versions_.find(name);
    const std::uint64_t version =
        (it == versions_.end() || it->second.empty()) ? 1 : it->second.back() + 1;

    std::ostringstream header;
    JsonWriter json(header, /*indent=*/0);
    json.begin_object();
    json.kv("schema", store_schema);
    json.kv("object", name);
    json.kv("version", version);
    json.kv("bytes", static_cast<std::uint64_t>(bytes.size()));
    json.kv("checksum", checksum(bytes));
    json.end_object();
    const std::string head = header.str() + "\n";

    const std::string final_path = directory_ + "/" + name + ".v" + std::to_string(version);
    const std::string temp_path = final_path + ".tmp";
    UnlinkGuard guard(temp_path);

    std::FILE* file = std::fopen(temp_path.c_str(), "wb");
    require(file != nullptr, "ArtifactStore: cannot create '" + temp_path + "'");
    const bool written =
        std::fwrite(head.data(), 1, head.size(), file) == head.size() &&
        (bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size()) &&
        std::fflush(file) == 0 && ::fsync(::fileno(file)) == 0;
    std::fclose(file);
    require(written, "ArtifactStore: write failed for '" + temp_path + "'");

    // The durable-but-unpublished window: the temp is fully on disk, the
    // object is not yet visible. A fault here is what recovery exists for.
    fp_store_put.check();

    require(std::rename(temp_path.c_str(), final_path.c_str()) == 0,
            "ArtifactStore: cannot publish '" + final_path + "'");
    guard.disarm();
    fsync_directory(directory_);

    versions_[name].push_back(version);
    return version;
}

std::uint64_t ArtifactStore::put(const std::string& name, std::string_view bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    return put_locked(name, bytes);
}

std::optional<std::uint64_t> ArtifactStore::cput(const std::string& name,
                                                 std::string_view bytes,
                                                 std::uint64_t expected) {
    std::lock_guard<std::mutex> lock(mutex_);
    require(valid_name(name), "ArtifactStore: invalid object name '" + name + "'");
    const auto it = versions_.find(name);
    const std::uint64_t latest =
        (it == versions_.end() || it->second.empty()) ? 0 : it->second.back();
    if (latest != expected) {
        return std::nullopt;
    }
    return put_locked(name, bytes);
}

std::optional<StoreObject> ArtifactStore::read_version(const std::string& name,
                                                       std::uint64_t version) const {
    const std::string path = directory_ + "/" + name + ".v" + std::to_string(version);
    std::string text;
    StoreObject object;
    object.version = version;
    if (!read_file(path, text) || !validate_object(text, name, version, &object.bytes)) {
        return std::nullopt;
    }
    return object;
}

std::optional<StoreObject> ArtifactStore::get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = versions_.find(name);
    if (it == versions_.end() || it->second.empty()) {
        return std::nullopt;
    }
    return read_version(name, it->second.back());
}

std::optional<StoreObject> ArtifactStore::get(const std::string& name,
                                              std::uint64_t version) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = versions_.find(name);
    if (it == versions_.end() ||
        std::find(it->second.begin(), it->second.end(), version) == it->second.end()) {
        return std::nullopt;
    }
    return read_version(name, version);
}

std::vector<StoreEntry> ArtifactStore::list() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<StoreEntry> entries;
    entries.reserve(versions_.size());
    for (const auto& [name, list] : versions_) {
        if (list.empty()) {
            continue;
        }
        StoreEntry entry;
        entry.name = name;
        entry.latest_version = list.back();
        if (const auto object = read_version(name, list.back())) {
            entry.bytes = object->bytes.size();
        }
        entries.push_back(std::move(entry));
    }
    std::sort(entries.begin(), entries.end(),
              [](const StoreEntry& a, const StoreEntry& b) { return a.name < b.name; });
    return entries;
}

std::size_t ArtifactStore::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return versions_.size();
}

}  // namespace nb
