// Minimal nb_serve client: one connection, blocking request/response pairs.
// Shared by the `nb_load` generator and the serve test suite so neither
// hand-rolls socket framing.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/json_parse.h"
#include "serve/wire.h"

namespace nb::serve {

class Client {
public:
    Client() = default;
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    Client(Client&& other) noexcept
        : fd_(other.fd_), reader_(std::move(other.reader_)) {
        other.fd_ = -1;
        other.reader_.reset();
    }
    Client& operator=(Client&& other) noexcept {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            reader_ = std::move(other.reader_);
            other.fd_ = -1;
            other.reader_.reset();
        }
        return *this;
    }

    /// Connect to the server socket. Returns false on failure.
    bool connect(const std::string& socket_path);

    /// connect() with retry until `timeout_seconds` elapse — the "server is
    /// still starting" path for tests and CI. Returns false on timeout.
    bool connect_wait(const std::string& socket_path, double timeout_seconds);

    bool connected() const noexcept { return fd_ >= 0; }
    void close();

    /// Send one request line and read one response line, parsed as JSON.
    /// nullopt on any transport failure (peer gone, torn frame, unparseable
    /// response) — after which the connection is closed.
    std::optional<JsonValue> request(std::string_view line);

private:
    int fd_ = -1;
    std::optional<LineReader> reader_;
};

}  // namespace nb::serve
