#include "serve/wire.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace nb::serve {

namespace {

bool fill_address(const std::string& path, sockaddr_un& address) {
    std::memset(&address, 0, sizeof address);
    address.sun_family = AF_UNIX;
    if (path.size() >= sizeof address.sun_path) {
        return false;
    }
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    return true;
}

}  // namespace

int listen_unix(const std::string& path, int backlog) {
    sockaddr_un address;
    require(fill_address(path, address),
            "serve: socket path too long (" + std::to_string(path.size()) +
                " bytes; sockaddr_un holds " + std::to_string(sizeof address.sun_path - 1) +
                "): '" + path + "'");

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    require(fd >= 0, std::string("serve: socket(): ") + std::strerror(errno));

    // A stale socket file from a previous (crashed) server makes bind fail
    // with EADDRINUSE even though nobody is listening; replace it. A *live*
    // server is still protected: its listener keeps working on the old
    // inode, but two live servers on one path is an operator error this
    // deliberately does not try to detect.
    ::unlink(path.c_str());

    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        throw precondition_error("serve: bind('" + path + "'): " + reason);
    }
    if (::listen(fd, backlog) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        ::unlink(path.c_str());
        throw precondition_error("serve: listen('" + path + "'): " + reason);
    }
    return fd;
}

int connect_unix(const std::string& path) {
    sockaddr_un address;
    if (!fill_address(path, address)) {
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return -1;
    }
    int rc = 0;
    do {
        rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool send_line(int fd, std::string_view line) {
    std::string frame;
    frame.reserve(line.size() + 1);
    frame.append(line);
    frame.push_back('\n');

    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n =
            ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool LineReader::read_line(std::string& out, std::size_t max_bytes) {
    if (failed_) {
        return false;
    }
    for (;;) {
        // Consume via an offset cursor instead of erase(0, newline + 1):
        // erasing the front memmoves the whole remainder per line, which is
        // O(bytes^2) across a pipelined batch of submissions (a client
        // writing k lines in one burst paid ~k*bytes of memmove before this
        // returned them all). The cursor makes each line O(its own length);
        // the buffer is compacted only when fully drained (the common case
        // between bursts) or before growing it with another recv.
        const std::size_t newline = buffer_.find('\n', offset_);
        if (newline != std::string::npos) {
            if (newline - offset_ > max_bytes) {
                failed_ = true;
                return false;
            }
            out.assign(buffer_, offset_, newline - offset_);
            offset_ = newline + 1;
            if (offset_ == buffer_.size()) {
                buffer_.clear();
                offset_ = 0;
            }
            return true;
        }
        if (offset_ != 0) {
            buffer_.erase(0, offset_);
            offset_ = 0;
        }
        if (buffer_.size() > max_bytes) {
            failed_ = true;  // unbounded line: cut the peer off
            return false;
        }
        char chunk[1 << 14];
        ssize_t n = 0;
        do {
            n = ::recv(fd_, chunk, sizeof chunk, 0);
        } while (n < 0 && errno == EINTR);
        if (n <= 0) {
            failed_ = true;  // EOF (torn frame if buffer_ is non-empty) or error
            return false;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

}  // namespace nb::serve
