// Wire layer for nb_serve: AF_UNIX stream sockets carrying newline-delimited
// JSON — one request line, one response line, no HTTP and no dependency.
//
// The framing is the journal's framing (one complete JSON document per
// line), reused on a socket: a peer that crashes mid-line leaves a torn
// frame the reader simply fails closed on, exactly like the journal's torn
// tail. Local-socket-only by design — the server binds a filesystem path, so
// the OS's file permissions are the authentication story and no network
// surface exists.
//
// All helpers are EINTR-safe, use MSG_NOSIGNAL (a peer that hangs up turns
// into a return code, never SIGPIPE), and enforce a caller-chosen line
// length bound — the admission control of the byte layer: a client streaming
// an unbounded line is disconnected before it can balloon server memory.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace nb::serve {

/// Create, bind, and listen on a unix socket at `path`, replacing a stale
/// socket file if one exists. Throws precondition_error on failure (path too
/// long for sockaddr_un — ~107 bytes — bind/listen errors).
int listen_unix(const std::string& path, int backlog);

/// Connect to the unix socket at `path`. Returns the fd, or -1 on failure.
int connect_unix(const std::string& path);

/// Write `line` plus a terminating '\n' fully. Returns false on any error
/// (peer gone, fd closed); never raises SIGPIPE.
bool send_line(int fd, std::string_view line);

/// Buffered reader for newline-delimited frames on one fd.
class LineReader {
public:
    explicit LineReader(int fd) : fd_(fd) {}

    /// Read the next complete line (without its '\n') into `out`. Returns
    /// false on EOF, error, or a line exceeding `max_bytes` — all of which
    /// mean "stop talking to this peer".
    bool read_line(std::string& out, std::size_t max_bytes);

private:
    int fd_;
    std::string buffer_;
    std::size_t offset_ = 0;  ///< consumed prefix of buffer_ (see read_line)
    bool failed_ = false;
};

}  // namespace nb::serve
