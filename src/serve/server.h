// nb_serve core: a long-lived simulation service over a local unix socket.
//
// PR 9's tentpole. Everything before this runs one process per experiment:
// nb_run loads a spec, pays codebook construction cold, writes one artifact,
// exits. A long-lived server amortizes the process-wide CodebookCache across
// submissions (the cache was built for exactly this in PR 6) and — more
// importantly for this PR's robustness theme — is the first component that
// must stay correct *under* load, faults, and shutdown rather than merely
// producing correct numbers once:
//
//   * admission control — a bounded queue; a submission that finds it full
//     is REJECTED immediately with a typed `rejected:overloaded` response,
//     not buffered into an unbounded backlog that turns overload into
//     latency and memory growth. Load-shedding is the contract: the client
//     learns in microseconds, retries elsewhere/later.
//   * per-job deadlines — every job's CancelToken is armed at ADMISSION
//     (the deadline covers queue wait, so a job that sat out its budget in
//     the queue dies at its first poll instead of running stale), and the
//     sweep engine's per-attempt tokens link it as parent, so the deadline
//     reaches transport round boundaries on pool worker threads.
//   * per-job error boundaries — the executor wraps each job in the same
//     classifier the sweep engine uses (classify_job_error): fatal spec bugs
//     answer immediately; transient faults and timeouts retry with capped
//     exponential backoff (and bit-identical re-execution, because a job's
//     artifact is a pure function of its spec).
//   * graceful drain — SIGTERM/SIGINT request_drain()s: the listener closes
//     (new connections die, queued requests answer `rejected:draining`),
//     in-flight jobs get drain_seconds to finish, then the drain token
//     hard-cancels whatever is left; every client holding a pending job gets
//     a typed answer, the store is flushed, and the process exits 0.
//   * crash-safe results — a job submitted with `store_as` has its artifact
//     durably published to the ArtifactStore before the client sees "done",
//     so an acknowledged result survives any later crash.
//
// Protocol: nb-serve/v1, newline-delimited JSON request/response pairs (see
// wire.h; schema in DESIGN.md section 11 and the README). Ops: ping, submit,
// get, put, cput, list, stats.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/json_parse.h"
#include "serve/store.h"

namespace nb::serve {

struct ServerConfig {
    std::string socket_path;
    std::string store_dir;

    /// Admission bound: jobs queued + running. A submit that would exceed it
    /// is shed immediately (`rejected:overloaded`).
    std::size_t queue_capacity = 16;

    /// Concurrent job executors (each runs one sweep at a time).
    std::size_t executors = 2;

    /// Sweep workers inside each job (SweepOptions::workers).
    std::size_t job_workers = 1;

    /// Deadline applied when a submit names none / the cap on what it may
    /// name. Seconds; <= 0 disables the default (jobs without an explicit
    /// deadline run unbounded).
    double default_deadline_seconds = 60.0;
    double max_deadline_seconds = 600.0;

    /// Server-side retry budget for transient/timeout job failures, and the
    /// capped exponential backoff between attempts.
    std::size_t max_retries = 2;
    std::uint32_t retry_backoff_ms = 10;
    std::uint32_t retry_backoff_cap_ms = 200;

    /// Grace period between "drain requested" and the drain token
    /// hard-cancelling the stragglers.
    double drain_seconds = 5.0;

    /// Per-request line bound (wire.h); a client exceeding it is cut off.
    std::size_t max_request_bytes = 8u << 20;

    /// Warm-start directory for the process-wide CodebookCache (empty =
    /// disabled): serialized nb-codebook/v1 indexes are mmap-loaded on a
    /// cache miss and saved after a build, so a restarted server skips the
    /// expensive dictionary constructions its predecessor already paid for.
    std::string codebook_dir;
};

/// Monotonic server counters, serialized by the `stats` op.
struct ServerCounters {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t submitted = 0;         ///< admitted into the queue
    std::uint64_t completed = 0;         ///< answered "done"
    std::uint64_t failed = 0;            ///< answered "error"
    std::uint64_t shed_overloaded = 0;
    std::uint64_t shed_draining = 0;
    std::uint64_t retries = 0;           ///< server-side retry attempts
    std::uint64_t drain_cancelled = 0;   ///< jobs hard-cancelled by the drain deadline
};

class Server {
public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind the socket, open/recover the store, spawn the acceptor and
    /// executor threads. Throws precondition_error on bind/store failure.
    void start();

    /// Begin graceful drain: stop accepting, answer queued/new submissions
    /// with `rejected:draining`, give running jobs drain_seconds, then
    /// hard-cancel. Idempotent; safe from any thread (the signal waiter).
    void request_drain();

    /// Block until the drain completes and every thread has joined.
    void wait();

    /// Counters snapshot (monotonic; thread-safe).
    ServerCounters counters() const;

    /// Jobs currently queued + running.
    std::size_t load() const;

    const ServerConfig& config() const noexcept { return config_; }

private:
    struct Job;
    struct Connection;

    void accept_loop();
    void executor_loop();
    void serve_connection(int fd);
    std::string handle_request(const std::string& line);
    std::string handle_submit(const JsonValue& request);
    void execute_job(Job& job);
    std::string run_job_attempts(Job& job);

    ServerConfig config_;
    std::unique_ptr<ArtifactStore> store_;

    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};

    std::thread acceptor_;
    std::vector<std::thread> executors_;
    std::vector<std::thread> connections_;

    mutable std::mutex mutex_;               ///< queue + counters + connection registry
    std::condition_variable queue_cv_;       ///< executors wait here
    std::condition_variable idle_cv_;        ///< wait() waits here
    std::deque<std::shared_ptr<Job>> queue_;
    std::size_t running_ = 0;
    std::vector<int> connection_fds_;
    ServerCounters counters_;

    std::atomic<bool> draining_{false};      ///< no new work
    std::atomic<bool> hard_draining_{false}; ///< queued jobs answer draining, stragglers cancelled
    bool stop_executors_ = false;            ///< guarded by mutex_; set once the drain is idle
    CancelToken drain_token_;                ///< parent of every job token
    bool started_ = false;
};

}  // namespace nb::serve
