// Crash-safe versioned artifact store — where nb_serve keeps job results so
// a crash (or SIGKILL) between "job finished" and "client read the result"
// loses nothing that was ever acknowledged.
//
// Model (after the dPods object store): a store is a directory of named
// objects; every put writes a NEW version rather than overwriting, so
// readers never observe a half-written object and a torn write can only
// damage the version being written, never the history. One object version is
// one file `<name>.v<N>`:
//
//   {"schema":"nb-store-object/v1","object":"<name>","version":N,
//    "bytes":<payload length>,"checksum":<fnv1a-64>}\n<payload bytes>
//
// Durability protocol per put:
//   1. write `<name>.v<N>.tmp` completely (header line + payload),
//   2. fflush + fsync the temp,
//   3. rename(temp, final) — atomic on POSIX,
//   4. fsync the directory, so the rename itself is durable.
// A crash before (3) leaves only a `.tmp` (deleted at recovery); a crash
// after (3) but before (4) leaves a fully-written final that either survives
// or vanishes wholesale. The `store.put` failpoint sits between (2) and (3),
// the worst place a real fault can land: work done, nothing published.
//
// Startup recovery (the constructor) deletes every `*.tmp`, validates every
// final (header parses, schema/name/version agree with the file name,
// payload length and checksum match), deletes the ones that don't — torn
// entries are truncated out of existence — and indexes the survivors. The
// store then resumes at max(version)+1 per object: versions are monotonic
// across restarts.
//
// Versions are retained, not compacted: `get(name)` reads the latest,
// `get(name, v)` any surviving version, and the recovery property tests
// corrupt the newest version at every byte boundary and check the store
// falls back to the last complete one.
//
// `cput(name, bytes, expected)` is the lock-free-update primitive (compare
// version, then put): it publishes a new version only if the latest is still
// `expected` (0 = "object must not exist yet"), so two racing writers get
// exactly one winner. All methods are thread-safe behind one store mutex —
// correctness first; artifact writes are not the serve hot path.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace nb {

/// One read object: the payload plus the version it came from.
struct StoreObject {
    std::uint64_t version = 0;
    std::string bytes;
};

/// One `list()` row.
struct StoreEntry {
    std::string name;
    std::uint64_t latest_version = 0;
    std::uint64_t bytes = 0;  ///< payload size of the latest version
};

class ArtifactStore {
public:
    /// Opens (creating the directory if needed) and runs recovery: deletes
    /// temp debris and torn finals, indexes the valid versions. Throws
    /// precondition_error if the directory cannot be created or scanned.
    explicit ArtifactStore(std::string directory);

    ArtifactStore(const ArtifactStore&) = delete;
    ArtifactStore& operator=(const ArtifactStore&) = delete;

    /// Durably publish a new version of `name`; returns its version number.
    /// Throws precondition_error on invalid names or I/O failure (the temp
    /// file is cleaned up; the store's published state is untouched).
    std::uint64_t put(const std::string& name, std::string_view bytes);

    /// Conditional put: publishes only if the current latest version of
    /// `name` equals `expected` (0 = the object must not exist). Returns the
    /// new version, or nullopt if the expectation failed — the caller lost
    /// the race and should re-read.
    std::optional<std::uint64_t> cput(const std::string& name, std::string_view bytes,
                                      std::uint64_t expected);

    /// Latest surviving version of `name`, or nullopt if absent.
    std::optional<StoreObject> get(const std::string& name) const;

    /// A specific version, or nullopt if that version does not survive.
    std::optional<StoreObject> get(const std::string& name, std::uint64_t version) const;

    /// Every object with its latest version, sorted by name.
    std::vector<StoreEntry> list() const;

    /// Objects currently indexed (latest versions only).
    std::size_t size() const;

    const std::string& directory() const noexcept { return directory_; }

    /// Object names: non-empty, at most 200 bytes, characters from
    /// [A-Za-z0-9._-], no leading dot (no hidden files, no "..").
    static bool valid_name(const std::string& name);

    /// FNV-1a 64-bit over `bytes` — the header checksum.
    static std::uint64_t checksum(std::string_view bytes);

private:
    std::uint64_t put_locked(const std::string& name, std::string_view bytes);
    std::optional<StoreObject> read_version(const std::string& name,
                                            std::uint64_t version) const;
    void recover();

    std::string directory_;
    mutable std::mutex mutex_;
    /// name -> sorted list of surviving versions (last = latest).
    std::unordered_map<std::string, std::vector<std::uint64_t>> versions_;
};

}  // namespace nb
