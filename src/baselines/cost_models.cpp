#include "baselines/cost_models.h"

#include <algorithm>

namespace nb {

std::size_t ours_broadcast_overhead(std::size_t delta, std::size_t message_bits,
                                    std::size_t c_eps) {
    return 2 * c_eps * c_eps * c_eps * (delta + 1) * (message_bits + 1);
}

std::size_t ours_congest_overhead(std::size_t delta, std::size_t message_bits,
                                  std::size_t c_eps) {
    return std::max<std::size_t>(1, delta) *
           ours_broadcast_overhead(delta, message_bits, c_eps);
}

std::size_t agl_congest_overhead(std::size_t n, std::size_t delta, std::size_t log_n) {
    return delta * log_n * std::min(n, delta * delta);
}

std::size_t agl_setup_rounds(std::size_t delta, std::size_t log_n) {
    return delta * delta * delta * delta * log_n;
}

std::size_t beauquier_congest_overhead(std::size_t delta, std::size_t log_n) {
    return delta * delta * delta * delta * log_n;
}

std::size_t beauquier_setup_rounds(std::size_t delta) {
    return delta * delta * delta * delta * delta * delta;
}

std::size_t lower_bound_broadcast_overhead(std::size_t delta, std::size_t log_n) {
    return delta * log_n / 2;
}

std::size_t lower_bound_congest_overhead(std::size_t delta, std::size_t log_n) {
    return delta * delta * log_n / 2;
}

std::size_t ours_matching_rounds(std::size_t delta, std::size_t log_n, std::size_t c_eps,
                                 std::size_t message_bits) {
    // 4 log n iterations of 4 sub-rounds plus the id round (Algorithm 3).
    const std::size_t congest_rounds = 1 + 16 * log_n;
    return congest_rounds * ours_broadcast_overhead(delta, message_bits, c_eps);
}

std::size_t prior_matching_rounds(std::size_t n, std::size_t delta, std::size_t log_n,
                                  std::size_t log_star_n) {
    return (delta + log_star_n) * agl_congest_overhead(n, delta, log_n) +
           agl_setup_rounds(delta, log_n);
}

std::size_t matching_lower_bound(std::size_t delta, std::size_t log_n) {
    return delta * log_n;
}

std::size_t local_broadcast_lower_bound(std::size_t delta, std::size_t message_bits) {
    return delta * delta * message_bits / 2;
}

}  // namespace nb
