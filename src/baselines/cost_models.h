// Closed-form round-cost models of this paper and the prior work it
// improves on, used by the experiment benches to draw comparison curves at
// sizes where executing the baselines would be infeasible.
//
// All formulas return beep-model rounds. Constant factors are set to 1
// (the sources give asymptotic statements); the experiments compare
// *shapes* — growth exponents and crossovers — not absolute constants.
#pragma once

#include <cstddef>

namespace nb {

/// This paper, Theorem 11: beep rounds per Broadcast CONGEST round,
/// 2 * c_eps^3 * (Delta+1) * (B+1)  (Algorithm 1, both phases).
std::size_t ours_broadcast_overhead(std::size_t delta, std::size_t message_bits,
                                    std::size_t c_eps);

/// This paper, Corollary 12: beep rounds per CONGEST round
/// (Delta Broadcast CONGEST slots per CONGEST round).
std::size_t ours_congest_overhead(std::size_t delta, std::size_t message_bits,
                                  std::size_t c_eps);

/// Ashkenazi-Gelles-Leshem [4]: per-CONGEST-round overhead
/// Delta * log n * min{n, Delta^2}.
std::size_t agl_congest_overhead(std::size_t n, std::size_t delta, std::size_t log_n);

/// Ashkenazi-Gelles-Leshem [4]: one-off setup cost Delta^4 * log n.
std::size_t agl_setup_rounds(std::size_t delta, std::size_t log_n);

/// Beauquier et al. [7] (noiseless): per-CONGEST-round cost Delta^4 * log n
/// after a Delta^6-round setup.
std::size_t beauquier_congest_overhead(std::size_t delta, std::size_t log_n);
std::size_t beauquier_setup_rounds(std::size_t delta);

/// Lower bounds (Corollary 16): any simulation of Broadcast CONGEST needs
/// Delta * log n / 2 rounds per round; CONGEST needs Delta^2 * log n / 2.
std::size_t lower_bound_broadcast_overhead(std::size_t delta, std::size_t log_n);
std::size_t lower_bound_congest_overhead(std::size_t delta, std::size_t log_n);

/// Maximal matching end-to-end (Section 6):
/// ours (Theorem 21): O(log n) Broadcast CONGEST rounds * Theorem 11 overhead.
std::size_t ours_matching_rounds(std::size_t delta, std::size_t log_n, std::size_t c_eps,
                                 std::size_t message_bits);

/// Prior route (Section 6): Panconesi-Rizzi O(Delta + log* n) CONGEST rounds
/// under [4]'s simulation: (Delta + log* n) * agl_congest_overhead + setup.
std::size_t prior_matching_rounds(std::size_t n, std::size_t delta, std::size_t log_n,
                                  std::size_t log_star_n);

/// Matching lower bound (Theorem 22): Delta * log n.
std::size_t matching_lower_bound(std::size_t delta, std::size_t log_n);

/// B-bit Local Broadcast lower bound (Lemma 14): Delta^2 * B / 2.
std::size_t local_broadcast_lower_bound(std::size_t delta, std::size_t message_bits);

}  // namespace nb
