// Prior-work baseline: G^2-coloring TDMA simulation of Broadcast CONGEST.
//
// Mechanism of Beauquier et al. [7] and Ashkenazi-Gelles-Leshem [4]
// (paper Section 1.4): color G^2 so nodes within two hops differ, then
// iterate over color classes; when class c transmits, every listener has at
// most one beeping neighbor and hears its message bits verbatim. Against
// noise, each bit is repeated `repetitions` times and majority-decoded
// (repetitions = Theta(log n) gives per-bit error n^-Theta(1)).
//
// Per Broadcast CONGEST round this costs
//     #colors * (message_bits + 1) * repetitions
// beep rounds with #colors <= min{n, Delta^2 + 1} — the Theta(min{n,
// Delta^2}) overhead gap to Algorithm 1 that the paper eliminates.
//
// The coloring itself is computed centrally here, standing in for the
// baselines' distributed setup phases (Delta^6 rounds in [7], O(Delta^4
// log n) in [4]); setup costs are charged via baselines/cost_models.h.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "beep/channel_model.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "sim/transport.h"

namespace nb {

struct TdmaParams {
    double epsilon = 0.0;          ///< design noise rate (sizes repetitions)
    std::size_t message_bits = 16; ///< algorithm message budget B
    std::size_t repetitions = 1;   ///< per-bit repetitions (majority decode)
    std::uint64_t transport_seed = 0x74646d61u;
    std::size_t threads = 0;       ///< decode workers (0 = hardware concurrency)

    /// Physical channel process; nullopt = iid(epsilon), exactly as before.
    /// Like SimulationParams, a non-iid model leaves `epsilon` as the design
    /// rate the majority-decode repetitions are sized for.
    std::optional<ChannelModel> channel;

    /// Fetch the greedy G^2 coloring (this baseline's expensive setup) from
    /// the process-wide CodebookCache instead of recomputing per transport.
    /// The coloring is a pure function of the graph, so sharing cannot
    /// change any output; false restores the private computation.
    bool shared_coloring = true;

    /// The effective channel driven through BatchEngine.
    ChannelModel channel_model() const {
        return channel.has_value() ? *channel : ChannelModel::iid(epsilon);
    }

    /// Repetitions giving w.h.p. decoding for a given n and epsilon:
    /// ceil(kappa * log2 n) with kappa scaled by the noise margin.
    static std::size_t recommended_repetitions(std::size_t node_count, double epsilon);
};

class TdmaTransport final : public Transport {
public:
    /// The graph must outlive the transport. Computes the greedy G^2
    /// coloring once at construction.
    TdmaTransport(const Graph& graph, TdmaParams params);

    /// Batched rounds (specs must carry no FaultModel — the baseline does
    /// not model faults). Schedule packing is cached per messages vector and
    /// decode buffers are reused across the whole batch.
    std::vector<TransportRound> simulate_rounds(
        std::span<const RoundSpec> specs) const override;

    std::size_t rounds_per_broadcast_round() const override;

    const Graph& graph() const noexcept override { return graph_; }

    std::size_t color_count() const noexcept { return color_count_; }
    /// The G^2 coloring the slot schedule is built from (one color per node).
    const std::vector<std::size_t>& colors() const noexcept { return colors_; }
    const TdmaParams& params() const noexcept { return params_; }

private:
    /// The baseline's analogue of the Codebook round cache: TDMA schedules
    /// depend only on the messages (slots are fixed by the coloring), so
    /// repeated rounds with unchanged messages reuse the packed schedules
    /// and their energy total.
    struct ScheduleCache {
        std::vector<Bitstring> schedules;
        std::size_t total_beeps = 0;
        std::vector<std::optional<Bitstring>> messages;  ///< the cache key
    };

    std::shared_ptr<const ScheduleCache> schedules_for(
        const std::vector<std::optional<Bitstring>>& messages) const;

    TransportRound decode_round(const ScheduleCache& cache,
                                const std::vector<std::optional<Bitstring>>& messages,
                                std::uint64_t round_nonce,
                                std::vector<Bitstring>& heard_buffers) const;

    const Graph& graph_;
    TdmaParams params_;
    std::vector<std::size_t> colors_;
    std::size_t color_count_ = 0;
    std::unique_ptr<ThreadPool> pool_;

    mutable std::mutex cache_mutex_;
    mutable std::shared_ptr<const ScheduleCache> cached_;
};

}  // namespace nb
