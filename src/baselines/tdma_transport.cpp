#include "baselines/tdma_transport.h"

#include <algorithm>
#include <cmath>

#include "beep/batch_engine.h"
#include "common/cancel.h"
#include "common/error.h"
#include "common/math_util.h"
#include "congest/algorithm.h"
#include "graph/algorithms.h"
#include "sim/codebook_cache.h"

namespace nb {

std::size_t TdmaParams::recommended_repetitions(std::size_t node_count, double epsilon) {
    if (epsilon <= 0.0) {
        return 1;
    }
    // Majority over rho repetitions fails with probability
    // exp(-rho * (1/2 - eps)^2 / 2); choose rho so this is ~ n^-3, and make
    // it odd so majorities are never tied.
    const double margin = 0.5 - epsilon;
    const double needed =
        6.0 * std::log(std::max<double>(4.0, static_cast<double>(node_count))) /
        (margin * margin);
    auto rho = static_cast<std::size_t>(std::ceil(needed));
    if (rho % 2 == 0) {
        ++rho;
    }
    return rho;
}

TdmaTransport::TdmaTransport(const Graph& graph, TdmaParams params)
    : graph_(graph), params_(params) {
    require(params_.epsilon >= 0.0 && params_.epsilon < 0.5,
            "TdmaTransport: epsilon must be in [0, 1/2)");
    require(params_.message_bits >= 1, "TdmaTransport: message_bits must be >= 1");
    require(params_.repetitions >= 1, "TdmaTransport: repetitions must be >= 1");
    if (params_.channel.has_value()) {
        params_.channel->validate();
        require(params_.channel->noise_on_own_beep,
                "TdmaTransport: transports require noise_on_own_beep");
    }
    colors_ = params_.shared_coloring ? CodebookCache::instance().coloring(graph_)
                                      : greedy_distance2_coloring(graph_);
    color_count_ = graph_.node_count() == 0 ? 0 : nb::color_count(colors_);
    pool_ = std::make_unique<ThreadPool>(
        ThreadPool::worker_count_for(params_.threads, graph_.node_count()));
}

std::size_t TdmaTransport::rounds_per_broadcast_round() const {
    // One slot of (message_bits + 1 presence bit) * repetitions per color.
    return color_count_ * (params_.message_bits + 1) * params_.repetitions;
}

std::shared_ptr<const TdmaTransport::ScheduleCache> TdmaTransport::schedules_for(
    const std::vector<std::optional<Bitstring>>& messages) const {
    {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        if (cached_ != nullptr && cached_->messages == messages) {
            return cached_;
        }
    }

    const std::size_t n = graph_.node_count();
    const std::size_t payload_bits = params_.message_bits + 1;
    const std::size_t slot_bits = payload_bits * params_.repetitions;
    const std::size_t total_bits = rounds_per_broadcast_round();

    // Build beep schedules: node v transmits its payload (presence bit, then
    // message bits), each bit repeated, inside its color's slot.
    auto cache = std::make_shared<ScheduleCache>();
    cache->schedules.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        Bitstring schedule(total_bits);
        if (messages[v].has_value()) {
            require(messages[v]->size() <= params_.message_bits,
                    "TdmaTransport: message exceeds the bit budget");
            const std::size_t base = colors_[v] * slot_bits;
            auto write_bit = [&](std::size_t bit_index, bool value) {
                if (value) {
                    for (std::size_t rep = 0; rep < params_.repetitions; ++rep) {
                        schedule.set(base + bit_index * params_.repetitions + rep);
                    }
                }
            };
            write_bit(0, true);  // presence
            for (std::size_t i = 0; i < messages[v]->size(); ++i) {
                write_bit(1 + i, messages[v]->test(i));
            }
        }
        cache->schedules.push_back(std::move(schedule));
    }
    cache->total_beeps = BatchEngine::total_beeps(cache->schedules);
    cache->messages = messages;

    std::lock_guard<std::mutex> lock(cache_mutex_);
    cached_ = cache;
    return cache;
}

std::vector<TransportRound> TdmaTransport::simulate_rounds(
    std::span<const RoundSpec> specs) const {
    const std::size_t n = graph_.node_count();
    for (const auto& spec : specs) {
        require(spec.messages != nullptr, "TdmaTransport::simulate_rounds: null messages");
        require(spec.messages->size() == n, "TdmaTransport: one message slot per node");
        require(spec.faults == nullptr || spec.faults->empty(),
                "TdmaTransport: fault injection is not supported");
    }

    std::vector<TransportRound> results;
    results.reserve(specs.size());
    // Decode buffers are per batch: sized on the first round, reused by all.
    std::vector<Bitstring> heard_buffers(pool_->worker_count());
    for (const auto& spec : specs) {
        cancel_poll();  // round boundary, same contract as BeepTransport
        const std::shared_ptr<const ScheduleCache> cache = schedules_for(*spec.messages);
        results.push_back(decode_round(*cache, *spec.messages, spec.nonce, heard_buffers));
    }
    return results;
}

TransportRound TdmaTransport::decode_round(const ScheduleCache& cache,
                                           const std::vector<std::optional<Bitstring>>& messages,
                                           std::uint64_t round_nonce,
                                           std::vector<Bitstring>& heard_buffers) const {
    const std::size_t n = graph_.node_count();
    const std::size_t payload_bits = params_.message_bits + 1;
    const std::size_t slot_bits = payload_bits * params_.repetitions;

    const Rng round_rng = Rng(params_.transport_seed).derive(0x726f756eu, round_nonce);
    const BatchParams channel{params_.channel_model(), false};
    const BatchEngine engine(graph_, channel, round_rng);
    engine.check_schedules(cache.schedules);  // once per round, not per node

    TransportRound result;
    result.beep_rounds = rounds_per_broadcast_round();
    result.total_beeps = cache.total_beeps;
    result.delivered.resize(n);

    const std::size_t majority = params_.repetitions / 2 + 1;
    std::vector<std::size_t> mismatches(n, 0);
    pool_->parallel_for(n, [&](std::size_t worker, std::size_t node) {
        const auto v = static_cast<NodeId>(node);
        Bitstring& heard = heard_buffers[worker];
        engine.hear_into(v, cache.schedules, heard);
        // Decode one message per neighbor from that neighbor's color slot
        // (the setup coloring tells v when each neighbor transmits).
        for (const auto u : graph_.neighbors(v)) {
            const std::size_t base = colors_[u] * slot_bits;
            auto read_bit = [&](std::size_t bit_index) {
                std::size_t ones = 0;
                for (std::size_t rep = 0; rep < params_.repetitions; ++rep) {
                    if (heard.test(base + bit_index * params_.repetitions + rep)) {
                        ++ones;
                    }
                }
                return ones >= majority;
            };
            if (!read_bit(0)) {
                continue;  // no presence: neighbor was silent
            }
            Bitstring message(params_.message_bits);
            for (std::size_t i = 0; i < params_.message_bits; ++i) {
                if (read_bit(1 + i)) {
                    message.set(i);
                }
            }
            result.delivered[v].push_back(std::move(message));
        }
        sort_messages(result.delivered[v]);

        std::vector<Bitstring> expected;
        for (const auto u : graph_.neighbors(v)) {
            if (messages[u].has_value()) {
                Bitstring padded(params_.message_bits);
                messages[u]->for_each_one([&padded](std::size_t i) { padded.set(i); });
                expected.push_back(std::move(padded));
            }
        }
        sort_messages(expected);
        if (expected != result.delivered[v]) {
            mismatches[v] = 1;
        }
    });
    for (const auto mismatch : mismatches) {
        result.delivery_mismatches += mismatch;
    }
    result.perfect = result.delivery_mismatches == 0;
    return result;
}

}  // namespace nb
