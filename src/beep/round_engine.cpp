#include "beep/round_engine.h"

#include "common/bitstring.h"
#include "common/error.h"

namespace nb {

RoundEngine::RoundEngine(const Graph& graph, ChannelModel channel, Rng rng)
    : graph_(graph), channel_(channel), rng_(rng) {
    channel_.validate();
}

RunStats RoundEngine::run(std::vector<std::unique_ptr<BeepAlgorithm>>& nodes,
                          std::size_t max_rounds) {
    const std::size_t n = graph_.node_count();
    require(nodes.size() == n, "RoundEngine::run: one algorithm per node required");
    for (const auto& node : nodes) {
        require(node != nullptr, "RoundEngine::run: null algorithm");
    }

    const NetworkInfo info{n, graph_.max_degree()};
    // Private per-node randomness, independent of the channel-noise streams.
    // Noise comes from one ChannelNoiseSampler per node, seeded from the
    // node's derived stream, so that an oblivious schedule run here produces
    // bit-identical noise to BatchEngine in dense mode (see
    // BatchParams::dense_noise); stateful models (burst phase, adversary
    // budget) keep their state inside the sampler.
    std::vector<Rng> node_rngs;
    std::vector<ChannelNoiseSampler> samplers;
    node_rngs.reserve(n);
    samplers.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        node_rngs.push_back(rng_.derive(0x6e6f6465u, v));
        samplers.emplace_back(channel_, v, rng_.derive(0x6e6f6973u, v));
    }
    const bool noisy = !channel_.noiseless();

    for (NodeId v = 0; v < n; ++v) {
        nodes[v]->initialize(v, info, node_rngs[v]);
    }

    RunStats stats;
    // Actions packed one bit per node: the receive scan below reads the
    // same word-packed representation the batch engine superimposes over
    // (a whole round of this engine is one column of a BatchEngine run).
    Bitstring beeps;
    for (std::size_t round = 0; round < max_rounds; ++round) {
        beeps.reset(n);
        bool someone_active = false;
        for (NodeId v = 0; v < n; ++v) {
            if (nodes[v]->finished()) {
                continue;
            }
            someone_active = true;
            if (nodes[v]->act(round, node_rngs[v]) == BeepAction::beep) {
                beeps.set(v);
                ++stats.total_beeps;
            }
        }
        if (!someone_active) {
            stats.all_finished = true;
            break;
        }
        ++stats.rounds;

        const auto& beep_words = beeps.words();
        const auto beeped_bit = [&beep_words](NodeId u) {
            return (beep_words[u / 64] >> (u % 64)) & 1u;
        };
        for (NodeId v = 0; v < n; ++v) {
            if (nodes[v]->finished()) {
                continue;
            }
            const bool beeped = beeped_bit(v) != 0;
            bool received = beeped;
            if (!received) {
                for (const auto u : graph_.neighbors(v)) {
                    if (beeped_bit(u) != 0) {
                        received = true;
                        break;
                    }
                }
            }
            if (noisy && (!beeped || channel_.noise_on_own_beep) &&
                samplers[v].flip_next(received)) {
                received = !received;
            }
            nodes[v]->receive(round, received, node_rngs[v]);
        }
    }

    if (!stats.all_finished) {
        bool all_done = true;
        for (const auto& node : nodes) {
            if (!node->finished()) {
                all_done = false;
                break;
            }
        }
        stats.all_finished = all_done;
    }
    return stats;
}

}  // namespace nb
