#include "beep/batch_engine.h"

#include "common/error.h"

namespace nb {

BatchEngine::BatchEngine(const Graph& graph, BatchParams params, Rng rng)
    : graph_(graph), params_(std::move(params)), rng_(rng) {
    params_.channel.validate();
    // The batch engine cannot exempt own-beep rounds from noise without
    // tracking them per bit; the paper's default convention (own beeps are
    // noisy too, footnote 2) is the only one supported here.
    require(params_.channel.noise_on_own_beep,
            "BatchEngine: only the paper convention (noise_on_own_beep) is supported");
}

BatchEngine::BatchEngine(const Graph& graph, BatchParams params, Rng rng,
                         std::span<const std::uint32_t> global_ids)
    : BatchEngine(graph, std::move(params), rng) {
    require(global_ids.size() == graph_.node_count(),
            "BatchEngine: one global id per local node required");
    global_ids_ = global_ids;
}

Bitstring BatchEngine::superimpose(NodeId node, const std::vector<Bitstring>& schedules,
                                   bool include_own) const {
    Bitstring heard;
    superimpose_into(node, schedules, heard, include_own);
    return heard;
}

void BatchEngine::superimpose_into(NodeId node, const std::vector<Bitstring>& schedules,
                                   Bitstring& out, bool include_own) const {
    // O(1) validation only; callers batching many nodes over one schedule
    // set validate lengths once via check_schedules. A mismatched length
    // among the schedules this node actually ORs still throws below; a
    // mismatch elsewhere in the set is only caught by check_schedules.
    require(schedules.size() == graph_.node_count(),
            "BatchEngine: one schedule per node required");
    require(node < graph_.node_count(), "BatchEngine::superimpose: node out of range");
    out.reset(schedules.empty() ? 0 : schedules.front().size());
    if (include_own) {
        out |= schedules[node];
    }
    for (const auto u : graph_.neighbors(node)) {
        out |= schedules[u];
    }
}

Bitstring BatchEngine::hear(NodeId node, const std::vector<Bitstring>& schedules) const {
    Bitstring heard;
    hear_into(node, schedules, heard);
    return heard;
}

void BatchEngine::hear_into(NodeId node, const std::vector<Bitstring>& schedules,
                            Bitstring& out) const {
    superimpose_into(node, schedules, out, /*include_own=*/true);
    if (!params_.channel.noiseless()) {
        // The sampler consumes the same derived per-node stream the
        // original iid path did, so iid outputs are bit-identical and every
        // node's noise stays independent of evaluation order. Sharded
        // engines key the stream (and the per-node channel) by global id.
        const NodeId id = global_ids_.empty() ? node : global_ids_[node];
        ChannelNoiseSampler noise(params_.channel, id, rng_.derive(0x6e6f6973u, id));
        noise.apply(out, params_.dense_noise);
    }
}

std::vector<Bitstring> BatchEngine::hear_all(const std::vector<Bitstring>& schedules) const {
    check_schedules(schedules);  // once for the whole batch of nodes
    std::vector<Bitstring> result;
    result.reserve(graph_.node_count());
    for (NodeId v = 0; v < graph_.node_count(); ++v) {
        result.push_back(hear(v, schedules));
    }
    return result;
}

std::size_t BatchEngine::total_beeps(const std::vector<Bitstring>& schedules) {
    std::size_t total = 0;
    for (const auto& schedule : schedules) {
        total += schedule.count();
    }
    return total;
}

void BatchEngine::check_schedules(const std::vector<Bitstring>& schedules) const {
    require(schedules.size() == graph_.node_count(),
            "BatchEngine: one schedule per node required");
    if (!schedules.empty()) {
        const std::size_t length = schedules.front().size();
        for (const auto& schedule : schedules) {
            require(schedule.size() == length, "BatchEngine: schedule lengths must match");
        }
    }
}

}  // namespace nb
