// Pluggable channel-noise models for the beeping engines.
//
// The paper fixes i.i.d. Bernoulli(epsilon) noise (Section 1.1); real
// deployments are neither homogeneous nor memoryless. This layer makes the
// noise process a first-class value so the same engines, transports, and
// scenario specs run under any of:
//
//   * iid                — the paper's model. Bit-identical to the original
//                          hard-wired path (same derived RNG streams, same
//                          geometric-skip sampler), so every golden
//                          fingerprint pinned against the seed
//                          implementation is unchanged.
//   * gilbert_elliott    — two-state bursty noise: a hidden good/bad channel
//                          state evolves per beep round (good->bad with
//                          p_enter_burst, bad->good with p_exit_burst) and
//                          each received bit flips with the state's epsilon.
//                          Burst lengths are Geometric(p_exit_burst).
//   * heterogeneous      — per-node i.i.d. rates: node v listens through its
//                          own epsilon_v drawn deterministically from
//                          [epsilon_min, epsilon_max] (keyed by seed and
//                          node id), the per-node heterogeneity that P2P
//                          overlay models argue for.
//   * adversarial_budget — a per-transcript adversary that erases the
//                          earliest `budget` heard 1s. Erasures are the
//                          worst case for the Lemma 9 acceptance rule
//                          (every erased 1 counts against every codeword
//                          containing it), so this bounds decoder damage
//                          per corrupted bit rather than sampling it.
//
// Which decoder guarantees survive each model is documented in DESIGN.md
// section 6: the paper's proofs cover iid only; the other models are
// empirical stress tests driven through the scenario runner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "beep/channel.h"
#include "common/bitstring.h"
#include "common/rng.h"

namespace nb {

enum class ChannelModelKind : unsigned char {
    iid,
    gilbert_elliott,
    heterogeneous,
    adversarial_budget,
};

struct ChannelModel {
    ChannelModelKind kind = ChannelModelKind::iid;

    /// iid flip probability in [0, 1/2); ignored by the other kinds.
    double epsilon = 0.0;

    /// Paper convention (footnote 2): a beeping node's own received 1 is
    /// still subject to noise. The practical variant (false) is supported
    /// by RoundEngine for iid only; stateful models would desynchronize if
    /// per-bit draws were skipped, so validate() rejects the combination.
    bool noise_on_own_beep = true;

    // -- gilbert_elliott ---------------------------------------------------
    double ge_p_enter_burst = 0.0;  ///< P(good -> bad) per beep round, (0, 1]
    double ge_p_exit_burst = 0.0;   ///< P(bad -> good) per beep round, (0, 1]
    double ge_epsilon_good = 0.0;   ///< flip rate in the good state, [0, 1]
    double ge_epsilon_bad = 0.0;    ///< flip rate inside a burst, [0, 1]

    // -- heterogeneous -----------------------------------------------------
    double het_epsilon_min = 0.0;   ///< per-node rate range, 0 <= min <= max < 1/2
    double het_epsilon_max = 0.0;
    std::uint64_t het_seed = 0;     ///< keys the deterministic per-node draw

    // -- adversarial_budget ------------------------------------------------
    std::size_t adv_budget = 0;     ///< max erasures per transcript

    ChannelModel() = default;

    /// The legacy iid parameter struct converts implicitly: every call site
    /// that passed ChannelParams{eps, own} to an engine keeps compiling and
    /// keeps its exact noise behavior.
    ChannelModel(const ChannelParams& params)  // NOLINT(google-explicit-constructor)
        : epsilon(params.epsilon), noise_on_own_beep(params.noise_on_own_beep) {}

    static ChannelModel iid(double epsilon, bool noise_on_own_beep = true);
    static ChannelModel gilbert_elliott(double p_enter_burst, double p_exit_burst,
                                        double epsilon_good, double epsilon_bad);
    static ChannelModel heterogeneous(double epsilon_min, double epsilon_max,
                                      std::uint64_t seed);
    static ChannelModel adversarial_budget(std::size_t budget);

    bool is_iid() const noexcept { return kind == ChannelModelKind::iid; }

    /// True iff the model can never flip a bit — engines skip the noise
    /// stage entirely (and derive no noise stream), exactly as the original
    /// epsilon == 0 fast path did.
    bool noiseless() const noexcept;

    /// The effective i.i.d.-equivalent rate node `node` listens through:
    /// epsilon for iid, the deterministic per-node draw for heterogeneous.
    /// Precondition: kind is iid or heterogeneous.
    double node_epsilon(std::uint64_t node) const;

    /// A representative flip rate for sizing decoder thresholds when no
    /// explicit design epsilon is given: iid -> epsilon, heterogeneous ->
    /// the range midpoint, gilbert_elliott -> the stationary average rate,
    /// adversarial -> 0 (the decoder has no probabilistic handle on it).
    /// Clamped below 1/2 so it is always a valid SimulationParams epsilon.
    double design_epsilon() const;

    /// Validate ranges; throws precondition_error.
    void validate() const;

    /// Short kind tag ("iid", "gilbert_elliott", ...) for tables and JSON.
    const char* kind_name() const noexcept;

    /// One-line human/JSON description, e.g. "iid(eps=0.10)".
    std::string describe() const;

    bool operator==(const ChannelModel& other) const noexcept = default;
};

/// Per-node noise process instance. Engines create one sampler per listening
/// node from the node's derived noise stream and either consume it bit by
/// bit (RoundEngine) or apply it to a whole transcript (BatchEngine). For
/// stateful models the sampler owns the state (burst phase, remaining
/// budget), so distinct nodes and distinct rounds never share state.
class ChannelNoiseSampler {
public:
    /// `rng` must be the node's private noise stream (engines derive it as
    /// rng.derive(0x6e6f6973, node), the same stream id the original iid
    /// path used — which is what keeps iid bit-identical).
    ChannelNoiseSampler(const ChannelModel& model, std::uint64_t node, Rng rng);

    /// Whether the next received bit (currently `received`) flips; consumes
    /// this bit's draws / advances model state. Call exactly once per beep
    /// round in round order.
    bool flip_next(bool received);

    /// Apply the whole-transcript noise process in place. For iid and
    /// heterogeneous, `dense` selects one Bernoulli draw per bit (matching
    /// flip_next exactly) versus the geometric-skip sampler (same
    /// distribution, O(#flips) expected work). Stateful models are always
    /// dense. Must be used on a fresh sampler (transcript == bits 0..n).
    void apply(Bitstring& transcript, bool dense);

private:
    ChannelModel model_;  ///< by value: temporaries at the call site are fine
    Rng rng_;
    double epsilon_ = 0.0;       ///< effective iid rate (iid / heterogeneous)
    bool in_burst_ = false;      ///< gilbert_elliott state
    std::size_t budget_left_ = 0;  ///< adversarial_budget state
};

}  // namespace nb
