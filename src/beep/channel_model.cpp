#include "beep/channel_model.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"
#include "common/failpoint.h"

namespace nb {

namespace {

// Per-node per-phase whole-transcript noise application — the hottest seam a
// failpoint guards, which is why Site::check() must stay one relaxed load.
NB_FAILPOINT_DEFINE(fp_channel_sample, "channel.sample");

}  // namespace

ChannelModel ChannelModel::iid(double epsilon, bool noise_on_own_beep) {
    ChannelModel model;
    model.kind = ChannelModelKind::iid;
    model.epsilon = epsilon;
    model.noise_on_own_beep = noise_on_own_beep;
    return model;
}

ChannelModel ChannelModel::gilbert_elliott(double p_enter_burst, double p_exit_burst,
                                           double epsilon_good, double epsilon_bad) {
    ChannelModel model;
    model.kind = ChannelModelKind::gilbert_elliott;
    model.ge_p_enter_burst = p_enter_burst;
    model.ge_p_exit_burst = p_exit_burst;
    model.ge_epsilon_good = epsilon_good;
    model.ge_epsilon_bad = epsilon_bad;
    return model;
}

ChannelModel ChannelModel::heterogeneous(double epsilon_min, double epsilon_max,
                                         std::uint64_t seed) {
    ChannelModel model;
    model.kind = ChannelModelKind::heterogeneous;
    model.het_epsilon_min = epsilon_min;
    model.het_epsilon_max = epsilon_max;
    model.het_seed = seed;
    return model;
}

ChannelModel ChannelModel::adversarial_budget(std::size_t budget) {
    ChannelModel model;
    model.kind = ChannelModelKind::adversarial_budget;
    model.adv_budget = budget;
    return model;
}

bool ChannelModel::noiseless() const noexcept {
    switch (kind) {
        case ChannelModelKind::iid:
            return epsilon == 0.0;
        case ChannelModelKind::gilbert_elliott:
            return ge_epsilon_good == 0.0 && ge_epsilon_bad == 0.0;
        case ChannelModelKind::heterogeneous:
            return het_epsilon_max == 0.0;
        case ChannelModelKind::adversarial_budget:
            return adv_budget == 0;
    }
    return true;
}

double ChannelModel::node_epsilon(std::uint64_t node) const {
    switch (kind) {
        case ChannelModelKind::iid:
            return epsilon;
        case ChannelModelKind::heterogeneous: {
            if (het_epsilon_min == het_epsilon_max) {
                return het_epsilon_min;
            }
            // One deterministic uniform draw keyed by (seed, node): stable
            // across rounds, engines, and thread schedules.
            Rng per_node = Rng(het_seed).derive(0x68657465u, node);
            return het_epsilon_min +
                   per_node.next_double() * (het_epsilon_max - het_epsilon_min);
        }
        default:
            throw precondition_error(
                "ChannelModel::node_epsilon: model has no per-node iid rate");
    }
}

double ChannelModel::design_epsilon() const {
    double eps = 0.0;
    switch (kind) {
        case ChannelModelKind::iid:
            eps = epsilon;
            break;
        case ChannelModelKind::gilbert_elliott: {
            // Stationary state distribution of the two-state chain:
            // P(bad) = p_enter / (p_enter + p_exit).
            const double total = ge_p_enter_burst + ge_p_exit_burst;
            const double p_bad = total > 0.0 ? ge_p_enter_burst / total : 0.0;
            eps = (1.0 - p_bad) * ge_epsilon_good + p_bad * ge_epsilon_bad;
            break;
        }
        case ChannelModelKind::heterogeneous:
            eps = 0.5 * (het_epsilon_min + het_epsilon_max);
            break;
        case ChannelModelKind::adversarial_budget:
            eps = 0.0;
            break;
    }
    return std::min(eps, 0.49);
}

void ChannelModel::validate() const {
    switch (kind) {
        case ChannelModelKind::iid:
            require(epsilon >= 0.0 && epsilon < 0.5,
                    "ChannelModel: iid epsilon must be in [0, 1/2)");
            break;
        case ChannelModelKind::gilbert_elliott:
            require(ge_p_enter_burst > 0.0 && ge_p_enter_burst <= 1.0,
                    "ChannelModel: gilbert_elliott p_enter_burst must be in (0, 1]");
            require(ge_p_exit_burst > 0.0 && ge_p_exit_burst <= 1.0,
                    "ChannelModel: gilbert_elliott p_exit_burst must be in (0, 1]");
            // Burst-state noise may exceed 1/2 — that is the point of a
            // burst; only the decoder's design epsilon must stay below it.
            require(ge_epsilon_good >= 0.0 && ge_epsilon_good <= 1.0,
                    "ChannelModel: gilbert_elliott epsilon_good must be in [0, 1]");
            require(ge_epsilon_bad >= 0.0 && ge_epsilon_bad <= 1.0,
                    "ChannelModel: gilbert_elliott epsilon_bad must be in [0, 1]");
            break;
        case ChannelModelKind::heterogeneous:
            require(het_epsilon_min >= 0.0 && het_epsilon_min <= het_epsilon_max &&
                        het_epsilon_max < 0.5,
                    "ChannelModel: heterogeneous rates need 0 <= min <= max < 1/2");
            break;
        case ChannelModelKind::adversarial_budget:
            break;  // any budget is valid
    }
    require(is_iid() || noise_on_own_beep,
            "ChannelModel: only the iid model supports noise_on_own_beep = false");
}

const char* ChannelModel::kind_name() const noexcept {
    switch (kind) {
        case ChannelModelKind::iid:
            return "iid";
        case ChannelModelKind::gilbert_elliott:
            return "gilbert_elliott";
        case ChannelModelKind::heterogeneous:
            return "heterogeneous";
        case ChannelModelKind::adversarial_budget:
            return "adversarial_budget";
    }
    return "unknown";
}

std::string ChannelModel::describe() const {
    char buffer[160];
    switch (kind) {
        case ChannelModelKind::iid:
            std::snprintf(buffer, sizeof buffer, "iid(eps=%.3g)", epsilon);
            break;
        case ChannelModelKind::gilbert_elliott:
            std::snprintf(buffer, sizeof buffer,
                          "gilbert_elliott(enter=%.3g, exit=%.3g, eps_good=%.3g, "
                          "eps_bad=%.3g)",
                          ge_p_enter_burst, ge_p_exit_burst, ge_epsilon_good,
                          ge_epsilon_bad);
            break;
        case ChannelModelKind::heterogeneous:
            std::snprintf(buffer, sizeof buffer, "heterogeneous(eps=[%.3g, %.3g])",
                          het_epsilon_min, het_epsilon_max);
            break;
        case ChannelModelKind::adversarial_budget:
            std::snprintf(buffer, sizeof buffer, "adversarial_budget(k=%zu)", adv_budget);
            break;
    }
    return buffer;
}

ChannelNoiseSampler::ChannelNoiseSampler(const ChannelModel& model, std::uint64_t node,
                                         Rng rng)
    : model_(model), rng_(rng) {
    switch (model_.kind) {
        case ChannelModelKind::iid:
            epsilon_ = model_.epsilon;
            break;
        case ChannelModelKind::heterogeneous:
            epsilon_ = model_.node_epsilon(node);
            break;
        case ChannelModelKind::gilbert_elliott:
            in_burst_ = false;  // transcripts start in the good state
            break;
        case ChannelModelKind::adversarial_budget:
            budget_left_ = model_.adv_budget;
            break;
    }
}

bool ChannelNoiseSampler::flip_next(bool received) {
    switch (model_.kind) {
        case ChannelModelKind::iid:
        case ChannelModelKind::heterogeneous:
            return rng_.bernoulli(epsilon_);
        case ChannelModelKind::gilbert_elliott: {
            // Emit under the current state, then advance the chain — one
            // flip draw plus one transition draw per beep round, so the
            // round-at-a-time and batch paths consume identical streams.
            const bool flip =
                rng_.bernoulli(in_burst_ ? model_.ge_epsilon_bad : model_.ge_epsilon_good);
            const double transition =
                in_burst_ ? model_.ge_p_exit_burst : model_.ge_p_enter_burst;
            if (rng_.bernoulli(transition)) {
                in_burst_ = !in_burst_;
            }
            return flip;
        }
        case ChannelModelKind::adversarial_budget:
            if (received && budget_left_ > 0) {
                --budget_left_;
                return true;
            }
            return false;
    }
    return false;
}

void ChannelNoiseSampler::apply(Bitstring& transcript, bool dense) {
    fp_channel_sample.check();
    switch (model_.kind) {
        case ChannelModelKind::iid:
        case ChannelModelKind::heterogeneous:
            // The exact code path the original hard-wired iid noise used —
            // same rng, same sampler — so iid outputs are bit-identical to
            // the pre-ChannelModel implementation.
            if (dense) {
                transcript.apply_noise_dense(rng_, epsilon_);
            } else {
                transcript.apply_noise(rng_, epsilon_);
            }
            return;
        case ChannelModelKind::gilbert_elliott:
            for (std::size_t i = 0; i < transcript.size(); ++i) {
                if (flip_next(transcript.test(i))) {
                    transcript.flip(i);
                }
            }
            return;
        case ChannelModelKind::adversarial_budget: {
            // Erase the earliest `budget` heard 1s. for_each_one tolerates
            // clearing the current bit (it walks a word copy).
            std::size_t remaining = budget_left_;
            transcript.for_each_one([&](std::size_t position) {
                if (remaining > 0) {
                    transcript.set(position, false);
                    --remaining;
                }
            });
            budget_left_ = remaining;
            return;
        }
    }
}

}  // namespace nb
