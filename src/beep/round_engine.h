// Round-at-a-time beeping-network engine for adaptive algorithms.
//
// Each node runs a BeepAlgorithm instance; per round the engine collects
// every node's action, computes the OR-superimposition each listener hears,
// applies channel noise, and feeds the received bit back to the node.
// Suited to adaptive protocols (beep waves, MIS, leader election); oblivious
// fixed-schedule phases should prefer BatchEngine, which is word-parallel.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "beep/channel_model.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace nb {

/// Static facts a node knows about the network before the protocol starts
/// (standard beeping-model knowledge assumptions).
struct NetworkInfo {
    std::size_t node_count = 0;   ///< n (or a polynomial upper bound)
    std::size_t max_degree = 0;   ///< Delta
};

/// Per-node protocol interface for the round engine.
class BeepAlgorithm {
public:
    virtual ~BeepAlgorithm() = default;

    /// Called once before round 0. `rng` is this node's private randomness.
    virtual void initialize(NodeId self, const NetworkInfo& info, Rng& rng) = 0;

    /// This round's action. `rng` is the same private stream.
    virtual BeepAction act(std::size_t round, Rng& rng) = 0;

    /// Delivery of the received bit (after noise) for `round`.
    virtual void receive(std::size_t round, bool received, Rng& rng) = 0;

    /// True once the node has terminated (it stays silent afterwards).
    virtual bool finished() const = 0;
};

/// Execution statistics for energy/round accounting.
struct RunStats {
    std::size_t rounds = 0;       ///< rounds executed
    std::size_t total_beeps = 0;  ///< sum over nodes of rounds spent beeping
    bool all_finished = false;    ///< every node reported finished()
};

class RoundEngine {
public:
    /// The graph must outlive the engine. `channel` is any ChannelModel
    /// (ChannelParams converts implicitly for the paper's i.i.d. model).
    RoundEngine(const Graph& graph, ChannelModel channel, Rng rng);

    /// Run all node algorithms until every node is finished or `max_rounds`
    /// is reached. `nodes` must contain exactly graph.node_count() entries.
    RunStats run(std::vector<std::unique_ptr<BeepAlgorithm>>& nodes, std::size_t max_rounds);

private:
    const Graph& graph_;
    ChannelModel channel_;
    Rng rng_;
};

}  // namespace nb
