// Word-parallel beeping-network engine for oblivious (fixed-schedule) phases.
//
// Algorithm 1's two phases are oblivious: once a node has chosen r_v and m_v,
// its beep pattern for the whole phase is a fixed bitstring. The engine
// computes each node's heard transcript as the word-parallel OR of its
// neighbors' schedules and injects channel noise with geometric skip
// sampling, which makes large (n, Delta) sweeps feasible.
//
// Semantics are identical to running the same schedules on RoundEngine
// (property-tested): bit i of the result is what the node receives in round i
// under the paper's conventions (own beeps count as received 1s, noise flips
// each received bit independently with probability epsilon).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "beep/channel_model.h"
#include "common/bitstring.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace nb {

struct BatchParams {
    /// Any ChannelModel (ChannelParams converts implicitly for the paper's
    /// i.i.d. model). Must keep noise_on_own_beep — this engine cannot
    /// exempt own-beep rounds without tracking them per bit.
    ChannelModel channel;

    /// If true, iid/heterogeneous noise consumes one Bernoulli draw per bit
    /// (matching RoundEngine's draw pattern exactly, for cross-validation);
    /// if false, the geometric skip sampler is used (same distribution,
    /// O(#flips) expected work). Stateful models are inherently dense.
    bool dense_noise = false;
};

class BatchEngine {
public:
    /// The graph must outlive the engine. `rng` seeds per-node noise streams.
    BatchEngine(const Graph& graph, BatchParams params, Rng rng);

    /// Engine over a shard's local graph whose noise streams key by *global*
    /// node id: `global_ids[v]` is local node v's id in the full simulation
    /// (graph/partition.h). Both the stream derivation and the sampler's
    /// node argument (heterogeneous channels key epsilon_v by id) use the
    /// global id, so a local hear_into() is bit-identical to the unsharded
    /// engine's for the same node. The span must outlive the engine and
    /// cover every local node.
    BatchEngine(const Graph& graph, BatchParams params, Rng rng,
                std::span<const std::uint32_t> global_ids);

    /// Transcript heard by `node` when every node u beeps according to
    /// schedules[u] (all schedules must share one length). Only this node's
    /// transcript is computed; noise comes from the node's own derived
    /// stream, so calls are independent of evaluation order.
    Bitstring hear(NodeId node, const std::vector<Bitstring>& schedules) const;

    /// hear() into a caller-owned transcript buffer: the word-parallel OR
    /// runs in place and no allocation happens when `out` already has the
    /// schedule length. This is the workspace API the transports drive from
    /// per-worker scratch buffers. Safe to call concurrently (per-node noise
    /// streams are derived, never shared).
    void hear_into(NodeId node, const std::vector<Bitstring>& schedules, Bitstring& out) const;

    /// Transcripts for all nodes (hear() applied to each node).
    std::vector<Bitstring> hear_all(const std::vector<Bitstring>& schedules) const;

    /// Superimposition OR_{u in N(v) (+ v)} schedules[u] with no noise: the
    /// paper's x_v before flips. Exposed for decoder analysis in tests.
    Bitstring superimpose(NodeId node, const std::vector<Bitstring>& schedules,
                          bool include_own = true) const;

    /// superimpose() into a caller-owned buffer (reset to the schedule
    /// length, then OR-accumulated word-parallel).
    void superimpose_into(NodeId node, const std::vector<Bitstring>& schedules, Bitstring& out,
                          bool include_own = true) const;

    /// Total beeps (energy) of a schedule set.
    static std::size_t total_beeps(const std::vector<Bitstring>& schedules);

    /// Validate a schedule set (one per node, equal lengths) once, before a
    /// batch of hear/superimpose calls over it. The per-call path checks
    /// only the O(1) schedule count — revalidating all n lengths inside
    /// every per-node call made the decode loop O(n^2) in require checks —
    /// and a mismatched length still throws from the word-parallel OR, so
    /// skipping this check risks no silent corruption.
    void check_schedules(const std::vector<Bitstring>& schedules) const;

private:
    const Graph& graph_;
    BatchParams params_;
    Rng rng_;
    std::span<const std::uint32_t> global_ids_;  ///< empty = identity mapping
};

}  // namespace nb
