// Beeping-channel semantics shared by both engines.
//
// Model (paper Section 1.1/1.5): in each synchronous round every node either
// beeps or listens. A node *receives* 1 iff it beeps itself or at least one
// neighbor beeps, and 0 otherwise; in the noisy model the received bit is
// then flipped independently with probability epsilon in (0, 1/2).
//
// The paper's analysis (footnote 2) lets even a beeping node's own 1 be
// flipped by noise — a harmless pessimism that simplifies the proofs. We
// reproduce that convention by default and expose the practical variant
// (a node knows with certainty that it beeped) as an option.
//
// ChannelParams describes the paper's i.i.d. model only; the engines
// actually consume the richer ChannelModel (beep/channel_model.h), into
// which ChannelParams converts implicitly. Non-i.i.d. processes (bursty,
// per-node heterogeneous, adversarial) are constructed there.
#pragma once

#include "common/error.h"

namespace nb {

enum class BeepAction : unsigned char {
    listen,
    beep,
};

struct ChannelParams {
    /// Noise probability epsilon in [0, 1/2); 0 gives the noiseless model.
    double epsilon = 0.0;

    /// Paper convention: a beeping node receives 1 and that bit is still
    /// subject to noise. If false, a beeping node receives a clean 1.
    bool noise_on_own_beep = true;

    void validate() const {
        require(epsilon >= 0.0 && epsilon < 0.5,
                "ChannelParams: epsilon must be in [0, 1/2)");
    }
};

}  // namespace nb
