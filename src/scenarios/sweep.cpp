#include "scenarios/sweep.h"

#include <chrono>
#include <unordered_set>

#include "common/error.h"
#include "common/thread_pool.h"

namespace nb {

std::size_t SweepSpec::job_count() const noexcept {
    auto axis = [](std::size_t size) { return size == 0 ? 1 : size; };
    return bases.size() * axis(axes.topologies.size()) * axis(axes.node_counts.size()) *
           axis(axes.channels.size()) * axis(axes.epsilons.size()) * axis(axes.seeds.size());
}

std::vector<ScenarioSpec> SweepSpec::expand() const {
    // Each loop runs once with "keep the base value" when its axis is empty;
    // the index is meaningful only when the axis is non-empty.
    auto extent = [](std::size_t size) { return size == 0 ? std::size_t{1} : size; };

    std::vector<ScenarioSpec> jobs;
    jobs.reserve(job_count());
    for (const auto& base : bases) {
        for (std::size_t t = 0; t < extent(axes.topologies.size()); ++t) {
            for (std::size_t n = 0; n < extent(axes.node_counts.size()); ++n) {
                for (std::size_t c = 0; c < extent(axes.channels.size()); ++c) {
                    for (std::size_t e = 0; e < extent(axes.epsilons.size()); ++e) {
                        for (std::size_t s = 0; s < extent(axes.seeds.size()); ++s) {
                            ScenarioSpec job = base;
                            if (!axes.topologies.empty()) {
                                job.topology = axes.topologies[t];
                                job.name += "/top=" + job.topology.describe();
                            }
                            if (!axes.node_counts.empty()) {
                                job.topology.n = axes.node_counts[n];
                                job.name += "/n=" + std::to_string(axes.node_counts[n]);
                            }
                            if (!axes.channels.empty()) {
                                job.channel = axes.channels[c];
                                job.name += "/ch=" + job.channel.describe();
                            }
                            if (!axes.epsilons.empty()) {
                                job.channel = ChannelModel::iid(axes.epsilons[e]);
                                job.decoder_epsilon = -1.0;  // derive from the channel
                                // format_double: axis names share the JSON
                                // serializer's locale-independent form.
                                job.name += "/eps=" + format_double(axes.epsilons[e]);
                            }
                            if (!axes.seeds.empty()) {
                                job.workload.seed = axes.seeds[s];
                                job.name += "/seed=" + std::to_string(axes.seeds[s]);
                            }
                            jobs.push_back(std::move(job));
                        }
                    }
                }
            }
        }
    }
    return jobs;
}

namespace {

/// The spec-level checks (everything except per-job validation), split out
/// so run_sweep can validate the jobs it expands instead of expanding the
/// whole cartesian product a second time inside SweepSpec::validate().
void validate_spec_level(const SweepSpec& spec) {
    require(!spec.bases.empty(), "SweepSpec: at least one base spec required");
    std::unordered_set<std::string> names;
    for (const auto& base : spec.bases) {
        require(names.insert(base.name).second,
                "SweepSpec: base names must be unique (axis suffixes cannot "
                "disambiguate identical bases)");
    }
    require(spec.axes.channels.empty() || spec.axes.epsilons.empty(),
            "SweepSpec: the channels and epsilons axes both drive the channel "
            "model — use one or the other");
    if (!spec.axes.node_counts.empty()) {
        for (const auto& base : spec.bases) {
            const TopologySpec::Family family = spec.axes.topologies.empty()
                                                    ? base.topology.family
                                                    : spec.axes.topologies.front().family;
            require(family != TopologySpec::Family::grid,
                    "SweepSpec: the n axis cannot drive grid topologies "
                    "(grids are sized by rows x cols)");
        }
        for (const auto& topology : spec.axes.topologies) {
            require(topology.family != TopologySpec::Family::grid,
                    "SweepSpec: the n axis cannot drive grid topologies "
                    "(grids are sized by rows x cols)");
        }
    }
}

}  // namespace

void SweepSpec::validate() const {
    validate_spec_level(*this);
    for (const auto& job : expand()) {
        job.validate();
    }
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options) {
    validate_spec_level(spec);
    std::vector<ScenarioSpec> jobs = spec.expand();
    for (const auto& job : jobs) {
        job.validate();
    }
    for (auto& job : jobs) {
        job.threads = options.threads_per_job;
    }

    SweepResult result;
    result.name = spec.name;
    result.jobs = jobs.size();

    CodebookCache& cache = CodebookCache::instance();
    const CodebookCache::Stats before = cache.stats();

    ThreadPool pool(ThreadPool::worker_count_for(options.workers, jobs.size()));
    result.workers = pool.worker_count();
    result.results.resize(jobs.size());
    const auto start = std::chrono::steady_clock::now();
    // Per-job result slots keyed by job index: no ordering between jobs, and
    // the merged output is independent of which worker ran what.
    pool.parallel_for(jobs.size(), [&](std::size_t, std::size_t job) {
        result.results[job] = run_scenario(jobs[job]);
    });
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    const CodebookCache::Stats after = cache.stats();
    result.cache.hits = after.hits - before.hits;
    result.cache.builds = after.builds - before.builds;
    result.cache.evictions = after.evictions - before.evictions;
    result.cache.coloring_hits = after.coloring_hits - before.coloring_hits;
    result.cache.coloring_builds = after.coloring_builds - before.coloring_builds;
    result.cache.coloring_evictions =
        after.coloring_evictions - before.coloring_evictions;
    return result;
}

void sweep_results_json(JsonWriter& json, const SweepResult& result) {
    json.begin_object();
    json.kv("schema", "nb-sweep/v1");
    json.kv("sweep", result.name);
    json.kv("jobs", result.jobs);
    // Under eviction pressure (in either cache) the hit/build values depend
    // on job completion order, so they would break the byte-identity
    // contract; whether pressure occurred at all is a pure function of the
    // sweep's key set (which keys hash to which shard / how many distinct
    // graphs), so this gate — unlike the counters it guards — is
    // deterministic.
    json.key("codebook_cache");
    if (result.cache.evictions == 0 && result.cache.coloring_evictions == 0) {
        json.begin_object();
        json.kv("hits", result.cache.hits);
        json.kv("builds", result.cache.builds);
        json.kv("coloring_hits", result.cache.coloring_hits);
        json.kv("coloring_builds", result.cache.coloring_builds);
        json.end_object();
    } else {
        json.value("evicted");  // counters were order-dependent; not emitted
    }
    json.key("results").begin_array();
    for (const auto& r : result.results) {
        scenario_result_json(json, r, /*include_timing=*/false);
    }
    json.end_array();
    json.end_object();
}

}  // namespace nb
