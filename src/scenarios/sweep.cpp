#include "scenarios/sweep.h"

#include <chrono>
#include <cstring>
#include <exception>
#include <unordered_map>
#include <unordered_set>

#include "common/cancel.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "scenarios/journal.h"

namespace nb {

std::size_t SweepSpec::job_count() const noexcept {
    auto axis = [](std::size_t size) { return size == 0 ? 1 : size; };
    return bases.size() * axis(axes.topologies.size()) * axis(axes.node_counts.size()) *
           axis(axes.channels.size()) * axis(axes.epsilons.size()) * axis(axes.seeds.size()) *
           axis(axes.shard_counts.size());
}

std::vector<ScenarioSpec> SweepSpec::expand() const {
    // Each loop runs once with "keep the base value" when its axis is empty;
    // the index is meaningful only when the axis is non-empty.
    auto extent = [](std::size_t size) { return size == 0 ? std::size_t{1} : size; };

    std::vector<ScenarioSpec> jobs;
    jobs.reserve(job_count());
    for (const auto& base : bases) {
        for (std::size_t t = 0; t < extent(axes.topologies.size()); ++t) {
            for (std::size_t n = 0; n < extent(axes.node_counts.size()); ++n) {
                for (std::size_t c = 0; c < extent(axes.channels.size()); ++c) {
                    for (std::size_t e = 0; e < extent(axes.epsilons.size()); ++e) {
                        for (std::size_t s = 0; s < extent(axes.seeds.size()); ++s) {
                          for (std::size_t k = 0; k < extent(axes.shard_counts.size()); ++k) {
                            ScenarioSpec job = base;
                            if (!axes.topologies.empty()) {
                                job.topology = axes.topologies[t];
                                job.name += "/top=" + job.topology.describe();
                            }
                            if (!axes.node_counts.empty()) {
                                job.topology.n = axes.node_counts[n];
                                job.name += "/n=" + std::to_string(axes.node_counts[n]);
                            }
                            if (!axes.channels.empty()) {
                                job.channel = axes.channels[c];
                                job.name += "/ch=" + job.channel.describe();
                            }
                            if (!axes.epsilons.empty()) {
                                job.channel = ChannelModel::iid(axes.epsilons[e]);
                                job.decoder_epsilon = -1.0;  // derive from the channel
                                // format_double: axis names share the JSON
                                // serializer's locale-independent form.
                                job.name += "/eps=" + format_double(axes.epsilons[e]);
                            }
                            if (!axes.seeds.empty()) {
                                job.workload.seed = axes.seeds[s];
                                job.name += "/seed=" + std::to_string(axes.seeds[s]);
                            }
                            if (!axes.shard_counts.empty()) {
                                job.shards = axes.shard_counts[k];
                                job.name +=
                                    "/shards=" + std::to_string(axes.shard_counts[k]);
                            }
                            jobs.push_back(std::move(job));
                          }
                        }
                    }
                }
            }
        }
    }
    return jobs;
}

namespace {

// Fired before a job's first real work on every attempt — the coarse "this
// worker died" site the resilience tests and the CI fault-injection run
// arm. Placed before run_scenario so an injected throw perturbs no cache
// state: a retried job performs exactly the cache traffic of a clean one.
NB_FAILPOINT_DEFINE(fp_sweep_job, "sweep.job");

/// The spec-level checks (everything except per-job validation), split out
/// so run_sweep can validate the jobs it expands instead of expanding the
/// whole cartesian product a second time inside SweepSpec::validate().
void validate_spec_level(const SweepSpec& spec) {
    require(!spec.bases.empty(), "SweepSpec: at least one base spec required");
    std::unordered_set<std::string> names;
    for (const auto& base : spec.bases) {
        require(names.insert(base.name).second,
                "SweepSpec: base names must be unique (axis suffixes cannot "
                "disambiguate identical bases)");
    }
    require(spec.axes.channels.empty() || spec.axes.epsilons.empty(),
            "SweepSpec: the channels and epsilons axes both drive the channel "
            "model — use one or the other");
    if (!spec.axes.node_counts.empty()) {
        for (const auto& base : spec.bases) {
            const TopologySpec::Family family = spec.axes.topologies.empty()
                                                    ? base.topology.family
                                                    : spec.axes.topologies.front().family;
            require(family != TopologySpec::Family::grid,
                    "SweepSpec: the n axis cannot drive grid topologies "
                    "(grids are sized by rows x cols)");
        }
        for (const auto& topology : spec.axes.topologies) {
            require(topology.family != TopologySpec::Family::grid,
                    "SweepSpec: the n axis cannot drive grid topologies "
                    "(grids are sized by rows x cols)");
        }
    }
}

/// Digest of every field Graph construction reads from a TopologySpec —
/// jobs with equal digests build identical graphs, so the analytic cache
/// pass builds each distinct graph once instead of once per job.
std::uint64_t topology_digest(const TopologySpec& topology) {
    std::uint64_t h = 0x746f706f5f646967ULL;
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    auto mix_double = [&mix](double value) {
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof value);
        std::memcpy(&bits, &value, sizeof bits);
        mix(bits);
    };
    mix(static_cast<std::uint64_t>(topology.family));
    mix(topology.n);
    mix(topology.degree);
    mix_double(topology.edge_probability);
    mix_double(topology.radius);
    mix(topology.rows);
    mix(topology.cols);
    mix(topology.seed);
    return h;
}

/// The analytic cold-start cache pass: replay the job list's cache traffic
/// against empty key sets. One acquire per beep job (BeepTransport builds
/// its codebook once, through the cache when shared_codebook is on), one
/// coloring per tdma job; a never-seen key is a build, a repeat is a hit —
/// exactly what a clean run on an empty cache with no eviction pressure
/// performs, and a pure function of the job list. Deliberately blind to
/// ScenarioSpec::shards: a sharded run acquires per-shard keys instead of
/// the one global key, but shards is an execution knob and the canonical
/// artifact must be byte-identical whether a job runs sharded or not, so
/// the model keeps the unsharded single-key view.
SweepCacheAnalysis analyze_cache_cold(const std::vector<ScenarioSpec>& jobs) {
    SweepCacheAnalysis analysis;
    std::unordered_map<std::uint64_t, Graph> graphs;
    std::unordered_set<std::uint64_t> codebook_keys;
    std::unordered_set<std::uint64_t> colored_graphs;
    for (const auto& job : jobs) {
        const std::uint64_t td = topology_digest(job.topology);
        auto it = graphs.find(td);
        if (it == graphs.end()) {
            it = graphs.emplace(td, job.topology.build()).first;
        }
        const Graph& graph = it->second;
        if (job.transport == TransportKind::beep) {
            const SimulationParams params = job.sim_params();
            if (!params.shared_codebook) {
                continue;  // private build: no cache traffic
            }
            const std::uint64_t key = CodebookCache::key_digest(graph, params);
            ++(codebook_keys.insert(key).second ? analysis.builds : analysis.hits);
        } else {
            if (!job.tdma_params(graph.node_count()).shared_coloring) {
                continue;
            }
            const std::uint64_t digest = CodebookCache::graph_digest(graph);
            ++(colored_graphs.insert(digest).second ? analysis.coloring_builds
                                                    : analysis.coloring_hits);
        }
    }
    return analysis;
}

/// Whole-sweep identity: the name plus every job's fingerprint, in order.
/// Any edit that could change any job's numbers — or add, drop, or reorder
/// jobs — changes this, which is what gates journal replay wholesale.
std::uint64_t sweep_fingerprint(const std::string& name,
                                const std::vector<std::uint64_t>& job_fingerprints) {
    std::uint64_t h = 0x6e622d73777065ULL;  // "nb-swpe"
    auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    mix(name.size());
    for (const char ch : name) {
        mix(static_cast<unsigned char>(ch));
    }
    mix(job_fingerprints.size());
    for (const std::uint64_t f : job_fingerprints) {
        mix(f);
    }
    return h;
}

/// One job under its own error boundary: retry loop, watchdog token,
/// classification, journal append on success. Never throws — a permanent
/// failure lands in `record.error` and the sweep keeps going.
void run_one_job(const ScenarioSpec& job, std::size_t index, std::uint64_t job_fp,
                 std::size_t max_retries, double timeout_seconds,
                 const CancelToken* external_cancel, SweepJournal& journal,
                 ScenarioResult& out, SweepJobRecord& record) {
    const auto start = std::chrono::steady_clock::now();
    const std::size_t max_attempts = max_retries + 1;
    for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
        record.attempts = attempt;
        CancelToken token;
        token.set_parent(external_cancel);
        if (timeout_seconds > 0.0) {
            token.set_timeout(std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::duration<double>(timeout_seconds)));
        }
        // Install the watchdog for this attempt: round-boundary polls in the
        // transports (and chunk claims in any token-aware pool work) see it
        // through the thread-local and unwind with cancelled_error. The
        // parent link makes an outer owner's cancel (nb_serve's deadline or
        // drain) visible through the same polls.
        CancelScope scope(&token);
        try {
            fp_sweep_job.check();
            out = run_scenario(job);
            record.error.reset();
            record.wall_seconds = std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() - start)
                                      .count();
            journal.append(JournalRecord{index, job_fp, attempt, out});
            return;
        } catch (...) {
            record.error = classify_job_error(std::current_exception());
            if (!record.error->retryable()) {
                break;  // a bug or bad spec: re-running it is not resilience
            }
            if (external_cancel != nullptr && external_cancel->cancelled()) {
                break;  // the owner is gone: retries would just re-cancel
            }
        }
    }
    record.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    out = ScenarioResult{};
    out.name = job.name;  // the failed slot still names its job in the artifact
}

}  // namespace

JobError classify_job_error(std::exception_ptr error) {
    try {
        std::rethrow_exception(error);
    } catch (const precondition_error& e) {
        return JobError{"fatal", "", e.what()};
    } catch (const invariant_error& e) {
        return JobError{"fatal", "", e.what()};
    } catch (const cancelled_error& e) {
        return JobError{"timeout", "", e.what()};
    } catch (const failpoint::injected_fault& e) {
        return JobError{"transient", e.site(), e.what()};
    } catch (const std::bad_alloc& e) {
        return JobError{"transient", "", e.what()};
    } catch (const std::exception& e) {
        return JobError{"transient", "", e.what()};
    } catch (...) {
        return JobError{"transient", "", "unknown exception"};
    }
}

void SweepSpec::validate() const {
    validate_spec_level(*this);
    for (const auto& job : expand()) {
        job.validate();
    }
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options) {
    validate_spec_level(spec);
    std::vector<ScenarioSpec> jobs = spec.expand();
    for (const auto& job : jobs) {
        job.validate();
    }
    for (auto& job : jobs) {
        job.threads = options.threads_per_job;
    }

    std::vector<std::uint64_t> job_fingerprints;
    job_fingerprints.reserve(jobs.size());
    for (const auto& job : jobs) {
        job_fingerprints.push_back(scenario_spec_fingerprint(job));
    }

    SweepResult result;
    result.name = spec.name;
    result.jobs = jobs.size();
    result.fingerprint = sweep_fingerprint(spec.name, job_fingerprints);
    result.cache_cold = analyze_cache_cold(jobs);
    result.results.resize(jobs.size());
    result.job_records.resize(jobs.size());

    // Resume: replay journal records whose sweep AND job fingerprints match
    // the freshly expanded spec. A header mismatch (different spec, torn
    // header, missing file) discards the journal wholesale and the sweep
    // starts clean.
    bool journal_matches = false;
    if (options.resume && !options.journal_path.empty()) {
        const JournalContents contents = read_journal(options.journal_path);
        journal_matches = contents.header_ok && contents.fingerprint == result.fingerprint &&
                          contents.jobs == jobs.size();
        if (journal_matches) {
            for (const auto& record : contents.records) {
                if (record.job < jobs.size() &&
                    record.fingerprint == job_fingerprints[record.job] &&
                    !result.job_records[record.job].resumed) {
                    result.results[record.job] = record.result;
                    auto& job_record = result.job_records[record.job];
                    job_record.attempts = record.attempts;
                    job_record.resumed = true;
                    ++result.resumed_jobs;
                }
            }
        }
    }

    SweepJournal journal;
    if (!options.journal_path.empty()) {
        // A matched resume appends after the surviving records; anything
        // else starts a fresh journal (truncating stale or foreign content).
        journal.open(options.journal_path, spec.name, result.fingerprint, jobs.size(),
                     /*append=*/journal_matches);
    }

    std::vector<std::size_t> pending;
    pending.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!result.job_records[i].resumed) {
            pending.push_back(i);
        }
    }

    CodebookCache& cache = CodebookCache::instance();
    const CodebookCache::Stats before = cache.stats();

    ThreadPool pool(ThreadPool::worker_count_for(options.workers, pending.size()));
    result.workers = pool.worker_count();
    const auto start = std::chrono::steady_clock::now();
    // Per-job result slots keyed by job index: no ordering between jobs, and
    // the merged output is independent of which worker ran what. run_one_job
    // never throws, so one failing job cannot take the sweep down with it.
    pool.parallel_for(pending.size(), [&](std::size_t, std::size_t i) {
        const std::size_t job = pending[i];
        run_one_job(jobs[job], job, job_fingerprints[job], spec.max_retries,
                    options.job_timeout_seconds, options.cancel, journal,
                    result.results[job], result.job_records[job]);
    });
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    journal.close();

    for (const auto& record : result.job_records) {
        if (record.error.has_value()) {
            ++result.failed_jobs;
        }
    }

    const CodebookCache::Stats after = cache.stats();
    result.cache.hits = after.hits - before.hits;
    result.cache.builds = after.builds - before.builds;
    result.cache.evictions = after.evictions - before.evictions;
    result.cache.evictions_capacity = after.evictions_capacity - before.evictions_capacity;
    result.cache.oversize_uncached = after.oversize_uncached - before.oversize_uncached;
    result.cache.bytes_resident = after.bytes_resident;  // snapshot, not a delta
    result.cache.coloring_hits = after.coloring_hits - before.coloring_hits;
    result.cache.coloring_builds = after.coloring_builds - before.coloring_builds;
    result.cache.coloring_evictions =
        after.coloring_evictions - before.coloring_evictions;
    return result;
}

void sweep_results_json(JsonWriter& json, const SweepResult& result) {
    json.begin_object();
    json.kv("schema", "nb-sweep/v1");
    json.kv("sweep", result.name);
    json.kv("jobs", result.jobs);
    // The analytic cold-start counters, not the measured deltas: measured
    // values depend on what resume skipped, what retries repeated, and (under
    // eviction pressure) job completion order — all things the byte-identity
    // contract must be immune to. The analytic block is a pure function of
    // the job list. The measured delta stays available in SweepResult.cache
    // for the console report and the cache-sharing tests.
    json.key("codebook_cache");
    json.begin_object();
    json.kv("hits", result.cache_cold.hits);
    json.kv("builds", result.cache_cold.builds);
    json.kv("coloring_hits", result.cache_cold.coloring_hits);
    json.kv("coloring_builds", result.cache_cold.coloring_builds);
    json.end_object();
    json.key("results").begin_array();
    for (std::size_t i = 0; i < result.results.size(); ++i) {
        const SweepJobRecord* record =
            i < result.job_records.size() ? &result.job_records[i] : nullptr;
        if (record != nullptr && record->error.has_value()) {
            // A permanently failed job: name + classification, no numbers.
            // kind and site are deterministic; the exception text (which may
            // embed addresses or counts) is kept out of the canonical bytes.
            json.begin_object();
            json.kv("name", result.results[i].name);
            json.key("error");
            json.begin_object();
            json.kv("kind", record->error->kind);
            json.kv("site", record->error->site);
            json.end_object();
            json.end_object();
            continue;
        }
        scenario_result_json(json, result.results[i], /*include_timing=*/false);
    }
    json.end_array();
    json.end_object();
}

}  // namespace nb
