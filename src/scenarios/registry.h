// Named scenario registry: the shipped specs `nb_run` executes, plus the
// spec builders the migrated sweep benches (E5/E6/E11) share with it —
// a bench sweep point and the registered spec of the same name are the
// same ScenarioSpec value, so their numbers agree by construction.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "scenarios/scenario.h"
#include "scenarios/sweep.h"

namespace nb::scenarios {

/// E5 (Theorem 11, Delta-scaling): one sweep point at the given degree on
/// the n=256 near-regular graph, on either transport.
ScenarioSpec e5_overhead_point(std::size_t degree, TransportKind transport);

/// E6 (Theorem 11, n-scaling): one sweep point at the given node count,
/// degree ~8.
ScenarioSpec e6_overhead_point(std::size_t n);

/// E11 (Section 1.3 noise sweep): n=64, Delta~8, the given noise rate and
/// constant, 8 rounds.
ScenarioSpec e11_noise_point(double epsilon, std::size_t c_eps);

/// All shipped specs, in display order: the bench-mirror points above plus
/// the non-i.i.d. channel showcases (Gilbert-Elliott bursts, PODS-style
/// per-node heterogeneity, adversarial erasure budgets) and a fault-window
/// scenario. Names are unique.
const std::vector<ScenarioSpec>& shipped_scenarios();

/// Large-n sharded-transport demos: ring topologies at n = 10^5 and 10^6
/// run through ShardedTransport (the CI scale smoke executes the latter).
/// Deliberately not part of shipped_scenarios(): the shipped sweep's job
/// count and runtime are pinned by tests and CI budgets. find_scenario()
/// resolves them, so `nb_run demo-shard-100k` works like any shipped name.
const std::vector<ScenarioSpec>& demo_scenarios();

/// The shipped or demo spec with this name, or nullptr.
const ScenarioSpec* find_scenario(std::string_view name);

/// The `nb_run --sweep` default: every shipped spec crossed with the given
/// workload seeds. The acceptance suite runs this sweep at worker counts 1
/// and 8 and pins byte-identical JSON plus strictly fewer codebook builds
/// than jobs (the n=64 specs with equal code parameters share one build).
SweepSpec shipped_sweep(std::vector<std::uint64_t> seeds = {1, 2, 3});

}  // namespace nb::scenarios
