#include "scenarios/spec_json.h"

#include <cstdio>
#include <initializer_list>
#include <string>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/json_parse.h"

namespace nb {

namespace {

// Fired at spec-parse entry: the "operator handed us a file" boundary the
// bad-input tests and fault-injection CI arm to prove a parse failure is a
// one-line diagnostic and exit 2, never a crash or a partial sweep.
NB_FAILPOINT_DEFINE(fp_scenario_parse, "scenario.parse");

/// Diagnostic context: the file path plus the JSON path to the field being
/// parsed ("spec.json: scenarios[2].topology.family"). Built incrementally
/// as the cursor descends; fail() raises precondition_error with the full
/// location so every error names exactly one field.
struct Cursor {
    const JsonValue& value;
    const std::string& context;  ///< the file path (error prefix)
    std::string path;            ///< JSON path within the document

    Cursor child(const JsonValue& v, const std::string& key) const {
        return Cursor{v, context, path.empty() ? key : path + "." + key};
    }
    Cursor element(const JsonValue& v, std::size_t index) const {
        return Cursor{v, context, path + "[" + std::to_string(index) + "]"};
    }

    [[noreturn]] void fail(const std::string& reason) const {
        throw precondition_error(context + ": " + (path.empty() ? "document" : path) +
                                 ": " + reason);
    }
};

const char* kind_label(JsonValue::Kind kind) {
    switch (kind) {
        case JsonValue::Kind::null: return "null";
        case JsonValue::Kind::boolean: return "a boolean";
        case JsonValue::Kind::number: return "a number";
        case JsonValue::Kind::string: return "a string";
        case JsonValue::Kind::array: return "an array";
        case JsonValue::Kind::object: return "an object";
    }
    return "a value";
}

/// Re-raise a typed-accessor error (wrong kind, range, fraction) at the
/// cursor's location instead of the parser's bare message.
template <typename Fn>
auto at(const Cursor& cursor, Fn&& fn) -> decltype(fn()) {
    try {
        return fn();
    } catch (const precondition_error& e) {
        cursor.fail(e.what());
    }
}

const JsonValue& expect_object(const Cursor& cursor) {
    if (!cursor.value.is_object()) {
        cursor.fail(std::string("expected an object, got ") + kind_label(cursor.value.kind()));
    }
    return cursor.value;
}

const JsonValue& expect_array(const Cursor& cursor) {
    if (!cursor.value.is_array()) {
        cursor.fail(std::string("expected an array, got ") + kind_label(cursor.value.kind()));
    }
    return cursor.value;
}

/// Typos must not silently run a default experiment: every object parser
/// declares its legal keys and anything else is an error naming the key.
void reject_unknown_keys(const Cursor& cursor,
                         std::initializer_list<std::string_view> allowed) {
    for (const auto& [key, value] : cursor.value.members()) {
        bool known = false;
        for (const auto candidate : allowed) {
            if (key == candidate) {
                known = true;
                break;
            }
        }
        if (!known) {
            cursor.child(value, key).fail("unknown field");
        }
    }
}

// Optional-field helpers: absent means "keep the struct default".

void opt_string(const Cursor& parent, const char* key, std::string& out) {
    if (const JsonValue* v = parent.value.find(key)) {
        const Cursor c = parent.child(*v, key);
        out = at(c, [&] { return v->as_string(); });
    }
}

void opt_size(const Cursor& parent, const char* key, std::size_t& out) {
    if (const JsonValue* v = parent.value.find(key)) {
        const Cursor c = parent.child(*v, key);
        out = static_cast<std::size_t>(at(c, [&] { return v->as_uint64(); }));
    }
}

void opt_u64(const Cursor& parent, const char* key, std::uint64_t& out) {
    if (const JsonValue* v = parent.value.find(key)) {
        const Cursor c = parent.child(*v, key);
        out = at(c, [&] { return v->as_uint64(); });
    }
}

void opt_double(const Cursor& parent, const char* key, double& out) {
    if (const JsonValue* v = parent.value.find(key)) {
        const Cursor c = parent.child(*v, key);
        out = at(c, [&] { return v->as_double(); });
    }
}

void opt_bool(const Cursor& parent, const char* key, bool& out) {
    if (const JsonValue* v = parent.value.find(key)) {
        const Cursor c = parent.child(*v, key);
        out = at(c, [&] { return v->as_bool(); });
    }
}

TopologySpec::Family parse_family(const Cursor& cursor) {
    const std::string& name = at(cursor, [&] { return cursor.value.as_string(); });
    using Family = TopologySpec::Family;
    static constexpr std::pair<std::string_view, Family> families[] = {
        {"complete", Family::complete},
        {"complete_bipartite", Family::complete_bipartite},
        {"hard_instance", Family::hard_instance},
        {"ring", Family::ring},
        {"path", Family::path},
        {"star", Family::star},
        {"grid", Family::grid},
        {"tree", Family::tree},
        {"erdos_renyi", Family::erdos_renyi},
        {"random_regular", Family::random_regular},
        {"random_geometric", Family::random_geometric},
    };
    for (const auto& [tag, family] : families) {
        if (name == tag) {
            return family;
        }
    }
    cursor.fail("unknown topology family '" + name +
                "' (expected complete, complete_bipartite, hard_instance, ring, path, "
                "star, grid, tree, erdos_renyi, random_regular, or random_geometric)");
}

TopologySpec parse_topology(const Cursor& cursor) {
    expect_object(cursor);
    reject_unknown_keys(cursor, {"family", "n", "degree", "edge_probability", "radius",
                                 "rows", "cols", "seed"});
    TopologySpec topology;
    if (const JsonValue* v = cursor.value.find("family")) {
        topology.family = parse_family(cursor.child(*v, "family"));
    }
    opt_size(cursor, "n", topology.n);
    opt_size(cursor, "degree", topology.degree);
    opt_double(cursor, "edge_probability", topology.edge_probability);
    opt_double(cursor, "radius", topology.radius);
    opt_size(cursor, "rows", topology.rows);
    opt_size(cursor, "cols", topology.cols);
    opt_u64(cursor, "seed", topology.seed);
    return topology;
}

ChannelModel parse_channel(const Cursor& cursor) {
    expect_object(cursor);
    reject_unknown_keys(cursor,
                        {"kind", "epsilon", "noise_on_own_beep", "p_enter_burst",
                         "p_exit_burst", "epsilon_good", "epsilon_bad", "epsilon_min",
                         "epsilon_max", "seed", "budget"});
    ChannelModel channel;
    if (const JsonValue* v = cursor.value.find("kind")) {
        const Cursor c = cursor.child(*v, "kind");
        const std::string& kind = at(c, [&] { return v->as_string(); });
        if (kind == "iid") {
            channel.kind = ChannelModelKind::iid;
        } else if (kind == "gilbert_elliott") {
            channel.kind = ChannelModelKind::gilbert_elliott;
        } else if (kind == "heterogeneous") {
            channel.kind = ChannelModelKind::heterogeneous;
        } else if (kind == "adversarial_budget") {
            channel.kind = ChannelModelKind::adversarial_budget;
        } else {
            c.fail("unknown channel kind '" + kind +
                   "' (expected iid, gilbert_elliott, heterogeneous, or "
                   "adversarial_budget)");
        }
    }
    opt_double(cursor, "epsilon", channel.epsilon);
    opt_bool(cursor, "noise_on_own_beep", channel.noise_on_own_beep);
    opt_double(cursor, "p_enter_burst", channel.ge_p_enter_burst);
    opt_double(cursor, "p_exit_burst", channel.ge_p_exit_burst);
    opt_double(cursor, "epsilon_good", channel.ge_epsilon_good);
    opt_double(cursor, "epsilon_bad", channel.ge_epsilon_bad);
    opt_double(cursor, "epsilon_min", channel.het_epsilon_min);
    opt_double(cursor, "epsilon_max", channel.het_epsilon_max);
    opt_u64(cursor, "seed", channel.het_seed);
    opt_size(cursor, "budget", channel.adv_budget);
    return channel;
}

std::vector<NodeId> parse_node_list(const Cursor& cursor) {
    expect_array(cursor);
    std::vector<NodeId> nodes;
    nodes.reserve(cursor.value.items().size());
    for (std::size_t i = 0; i < cursor.value.items().size(); ++i) {
        const Cursor c = cursor.element(cursor.value.items()[i], i);
        nodes.push_back(
            static_cast<NodeId>(at(c, [&] { return c.value.as_uint64(); })));
    }
    return nodes;
}

FaultWindow parse_fault_window(const Cursor& cursor) {
    expect_object(cursor);
    reject_unknown_keys(cursor, {"first_round", "last_round", "jammers", "crashed"});
    FaultWindow window;
    opt_size(cursor, "first_round", window.first_round);
    opt_size(cursor, "last_round", window.last_round);
    if (const JsonValue* v = cursor.value.find("jammers")) {
        window.faults.jammers = parse_node_list(cursor.child(*v, "jammers"));
    }
    if (const JsonValue* v = cursor.value.find("crashed")) {
        window.faults.crashed = parse_node_list(cursor.child(*v, "crashed"));
    }
    return window;
}

ScenarioSpec parse_scenario(const Cursor& cursor) {
    expect_object(cursor);
    reject_unknown_keys(cursor,
                        {"name", "description", "topology", "channel", "transport",
                         "workload", "faults", "rounds", "decoder_epsilon", "c_eps",
                         "dictionary", "decoy_count", "threads", "shards",
                         "bitslice_min_candidates", "tdma_repetitions"});
    ScenarioSpec spec;
    const JsonValue* name = cursor.value.find("name");
    if (name == nullptr) {
        cursor.fail("missing required field 'name'");
    }
    spec.name = at(cursor.child(*name, "name"), [&] { return name->as_string(); });
    if (spec.name.empty()) {
        cursor.child(*name, "name").fail("scenario name must be non-empty");
    }
    opt_string(cursor, "description", spec.description);
    if (const JsonValue* v = cursor.value.find("topology")) {
        spec.topology = parse_topology(cursor.child(*v, "topology"));
    }
    if (const JsonValue* v = cursor.value.find("channel")) {
        spec.channel = parse_channel(cursor.child(*v, "channel"));
    }
    if (const JsonValue* v = cursor.value.find("transport")) {
        const Cursor c = cursor.child(*v, "transport");
        const std::string& kind = at(c, [&] { return v->as_string(); });
        if (kind == "beep") {
            spec.transport = TransportKind::beep;
        } else if (kind == "tdma") {
            spec.transport = TransportKind::tdma;
        } else {
            c.fail("unknown transport '" + kind + "' (expected beep or tdma)");
        }
    }
    if (const JsonValue* v = cursor.value.find("workload")) {
        const Cursor c = cursor.child(*v, "workload");
        expect_object(c);
        reject_unknown_keys(c, {"message_bits", "silent_fraction", "seed"});
        opt_size(c, "message_bits", spec.workload.message_bits);
        opt_double(c, "silent_fraction", spec.workload.silent_fraction);
        opt_u64(c, "seed", spec.workload.seed);
    }
    if (const JsonValue* v = cursor.value.find("faults")) {
        const Cursor c = cursor.child(*v, "faults");
        expect_array(c);
        for (std::size_t i = 0; i < v->items().size(); ++i) {
            spec.faults.push_back(parse_fault_window(c.element(v->items()[i], i)));
        }
    }
    opt_size(cursor, "rounds", spec.rounds);
    opt_double(cursor, "decoder_epsilon", spec.decoder_epsilon);
    opt_size(cursor, "c_eps", spec.c_eps);
    if (const JsonValue* v = cursor.value.find("dictionary")) {
        const Cursor c = cursor.child(*v, "dictionary");
        const std::string& policy = at(c, [&] { return v->as_string(); });
        if (policy == "two_hop") {
            spec.dictionary = DictionaryPolicy::two_hop;
        } else if (policy == "all_nodes") {
            spec.dictionary = DictionaryPolicy::all_nodes;
        } else {
            c.fail("unknown dictionary policy '" + policy +
                   "' (expected two_hop or all_nodes)");
        }
    }
    opt_size(cursor, "decoy_count", spec.decoy_count);
    opt_size(cursor, "threads", spec.threads);
    opt_size(cursor, "shards", spec.shards);
    opt_size(cursor, "bitslice_min_candidates", spec.bitslice_min_candidates);
    opt_size(cursor, "tdma_repetitions", spec.tdma_repetitions);
    return spec;
}

SweepAxes parse_axes(const Cursor& cursor) {
    expect_object(cursor);
    reject_unknown_keys(cursor, {"topologies", "node_counts", "channels", "epsilons",
                                 "seeds", "shard_counts"});
    SweepAxes axes;
    if (const JsonValue* v = cursor.value.find("topologies")) {
        const Cursor c = cursor.child(*v, "topologies");
        expect_array(c);
        for (std::size_t i = 0; i < v->items().size(); ++i) {
            axes.topologies.push_back(parse_topology(c.element(v->items()[i], i)));
        }
    }
    if (const JsonValue* v = cursor.value.find("node_counts")) {
        const Cursor c = cursor.child(*v, "node_counts");
        expect_array(c);
        for (std::size_t i = 0; i < v->items().size(); ++i) {
            const Cursor e = c.element(v->items()[i], i);
            axes.node_counts.push_back(
                static_cast<std::size_t>(at(e, [&] { return e.value.as_uint64(); })));
        }
    }
    if (const JsonValue* v = cursor.value.find("channels")) {
        const Cursor c = cursor.child(*v, "channels");
        expect_array(c);
        for (std::size_t i = 0; i < v->items().size(); ++i) {
            axes.channels.push_back(parse_channel(c.element(v->items()[i], i)));
        }
    }
    if (const JsonValue* v = cursor.value.find("epsilons")) {
        const Cursor c = cursor.child(*v, "epsilons");
        expect_array(c);
        for (std::size_t i = 0; i < v->items().size(); ++i) {
            const Cursor e = c.element(v->items()[i], i);
            axes.epsilons.push_back(at(e, [&] { return e.value.as_double(); }));
        }
    }
    if (const JsonValue* v = cursor.value.find("seeds")) {
        const Cursor c = cursor.child(*v, "seeds");
        expect_array(c);
        for (std::size_t i = 0; i < v->items().size(); ++i) {
            const Cursor e = c.element(v->items()[i], i);
            axes.seeds.push_back(at(e, [&] { return e.value.as_uint64(); }));
        }
    }
    if (const JsonValue* v = cursor.value.find("shard_counts")) {
        const Cursor c = cursor.child(*v, "shard_counts");
        expect_array(c);
        for (std::size_t i = 0; i < v->items().size(); ++i) {
            const Cursor e = c.element(v->items()[i], i);
            axes.shard_counts.push_back(
                static_cast<std::size_t>(at(e, [&] { return e.value.as_uint64(); })));
        }
    }
    return axes;
}

}  // namespace

SweepSpec sweep_spec_from_json(std::string_view text, const std::string& context) {
    JsonValue document;
    try {
        document = JsonValue::parse(text);
    } catch (const precondition_error& e) {
        // Syntax errors carry "line:column: reason"; prepend the file.
        throw precondition_error(context + ": " + e.what());
    }
    return sweep_spec_from_value(document, context);
}

SweepSpec sweep_spec_from_value(const JsonValue& document, const std::string& context) {
    // The failpoint sits here, not in the text overload, so every spec
    // ingestion path crosses it — including nb_serve submissions, whose
    // request envelope is parsed once and handed over as a JsonValue.
    fp_scenario_parse.check();

    const Cursor root{document, context, ""};
    expect_object(root);
    reject_unknown_keys(root, {"schema", "sweep", "max_retries", "scenarios", "axes"});

    const JsonValue* schema = document.find("schema");
    if (schema == nullptr) {
        root.fail("missing required field 'schema' (expected \"nb-spec/v1\")");
    }
    const Cursor schema_cursor = root.child(*schema, "schema");
    if (at(schema_cursor, [&] { return schema->as_string(); }) != "nb-spec/v1") {
        schema_cursor.fail("unknown schema '" + schema->as_string() +
                           "' (this build reads nb-spec/v1)");
    }

    SweepSpec spec;
    spec.name = "spec-file";
    opt_string(root, "sweep", spec.name);
    opt_size(root, "max_retries", spec.max_retries);

    const JsonValue* scenarios = document.find("scenarios");
    if (scenarios == nullptr) {
        root.fail("missing required field 'scenarios'");
    }
    const Cursor scenarios_cursor = root.child(*scenarios, "scenarios");
    expect_array(scenarios_cursor);
    if (scenarios->items().empty()) {
        scenarios_cursor.fail("at least one scenario is required");
    }
    for (std::size_t i = 0; i < scenarios->items().size(); ++i) {
        spec.bases.push_back(
            parse_scenario(scenarios_cursor.element(scenarios->items()[i], i)));
    }

    if (const JsonValue* axes = document.find("axes")) {
        spec.axes = parse_axes(root.child(*axes, "axes"));
    }
    return spec;
}

SweepSpec load_sweep_spec(const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    require(file != nullptr, path + ": cannot open spec file");
    std::string text;
    char buffer[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
        text.append(buffer, got);
    }
    const bool read_error = std::ferror(file) != 0;
    std::fclose(file);
    require(!read_error, path + ": read error");
    return sweep_spec_from_json(text, path);
}

}  // namespace nb
