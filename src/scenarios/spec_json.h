// User-authored sweep specs: the nb-spec/v1 JSON schema `nb_run --spec`
// loads (see DESIGN.md section 9 and the README quickstart).
//
// The registry ships a fixed menu of scenarios; a spec file makes the whole
// declarative layer reachable without recompiling — any topology family,
// channel model, fault schedule, workload, and axis set the C++ structs
// express. Shape:
//
//   {
//     "schema": "nb-spec/v1",
//     "sweep": "my-sweep",
//     "max_retries": 2,
//     "scenarios": [
//       {"name": "a", "transport": "beep", "rounds": 4,
//        "topology": {"family": "random_regular", "n": 64, "degree": 8},
//        "channel": {"kind": "iid", "epsilon": 0.05},
//        "workload": {"message_bits": 16, "seed": 1},
//        "faults": [{"first_round": 1, "last_round": 2, "jammers": [0]}]}
//     ],
//     "axes": {"seeds": [1, 2, 3], "epsilons": [0.05, 0.1]}
//   }
//
// Every field except "schema", "scenarios", and each scenario's "name" is
// optional and defaults to the corresponding struct default. Unknown keys
// are rejected, not ignored: a typo'd "topolgy" silently running the
// default topology would report numbers for an experiment nobody asked for.
//
// Error contract (the "never crashes on bad input" satellite): every
// malformed input — unreadable file, JSON syntax error, wrong type, unknown
// enum tag, out-of-range value — surfaces as a precondition_error whose
// message names the file, the JSON path of the offending field (e.g.
// "scenarios[2].topology.family"), and the reason. nb_run turns that into
// one diagnostic line and exit code 2; the golden CLI test pins the format.
#pragma once

#include <string>
#include <string_view>

#include "common/json_parse.h"
#include "scenarios/sweep.h"

namespace nb {

/// Parse an nb-spec/v1 document. `context` prefixes every diagnostic
/// (callers pass the file path). Throws precondition_error on any malformed
/// input; the returned spec is structurally valid but not yet
/// spec.validate()'d (run_sweep does that, so semantic errors also name
/// their job).
SweepSpec sweep_spec_from_json(std::string_view text, const std::string& context);

/// Same, from an already-parsed JSON document — the path nb_serve uses: its
/// request envelope is parsed once and the spec subtree handed over without
/// reserializing. Carries the same error contract (diagnostics are prefixed
/// with `context`) and crosses the same scenario.parse failpoint.
SweepSpec sweep_spec_from_value(const JsonValue& document, const std::string& context);

/// Read `path` and parse it. Throws precondition_error (naming the path) if
/// the file cannot be read.
SweepSpec load_sweep_spec(const std::string& path);

}  // namespace nb
