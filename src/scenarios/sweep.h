// Scenario sweeps: ScenarioSpec templates × axes, expanded to a
// deterministic job list and executed in parallel with deterministic
// aggregation (see DESIGN.md section 7).
//
// PR 3 made a single "what if" question a ScenarioSpec; the questions worth
// asking come in families — the same experiment across seeds, channel
// models, topologies, noise rates, and network sizes. A SweepSpec is that
// family as data: expand() produces one ScenarioSpec per point of the
// cartesian product (bases × each non-empty axis) in a fixed nested order,
// run_sweep() executes the jobs on a ThreadPool whose workers claim jobs
// from a shared atomic cursor (work stealing in the only sense that matters
// for independent jobs: an idle worker takes the next unclaimed job, so
// stragglers never serialize the sweep), and results land in per-job slots
// merged in job-index order — the aggregate is a pure function of the spec,
// byte-identical for any worker count.
//
// Jobs run with threads_per_job transport workers (default 1): sweep
// parallelism comes from running jobs concurrently, not from nesting pools
// inside pools. Concurrent jobs that agree on codebook build parameters
// share one build through the process-wide CodebookCache; run_sweep reports
// the cache-counter delta so benches and tests can pin "strictly fewer
// builds than jobs".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "scenarios/scenario.h"
#include "sim/codebook_cache.h"

namespace nb {

/// The sweep axes. An empty axis keeps the base spec's value; a non-empty
/// one overrides it with each listed value in turn. Nesting order (outermost
/// first): base, topology, n, channel, epsilon, seed.
struct SweepAxes {
    /// Replaces the whole TopologySpec.
    std::vector<TopologySpec> topologies;

    /// Overrides topology.n (the graph families that ignore n — grid — are
    /// rejected by validate(): a silent no-op axis would mislabel results).
    std::vector<std::size_t> node_counts;

    /// Replaces the ChannelModel (decoder_epsilon is kept from the base).
    std::vector<ChannelModel> channels;

    /// Noise-rate axis: replaces the channel with iid(eps) and resets
    /// decoder_epsilon to "derive from the channel" — the E11 sweep shape.
    /// Mutually exclusive with `channels` (both drive the same field;
    /// validate() rejects the combination rather than silently letting one
    /// overwrite the other under the other's label).
    std::vector<double> epsilons;

    /// Overrides workload.seed (fresh per-node messages per seed).
    std::vector<std::uint64_t> seeds;
};

struct SweepSpec {
    std::string name;                  ///< JSON "sweep" field
    std::vector<ScenarioSpec> bases;   ///< the spec templates (names unique)
    SweepAxes axes;

    /// bases.size() × the product of the non-empty axis lengths.
    std::size_t job_count() const noexcept;

    /// The job list: one fully-resolved ScenarioSpec per sweep point, in the
    /// fixed nested order, each named base.name plus one "/axis=value"
    /// suffix per non-empty axis.
    std::vector<ScenarioSpec> expand() const;

    /// Validates the spec and every expanded job; throws precondition_error.
    void validate() const;
};

struct SweepOptions {
    std::size_t workers = 0;          ///< sweep workers (0 = hardware concurrency)
    std::size_t threads_per_job = 1;  ///< transport threads inside each job
};

struct SweepResult {
    std::string name;
    std::size_t jobs = 0;
    std::size_t workers = 0;          ///< resolved sweep worker count
    CodebookCache::Stats cache;       ///< cache-counter delta over this sweep
    std::vector<ScenarioResult> results;  ///< one per job, in expand() order
    double wall_seconds = 0.0;        ///< whole-sweep wall clock
};

/// Execute every job of the sweep. Deterministic aggregation: results are
/// keyed by job index, so everything except wall_seconds (and the cache
/// delta, if outside threads use the cache concurrently) is a pure function
/// of the spec. A job that throws aborts the sweep with that exception.
SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options = {});

/// Serialize in the nb-sweep/v1 schema: {"schema", "sweep", "jobs",
/// "codebook_cache": {hits, builds, coloring_*}, "results": [...]}.
/// Timing fields and the worker count are deliberately omitted, and the
/// cache-counter block degrades to the string "evicted" if the sweep
/// overflowed the cache (counter values are order-dependent under eviction
/// pressure; whether pressure occurred is not) — so the artifact is
/// byte-identical for any worker count, unconditionally (the determinism
/// suite pins this; see DESIGN.md section 7).
void sweep_results_json(JsonWriter& json, const SweepResult& result);

}  // namespace nb
