// Scenario sweeps: ScenarioSpec templates × axes, expanded to a
// deterministic job list and executed in parallel with deterministic
// aggregation and per-job failure isolation (see DESIGN.md sections 7, 9).
//
// PR 3 made a single "what if" question a ScenarioSpec; the questions worth
// asking come in families — the same experiment across seeds, channel
// models, topologies, noise rates, and network sizes. A SweepSpec is that
// family as data: expand() produces one ScenarioSpec per point of the
// cartesian product (bases × each non-empty axis) in a fixed nested order,
// run_sweep() executes the jobs on a ThreadPool whose workers claim jobs
// from a shared atomic cursor (work stealing in the only sense that matters
// for independent jobs: an idle worker takes the next unclaimed job, so
// stragglers never serialize the sweep), and results land in per-job slots
// merged in job-index order — the aggregate is a pure function of the spec,
// byte-identical for any worker count.
//
// Failure isolation (PR 7): each job runs under its own error boundary, so
// one throwing job no longer unwinds the sweep. Failures are classified —
// transient (injected faults, allocation failure, unknown exceptions),
// timeout (the per-job watchdog deadline), fatal (precondition/invariant
// violations) — and non-fatal ones retry up to SweepSpec::max_retries.
// Because run_scenario is a pure function of its spec, a retry re-executes
// bit-identically: a sweep with injected transient faults that eventually
// succeeds is byte-identical to a clean run (property-tested). Completed
// jobs can be journaled (one fsync'd JSONL record each; scenarios/journal.h)
// and replayed by a resumed sweep, with the same byte-identity guarantee.
//
// Jobs run with threads_per_job transport workers (default 1): sweep
// parallelism comes from running jobs concurrently, not from nesting pools
// inside pools. Concurrent jobs that agree on codebook build parameters
// share one build through the process-wide CodebookCache; run_sweep reports
// the measured cache-counter delta so benches and tests can pin "strictly
// fewer builds than jobs", and computes the *analytic* cold-start counters
// (a pure function of the job list) for the canonical artifact — measured
// deltas would differ under resume or retries even though every result byte
// is the same.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/json.h"
#include "scenarios/scenario.h"
#include "sim/codebook_cache.h"

namespace nb {

/// The sweep axes. An empty axis keeps the base spec's value; a non-empty
/// one overrides it with each listed value in turn. Nesting order (outermost
/// first): base, topology, n, channel, epsilon, seed, shards.
struct SweepAxes {
    /// Replaces the whole TopologySpec.
    std::vector<TopologySpec> topologies;

    /// Overrides topology.n (the graph families that ignore n — grid — are
    /// rejected by validate(): a silent no-op axis would mislabel results).
    std::vector<std::size_t> node_counts;

    /// Replaces the ChannelModel (decoder_epsilon is kept from the base).
    std::vector<ChannelModel> channels;

    /// Noise-rate axis: replaces the channel with iid(eps) and resets
    /// decoder_epsilon to "derive from the channel" — the E11 sweep shape.
    /// Mutually exclusive with `channels` (both drive the same field;
    /// validate() rejects the combination rather than silently letting one
    /// overwrite the other under the other's label).
    std::vector<double> epsilons;

    /// Overrides workload.seed (fresh per-node messages per seed).
    std::vector<std::uint64_t> seeds;

    /// Overrides ScenarioSpec::shards (the sharded-transport partition
    /// count). An execution knob — every value produces bit-identical
    /// results — so this axis exists for throughput comparisons; the
    /// analytic cache block deliberately ignores it.
    std::vector<std::size_t> shard_counts;
};

struct SweepSpec {
    std::string name;                  ///< JSON "sweep" field
    std::vector<ScenarioSpec> bases;   ///< the spec templates (names unique)
    SweepAxes axes;

    /// Extra attempts a job gets after a transient or timeout failure (0 =
    /// fail on the first error). Fatal failures (precondition/invariant
    /// violations) never retry — re-running a bug is not resilience.
    std::size_t max_retries = 0;

    /// bases.size() × the product of the non-empty axis lengths.
    std::size_t job_count() const noexcept;

    /// The job list: one fully-resolved ScenarioSpec per sweep point, in the
    /// fixed nested order, each named base.name plus one "/axis=value"
    /// suffix per non-empty axis.
    std::vector<ScenarioSpec> expand() const;

    /// Validates the spec and every expanded job; throws precondition_error.
    void validate() const;
};

struct SweepOptions {
    std::size_t workers = 0;          ///< sweep workers (0 = hardware concurrency)
    std::size_t threads_per_job = 1;  ///< transport threads inside each job

    /// Watchdog deadline per job attempt, in seconds (0 = none). Enforced
    /// cooperatively: the job's CancelToken passes its deadline and the next
    /// round-boundary poll unwinds with cancelled_error — classified as a
    /// timeout, retryable.
    double job_timeout_seconds = 0.0;

    /// Checkpoint journal path (empty = no journal). One fsync'd record per
    /// completed job; see scenarios/journal.h.
    std::string journal_path;

    /// Replay completed jobs from journal_path before running the rest. A
    /// journal whose sweep fingerprint does not match the expanded spec is
    /// ignored wholesale; individual records are additionally matched by
    /// their per-job fingerprints.
    bool resume = false;

    /// External cancel/deadline token (null = none; not owned, must outlive
    /// the run_sweep call). Every per-attempt watchdog token links it as a
    /// parent, so an outer owner — nb_serve's per-job deadline, its drain
    /// hard-cancel — stops all of a sweep's jobs at their next poll even
    /// though they run on pool workers with their own tokens. Cancellation
    /// through this token classifies as "timeout", like the watchdog.
    const CancelToken* cancel = nullptr;
};

/// Why a job permanently failed (after exhausting its retry budget, or
/// immediately for fatal errors).
struct JobError {
    std::string kind;  ///< "transient" | "timeout" | "fatal"
    std::string site;  ///< failpoint site for injected faults, else ""
    std::string what;  ///< the exception message

    /// Fatal errors (precondition/invariant violations) never retry —
    /// re-running a bug is not resilience. Everything else is worth another
    /// attempt: transients may heal, timeouts may have been load.
    bool retryable() const noexcept { return kind != "fatal"; }
};

/// The one error classifier for job-shaped work, shared by the sweep
/// engine's per-job boundary and nb_serve's executor boundary so the two
/// report the same taxonomy: precondition/invariant violations are "fatal",
/// cancelled_error (watchdog deadline or drain cancel) is "timeout", and
/// injected faults (with their site), bad_alloc, and any other exception are
/// "transient". `error` must be non-null; the classified JobError carries
/// the exception message.
JobError classify_job_error(std::exception_ptr error);

/// Per-job execution detail. Deliberately *outside* the canonical
/// nb-sweep/v1 bytes (like the worker count and wall clock): attempt counts
/// and wall times depend on scheduling and injected faults, and the
/// artifact must be byte-identical across all of that.
struct SweepJobRecord {
    std::size_t attempts = 0;      ///< attempts actually made (resumed: journaled value)
    double wall_seconds = 0.0;     ///< this run's time on the job (resumed: 0)
    bool resumed = false;          ///< result replayed from the journal
    std::optional<JobError> error; ///< set iff the job permanently failed
};

/// Analytic cold-start cache counters: what a clean run on an empty cache
/// performs, as a pure function of the job list (distinct codebook keys /
/// distinct colored graphs). These — not the measured deltas — go into the
/// canonical artifact, so resume (which skips cache work) and retries
/// (which repeat it) cannot change the bytes.
struct SweepCacheAnalysis {
    std::uint64_t builds = 0;
    std::uint64_t hits = 0;
    std::uint64_t coloring_builds = 0;
    std::uint64_t coloring_hits = 0;
};

struct SweepResult {
    std::string name;
    std::size_t jobs = 0;
    std::size_t workers = 0;          ///< resolved sweep worker count
    std::uint64_t fingerprint = 0;    ///< whole-sweep fingerprint (journal header key)
    CodebookCache::Stats cache;       ///< measured cache-counter delta over this run
    SweepCacheAnalysis cache_cold;    ///< analytic cold-start counters (canonical)
    std::vector<ScenarioResult> results;      ///< one per job, in expand() order
    std::vector<SweepJobRecord> job_records;  ///< parallel to results
    std::size_t failed_jobs = 0;      ///< jobs with a permanent JobError
    std::size_t resumed_jobs = 0;     ///< jobs replayed from the journal
    double wall_seconds = 0.0;        ///< whole-sweep wall clock
};

/// Execute every job of the sweep. Deterministic aggregation: results are
/// keyed by job index, so everything except wall_seconds, attempt counts,
/// and the measured cache delta is a pure function of the spec. A job that
/// throws is isolated, classified, and retried per spec.max_retries; the
/// sweep always runs to completion and reports failures in job_records
/// (spec-level validation errors still throw precondition_error up front).
SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options = {});

/// Serialize in the nb-sweep/v1 schema: {"schema", "sweep", "jobs",
/// "codebook_cache": {hits, builds, coloring_*}, "results": [...]}.
/// Timing fields, attempt counts, and the worker count are deliberately
/// omitted, and the cache block is the analytic cold-start one — so the
/// artifact is byte-identical for any worker count, with or without
/// injected transient faults, retries, or resume (the determinism suite
/// pins this; see DESIGN.md sections 7 and 9). A permanently failed job
/// serializes as {"name", "error": {kind, site}} in its result slot.
void sweep_results_json(JsonWriter& json, const SweepResult& result);

}  // namespace nb
