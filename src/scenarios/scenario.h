// Declarative scenario layer: topology × channel model × fault schedule ×
// workload × rounds, executed by one runner.
//
// Before this layer, every "what if the channel / topology / faults were X"
// question was a new bench main() with its own graph construction, message
// generation, spec loop, and ad-hoc reporting — 16 copies and counting. A
// ScenarioSpec is the same experiment as data: the registry
// (scenarios/registry.h) ships named specs, the `nb_run` CLI executes them
// and emits one consistent JSON schema, and the sweep benches (E5/E6/E11)
// build their sweep points as specs and run them through the same
// run_scenario() path, so a bench number and an `nb_run` number for the
// same spec are the same number.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "beep/channel_model.h"
#include "baselines/tdma_transport.h"
#include "common/bitstring.h"
#include "common/json.h"
#include "graph/graph.h"
#include "sim/params.h"
#include "sim/transport.h"

namespace nb {

/// Which generator builds the scenario's graph, with the union of the
/// generator parameters (unused ones are ignored by build()).
struct TopologySpec {
    enum class Family : unsigned char {
        complete,
        complete_bipartite,
        hard_instance,  ///< the paper's lower-bound instance (Lemma 14)
        ring,
        path,
        star,
        grid,
        tree,
        erdos_renyi,
        random_regular,
        random_geometric,
    };

    Family family = Family::random_regular;
    std::size_t n = 64;            ///< node count (grid: rows*cols wins)
    std::size_t degree = 8;        ///< random_regular d / tree arity /
                                   ///< hard_instance delta / bipartite
                                   ///< left-part size (right = n - degree,
                                   ///< so max degree is max(degree, n-degree))
    double edge_probability = 0.1; ///< erdos_renyi p
    double radius = 0.25;          ///< random_geometric radius
    std::size_t rows = 0;          ///< grid rows (grid requires both set)
    std::size_t cols = 0;          ///< grid cols
    std::uint64_t seed = 1;        ///< randomized generators

    Graph build() const;
    const char* family_name() const noexcept;
    std::string describe() const;
};

/// Per-node broadcast inputs for every simulated round: each node is silent
/// with `silent_fraction` probability, otherwise carries a fresh random
/// message of `message_bits` bits, all drawn from Rng(seed) in node order.
/// With silent_fraction == 0 the draw sequence is exactly the historical
/// benches' "random message per node" loop, so migrated benches reproduce
/// their legacy workloads bit for bit.
struct WorkloadSpec {
    std::size_t message_bits = 16;
    double silent_fraction = 0.0;
    std::uint64_t seed = 1;

    std::vector<std::optional<Bitstring>> build(const Graph& graph) const;
};

/// Fault schedule entry: `faults` are active for every simulated round
/// (nonce) in [first_round, last_round]. Windows are matched in order; the
/// first containing window wins; rounds outside every window are fault-free.
struct FaultWindow {
    FaultModel faults;
    std::size_t first_round = 0;
    std::size_t last_round = std::numeric_limits<std::size_t>::max();
};

enum class TransportKind : unsigned char {
    beep,  ///< Algorithm 1 (BeepTransport)
    tdma,  ///< the prior-work G^2-coloring baseline
};

struct ScenarioSpec {
    std::string name;         ///< registry key; also the JSON "name"
    std::string description;  ///< one line for --list and reports

    TopologySpec topology;
    ChannelModel channel;     ///< physical channel (default: noiseless iid)
    TransportKind transport = TransportKind::beep;
    WorkloadSpec workload;
    std::vector<FaultWindow> faults;
    std::size_t rounds = 4;   ///< simulated Broadcast CONGEST rounds

    /// Decoder design epsilon; a negative value (default) means "derive
    /// from the channel" via ChannelModel::design_epsilon().
    double decoder_epsilon = -1.0;

    // Transport knobs, mirroring SimulationParams / TdmaParams defaults.
    std::size_t c_eps = 4;
    DictionaryPolicy dictionary = DictionaryPolicy::two_hop;
    std::size_t decoy_count = 32;
    std::size_t threads = 0;

    /// Transport partitioning (sharded_transport.h): > 1 runs the beep
    /// transport through ShardedTransport with this many shards. Like
    /// `threads`, an execution knob — outputs are bit-identical for every
    /// value, so it is excluded from the fingerprint and the result JSON.
    std::size_t shards = 1;
    std::size_t bitslice_min_candidates = 512;
    std::size_t tdma_repetitions = 0;  ///< 0 = recommended_repetitions(n, eps)

    double effective_decoder_epsilon() const;
    SimulationParams sim_params() const;
    TdmaParams tdma_params(std::size_t node_count) const;
    void validate() const;
};

/// Aggregated outcome of one executed scenario (sums over its rounds).
struct ScenarioResult {
    std::string name;
    std::string description;
    std::string topology;
    std::string channel;
    std::string transport;

    std::size_t node_count = 0;
    std::size_t max_degree = 0;
    std::size_t rounds = 0;
    std::size_t perfect_rounds = 0;
    std::size_t beep_rounds_per_round = 0;
    std::uint64_t total_beeps = 0;
    std::size_t phase1_false_negatives = 0;
    std::size_t phase1_false_positives = 0;
    std::size_t phase2_errors = 0;
    std::size_t delivery_mismatches = 0;
    double wall_seconds = 0.0;
    double rounds_per_second = 0.0;

    double perfect_fraction() const {
        return rounds == 0 ? 0.0
                           : static_cast<double>(perfect_rounds) / static_cast<double>(rounds);
    }
};

/// Execute one spec: build the topology and workload, construct the
/// transport, simulate all rounds through the batched simulate_rounds path,
/// and aggregate. Deterministic: a spec's result fields (wall time aside)
/// are a pure function of the spec.
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// run_scenario under a watchdog: a CancelToken armed with `now +
/// timeout_seconds` is installed for the run (the same token/scope path the
/// sweep engine's per-job watchdog uses), so a run that exceeds the budget
/// unwinds with cancelled_error at its next round-boundary poll instead of
/// hanging its caller. timeout_seconds <= 0 means no deadline — identical to
/// plain run_scenario. `nb_run --timeout` without --sweep goes through this.
ScenarioResult run_scenario_with_timeout(const ScenarioSpec& spec, double timeout_seconds);

/// Order-sensitive digest of every result-determining field of the spec —
/// the identity the sweep journal keys checkpoint records by. Execution
/// knobs that cannot change the result (threads) are excluded, so a resumed
/// sweep may change --workers/threads and still replay its journal; any
/// edit that could change a job's numbers changes the fingerprint and
/// invalidates the record (see DESIGN.md section 9).
std::uint64_t scenario_spec_fingerprint(const ScenarioSpec& spec);

/// Serialize one result as a JSON object. `include_timing` controls the
/// wall_seconds / rounds_per_second fields — the only nondeterministic ones;
/// the sweep schema omits them so its artifact is byte-identical for any
/// worker count, while the scenario schema keeps them.
void scenario_result_json(JsonWriter& json, const ScenarioResult& result,
                          bool include_timing);

/// Serialize results in the one scenario JSON schema
/// ({"schema": "nb-scenarios/v1", "results": [...]}) — shared by `nb_run`'s
/// BENCH_scenarios.json and any test or tool that wants the same shape.
void scenario_results_json(JsonWriter& json, std::span<const ScenarioResult> results);

}  // namespace nb
