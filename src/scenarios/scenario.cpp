#include "scenarios/scenario.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/cancel.h"
#include "common/error.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "sim/sharded_transport.h"

namespace nb {

Graph TopologySpec::build() const {
    Rng rng(seed);
    switch (family) {
        case Family::complete:
            return make_complete(n);
        case Family::complete_bipartite:
            // `degree` is the left-part size; the right part fills up to n.
            require(degree >= 1 && degree < n,
                    "TopologySpec: complete_bipartite needs 1 <= degree < n");
            return make_complete_bipartite(degree, n - degree);
        case Family::hard_instance:
            return make_hard_instance(n, degree);
        case Family::ring:
            return make_ring(n);
        case Family::path:
            return make_path(n);
        case Family::star:
            return make_star(n);
        case Family::grid:
            // rows*cols defines the node count; a half-specified grid would
            // silently shrink to rows x 1, so demand both dimensions.
            require(rows > 0 && cols > 0, "TopologySpec: grid needs rows and cols set");
            return make_grid(rows, cols);
        case Family::tree:
            return make_tree(n, degree);
        case Family::erdos_renyi:
            return make_erdos_renyi(n, edge_probability, rng);
        case Family::random_regular: {
            // The historical benches' parity fixup: the pairing model needs
            // n*d even, so an odd product bumps the degree by one.
            std::size_t d = degree;
            if ((n * d) % 2 != 0) {
                ++d;
            }
            return make_random_regular(n, d, rng);
        }
        case Family::random_geometric:
            return make_random_geometric(n, radius, rng);
    }
    throw precondition_error("TopologySpec: unknown family");
}

const char* TopologySpec::family_name() const noexcept {
    switch (family) {
        case Family::complete:
            return "complete";
        case Family::complete_bipartite:
            return "complete_bipartite";
        case Family::hard_instance:
            return "hard_instance";
        case Family::ring:
            return "ring";
        case Family::path:
            return "path";
        case Family::star:
            return "star";
        case Family::grid:
            return "grid";
        case Family::tree:
            return "tree";
        case Family::erdos_renyi:
            return "erdos_renyi";
        case Family::random_regular:
            return "random_regular";
        case Family::random_geometric:
            return "random_geometric";
    }
    return "unknown";
}

std::string TopologySpec::describe() const {
    char buffer[128];
    switch (family) {
        case Family::erdos_renyi:
            std::snprintf(buffer, sizeof buffer, "erdos_renyi(n=%zu, p=%.3g)", n,
                          edge_probability);
            break;
        case Family::random_geometric:
            std::snprintf(buffer, sizeof buffer, "random_geometric(n=%zu, r=%.3g)", n,
                          radius);
            break;
        case Family::grid:
            std::snprintf(buffer, sizeof buffer, "grid(%zux%zu)", rows, cols);
            break;
        case Family::random_regular:
        case Family::tree:
        case Family::complete_bipartite:
        case Family::hard_instance:
            std::snprintf(buffer, sizeof buffer, "%s(n=%zu, d=%zu)", family_name(), n,
                          degree);
            break;
        default:
            std::snprintf(buffer, sizeof buffer, "%s(n=%zu)", family_name(), n);
    }
    return buffer;
}

std::vector<std::optional<Bitstring>> WorkloadSpec::build(const Graph& graph) const {
    require(silent_fraction >= 0.0 && silent_fraction <= 1.0,
            "WorkloadSpec: silent_fraction must be in [0, 1]");
    Rng rng(seed);
    std::vector<std::optional<Bitstring>> messages(graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
        // No Bernoulli draw when silent_fraction == 0: the draw sequence
        // must match the legacy benches' plain per-node random loop.
        if (silent_fraction > 0.0 && rng.bernoulli(silent_fraction)) {
            continue;
        }
        messages[v] = Bitstring::random(rng, message_bits);
    }
    return messages;
}

double ScenarioSpec::effective_decoder_epsilon() const {
    return decoder_epsilon >= 0.0 ? decoder_epsilon : channel.design_epsilon();
}

SimulationParams ScenarioSpec::sim_params() const {
    SimulationParams params;
    params.epsilon = effective_decoder_epsilon();
    // Carry the explicit model only when it differs from iid(epsilon), so
    // iid scenarios exercise the default (paper) configuration path.
    if (!(channel.is_iid() && channel == ChannelModel::iid(params.epsilon))) {
        params.channel = channel;
    }
    params.message_bits = workload.message_bits;
    params.c_eps = c_eps;
    params.dictionary = dictionary;
    params.decoy_count = decoy_count;
    params.threads = threads;
    params.bitslice_min_candidates = bitslice_min_candidates;
    return params;
}

TdmaParams ScenarioSpec::tdma_params(std::size_t node_count) const {
    TdmaParams params;
    params.epsilon = effective_decoder_epsilon();
    if (!(channel.is_iid() && channel == ChannelModel::iid(params.epsilon))) {
        params.channel = channel;
    }
    params.message_bits = workload.message_bits;
    params.repetitions = tdma_repetitions > 0
                             ? tdma_repetitions
                             : TdmaParams::recommended_repetitions(node_count, params.epsilon);
    params.threads = threads;
    return params;
}

void ScenarioSpec::validate() const {
    require(!name.empty(), "ScenarioSpec: name must not be empty");
    require(rounds >= 1, "ScenarioSpec: at least one round required");
    require(shards >= 1, "ScenarioSpec: at least one shard required");
    channel.validate();
    for (const auto& window : faults) {
        require(window.first_round <= window.last_round,
                "ScenarioSpec: fault window must have first_round <= last_round");
        require(transport == TransportKind::beep || window.faults.empty(),
                "ScenarioSpec: the TDMA baseline does not model faults");
    }
    if (transport == TransportKind::beep) {
        sim_params().validate();
    }
}

namespace {

const FaultModel* faults_for_round(const std::vector<FaultWindow>& windows,
                                   std::size_t round) {
    for (const auto& window : windows) {
        if (round >= window.first_round && round <= window.last_round) {
            // First containing window wins — an explicitly empty one is a
            // clean window that shadows any catch-all behind it.
            return window.faults.empty() ? nullptr : &window.faults;
        }
    }
    return nullptr;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
    spec.validate();

    const Graph graph = spec.topology.build();
    // RoundSpec::messages/faults are non-owning: both live here, on the
    // runner's frame, for the whole simulate_rounds call.
    const std::vector<std::optional<Bitstring>> messages = spec.workload.build(graph);

    std::unique_ptr<Transport> transport;
    if (spec.transport == TransportKind::beep) {
        if (spec.shards > 1) {
            transport = std::make_unique<ShardedTransport>(graph, spec.sim_params(),
                                                           spec.shards);
        } else {
            transport = std::make_unique<BeepTransport>(graph, spec.sim_params());
        }
    } else {
        transport = std::make_unique<TdmaTransport>(graph, spec.tdma_params(graph.node_count()));
    }

    std::vector<RoundSpec> round_specs;
    round_specs.reserve(spec.rounds);
    for (std::uint64_t nonce = 0; nonce < spec.rounds; ++nonce) {
        round_specs.push_back(RoundSpec{&messages, nonce, faults_for_round(spec.faults, nonce)});
    }

    const auto start = std::chrono::steady_clock::now();
    const std::vector<TransportRound> rounds = transport->simulate_rounds(round_specs);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    ScenarioResult result;
    result.name = spec.name;
    result.description = spec.description;
    result.topology = spec.topology.describe();
    result.channel = spec.channel.describe();
    result.transport = spec.transport == TransportKind::beep ? "beep" : "tdma";
    result.node_count = graph.node_count();
    result.max_degree = graph.max_degree();
    result.rounds = rounds.size();
    result.wall_seconds = wall;
    result.rounds_per_second =
        wall > 0.0 ? static_cast<double>(rounds.size()) / wall : 0.0;
    for (const auto& round : rounds) {
        result.perfect_rounds += round.perfect ? 1 : 0;
        result.beep_rounds_per_round = round.beep_rounds;  // constant per transport
        result.total_beeps += round.total_beeps;
        result.phase1_false_negatives += round.phase1_false_negatives;
        result.phase1_false_positives += round.phase1_false_positives;
        result.phase2_errors += round.phase2_errors;
        result.delivery_mismatches += round.delivery_mismatches;
    }
    return result;
}

ScenarioResult run_scenario_with_timeout(const ScenarioSpec& spec, double timeout_seconds) {
    if (timeout_seconds <= 0.0) {
        return run_scenario(spec);
    }
    CancelToken token;
    token.set_timeout(std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(timeout_seconds)));
    // Same watchdog shape as the sweep engine's per-attempt token: the
    // transports' round-boundary polls see the deadline through the
    // thread-local scope, no plumbing through their signatures.
    CancelScope scope(&token);
    return run_scenario(spec);
}

std::uint64_t scenario_spec_fingerprint(const ScenarioSpec& spec) {
    std::uint64_t h = 0x6e622d737063ULL;  // "nb-spc"
    const auto mix = [&h](std::uint64_t value) { h = mix64(h ^ value); };
    const auto mix_double = [&mix](double value) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(value));
        std::memcpy(&bits, &value, sizeof(bits));
        mix(bits);
    };
    const auto mix_string = [&mix](const std::string& text) {
        mix(text.size());
        std::uint64_t word = 0;
        std::size_t fill = 0;
        for (const char c : text) {
            word = (word << 8) | static_cast<unsigned char>(c);
            if (++fill == 8) {
                mix(word);
                word = 0;
                fill = 0;
            }
        }
        if (fill != 0) {
            mix(word);
        }
    };

    mix_string(spec.name);
    mix_string(spec.description);

    mix(static_cast<std::uint64_t>(spec.topology.family));
    mix(spec.topology.n);
    mix(spec.topology.degree);
    mix_double(spec.topology.edge_probability);
    mix_double(spec.topology.radius);
    mix(spec.topology.rows);
    mix(spec.topology.cols);
    mix(spec.topology.seed);

    mix(static_cast<std::uint64_t>(spec.channel.kind));
    mix_double(spec.channel.epsilon);
    mix(spec.channel.noise_on_own_beep ? 1 : 0);
    mix_double(spec.channel.ge_p_enter_burst);
    mix_double(spec.channel.ge_p_exit_burst);
    mix_double(spec.channel.ge_epsilon_good);
    mix_double(spec.channel.ge_epsilon_bad);
    mix_double(spec.channel.het_epsilon_min);
    mix_double(spec.channel.het_epsilon_max);
    mix(spec.channel.het_seed);
    mix(spec.channel.adv_budget);

    mix(static_cast<std::uint64_t>(spec.transport));
    mix(spec.workload.message_bits);
    mix_double(spec.workload.silent_fraction);
    mix(spec.workload.seed);

    mix(spec.faults.size());
    for (const auto& window : spec.faults) {
        mix(window.first_round);
        mix(window.last_round);
        mix(window.faults.jammers.size());
        for (const NodeId v : window.faults.jammers) {
            mix(v);
        }
        mix(window.faults.crashed.size());
        for (const NodeId v : window.faults.crashed) {
            mix(v);
        }
    }

    mix(spec.rounds);
    mix_double(spec.decoder_epsilon);
    mix(spec.c_eps);
    mix(static_cast<std::uint64_t>(spec.dictionary));
    mix(spec.decoy_count);
    mix(spec.bitslice_min_candidates);
    mix(spec.tdma_repetitions);
    // spec.threads and spec.shards deliberately not mixed: execution knobs,
    // not inputs — outputs are bit-identical for every value, so a resumed
    // sweep may change either and still replay its journal.
    return h;
}

void scenario_result_json(JsonWriter& json, const ScenarioResult& r, bool include_timing) {
    json.begin_object();
    json.kv("name", r.name);
    json.kv("description", r.description);
    json.kv("topology", r.topology);
    json.kv("channel", r.channel);
    json.kv("transport", r.transport);
    json.kv("n", r.node_count);
    json.kv("delta", r.max_degree);
    json.kv("rounds", r.rounds);
    json.kv("perfect_rounds", r.perfect_rounds);
    json.kv("perfect_fraction", r.perfect_fraction());
    json.kv("beep_rounds_per_round", r.beep_rounds_per_round);
    json.kv("total_beeps", r.total_beeps);
    json.kv("phase1_false_negatives", r.phase1_false_negatives);
    json.kv("phase1_false_positives", r.phase1_false_positives);
    json.kv("phase2_errors", r.phase2_errors);
    json.kv("delivery_mismatches", r.delivery_mismatches);
    if (include_timing) {
        json.kv("wall_seconds", r.wall_seconds);
        json.kv("rounds_per_second", r.rounds_per_second);
    }
    json.end_object();
}

void scenario_results_json(JsonWriter& json, std::span<const ScenarioResult> results) {
    json.begin_object();
    json.kv("schema", "nb-scenarios/v1");
    json.key("results").begin_array();
    for (const auto& r : results) {
        scenario_result_json(json, r, /*include_timing=*/true);
    }
    json.end_array();
    json.end_object();
}

}  // namespace nb
