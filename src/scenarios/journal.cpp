#include "scenarios/journal.h"

#include <unistd.h>

#include <sstream>

#include "common/error.h"
#include "common/json_parse.h"

namespace nb {

namespace {

constexpr const char* journal_schema = "nb-sweep-journal/v1";

/// Required-field lookup with a diagnostic that names the field.
const JsonValue& member(const JsonValue& object, const char* key) {
    const JsonValue* value = object.find(key);
    require(value != nullptr, std::string("journal record: missing field '") + key + "'");
    return *value;
}

std::size_t member_size_t(const JsonValue& object, const char* key) {
    return static_cast<std::size_t>(member(object, key).as_uint64());
}

}  // namespace

SweepJournal::~SweepJournal() {
    close();
}

void SweepJournal::open(const std::string& path, const std::string& sweep_name,
                        std::uint64_t sweep_fingerprint, std::size_t jobs, bool append) {
    std::lock_guard<std::mutex> lock(mutex_);
    require(file_ == nullptr, "SweepJournal: already open");
    if (append) {
        // Drop a torn trailing line (what SIGKILL mid-append leaves) before
        // appending: without this, the first new record would concatenate
        // onto the torn bytes and corrupt itself too. The reader tolerates
        // the torn tail, but the healed journal must be fully replayable.
        if (std::FILE* existing = std::fopen(path.c_str(), "rb")) {
            std::string text;
            char buffer[1 << 16];
            std::size_t got = 0;
            while ((got = std::fread(buffer, 1, sizeof buffer, existing)) > 0) {
                text.append(buffer, got);
            }
            std::fclose(existing);
            if (!text.empty() && text.back() != '\n') {
                const std::size_t last_newline = text.find_last_of('\n');
                const off_t keep =
                    last_newline == std::string::npos
                        ? 0
                        : static_cast<off_t>(last_newline + 1);
                if (::truncate(path.c_str(), keep) != 0) {
                    throw precondition_error(
                        "SweepJournal: cannot drop the torn tail of '" + path + "'");
                }
            }
        }
    }
    file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
    require(file_ != nullptr, "SweepJournal: cannot open '" + path + "' for writing");
    path_ = path;
    if (!append) {
        std::ostringstream line;
        JsonWriter json(line, /*indent=*/0);
        json.begin_object();
        json.kv("schema", journal_schema);
        json.kv("sweep", sweep_name);
        json.kv("fingerprint", sweep_fingerprint);
        json.kv("jobs", static_cast<std::uint64_t>(jobs));
        json.end_object();
        const std::string text = line.str() + "\n";
        if (std::fwrite(text.data(), 1, text.size(), file_) != text.size() ||
            std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
            std::fclose(file_);
            file_ = nullptr;
            throw precondition_error("SweepJournal: cannot write the header to '" + path + "'");
        }
    }
}

void SweepJournal::append(const JournalRecord& record) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr) {
        return;
    }
    std::ostringstream line;
    JsonWriter json(line, /*indent=*/0);
    json.begin_object();
    json.kv("job", static_cast<std::uint64_t>(record.job));
    json.kv("fingerprint", record.fingerprint);
    json.kv("attempts", static_cast<std::uint64_t>(record.attempts));
    json.key("result");
    scenario_result_json(json, record.result, /*include_timing=*/false);
    json.end_object();
    const std::string text = line.str() + "\n";
    // One fully-formed line per completed job, durable before the append
    // returns: fwrite the whole line, then fflush + fsync. A crash between
    // records loses at most the record being written, which the reader's
    // drop-truncated-tail rule absorbs.
    if (std::fwrite(text.data(), 1, text.size(), file_) != text.size() ||
        std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
        std::fprintf(stderr,
                     "nb: sweep journal '%s' write failed; checkpointing disabled for the "
                     "rest of this sweep\n",
                     path_.c_str());
        std::fclose(file_);
        file_ = nullptr;
    }
}

void SweepJournal::close() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

JournalContents read_journal(const std::string& path) {
    JournalContents contents;
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        return contents;  // no journal: nothing to resume
    }
    std::string text;
    char buffer[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
        text.append(buffer, got);
    }
    std::fclose(file);

    std::size_t line_number = 0;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        const bool unterminated = end == std::string::npos;
        if (unterminated) {
            end = text.size();
        }
        const std::string_view line(text.data() + start, end - start);
        start = unterminated ? text.size() : end + 1;
        ++line_number;
        if (line.empty()) {
            continue;
        }
        try {
            const JsonValue value = JsonValue::parse(line);
            if (line_number == 1) {
                require(member(value, "schema").as_string() == journal_schema,
                        "journal header: unknown schema");
                contents.sweep_name = member(value, "sweep").as_string();
                contents.fingerprint = member(value, "fingerprint").as_uint64();
                contents.jobs = member_size_t(value, "jobs");
                contents.header_ok = true;
                continue;
            }
            JournalRecord record;
            record.job = member_size_t(value, "job");
            record.fingerprint = member(value, "fingerprint").as_uint64();
            record.attempts = member_size_t(value, "attempts");
            record.result = scenario_result_from_json(member(value, "result"));
            contents.records.push_back(std::move(record));
        } catch (const precondition_error& e) {
            if (unterminated) {
                // The torn tail a mid-append crash leaves behind: expected.
                break;
            }
            if (line_number == 1) {
                // Unusable header: nothing in this file can be trusted.
                return contents;
            }
            std::fprintf(stderr, "nb: sweep journal '%s' line %zu unreadable (%s); skipping\n",
                         path.c_str(), line_number, e.what());
        }
    }
    return contents;
}

ScenarioResult scenario_result_from_json(const JsonValue& value) {
    require(value.is_object(), "journal record: 'result' must be an object");
    ScenarioResult result;
    result.name = member(value, "name").as_string();
    result.description = member(value, "description").as_string();
    result.topology = member(value, "topology").as_string();
    result.channel = member(value, "channel").as_string();
    result.transport = member(value, "transport").as_string();
    result.node_count = member_size_t(value, "n");
    result.max_degree = member_size_t(value, "delta");
    result.rounds = member_size_t(value, "rounds");
    result.perfect_rounds = member_size_t(value, "perfect_rounds");
    result.beep_rounds_per_round = member_size_t(value, "beep_rounds_per_round");
    result.total_beeps = member(value, "total_beeps").as_uint64();
    result.phase1_false_negatives = member_size_t(value, "phase1_false_negatives");
    result.phase1_false_positives = member_size_t(value, "phase1_false_positives");
    result.phase2_errors = member_size_t(value, "phase2_errors");
    result.delivery_mismatches = member_size_t(value, "delivery_mismatches");
    // perfect_fraction is derived (and re-derived at serialization);
    // wall_seconds / rounds_per_second are excluded from canonical bytes.
    return result;
}

}  // namespace nb
