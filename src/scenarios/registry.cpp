#include "scenarios/registry.h"

#include <cstdarg>
#include <cstdio>

#include "common/math_util.h"

namespace nb::scenarios {

namespace {

TopologySpec regular_topology(std::size_t n, std::size_t degree, std::uint64_t seed) {
    TopologySpec topology;
    topology.family = TopologySpec::Family::random_regular;
    topology.n = n;
    topology.degree = degree;
    topology.seed = seed;
    return topology;
}

std::string format_name(const char* format, ...) {
    char buffer[96];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buffer, sizeof buffer, format, args);
    va_end(args);
    return buffer;
}

}  // namespace

ScenarioSpec e5_overhead_point(std::size_t degree, TransportKind transport) {
    const std::size_t n = 256;
    ScenarioSpec spec;
    spec.name = format_name("e5-delta%zu-%s", degree,
                            transport == TransportKind::beep ? "beep" : "tdma");
    spec.description = "Theorem 11 Delta-scaling point: beep rounds per Broadcast "
                       "CONGEST round at n=256, eps=0.1";
    spec.topology = regular_topology(n, degree, 0xe5 + degree);
    spec.channel = ChannelModel::iid(0.1);
    spec.transport = transport;
    spec.workload.message_bits = ceil_log2(n);
    spec.workload.seed = 5 + degree;
    spec.rounds = 4;
    spec.c_eps = 4;
    return spec;
}

ScenarioSpec e6_overhead_point(std::size_t n) {
    ScenarioSpec spec;
    spec.name = format_name("e6-n%zu", n);
    spec.description = "Theorem 11 n-scaling point: beep rounds per Broadcast "
                       "CONGEST round at Delta~8, eps=0.1";
    spec.topology = regular_topology(n, 8, 0xe6 + n);
    spec.channel = ChannelModel::iid(0.1);
    spec.workload.message_bits = ceil_log2(n);
    spec.workload.seed = n;
    spec.rounds = 4;
    spec.c_eps = 4;
    return spec;
}

ScenarioSpec e11_noise_point(double epsilon, std::size_t c_eps) {
    const std::size_t n = 64;
    ScenarioSpec spec;
    spec.name = format_name("e11-eps%.2f-c%zu", epsilon, c_eps);
    spec.description = "Section 1.3 noise-sweep point: perfect-round rate at "
                       "n=64, Delta~8";
    spec.topology = regular_topology(n, 8, 0xe11);
    spec.channel = ChannelModel::iid(epsilon);
    spec.workload.message_bits = ceil_log2(n);
    spec.workload.seed = 11;
    spec.rounds = 8;
    spec.c_eps = c_eps;
    return spec;
}

const std::vector<ScenarioSpec>& shipped_scenarios() {
    static const std::vector<ScenarioSpec> specs = [] {
        std::vector<ScenarioSpec> all;

        all.push_back(e5_overhead_point(8, TransportKind::beep));
        all.push_back(e5_overhead_point(8, TransportKind::tdma));
        all.push_back(e6_overhead_point(256));
        all.push_back(e11_noise_point(0.1, 4));

        {
            // Bursty noise: quiet channel that degrades hard inside bursts
            // of mean length 1/0.15 ~ 7 beep rounds; the decoder keeps its
            // thresholds sized for the stationary average rate.
            ScenarioSpec spec;
            spec.name = "ge-burst";
            spec.description = "Gilbert-Elliott bursty channel on the E11 topology: "
                               "does Algorithm 1 ride out bursts the iid analysis "
                               "never promised to cover?";
            spec.topology = regular_topology(64, 8, 0xe11);
            spec.channel = ChannelModel::gilbert_elliott(/*p_enter_burst=*/0.03,
                                                         /*p_exit_burst=*/0.15,
                                                         /*epsilon_good=*/0.02,
                                                         /*epsilon_bad=*/0.35);
            spec.workload.message_bits = 6;
            spec.workload.seed = 11;
            spec.rounds = 8;
            spec.c_eps = 6;
            all.push_back(std::move(spec));
        }
        {
            // PODS-style per-node heterogeneity: every node listens through
            // its own epsilon in [0.02, 0.3].
            ScenarioSpec spec;
            spec.name = "het-pernode";
            spec.description = "heterogeneous per-node noise rates drawn from "
                               "[0.02, 0.30]: thresholds sized for the midpoint";
            spec.topology = regular_topology(64, 8, 0xe11);
            spec.channel = ChannelModel::heterogeneous(0.02, 0.30, /*seed=*/0x686574);
            spec.workload.message_bits = 6;
            spec.workload.seed = 11;
            spec.rounds = 8;
            spec.c_eps = 6;
            all.push_back(std::move(spec));
        }
        {
            // Adversarial erasures: a budget of 64 erased 1s per transcript
            // per phase, against thresholds designed for zero noise.
            ScenarioSpec spec;
            spec.name = "adv-budget64";
            spec.description = "adversarial erasure budget k=64 per transcript: "
                               "bounded worst-case damage, not sampled noise";
            spec.topology = regular_topology(64, 8, 0xe11);
            spec.channel = ChannelModel::adversarial_budget(64);
            spec.decoder_epsilon = 0.1;  // give Lemma 9 a slack margin
            spec.workload.message_bits = 6;
            spec.workload.seed = 11;
            spec.rounds = 8;
            spec.c_eps = 6;
            all.push_back(std::move(spec));
        }
        {
            // Faults arriving mid-run: rounds 0-1 clean, a jammer plus two
            // crashes from round 2 on.
            ScenarioSpec spec;
            spec.name = "faults-midrun";
            spec.description = "fault schedule: clean rounds 0-1, then jammer {3} "
                               "and crashed {7, 11} from round 2 onward";
            spec.topology = regular_topology(64, 8, 0xe11);
            spec.channel = ChannelModel::iid(0.1);
            spec.workload.message_bits = 6;
            spec.workload.seed = 11;
            spec.rounds = 6;
            spec.c_eps = 4;
            FaultWindow window;
            window.faults.jammers = {3};
            window.faults.crashed = {7, 11};
            window.first_round = 2;
            spec.faults.push_back(std::move(window));
            all.push_back(std::move(spec));
        }
        return all;
    }();
    return specs;
}

const std::vector<ScenarioSpec>& demo_scenarios() {
    static const std::vector<ScenarioSpec> specs = [] {
        std::vector<ScenarioSpec> all;
        // Ring topologies keep the scale demos honest but cheap: max degree 2
        // means the beep-code length stays small while n drives the work, and
        // the shard halos are two nodes per boundary, so almost all of the
        // round is interior decode — the regime sharding is built for.
        {
            ScenarioSpec spec;
            spec.name = "demo-shard-100k";
            spec.description = "sharded-transport scale demo: ring n=10^5, "
                               "8 shards, 2 rounds";
            spec.topology.family = TopologySpec::Family::ring;
            spec.topology.n = 100000;
            spec.channel = ChannelModel::iid(0.05);
            spec.workload.message_bits = 2;
            spec.workload.seed = 100;
            spec.rounds = 2;
            spec.c_eps = 4;
            spec.decoy_count = 8;
            spec.shards = 8;
            all.push_back(std::move(spec));
        }
        {
            ScenarioSpec spec;
            spec.name = "demo-shard-1m";
            spec.description = "sharded-transport scale demo: ring n=10^6, "
                               "16 shards, 1 round";
            spec.topology.family = TopologySpec::Family::ring;
            spec.topology.n = 1000000;
            spec.channel = ChannelModel::iid(0.05);
            spec.workload.message_bits = 2;
            spec.workload.seed = 1000;
            spec.rounds = 1;
            spec.c_eps = 4;
            spec.decoy_count = 8;
            spec.shards = 16;
            all.push_back(std::move(spec));
        }
        return all;
    }();
    return specs;
}

SweepSpec shipped_sweep(std::vector<std::uint64_t> seeds) {
    SweepSpec sweep;
    sweep.name = "shipped-x-seeds";
    sweep.bases = shipped_scenarios();
    sweep.axes.seeds = std::move(seeds);
    return sweep;
}

const ScenarioSpec* find_scenario(std::string_view name) {
    for (const auto& spec : shipped_scenarios()) {
        if (spec.name == name) {
            return &spec;
        }
    }
    for (const auto& spec : demo_scenarios()) {
        if (spec.name == name) {
            return &spec;
        }
    }
    return nullptr;
}

}  // namespace nb::scenarios
