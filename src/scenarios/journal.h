// Sweep checkpoint journal: one fsync'd JSONL record per completed job
// (see DESIGN.md section 9).
//
// A long sweep that dies — SIGKILL, OOM, power — should not repeat finished
// work. run_sweep appends one line to the journal as each job completes:
//
//   {"schema":"nb-sweep-journal/v1","sweep":...,"fingerprint":F,"jobs":N}
//   {"job":7,"fingerprint":J7,"attempts":1,"result":{...}}
//   ...
//
// The header carries the whole-sweep fingerprint (a digest over every
// expanded job's scenario_spec_fingerprint); each record carries its own
// job's fingerprint. `nb_run --sweep --resume` replays records whose sweep
// AND job fingerprints match the freshly expanded spec — any spec edit
// invalidates exactly the records it could have changed — and re-runs the
// rest. Because a job's ScenarioResult is a pure function of its spec and
// the canonical result fields are integers and strings (exact JSON
// round-trip; timing is excluded), a resumed sweep's final artifact is
// byte-identical to an uninterrupted run's.
//
// Durability: every append is fflush + fsync before the call returns, so a
// record either fully exists on disk or was never acknowledged; the reader
// drops an unparseable trailing line (the one a crash can truncate) instead
// of failing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "scenarios/scenario.h"

namespace nb {

class JsonValue;

/// One completed job, as journaled.
struct JournalRecord {
    std::size_t job = 0;             ///< index into SweepSpec::expand() order
    std::uint64_t fingerprint = 0;   ///< scenario_spec_fingerprint of that job
    std::size_t attempts = 1;        ///< attempts the original run needed
    ScenarioResult result;           ///< canonical fields only (no timing)
};

/// Append-side handle. Not opened = every append is a no-op, so run_sweep
/// threads one instance through unconditionally. Appends are serialized by
/// an internal mutex (sweep workers complete concurrently) and fsync'd.
/// Write failures (disk full, path gone) disable the journal with one
/// stderr warning rather than failing the sweep — checkpointing is an aid,
/// never the reason a computed result is lost.
class SweepJournal {
public:
    SweepJournal() = default;
    ~SweepJournal();

    SweepJournal(const SweepJournal&) = delete;
    SweepJournal& operator=(const SweepJournal&) = delete;

    /// Open `path` and make it ready for records. append=false truncates and
    /// writes a fresh header; append=true (resume) seeks to the end, keeping
    /// the existing header and records. Throws precondition_error if the
    /// file cannot be opened.
    void open(const std::string& path, const std::string& sweep_name,
              std::uint64_t sweep_fingerprint, std::size_t jobs, bool append);

    bool is_open() const noexcept { return file_ != nullptr; }

    /// Write one record line, fsync'd. Thread-safe. No-op when not open.
    void append(const JournalRecord& record);

    void close();

private:
    std::mutex mutex_;
    std::FILE* file_ = nullptr;
    std::string path_;
};

/// Everything read_journal recovered from a journal file.
struct JournalContents {
    bool header_ok = false;  ///< a valid header line was present
    std::string sweep_name;
    std::uint64_t fingerprint = 0;  ///< whole-sweep fingerprint from the header
    std::size_t jobs = 0;
    std::vector<JournalRecord> records;  ///< every fully-written record, in file order
};

/// Read a journal tolerantly: a missing file or unreadable header yields
/// header_ok=false; a truncated or corrupt trailing line is dropped; corrupt
/// interior lines are skipped with a stderr warning. Never throws on bad
/// file contents (crash debris must not block --resume).
JournalContents read_journal(const std::string& path);

/// Rebuild a ScenarioResult from scenario_result_json output (the no-timing
/// form). Throws precondition_error naming the missing/mistyped field.
ScenarioResult scenario_result_from_json(const JsonValue& value);

}  // namespace nb
