#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/error.h"

namespace nb {

JsonWriter::JsonWriter(std::ostream& out, int indent) : out_(out), indent_(indent) {}

void JsonWriter::newline_indent() {
    if (indent_ <= 0) {
        return;
    }
    out_ << '\n';
    for (std::size_t level = 0; level < scopes_.size(); ++level) {
        for (int space = 0; space < indent_; ++space) {
            out_ << ' ';
        }
    }
}

void JsonWriter::before_value() {
    if (scopes_.empty()) {
        require(!key_pending_, "JsonWriter: key at top level");
        return;  // the single top-level value
    }
    if (scopes_.back() == Scope::object) {
        require(key_pending_, "JsonWriter: object values need a key");
        key_pending_ = false;
        return;  // key() already emitted the separator and the key
    }
    require(!key_pending_, "JsonWriter: key inside an array");
    if (has_items_.back()) {
        out_ << ',';
    }
    has_items_.back() = true;
    newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
    before_value();
    out_ << '{';
    scopes_.push_back(Scope::object);
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    before_value();
    out_ << '[';
    scopes_.push_back(Scope::array);
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    require(!scopes_.empty() && scopes_.back() == Scope::object && !key_pending_,
            "JsonWriter: end_object outside an object");
    const bool had_items = has_items_.back();
    scopes_.pop_back();
    has_items_.pop_back();
    if (had_items) {
        newline_indent();
    }
    out_ << '}';
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    require(!scopes_.empty() && scopes_.back() == Scope::array,
            "JsonWriter: end_array outside an array");
    const bool had_items = has_items_.back();
    scopes_.pop_back();
    has_items_.pop_back();
    if (had_items) {
        newline_indent();
    }
    out_ << ']';
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
    require(!scopes_.empty() && scopes_.back() == Scope::object,
            "JsonWriter: key outside an object");
    require(!key_pending_, "JsonWriter: two keys in a row");
    if (has_items_.back()) {
        out_ << ',';
    }
    has_items_.back() = true;
    newline_indent();
    out_ << '"' << escaped(name) << "\": ";
    key_pending_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
    before_value();
    out_ << '"' << escaped(text) << '"';
    return *this;
}

JsonWriter& JsonWriter::value(double number) {
    before_value();
    if (!std::isfinite(number)) {
        out_ << "null";  // JSON has no NaN/Inf
        return *this;
    }
    // Shortest round-trippable-enough form: %.12g drops float noise while
    // keeping every digit a bench or scenario result meaningfully carries.
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.12g", number);
    out_ << buffer;
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
    before_value();
    out_ << number;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
    before_value();
    out_ << number;
    return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
    before_value();
    out_ << (flag ? "true" : "false");
    return *this;
}

std::string JsonWriter::escaped(std::string_view text) {
    std::string result;
    result.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"':
                result += "\\\"";
                break;
            case '\\':
                result += "\\\\";
                break;
            case '\n':
                result += "\\n";
                break;
            case '\t':
                result += "\\t";
                break;
            case '\r':
                result += "\\r";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof buffer, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    result += buffer;
                } else {
                    result += c;
                }
        }
    }
    return result;
}

}  // namespace nb
