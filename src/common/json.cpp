#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/error.h"

namespace nb {

std::string format_double(double number) {
    require(std::isfinite(number), "format_double: value must be finite");
    char buffer[32];
    const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, number);
    require(ec == std::errc(), "format_double: formatting failed");
    return std::string(buffer, end);
}

JsonWriter::JsonWriter(std::ostream& out, int indent) : out_(out), indent_(indent) {}

void JsonWriter::newline_indent() {
    if (indent_ <= 0) {
        return;
    }
    out_ << '\n';
    for (std::size_t level = 0; level < scopes_.size(); ++level) {
        for (int space = 0; space < indent_; ++space) {
            out_ << ' ';
        }
    }
}

void JsonWriter::before_value() {
    if (scopes_.empty()) {
        require(!key_pending_, "JsonWriter: key at top level");
        return;  // the single top-level value
    }
    if (scopes_.back() == Scope::object) {
        require(key_pending_, "JsonWriter: object values need a key");
        key_pending_ = false;
        return;  // key() already emitted the separator and the key
    }
    require(!key_pending_, "JsonWriter: key inside an array");
    if (has_items_.back()) {
        out_ << ',';
    }
    has_items_.back() = true;
    newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
    before_value();
    out_ << '{';
    scopes_.push_back(Scope::object);
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    before_value();
    out_ << '[';
    scopes_.push_back(Scope::array);
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    require(!scopes_.empty() && scopes_.back() == Scope::object && !key_pending_,
            "JsonWriter: end_object outside an object");
    const bool had_items = has_items_.back();
    scopes_.pop_back();
    has_items_.pop_back();
    if (had_items) {
        newline_indent();
    }
    out_ << '}';
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    require(!scopes_.empty() && scopes_.back() == Scope::array,
            "JsonWriter: end_array outside an array");
    const bool had_items = has_items_.back();
    scopes_.pop_back();
    has_items_.pop_back();
    if (had_items) {
        newline_indent();
    }
    out_ << ']';
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
    require(!scopes_.empty() && scopes_.back() == Scope::object,
            "JsonWriter: key outside an object");
    require(!key_pending_, "JsonWriter: two keys in a row");
    if (has_items_.back()) {
        out_ << ',';
    }
    has_items_.back() = true;
    newline_indent();
    out_ << '"' << escaped(name) << "\": ";
    key_pending_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
    before_value();
    out_ << '"' << escaped(text) << '"';
    return *this;
}

JsonWriter& JsonWriter::value(double number) {
    before_value();
    if (!std::isfinite(number)) {
        // JSON has no NaN/Inf tokens; snprintf-style "nan"/"inf" output
        // would be invalid JSON, so non-finite values normalize to null.
        out_ << "null";
        return *this;
    }
    // Shortest round-trip form, so artifacts diff cleanly and lose no
    // precision.
    out_ << format_double(number);
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
    before_value();
    out_ << number;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
    before_value();
    out_ << number;
    return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
    before_value();
    out_ << (flag ? "true" : "false");
    return *this;
}

std::string JsonWriter::escaped(std::string_view text) {
    std::string result;
    result.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"':
                result += "\\\"";
                break;
            case '\\':
                result += "\\\\";
                break;
            case '\n':
                result += "\\n";
                break;
            case '\t':
                result += "\\t";
                break;
            case '\r':
                result += "\\r";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof buffer, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    result += buffer;
                } else {
                    result += c;
                }
        }
    }
    return result;
}

}  // namespace nb
