// Cooperative cancellation with optional deadlines (see DESIGN.md section 9).
//
// There is no preemption anywhere in this library — a hung or over-budget
// job is stopped by the job itself noticing and unwinding. A CancelToken is
// the shared flag: the owner (the sweep engine's watchdog deadline, a test,
// eventually nb_serve's admission control) arms it; the running code polls
// it at natural boundaries and throws cancelled_error, which unwinds through
// the ThreadPool's existing exception drain, leaving every pool reusable.
//
// Poll points:
//   * ThreadPool::parallel_for's token overload checks before every chunk
//     claim, so wide fan-outs stop within one chunk;
//   * BeepTransport/TdmaTransport batch loops call cancel_poll() at round
//     boundaries, covering the long-running single-job case;
//   * cancel_poll() reads a thread-local token installed by CancelScope, so
//     deep callees (the transports) need no token plumbing through their
//     signatures — the sweep engine scopes each job and everything the job
//     thread runs polls the job's token.
//
// Deadlines make the token a watchdog without a watchdog thread: cancelled()
// is true once steady_clock passes the deadline, and the next poll turns the
// hang into a timed-out JobError instead of a stuck worker.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace nb {

/// Thrown by polls when their token is cancelled or past its deadline. The
/// sweep engine classifies it as a timeout (retryable) — distinct from both
/// injected/transient faults and fatal precondition violations.
class cancelled_error : public std::runtime_error {
public:
    cancelled_error() : std::runtime_error("operation cancelled (watchdog deadline or explicit cancel)") {}
};

class CancelToken {
public:
    CancelToken() = default;

    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    /// Request cancellation. Thread-safe; polls observe it at their next
    /// boundary.
    void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

    /// Link a parent token: this token also reports cancelled once `parent`
    /// does (flag or deadline), transitively through the parent's own chain.
    /// This is how an outer owner — nb_serve's per-job deadline and drain
    /// cancel — reaches work that installs its *own* per-attempt tokens on
    /// other threads (the sweep engine's run_one_job): each inner token links
    /// the outer one instead of the outer scope having to cross threads.
    /// Non-owning: `parent` must outlive this token; set before the token is
    /// shared with other threads.
    void set_parent(const CancelToken* parent) noexcept { parent_ = parent; }

    /// Arm the watchdog: cancelled() becomes true once `deadline` passes.
    void set_deadline(std::chrono::steady_clock::time_point deadline) noexcept {
        deadline_ns_.store(deadline.time_since_epoch().count(), std::memory_order_relaxed);
    }

    /// set_deadline(now + timeout).
    void set_timeout(std::chrono::nanoseconds timeout) noexcept {
        set_deadline(std::chrono::steady_clock::now() + timeout);
    }

    bool cancelled() const noexcept {
        if (cancelled_.load(std::memory_order_relaxed)) {
            return true;
        }
        const auto deadline = deadline_ns_.load(std::memory_order_relaxed);
        if (deadline != 0 &&
            std::chrono::steady_clock::now().time_since_epoch().count() >= deadline) {
            return true;
        }
        return parent_ != nullptr && parent_->cancelled();
    }

    /// Throw cancelled_error if cancelled. The poll call sites use this.
    void poll() const {
        if (cancelled()) {
            throw cancelled_error();
        }
    }

    /// Disarm flag and deadline (the sweep engine reuses one token per job
    /// slot across retries). The parent link is kept: reset() disarms this
    /// token's own state, not the outer owner's.
    void reset() noexcept {
        cancelled_.store(false, std::memory_order_relaxed);
        deadline_ns_.store(0, std::memory_order_relaxed);
    }

private:
    std::atomic<bool> cancelled_{false};
    std::atomic<std::int64_t> deadline_ns_{0};  ///< steady_clock epoch ns; 0 = none
    const CancelToken* parent_ = nullptr;       ///< linked outer token (not owned)
};

/// Installs `token` as the calling thread's current cancel token for the
/// scope's lifetime (nestable; restores the previous token on exit).
class CancelScope {
public:
    explicit CancelScope(const CancelToken* token) noexcept;
    ~CancelScope();

    CancelScope(const CancelScope&) = delete;
    CancelScope& operator=(const CancelScope&) = delete;

private:
    const CancelToken* previous_;
};

/// The calling thread's current token (null outside any CancelScope).
const CancelToken* current_cancel_token() noexcept;

/// Throw cancelled_error if the calling thread's current token (if any) is
/// cancelled. One relaxed load when no token is installed — cheap enough for
/// round boundaries.
inline void cancel_poll() {
    if (const CancelToken* token = current_cancel_token()) {
        token->poll();
    }
}

}  // namespace nb
