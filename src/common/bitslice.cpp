#include "common/bitslice.h"

#include <atomic>
#include <bit>

#include "common/error.h"

namespace nb {

namespace {

constexpr std::size_t bits_per_word = 64;

std::uint64_t next_matrix_epoch() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

BitsliceMatrix::BitsliceMatrix(std::span<const Bitstring> columns,
                               std::span<const Bitstring> extra_columns) {
    columns_ = columns.size() + extra_columns.size();
    if (columns_ == 0) {
        return;
    }
    epoch_ = next_matrix_epoch();
    rows_ = columns.empty() ? extra_columns.front().size() : columns.front().size();
    lane_words_ = (columns_ + bits_per_word - 1) / bits_per_word;
    rows_data_.assign(rows_ * lane_words_, 0);
    weights_.reserve(columns_);

    std::size_t c = 0;
    const auto transpose_in = [&](std::span<const Bitstring> set) {
        for (const auto& column : set) {
            require(column.size() == rows_, "BitsliceMatrix: column lengths must match");
            const std::uint64_t lane_bit = std::uint64_t{1} << (c % bits_per_word);
            const std::size_t lane = c / bits_per_word;
            column.for_each_one([&](std::size_t p) {
                rows_data_[p * lane_words_ + lane] |= lane_bit;
            });
            weights_.push_back(static_cast<std::uint32_t>(column.count()));
            ++c;
        }
    };
    transpose_in(columns);
    transpose_in(extra_columns);
}

void BitsliceMatrix::prepare_scratch(std::size_t limit, BitsliceScratch& scratch) const {
    if (scratch.bias_epoch_ == epoch_ && scratch.bias_limit_ == limit) {
        return;
    }
    // Counter width: enough planes that every column's acceptance threshold
    // t_c = weight_c - limit + 1 fits below 2^K. Columns already below the
    // missing-ones limit at zero intersections (t_c <= 0) are accepted
    // unconditionally; their counters stay biased at zero and never fire.
    std::size_t max_threshold = 1;
    for (std::size_t c = 0; c < columns_; ++c) {
        const std::size_t weight = weights_[c];
        if (weight + 1 > limit) {
            max_threshold = std::max(max_threshold, weight + 1 - limit);
        }
    }
    const std::size_t plane_count = std::bit_width(max_threshold);
    scratch.bias_.assign(plane_count * lane_words_, 0);
    scratch.always_.assign(lane_words_, 0);
    for (std::size_t c = 0; c < columns_; ++c) {
        const std::size_t weight = weights_[c];
        const std::uint64_t lane_bit = std::uint64_t{1} << (c % bits_per_word);
        const std::size_t lane = c / bits_per_word;
        if (weight + 1 <= limit) {
            scratch.always_[lane] |= lane_bit;
            continue;
        }
        const std::uint64_t bias =
            (std::uint64_t{1} << plane_count) - (weight + 1 - limit);
        for (std::size_t k = 0; k < plane_count; ++k) {
            if ((bias >> k) & 1u) {
                scratch.bias_[k * lane_words_ + lane] |= lane_bit;
            }
        }
    }
    scratch.plane_count_ = plane_count;
    scratch.bias_epoch_ = epoch_;
    scratch.bias_limit_ = limit;
}

void BitsliceMatrix::and_not_below(const Bitstring& other, std::size_t limit,
                                   BitsliceScratch& scratch,
                                   std::vector<std::uint64_t>& accept) const {
    accept.assign(lane_words_, 0);
    if (columns_ == 0) {
        return;  // nothing to test (and no row length to match)
    }
    require(other.size() == rows_, "BitsliceMatrix::and_not_below: wrong transcript length");
    if (limit == 0) {
        return;  // no candidate has fewer than zero missing ones
    }
    prepare_scratch(limit, scratch);
    for (std::size_t w = 0; w < lane_words_; ++w) {
        accept[w] = scratch.always_[w];
    }
    scratch.planes_ = scratch.bias_;
    scratch.low_.assign(3 * lane_words_, 0);

    // Count intersections with `other`'s 1-rows in the vertical counters.
    // The hot loop accumulates rows into 3-bit chunk counters (`low`) with a
    // branchless carry-save ripple — pure bitwise ops over contiguous lanes,
    // which the compiler vectorizes — and every 7 rows the chunk value is
    // added into the bias-initialized high planes, whose carry out of the
    // top plane accumulates into the acceptance mask (see file comment).
    // Chunks of 7 keep the 3-bit counters overflow-free by construction.
    const std::size_t plane_count = scratch.plane_count_;
    const std::size_t lanes = lane_words_;
    std::uint64_t* planes = scratch.planes_.data();
    std::uint64_t* low0 = scratch.low_.data();
    std::uint64_t* low1 = low0 + lanes;
    std::uint64_t* low2 = low1 + lanes;
    std::uint64_t* out = accept.data();
    const std::uint64_t* rows = rows_data_.data();

    const auto flush_chunk = [&] {
        for (std::size_t w = 0; w < lanes; ++w) {
            const std::uint64_t c0 = low0[w];
            const std::uint64_t c1 = low1[w];
            const std::uint64_t c2 = low2[w];
            low0[w] = 0;
            low1[w] = 0;
            low2[w] = 0;
            std::uint64_t* plane = planes + w;
            // Half-add c0, then full-add c1 and c2 at their planes, then
            // propagate the carry; a carry surviving the top plane means the
            // counter passed its acceptance threshold. With fewer planes
            // than chunk bits (thresholds < 8), the unrepresentable chunk
            // bits imply the threshold was passed and carry out directly.
            std::uint64_t carry = *plane & c0;
            *plane ^= c0;
            if (plane_count == 1) {
                out[w] |= carry | c1 | c2;
                continue;
            }
            plane += lanes;
            std::uint64_t p = *plane;
            *plane = p ^ c1 ^ carry;
            carry = (p & (c1 | carry)) | (c1 & carry);
            if (plane_count == 2) {
                out[w] |= carry | c2;
                continue;
            }
            plane += lanes;
            p = *plane;
            *plane = p ^ c2 ^ carry;
            carry = (p & (c2 | carry)) | (c2 & carry);
            for (std::size_t k = 3; k < plane_count; ++k) {
                plane += lanes;
                p = *plane;
                *plane = p ^ carry;
                carry &= p;
            }
            out[w] |= carry;
        }
    };

    std::size_t chunk_rows = 0;
    const std::vector<std::uint64_t>& transcript = other.words();
    for (std::size_t tw = 0; tw < transcript.size(); ++tw) {
        std::uint64_t bits = transcript[tw];
        while (bits != 0) {
            const std::size_t p =
                tw * bits_per_word + static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            const std::uint64_t* row = rows + p * lanes;
            for (std::size_t w = 0; w < lanes; ++w) {
                const std::uint64_t r = row[w];
                const std::uint64_t a = low0[w];
                const std::uint64_t carry1 = a & r;
                low0[w] = a ^ r;
                const std::uint64_t b = low1[w];
                low1[w] = b ^ carry1;
                low2[w] ^= b & carry1;
            }
            if (++chunk_rows == 7) {
                flush_chunk();
                chunk_rows = 0;
            }
        }
    }
    if (chunk_rows != 0) {
        flush_chunk();
    }
}

}  // namespace nb
