#include "common/bitslice.h"

#include <atomic>
#include <bit>

#include "common/error.h"

namespace nb {

namespace {

constexpr std::size_t bits_per_word = 64;

std::uint64_t next_matrix_epoch() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

BitsliceMatrix::BitsliceMatrix(std::span<const Bitstring> columns,
                               std::span<const Bitstring> extra_columns) {
    columns_ = columns.size() + extra_columns.size();
    if (columns_ == 0) {
        return;
    }
    epoch_ = next_matrix_epoch();
    rows_ = columns.empty() ? extra_columns.front().size() : columns.front().size();
    lane_words_ = padded_words((columns_ + bits_per_word - 1) / bits_per_word);
    rows_data_.assign(rows_ * lane_words_, 0);
    weights_.reserve(columns_);

    std::size_t c = 0;
    const auto transpose_in = [&](std::span<const Bitstring> set) {
        for (const auto& column : set) {
            require(column.size() == rows_, "BitsliceMatrix: column lengths must match");
            const std::uint64_t lane_bit = std::uint64_t{1} << (c % bits_per_word);
            const std::size_t lane = c / bits_per_word;
            column.for_each_one([&](std::size_t p) {
                rows_data_[p * lane_words_ + lane] |= lane_bit;
            });
            weights_.push_back(static_cast<std::uint32_t>(column.count()));
            ++c;
        }
    };
    transpose_in(columns);
    transpose_in(extra_columns);
}

void BitsliceMatrix::prepare_scratch(std::size_t limit, BitsliceScratch& scratch) const {
    if (scratch.bias_epoch_ == epoch_ && scratch.bias_limit_ == limit) {
        return;
    }
    // Counter width: enough planes that every column's acceptance threshold
    // t_c = weight_c - limit + 1 fits below 2^K. Columns already below the
    // missing-ones limit at zero intersections (t_c <= 0) are accepted
    // unconditionally; their counters stay biased at zero and never fire.
    std::size_t max_threshold = 1;
    for (std::size_t c = 0; c < columns_; ++c) {
        const std::size_t weight = weights_[c];
        if (weight + 1 > limit) {
            max_threshold = std::max(max_threshold, weight + 1 - limit);
        }
    }
    const std::size_t plane_count = std::bit_width(max_threshold);
    scratch.bias_.assign(plane_count * lane_words_, 0);
    scratch.always_.assign(lane_words_, 0);
    for (std::size_t c = 0; c < columns_; ++c) {
        const std::size_t weight = weights_[c];
        const std::uint64_t lane_bit = std::uint64_t{1} << (c % bits_per_word);
        const std::size_t lane = c / bits_per_word;
        if (weight + 1 <= limit) {
            scratch.always_[lane] |= lane_bit;
            continue;
        }
        const std::uint64_t bias =
            (std::uint64_t{1} << plane_count) - (weight + 1 - limit);
        for (std::size_t k = 0; k < plane_count; ++k) {
            if ((bias >> k) & 1u) {
                scratch.bias_[k * lane_words_ + lane] |= lane_bit;
            }
        }
    }
    scratch.plane_count_ = plane_count;
    scratch.bias_epoch_ = epoch_;
    scratch.bias_limit_ = limit;
}

void BitsliceMatrix::and_not_below(const Bitstring& other, std::size_t limit,
                                   BitsliceScratch& scratch,
                                   std::vector<std::uint64_t>& accept,
                                   simd::Kernel kernel) const {
    accept.assign(lane_words_, 0);
    if (columns_ == 0) {
        return;  // nothing to test (and no row length to match)
    }
    require(other.size() == rows_, "BitsliceMatrix::and_not_below: wrong transcript length");
    if (limit == 0) {
        return;  // no candidate has fewer than zero missing ones
    }
    prepare_scratch(limit, scratch);
    for (std::size_t w = 0; w < lane_words_; ++w) {
        accept[w] = scratch.always_[w];
    }
    scratch.planes_ = scratch.bias_;
    scratch.low_.assign(4 * lane_words_, 0);  // 3 chunk planes + carry buffer

    // Count intersections with `other`'s 1-rows in the vertical counters.
    // The hot pass (see simd.h / kernels_inl.h) accumulates rows into 3-bit
    // chunk counters with a branchless carry-save ripple — pure bitwise ops
    // over contiguous lanes — and every 7 rows the chunk value is added into
    // the bias-initialized high planes, whose carry out of the top plane
    // accumulates into the acceptance mask (see file comment). Chunks of 7
    // keep the 3-bit counters overflow-free by construction.
    const std::vector<std::uint64_t>& transcript = other.words();
    simd::ops(kernel).bitslice_pass(transcript.data(), transcript.size(),
                                    rows_data_.data(), lane_words_,
                                    scratch.low_.data(), scratch.planes_.data(),
                                    scratch.plane_count_, accept.data());
}

}  // namespace nb
