#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <thread>

#include "common/error.h"

namespace nb::failpoint {
namespace {

// splitmix64 finisher: full-avalanche 64-bit mix. Used both to hash site
// names and to turn (seed, name, draw counter) into a uniform [0, 1) draw,
// so probabilistic sites fire on a reproducible subsequence of evaluations.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t hash_name(const char* name) {
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a, then mixed
    for (const char* p = name; *p != '\0'; ++p) {
        h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001b3ull;
    }
    return mix64(h);
}

struct Registry {
    std::mutex mutex;
    std::vector<const Site*> sites;
    // NB_FAILPOINTS entries waiting for their site to register. Sites
    // register during static initialization, which can interleave with this
    // registry's own first use, so env config is held here and applied as
    // each site constructs.
    std::vector<std::pair<std::string, Config>> env_pending;
    bool env_parsed = false;
    std::uint64_t seed = 0x6e625f6670ull;  // "nb_fp"; NB_FAILPOINT_SEED overrides
};

Registry& registry() {
    // Function-local static: initialized on first use regardless of which
    // translation unit's Site constructs first.
    static Registry r;
    return r;
}

void parse_env_locked(Registry& r) {
    if (r.env_parsed) {
        return;
    }
    r.env_parsed = true;
    if (const char* seed_env = std::getenv("NB_FAILPOINT_SEED")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(seed_env, &end, 10);
        if (end != seed_env && *end == '\0') {
            r.seed = static_cast<std::uint64_t>(v);
        } else {
            std::fprintf(stderr, "nb: ignoring malformed NB_FAILPOINT_SEED '%s'\n", seed_env);
        }
    }
    const char* env = std::getenv("NB_FAILPOINTS");
    if (env == nullptr) {
        return;
    }
    std::string_view rest(env);
    while (!rest.empty()) {
        const std::size_t semi = rest.find(';');
        const std::string_view entry = rest.substr(0, semi);
        rest = (semi == std::string_view::npos) ? std::string_view{} : rest.substr(semi + 1);
        if (entry.empty()) {
            continue;
        }
        // This runs during static initialization: a throw here would call
        // std::terminate before main(), so malformed entries are reported
        // and skipped instead (nb_run's bad-input contract).
        try {
            r.env_pending.push_back(parse_spec(entry));
        } catch (const precondition_error& e) {
            std::fprintf(stderr, "nb: ignoring NB_FAILPOINTS entry '%.*s': %s\n",
                         static_cast<int>(entry.size()), entry.data(), e.what());
        }
    }
}

double parse_probability(std::string_view text, std::string_view spec) {
    const std::string copy(text);
    char* end = nullptr;
    const double p = std::strtod(copy.c_str(), &end);
    require(end == copy.c_str() + copy.size() && end != copy.c_str() && p > 0.0 && p <= 1.0,
            "failpoint spec '" + std::string(spec) + "': probability must be in (0, 1]");
    return p;
}

}  // namespace

Site::Site(const char* name) : name_(name) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    parse_env_locked(r);
    r.sites.push_back(this);
    for (const auto& [site, config] : r.env_pending) {
        if (site == name_) {
            config_ = config;
            armed_.store(config.mode != Mode::off, std::memory_order_relaxed);
        }
    }
}

void Site::fire() const {
    Config cfg;
    {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        cfg = config_;
        if (cfg.mode == Mode::off) {
            return;
        }
        if (cfg.max_hits != 0 && hits_.load(std::memory_order_relaxed) >= cfg.max_hits) {
            return;
        }
        if (cfg.probability < 1.0) {
            const std::uint64_t n = ++draws_;
            const std::uint64_t bits = mix64(r.seed ^ hash_name(name_) ^ (n * 0x9e3779b97f4a7c15ull));
            const double draw = static_cast<double>(bits >> 11) * 0x1.0p-53;
            if (draw >= cfg.probability) {
                return;
            }
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
    }
    switch (cfg.mode) {
        case Mode::inject_throw:
            throw injected_fault(name_);
        case Mode::delay:
            std::this_thread::sleep_for(std::chrono::milliseconds(cfg.delay_ms));
            return;
        case Mode::oom:
            throw std::bad_alloc();
        case Mode::off:
            return;
    }
}

void configure(std::string_view site, const Config& config) {
    require(config.probability > 0.0 && config.probability <= 1.0,
            "failpoint probability must be in (0, 1]");
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    bool found = false;
    for (const Site* s : r.sites) {
        if (site == s->name_) {
            s->config_ = config;
            s->draws_ = 0;
            s->hits_.store(0, std::memory_order_relaxed);
            s->armed_.store(config.mode != Mode::off, std::memory_order_relaxed);
            found = true;
        }
    }
    require(found, "unknown failpoint site '" + std::string(site) + "'");
}

void clear(std::string_view site) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const Site* s : r.sites) {
        if (site == s->name_) {
            s->config_ = Config{};
            s->armed_.store(false, std::memory_order_relaxed);
        }
    }
}

void clear_all() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const Site* s : r.sites) {
        s->config_ = Config{};
        s->armed_.store(false, std::memory_order_relaxed);
    }
}

std::vector<std::string> registered_sites() {
    Registry& r = registry();
    std::vector<std::string> names;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        names.reserve(r.sites.size());
        for (const Site* s : r.sites) {
            names.emplace_back(s->name_);
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

std::uint64_t hits(std::string_view site) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::uint64_t total = 0;
    for (const Site* s : r.sites) {
        if (site == s->name_) {
            total += s->hits_.load(std::memory_order_relaxed);
        }
    }
    return total;
}

std::pair<std::string, Config> parse_spec(std::string_view spec) {
    const std::size_t eq = spec.find('=');
    require(eq != std::string_view::npos && eq > 0,
            "failpoint spec '" + std::string(spec) + "': expected site=mode[:arg][:p]");
    const std::string site(spec.substr(0, eq));
    std::string_view rhs = spec.substr(eq + 1);

    std::vector<std::string_view> tokens;
    while (true) {
        const std::size_t colon = rhs.find(':');
        tokens.push_back(rhs.substr(0, colon));
        if (colon == std::string_view::npos) {
            break;
        }
        rhs = rhs.substr(colon + 1);
    }

    Config config;
    const std::string_view mode = tokens[0];
    if (mode == "throw" || mode == "oom") {
        config.mode = (mode == "throw") ? Mode::inject_throw : Mode::oom;
        require(tokens.size() <= 2,
                "failpoint spec '" + std::string(spec) + "': too many arguments for mode");
        if (tokens.size() == 2) {
            config.probability = parse_probability(tokens[1], spec);
        }
    } else if (mode == "delay") {
        config.mode = Mode::delay;
        require(tokens.size() >= 2 && tokens.size() <= 3,
                "failpoint spec '" + std::string(spec) + "': delay needs delay:MS[:p]");
        const std::string ms(tokens[1]);
        char* end = nullptr;
        const unsigned long long v = std::strtoull(ms.c_str(), &end, 10);
        require(end == ms.c_str() + ms.size() && end != ms.c_str() && v <= 3'600'000,
                "failpoint spec '" + std::string(spec) + "': delay milliseconds must be an integer <= 3600000");
        config.delay_ms = static_cast<std::uint32_t>(v);
        if (tokens.size() == 3) {
            config.probability = parse_probability(tokens[2], spec);
        }
    } else {
        require(false, "failpoint spec '" + std::string(spec) +
                           "': unknown mode (expected throw, delay, or oom)");
    }
    return {site, config};
}

std::string active_summary() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> parts;
    for (const Site* s : r.sites) {
        if (!s->armed_.load(std::memory_order_relaxed)) {
            continue;
        }
        std::string part(s->name_);
        switch (s->config_.mode) {
            case Mode::inject_throw: part += "=throw"; break;
            case Mode::delay: part += "=delay:" + std::to_string(s->config_.delay_ms); break;
            case Mode::oom: part += "=oom"; break;
            case Mode::off: break;
        }
        if (s->config_.probability < 1.0) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), " p=%g", s->config_.probability);
            part += buf;
        }
        if (s->config_.max_hits != 0) {
            part += " max_hits=" + std::to_string(s->config_.max_hits);
        }
        parts.push_back(std::move(part));
    }
    std::sort(parts.begin(), parts.end());
    std::string out;
    for (const std::string& p : parts) {
        if (!out.empty()) {
            out += "; ";
        }
        out += p;
    }
    return out;
}

}  // namespace nb::failpoint
