// Bit-level packing helpers for composing fixed-width message fields.
//
// CONGEST messages are O(log n)-bit strings; algorithms compose them from
// fields (type tags, node ids, sampled values). BitWriter/BitReader provide
// checked sequential access so encode/decode stay in sync by construction.
#pragma once

#include <cstdint>

#include "common/bitstring.h"
#include "common/error.h"

namespace nb {

/// Sequentially writes little-endian fields into a fixed-size Bitstring.
class BitWriter {
public:
    explicit BitWriter(std::size_t total_bits) : bits_(total_bits) {}

    /// Append the low `width` bits of `value`. Precondition: value fits and
    /// capacity remains. Width up to 64.
    void write(std::uint64_t value, std::size_t width) {
        require(width <= 64, "BitWriter::write: width must be <= 64");
        require(width == 64 || value < (std::uint64_t{1} << width),
                "BitWriter::write: value does not fit in width");
        require(cursor_ + width <= bits_.size(), "BitWriter::write: capacity exceeded");
        for (std::size_t i = 0; i < width; ++i) {
            if ((value >> i) & 1u) {
                bits_.set(cursor_ + i);
            }
        }
        cursor_ += width;
    }

    /// The written bitstring (unwritten tail bits are 0).
    const Bitstring& bits() const noexcept { return bits_; }

    std::size_t written() const noexcept { return cursor_; }

private:
    Bitstring bits_;
    std::size_t cursor_ = 0;
};

/// Sequentially reads fields written by BitWriter.
class BitReader {
public:
    explicit BitReader(const Bitstring& bits) : bits_(bits) {}

    /// Read the next `width` bits as an unsigned value.
    std::uint64_t read(std::size_t width) {
        require(width <= 64, "BitReader::read: width must be <= 64");
        require(cursor_ + width <= bits_.size(), "BitReader::read: out of data");
        std::uint64_t value = 0;
        for (std::size_t i = 0; i < width; ++i) {
            if (bits_.test(cursor_ + i)) {
                value |= std::uint64_t{1} << i;
            }
        }
        cursor_ += width;
        return value;
    }

    std::size_t remaining() const noexcept { return bits_.size() - cursor_; }

private:
    const Bitstring& bits_;
    std::size_t cursor_ = 0;
};

}  // namespace nb
