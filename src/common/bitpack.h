// Bit-level packing helpers for composing fixed-width message fields.
//
// CONGEST messages are O(log n)-bit strings; algorithms compose them from
// fields (type tags, node ids, sampled values). BitWriter/BitReader provide
// checked sequential access so encode/decode stay in sync by construction.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/bitstring.h"
#include "common/error.h"

namespace nb {

/// Sequentially writes little-endian fields into a fixed-size Bitstring.
class BitWriter {
public:
    explicit BitWriter(std::size_t total_bits) : bits_(total_bits) {}

    /// Append the low `width` bits of `value`. Precondition: value fits and
    /// capacity remains. Width up to 64. Word-parallel (Bitstring::store_bits).
    void write(std::uint64_t value, std::size_t width) {
        require(cursor_ + width <= bits_.size(), "BitWriter::write: capacity exceeded");
        bits_.store_bits(cursor_, value, width);
        cursor_ += width;
    }

    /// Append `width` bits taken from `value` (value[i] if i < value.size(),
    /// zero-padded above), 64 bits at a time. This is the bulk field writer
    /// for Bitstring payloads; it replaces per-bit write(…, 1) loops.
    void write_bits(const Bitstring& value, std::size_t width) {
        require(value.size() <= width, "BitWriter::write_bits: value exceeds width");
        require(cursor_ + width <= bits_.size(), "BitWriter::write_bits: capacity exceeded");
        for (std::size_t i = 0; i < width; i += 64) {
            const std::size_t chunk = std::min<std::size_t>(64, width - i);
            const std::size_t have =
                i < value.size() ? std::min(chunk, value.size() - i) : 0;
            bits_.store_bits(cursor_ + i, have == 0 ? 0 : value.load_bits(i, have), chunk);
        }
        cursor_ += width;
    }

    /// The written bitstring (unwritten tail bits are 0).
    const Bitstring& bits() const noexcept { return bits_; }

    std::size_t written() const noexcept { return cursor_; }

private:
    Bitstring bits_;
    std::size_t cursor_ = 0;
};

/// Sequentially reads fields written by BitWriter.
class BitReader {
public:
    explicit BitReader(const Bitstring& bits) : bits_(bits) {}

    /// Read the next `width` bits as an unsigned value. Word-parallel
    /// (Bitstring::load_bits).
    std::uint64_t read(std::size_t width) {
        require(cursor_ + width <= bits_.size(), "BitReader::read: out of data");
        const std::uint64_t value = bits_.load_bits(cursor_, width);
        cursor_ += width;
        return value;
    }

    /// Read the next `width` bits as a Bitstring field, 64 bits at a time —
    /// the bulk counterpart of BitWriter::write_bits.
    Bitstring read_bits(std::size_t width) {
        require(cursor_ + width <= bits_.size(), "BitReader::read_bits: out of data");
        Bitstring value(width);
        for (std::size_t i = 0; i < width; i += 64) {
            const std::size_t chunk = std::min<std::size_t>(64, width - i);
            value.store_bits(i, bits_.load_bits(cursor_ + i, chunk), chunk);
        }
        cursor_ += width;
        return value;
    }

    std::size_t remaining() const noexcept { return bits_.size() - cursor_; }

private:
    const Bitstring& bits_;
    std::size_t cursor_ = 0;
};

}  // namespace nb
