#include "common/word_soa.h"

#include <bit>

#include "common/error.h"

namespace nb {

void WordSoa::build(std::span<const Bitstring> columns) {
    count_ = columns.size();
    if (count_ == 0) {
        data_.clear();
        stride_ = words_ = bits_ = 0;
        return;
    }
    bits_ = columns.front().size();
    words_ = columns.front().words().size();
    stride_ = padded_words(count_);
    data_.assign(words_ * stride_, 0);
    for (std::size_t c = 0; c < count_; ++c) {
        const Bitstring& column = columns[c];
        require(column.size() == bits_, "WordSoa::build: column lengths must match");
        const std::vector<std::uint64_t>& words = column.words();
        for (std::size_t w = 0; w < words_; ++w) {
            data_[w * stride_ + c] = words[w];
        }
    }
}

void WordSoa::set_column(std::size_t c, const Bitstring& column) {
    require(c < count_, "WordSoa::set_column: column out of range");
    require(column.size() == bits_, "WordSoa::set_column: column length must match");
    const std::vector<std::uint64_t>& words = column.words();
    for (std::size_t w = 0; w < words_; ++w) {
        data_[w * stride_ + c] = words[w];
    }
}

std::size_t WordSoa::column_distance(const std::uint64_t* received, std::size_t c) const {
    require(c < count_, "WordSoa::column_distance: column out of range");
    std::size_t total = 0;
    for (std::size_t w = 0; w < words_; ++w) {
        total += static_cast<std::size_t>(std::popcount(data_[w * stride_ + c] ^ received[w]));
    }
    return total;
}

}  // namespace nb
