// Fixed-width text table printer for experiment output.
//
// Every bench binary prints its results through Table so that the
// regenerated "paper tables" share one consistent, diffable format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nb {

class Table {
public:
    /// Create a table with the given column headers.
    explicit Table(std::vector<std::string> headers);

    /// Append one row; cells beyond the header count are rejected.
    void add_row(std::vector<std::string> cells);

    /// Convenience: format a double with `precision` decimals.
    static std::string num(double value, int precision = 2);

    /// Convenience: format an integer.
    static std::string num(std::size_t value);

    /// Render with aligned columns to `out`, including a title line.
    void print(std::ostream& out, const std::string& title) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace nb
