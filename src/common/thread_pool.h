// Minimal fixed-size worker pool for fanning independent per-node work out
// of the simulation hot loops (see DESIGN.md section 2).
//
// The pool is built once (per transport) and reused across rounds: workers
// persist, and each parallel_for distributes an index range over them in
// chunks claimed from an atomic cursor. Callers that need per-worker scratch
// state receive a stable worker id in [0, worker_count()), so reusable
// workspaces can be preallocated one per worker and never contended.
//
// Determinism contract: parallel_for imposes no ordering between indices, so
// callers must write results only to per-index (or per-worker, merged
// afterwards in a fixed order) slots. All users in this library follow that
// discipline, which keeps simulation outputs bit-identical for any worker
// count — tested by the transport equivalence suite.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "common/cancel.h"

namespace nb {

class ThreadPool {
public:
    /// A pool with `worker_count` workers; 0 means hardware concurrency.
    /// With one worker no threads are spawned and all work runs inline.
    explicit ThreadPool(std::size_t worker_count = 0);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    std::size_t worker_count() const noexcept { return worker_count_; }

    /// Run fn(worker, index) for every index in [0, count), distributed over
    /// the workers (the calling thread participates). Blocks until all
    /// indices complete; the first exception thrown by fn is rethrown and
    /// the pool stays usable afterwards. Concurrent multi-index calls from
    /// distinct threads serialize (whole jobs queue, they never interleave);
    /// count <= 1 calls run inline on the calling thread as worker 0 without
    /// queueing, so they may overlap another caller's job — callers sharing
    /// per-worker state across calls must not rely on serialization for
    /// single-index jobs. A *nested* call from inside one of this pool's own
    /// jobs (any count) runs inline on the calling worker's id — same
    /// outputs, no added parallelism, no deadlock, no scratch aliasing.
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t, std::size_t)>& fn);

    /// parallel_for with cooperative cancellation: `token` (may be null =
    /// plain parallel_for) is checked before every chunk claim, so a
    /// cancelled or past-deadline token stops the job within one chunk and
    /// cancelled_error is rethrown to the caller. Already-started indices
    /// finish; the pool stays fully reusable afterwards (same drain path as
    /// an exception thrown by fn).
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t, std::size_t)>& fn,
                      const CancelToken* token);

    /// The worker count `requested` resolves to: itself if nonzero, else
    /// hardware concurrency (at least 1).
    static std::size_t resolve_worker_count(std::size_t requested) noexcept;

    /// resolve_worker_count(requested) capped at max(1, items): the sizing
    /// policy for a pool whose jobs fan out over `items` units of work, so
    /// tiny inputs never spawn idle workers.
    static std::size_t worker_count_for(std::size_t requested, std::size_t items) noexcept;

private:
    struct Impl;

    std::size_t worker_count_ = 1;
    std::unique_ptr<Impl> impl_;  ///< null when worker_count_ == 1
};

}  // namespace nb
