#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"

namespace nb {

namespace {

/// Which pool Impl (if any) the current thread is executing a job for, and
/// under which worker id. parallel_for consults these to run nested submits
/// inline on the calling worker — a worker blocking on run_mutex for its own
/// pool would deadlock (the outer job cannot finish until the worker
/// returns), and the outer worker id must be reused so per-worker scratch
/// stays exclusive to one thread.
thread_local const void* current_pool_impl = nullptr;
thread_local std::size_t current_pool_worker = 0;

struct WorkerScope {
    WorkerScope(const void* impl, std::size_t worker)
        : previous_impl(current_pool_impl), previous_worker(current_pool_worker) {
        current_pool_impl = impl;
        current_pool_worker = worker;
    }
    ~WorkerScope() {
        current_pool_impl = previous_impl;
        current_pool_worker = previous_worker;
    }
    const void* previous_impl;
    std::size_t previous_worker;
};

}  // namespace

struct ThreadPool::Impl {
    explicit Impl(std::size_t helper_count) {
        helpers.reserve(helper_count);
        for (std::size_t i = 0; i < helper_count; ++i) {
            // Worker id 0 is the calling thread; helpers are 1-based.
            helpers.emplace_back([this, worker = i + 1] { helper_loop(worker); });
        }
    }

    ~Impl() {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        work_ready.notify_all();
        for (auto& helper : helpers) {
            helper.join();
        }
    }

    void run(std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn,
             const CancelToken* token) {
        // One job at a time: concurrent parallel_for callers (e.g. two
        // threads sharing one transport) queue here instead of clobbering
        // each other's job state.
        std::lock_guard<std::mutex> run_lock(run_mutex);
        {
            std::lock_guard<std::mutex> lock(mutex);
            job_fn = &fn;
            job_token = token;
            job_count = count;
            next_index.store(0, std::memory_order_relaxed);
            active_helpers = helpers.size();
            error = nullptr;
            ++generation;
        }
        work_ready.notify_all();
        work_chunks(0);
        {
            std::unique_lock<std::mutex> lock(mutex);
            job_done.wait(lock, [this] { return active_helpers == 0; });
            job_fn = nullptr;
            job_token = nullptr;
            if (error != nullptr) {
                std::rethrow_exception(error);
            }
        }
    }

    void work_chunks(std::size_t worker) {
        const WorkerScope scope(this, worker);
        // Claim small chunks so uneven per-index costs still balance while
        // keeping atomic traffic low.
        const std::size_t total_workers = helpers.size() + 1;
        const std::size_t chunk =
            std::max<std::size_t>(1, job_count / (8 * total_workers));
        while (true) {
            // Cancellation boundary: a cancelled/past-deadline token stops
            // this worker before it claims more work and records the
            // cancellation through the same error slot an fn exception uses,
            // so the drain-and-rethrow path keeps the pool reusable.
            if (job_token != nullptr && job_token->cancelled()) {
                std::lock_guard<std::mutex> lock(mutex);
                if (error == nullptr) {
                    error = std::make_exception_ptr(cancelled_error());
                }
                next_index.store(job_count, std::memory_order_relaxed);
                return;
            }
            const std::size_t begin = next_index.fetch_add(chunk, std::memory_order_relaxed);
            if (begin >= job_count) {
                return;
            }
            const std::size_t end = std::min(begin + chunk, job_count);
            try {
                for (std::size_t index = begin; index < end; ++index) {
                    (*job_fn)(worker, index);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex);
                if (error == nullptr) {
                    error = std::current_exception();
                }
                // Drain the remaining indices so the job still terminates.
                next_index.store(job_count, std::memory_order_relaxed);
                return;
            }
        }
    }

    void helper_loop(std::size_t worker) {
        std::uint64_t seen_generation = 0;
        while (true) {
            {
                std::unique_lock<std::mutex> lock(mutex);
                work_ready.wait(lock, [this, seen_generation] {
                    return stopping || generation != seen_generation;
                });
                if (stopping) {
                    return;
                }
                seen_generation = generation;
            }
            work_chunks(worker);
            {
                std::lock_guard<std::mutex> lock(mutex);
                --active_helpers;
            }
            job_done.notify_one();
        }
    }

    std::vector<std::thread> helpers;
    std::mutex run_mutex;  ///< serializes whole jobs
    std::mutex mutex;      ///< guards the per-job state below
    std::condition_variable work_ready;
    std::condition_variable job_done;
    const std::function<void(std::size_t, std::size_t)>* job_fn = nullptr;
    const CancelToken* job_token = nullptr;  ///< written under run_mutex before the job starts
    std::size_t job_count = 0;
    std::atomic<std::size_t> next_index{0};
    std::size_t active_helpers = 0;
    std::uint64_t generation = 0;
    std::exception_ptr error;
    bool stopping = false;
};

std::size_t ThreadPool::resolve_worker_count(std::size_t requested) noexcept {
    if (requested != 0) {
        return requested;
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

std::size_t ThreadPool::worker_count_for(std::size_t requested, std::size_t items) noexcept {
    return std::min(resolve_worker_count(requested), std::max<std::size_t>(1, items));
}

ThreadPool::ThreadPool(std::size_t worker_count)
    : worker_count_(resolve_worker_count(worker_count)) {
    if (worker_count_ > 1) {
        impl_ = std::make_unique<Impl>(worker_count_ - 1);
    }
}

ThreadPool::~ThreadPool() = default;

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
    parallel_for(count, fn, nullptr);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              const CancelToken* token) {
    require(static_cast<bool>(fn), "ThreadPool::parallel_for: empty function");
    if (count == 0) {
        return;
    }
    // Nested submit from inside one of this pool's own jobs (e.g. a sweep
    // job that itself fans out): run inline on the calling worker's id —
    // for ANY count, including 1. Blocking on run_mutex would deadlock, and
    // a fresh worker id 0 would let this thread race the real worker 0 on
    // per-worker scratch.
    const bool nested = impl_ != nullptr && current_pool_impl == impl_.get();
    if (nested || impl_ == nullptr || count == 1) {
        const std::size_t worker = nested ? current_pool_worker : 0;
        for (std::size_t index = 0; index < count; ++index) {
            if (token != nullptr) {
                token->poll();
            }
            fn(worker, index);
        }
        return;
    }
    impl_->run(count, fn, token);
}

}  // namespace nb
