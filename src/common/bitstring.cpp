#include "common/bitstring.h"

#include <bit>
#include <cmath>

#include "common/error.h"
#include "common/simd/simd.h"

namespace nb {

namespace {

constexpr std::size_t bits_per_word = 64;

std::size_t word_count_for(std::size_t bits) noexcept {
    return (bits + bits_per_word - 1) / bits_per_word;
}

}  // namespace

Bitstring::Bitstring(std::size_t size) : words_(word_count_for(size), 0), size_(size) {}

Bitstring Bitstring::from_string(const std::string& bits) {
    Bitstring result(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        const char c = bits[i];
        require(c == '0' || c == '1', "Bitstring::from_string: characters must be 0 or 1");
        if (c == '1') {
            result.set(i);
        }
    }
    return result;
}

Bitstring Bitstring::random(Rng& rng, std::size_t size) {
    Bitstring result(size);
    for (auto& word : result.words_) {
        word = rng.next_u64();
    }
    result.clear_padding();
    return result;
}

Bitstring Bitstring::from_words(std::span<const std::uint64_t> words, std::size_t bits) {
    Bitstring result(bits);
    require(words.size() >= result.words_.size(),
            "Bitstring::from_words: not enough source words");
    for (std::size_t w = 0; w < result.words_.size(); ++w) {
        result.words_[w] = words[w];
    }
    result.clear_padding();
    return result;
}

Bitstring Bitstring::random_with_weight(Rng& rng, std::size_t size, std::size_t weight) {
    require(weight <= size, "Bitstring::random_with_weight: weight must be <= size");
    Bitstring result(size);
    for (const auto position : rng.distinct_positions(size, weight)) {
        result.set(position);
    }
    return result;
}

bool Bitstring::test(std::size_t index) const {
    require(index < size_, "Bitstring::test: index out of range");
    return (words_[index / bits_per_word] >> (index % bits_per_word)) & 1u;
}

void Bitstring::set(std::size_t index, bool value) {
    require(index < size_, "Bitstring::set: index out of range");
    const std::uint64_t mask = std::uint64_t{1} << (index % bits_per_word);
    if (value) {
        words_[index / bits_per_word] |= mask;
    } else {
        words_[index / bits_per_word] &= ~mask;
    }
}

void Bitstring::flip(std::size_t index) {
    require(index < size_, "Bitstring::flip: index out of range");
    words_[index / bits_per_word] ^= std::uint64_t{1} << (index % bits_per_word);
}

std::size_t Bitstring::count() const noexcept {
    std::size_t total = 0;
    for (const auto word : words_) {
        total += static_cast<std::size_t>(std::popcount(word));
    }
    return total;
}

std::size_t Bitstring::intersect_count(const Bitstring& other) const {
    check_same_size(other, "intersect_count");
    std::size_t total = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
        total += static_cast<std::size_t>(std::popcount(words_[w] & other.words_[w]));
    }
    return total;
}

std::size_t Bitstring::and_not_count(const Bitstring& other) const {
    check_same_size(other, "and_not_count");
    return simd::ops().and_not_count(words_.data(), other.words_.data(), words_.size());
}

bool Bitstring::and_not_count_below(const Bitstring& other, std::size_t limit) const {
    check_same_size(other, "and_not_count_below");
    return simd::ops().and_not_count_below(words_.data(), other.words_.data(),
                                           words_.size(), limit);
}

std::size_t Bitstring::hamming_distance(const Bitstring& other) const {
    check_same_size(other, "hamming_distance");
    return simd::ops().hamming(words_.data(), other.words_.data(), words_.size());
}

Bitstring& Bitstring::operator|=(const Bitstring& other) {
    check_same_size(other, "operator|=");
    for (std::size_t w = 0; w < words_.size(); ++w) {
        words_[w] |= other.words_[w];
    }
    return *this;
}

Bitstring& Bitstring::operator&=(const Bitstring& other) {
    check_same_size(other, "operator&=");
    for (std::size_t w = 0; w < words_.size(); ++w) {
        words_[w] &= other.words_[w];
    }
    return *this;
}

Bitstring& Bitstring::operator^=(const Bitstring& other) {
    check_same_size(other, "operator^=");
    for (std::size_t w = 0; w < words_.size(); ++w) {
        words_[w] ^= other.words_[w];
    }
    return *this;
}

Bitstring Bitstring::operator~() const {
    Bitstring result = *this;
    for (auto& word : result.words_) {
        word = ~word;
    }
    result.clear_padding();
    return result;
}

bool Bitstring::operator==(const Bitstring& other) const noexcept {
    return size_ == other.size_ && words_ == other.words_;
}

std::vector<std::size_t> Bitstring::one_positions() const {
    std::vector<std::size_t> positions;
    positions.reserve(count());
    for_each_one([&positions](std::size_t index) { positions.push_back(index); });
    return positions;
}

void Bitstring::reset(std::size_t size) {
    size_ = size;
    words_.assign(word_count_for(size), 0);
}

std::uint64_t Bitstring::load_bits(std::size_t pos, std::size_t width) const {
    require(width <= 64, "Bitstring::load_bits: width must be <= 64");
    require(pos + width <= size_, "Bitstring::load_bits: range out of bounds");
    if (width == 0) {
        return 0;
    }
    const std::size_t word = pos / bits_per_word;
    const std::size_t offset = pos % bits_per_word;
    std::uint64_t value = words_[word] >> offset;
    if (offset + width > bits_per_word) {
        value |= words_[word + 1] << (bits_per_word - offset);
    }
    if (width < 64) {
        value &= (std::uint64_t{1} << width) - 1;
    }
    return value;
}

void Bitstring::store_bits(std::size_t pos, std::uint64_t value, std::size_t width) {
    require(width <= 64, "Bitstring::store_bits: width must be <= 64");
    require(width == 64 || value < (std::uint64_t{1} << width),
            "Bitstring::store_bits: value does not fit in width");
    require(pos + width <= size_, "Bitstring::store_bits: range out of bounds");
    if (width == 0) {
        return;
    }
    const std::size_t word = pos / bits_per_word;
    const std::size_t offset = pos % bits_per_word;
    const std::uint64_t mask =
        width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
    words_[word] = (words_[word] & ~(mask << offset)) | (value << offset);
    if (offset + width > bits_per_word) {
        const std::size_t spill = bits_per_word - offset;
        words_[word + 1] = (words_[word + 1] & ~(mask >> spill)) | (value >> spill);
    }
}

Bitstring Bitstring::tail(std::size_t from) const {
    require(from <= size_, "Bitstring::tail: start out of range");
    Bitstring result(size_ - from);
    const std::size_t word = from / bits_per_word;
    const std::size_t offset = from % bits_per_word;
    for (std::size_t w = 0; w < result.words_.size(); ++w) {
        std::uint64_t value = words_[word + w] >> offset;
        if (offset != 0 && word + w + 1 < words_.size()) {
            value |= words_[word + w + 1] << (bits_per_word - offset);
        }
        result.words_[w] = value;
    }
    result.clear_padding();
    return result;
}

Bitstring Bitstring::gather(const std::vector<std::size_t>& positions) const {
    Bitstring result;
    gather_into(positions, result);
    return result;
}

void Bitstring::gather_into(std::span<const std::size_t> positions, Bitstring& out) const {
    out.reset(positions.size());
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < positions.size(); ++i) {
        const std::size_t p = positions[i];
        require(p < size_, "Bitstring::gather: position out of range");
        acc |= ((words_[p / bits_per_word] >> (p % bits_per_word)) & 1u)
               << (i % bits_per_word);
        if (i % bits_per_word == bits_per_word - 1) {
            out.words_[i / bits_per_word] = acc;
            acc = 0;
        }
    }
    if (positions.size() % bits_per_word != 0) {
        out.words_.back() = acc;
    }
}

void Bitstring::gather_mask_into(const Bitstring& mask, Bitstring& out,
                                 simd::Kernel kernel) const {
    check_same_size(mask, "gather_mask_into");
    out.reset(mask.count());
    if (out.size_ == 0) {
        return;
    }
    simd::ops(kernel).gather_bits(words_.data(), mask.words_.data(), words_.size(),
                                  out.words_.data());
}

Bitstring Bitstring::scatter(std::size_t size, const std::vector<std::size_t>& positions,
                             const Bitstring& values) {
    require(values.size() == positions.size(),
            "Bitstring::scatter: values and positions must have matching length");
    Bitstring result(size);
    for (std::size_t i = 0; i < positions.size(); ++i) {
        require(positions[i] < size, "Bitstring::scatter: position out of range");
        if (values.test(i)) {
            result.set(positions[i]);
        }
    }
    return result;
}

void Bitstring::apply_noise(Rng& rng, double epsilon) {
    require(epsilon >= 0.0 && epsilon < 1.0, "Bitstring::apply_noise: epsilon must be in [0, 1)");
    if (epsilon == 0.0 || size_ == 0) {
        return;
    }
    // Walk the geometric gaps between flipped positions; this is an exact
    // sample of the i.i.d. Bernoulli(epsilon) flip process in O(#flips).
    // The skip denominator is a loop invariant — hoist the logarithm.
    const double log1p_neg_eps = std::log1p(-epsilon);
    std::size_t position = 0;
    while (true) {
        const std::uint64_t skip = rng.geometric_skip_with(log1p_neg_eps);
        if (skip >= size_ || position + skip >= size_) {
            break;
        }
        position += static_cast<std::size_t>(skip);
        flip(position);
        ++position;
        if (position >= size_) {
            break;
        }
    }
}

void Bitstring::apply_noise_dense(Rng& rng, double epsilon) {
    require(epsilon >= 0.0 && epsilon < 1.0,
            "Bitstring::apply_noise_dense: epsilon must be in [0, 1)");
    if (epsilon == 0.0) {
        return;
    }
    for (std::size_t i = 0; i < size_; ++i) {
        if (rng.bernoulli(epsilon)) {
            flip(i);
        }
    }
}

std::string Bitstring::to_string() const {
    std::string text(size_, '0');
    for_each_one([&text](std::size_t index) { text[index] = '1'; });
    return text;
}

std::uint64_t Bitstring::hash() const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t value) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (value >> (8 * byte)) & 0xffu;
            h *= 0x100000001b3ULL;
        }
    };
    mix(static_cast<std::uint64_t>(size_));
    for (const auto word : words_) {
        mix(word);
    }
    return h;
}

void Bitstring::check_same_size(const Bitstring& other, const char* operation) const {
    if (size_ != other.size_) {
        throw precondition_error(std::string("Bitstring::") + operation + ": size mismatch");
    }
}

void Bitstring::clear_padding() noexcept {
    if (size_ % bits_per_word != 0 && !words_.empty()) {
        const std::uint64_t mask = (std::uint64_t{1} << (size_ % bits_per_word)) - 1;
        words_.back() &= mask;
    }
}

}  // namespace nb
