#include "common/json_parse.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <limits>

#include "common/error.h"

namespace nb {

namespace {

const char* kind_name(JsonValue::Kind kind) {
    switch (kind) {
        case JsonValue::Kind::null: return "null";
        case JsonValue::Kind::boolean: return "boolean";
        case JsonValue::Kind::number: return "number";
        case JsonValue::Kind::string: return "string";
        case JsonValue::Kind::array: return "array";
        case JsonValue::Kind::object: return "object";
    }
    return "unknown";
}

[[noreturn]] void kind_error(const char* wanted, JsonValue::Kind actual) {
    throw precondition_error(std::string("JSON: expected ") + wanted + ", got " +
                             kind_name(actual));
}

}  // namespace

bool JsonValue::as_bool() const {
    if (kind_ != Kind::boolean) {
        kind_error("boolean", kind_);
    }
    return bool_;
}

const std::string& JsonValue::as_string() const {
    if (kind_ != Kind::string) {
        kind_error("string", kind_);
    }
    return scalar_;
}

const std::string& JsonValue::raw_number() const {
    if (kind_ != Kind::number) {
        kind_error("number", kind_);
    }
    return scalar_;
}

double JsonValue::as_double() const {
    const std::string& raw = raw_number();
    // std::from_chars, not strtod: strtod honors LC_NUMERIC, so under a
    // comma-decimal locale (de_DE et al.) it stops parsing "0.25" at the
    // '.' — a host application calling setlocale() would silently truncate
    // every fractional JSON number. from_chars is locale-independent by
    // specification.
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), value);
    require(ptr == raw.data() + raw.size() && ec == std::errc{},
            "JSON: number '" + raw + "' is not a finite double");
    return value;
}

std::uint64_t JsonValue::as_uint64() const {
    const std::string& raw = raw_number();
    require(raw.find_first_of(".eE-") == std::string::npos,
            "JSON: number '" + raw + "' is not an unsigned integer");
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(raw.c_str(), &end, 10);
    require(end == raw.c_str() + raw.size() && errno != ERANGE,
            "JSON: number '" + raw + "' overflows uint64");
    return static_cast<std::uint64_t>(value);
}

std::int64_t JsonValue::as_int64() const {
    const std::string& raw = raw_number();
    require(raw.find_first_of(".eE") == std::string::npos,
            "JSON: number '" + raw + "' is not an integer");
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(raw.c_str(), &end, 10);
    require(end == raw.c_str() + raw.size() && errno != ERANGE,
            "JSON: number '" + raw + "' overflows int64");
    return static_cast<std::int64_t>(value);
}

const std::vector<JsonValue>& JsonValue::items() const {
    if (kind_ != Kind::array) {
        kind_error("array", kind_);
    }
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
    if (kind_ != Kind::object) {
        kind_error("object", kind_);
    }
    return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
    if (kind_ != Kind::object) {
        return nullptr;
    }
    for (const auto& [name, value] : members_) {
        if (name == key) {
            return &value;
        }
    }
    return nullptr;
}

class JsonParser {
public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue parse_document() {
        JsonValue value = parse_value(0);
        skip_whitespace();
        if (pos_ != text_.size()) {
            fail("trailing content after the JSON document");
        }
        return value;
    }

private:
    static constexpr std::size_t max_depth = 64;

    [[noreturn]] void fail(const std::string& reason) const {
        // 1-based line:column of the current position, for spec-file
        // diagnostics a human can follow.
        std::size_t line = 1;
        std::size_t column = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
        }
        throw precondition_error("JSON parse error at " + std::to_string(line) + ":" +
                                 std::to_string(column) + ": " + reason);
    }

    void skip_whitespace() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
                break;
            }
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (pos_ >= text_.size() || text_[pos_] != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) {
            return false;
        }
        pos_ += literal.size();
        return true;
    }

    JsonValue parse_value(std::size_t depth) {
        if (depth > max_depth) {
            fail("nesting deeper than 64 levels");
        }
        skip_whitespace();
        const char c = peek();
        switch (c) {
            case '{': return parse_object(depth);
            case '[': return parse_array(depth);
            case '"': {
                JsonValue value;
                value.kind_ = JsonValue::Kind::string;
                value.scalar_ = parse_string();
                return value;
            }
            case 't':
            case 'f': {
                JsonValue value;
                value.kind_ = JsonValue::Kind::boolean;
                value.bool_ = (c == 't');
                if (!consume_literal(c == 't' ? "true" : "false")) {
                    fail("invalid literal");
                }
                return value;
            }
            case 'n':
                if (!consume_literal("null")) {
                    fail("invalid literal");
                }
                return JsonValue{};
            default:
                return parse_number();
        }
    }

    JsonValue parse_object(std::size_t depth) {
        expect('{');
        JsonValue value;
        value.kind_ = JsonValue::Kind::object;
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        while (true) {
            skip_whitespace();
            if (peek() != '"') {
                fail("expected a quoted object key");
            }
            std::string key = parse_string();
            skip_whitespace();
            expect(':');
            value.members_.emplace_back(std::move(key), parse_value(depth + 1));
            skip_whitespace();
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            if (next == '}') {
                ++pos_;
                return value;
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue parse_array(std::size_t depth) {
        expect('[');
        JsonValue value;
        value.kind_ = JsonValue::Kind::array;
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        while (true) {
            value.items_.push_back(parse_value(depth + 1));
            skip_whitespace();
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            if (next == ']') {
                ++pos_;
                return value;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': append_unicode_escape(out); break;
                default: fail("invalid escape sequence");
            }
        }
    }

    std::uint32_t parse_hex4() {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
        }
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            value <<= 4;
            if (c >= '0' && c <= '9') {
                value |= static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                value |= static_cast<std::uint32_t>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                value |= static_cast<std::uint32_t>(c - 'A' + 10);
            } else {
                fail("invalid hex digit in \\u escape");
            }
        }
        return value;
    }

    void append_unicode_escape(std::string& out) {
        std::uint32_t code = parse_hex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
                fail("unpaired surrogate in \\u escape");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
                fail("invalid low surrogate in \\u escape");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
        }
        // UTF-8 encode.
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        const auto digits = [this] {
            std::size_t count = 0;
            while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++count;
            }
            return count;
        };
        const std::size_t int_digits = digits();
        if (int_digits == 0) {
            fail("invalid number");
        }
        if (int_digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
            fail("numbers may not have leading zeros");
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0) {
                fail("expected digits after the decimal point");
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (digits() == 0) {
                fail("expected digits in the exponent");
            }
        }
        JsonValue value;
        value.kind_ = JsonValue::Kind::number;
        value.scalar_.assign(text_.substr(start, pos_ - start));
        return value;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
    JsonParser parser(text);
    return parser.parse_document();
}

}  // namespace nb
