#include "common/cancel.h"

namespace nb {

namespace {

thread_local const CancelToken* current_token = nullptr;

}  // namespace

CancelScope::CancelScope(const CancelToken* token) noexcept : previous_(current_token) {
    current_token = token;
}

CancelScope::~CancelScope() {
    current_token = previous_;
}

const CancelToken* current_cancel_token() noexcept {
    return current_token;
}

}  // namespace nb
