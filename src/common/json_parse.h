// Minimal recursive-descent JSON parser — the read side of common/json.h.
//
// The library stayed write-only until the resilience layer needed to read
// two kinds of JSON it writes itself: sweep journal records (checkpoint /
// --resume replays completed jobs from BENCH_sweep.journal.jsonl) and
// user-authored spec files (`nb_run --spec FILE`). Both uses shape the
// design:
//
//   * numbers keep their raw text. The journal round-trips uint64 counters
//     (total_beeps, seeds) that a double would silently truncate past 2^53;
//     as_uint64()/as_int64() parse the original digits exactly, and
//     as_double() goes through the same strtod the writer's format_double is
//     the inverse of.
//   * errors are precondition_error with 1-based line:column positions, so
//     nb_run's bad-input contract (one-line diagnostic, exit 2) can name
//     where a hand-written spec file broke.
//   * objects preserve insertion order and expose both lookup (find) and
//     iteration, so spec parsing can reject unknown keys by name.
//
// Scope: RFC 8259 minus \u escapes beyond Basic Latin (\uXXXX is decoded to
// UTF-8; surrogate pairs are supported), no comments, no trailing commas —
// exactly what the writer emits plus what hand-written specs need.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nb {

class JsonValue {
public:
    enum class Kind : unsigned char { null, boolean, number, string, array, object };

    JsonValue() = default;

    Kind kind() const noexcept { return kind_; }
    bool is_null() const noexcept { return kind_ == Kind::null; }
    bool is_bool() const noexcept { return kind_ == Kind::boolean; }
    bool is_number() const noexcept { return kind_ == Kind::number; }
    bool is_string() const noexcept { return kind_ == Kind::string; }
    bool is_array() const noexcept { return kind_ == Kind::array; }
    bool is_object() const noexcept { return kind_ == Kind::object; }

    /// Typed accessors; each throws precondition_error naming the actual
    /// kind on mismatch (and, for the integer forms, on range/fraction
    /// violations — "1.5" is not a uint64).
    bool as_bool() const;
    const std::string& as_string() const;    ///< decoded string contents
    double as_double() const;
    std::uint64_t as_uint64() const;         ///< exact, from the raw digits
    std::int64_t as_int64() const;
    const std::string& raw_number() const;   ///< the untouched number token

    const std::vector<JsonValue>& items() const;  ///< array elements
    const std::vector<std::pair<std::string, JsonValue>>& members() const;  ///< object, in order

    /// Object member lookup; null if absent (or not an object).
    const JsonValue* find(std::string_view key) const;

    /// Parse one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected). Throws precondition_error with a
    /// "line:column: reason" prefix on malformed input.
    static JsonValue parse(std::string_view text);

private:
    friend class JsonParser;

    Kind kind_ = Kind::null;
    bool bool_ = false;
    std::string scalar_;  ///< string contents or raw number text
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace nb
