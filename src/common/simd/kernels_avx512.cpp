// AVX-512 kernel set. Compiled with -mavx512f/bw/vl/dq/vpopcntdq (see
// CMakeLists.txt); only ever called after runtime CPU detection confirms
// those features.
//
// VPOPCNTQ counts eight u64 lanes per instruction, so the popcount
// reductions are a straight load/op/popcount/add pipeline — no LUT, no SAD
// folding. The bitwise bitslice pass reuses the generic body, which the
// compiler auto-vectorizes at 512-bit width in this TU
// (-mprefer-vector-width=512).
#include "common/simd/kernels_inl.h"

#include <immintrin.h>

namespace nb::simd {
namespace {

/// popcount of op(a[w], b[w]) over `words`, for op = ANDNOT or XOR.
template <bool kAndNot>
std::size_t reduce_popcount512(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t words) {
    __m512i acc = _mm512_setzero_si512();
    std::size_t w = 0;
    for (; w + 8 <= words; w += 8) {
        const __m512i va = _mm512_loadu_si512(a + w);
        const __m512i vb = _mm512_loadu_si512(b + w);
        // _mm512_andnot_si512(x, y) = ~x & y, so pass (b, a) for a & ~b.
        const __m512i mixed =
            kAndNot ? _mm512_andnot_si512(vb, va) : _mm512_xor_si512(va, vb);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(mixed));
    }
    std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
    for (; w < words; ++w) {
        const std::uint64_t mixed = kAndNot ? (a[w] & ~b[w]) : (a[w] ^ b[w]);
        total += static_cast<std::size_t>(std::popcount(mixed));
    }
    return total;
}

std::size_t avx512_and_not_count(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t words) {
    return reduce_popcount512<true>(a, b, words);
}

std::size_t avx512_hamming(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) {
    return reduce_popcount512<false>(a, b, words);
}

bool avx512_and_not_count_below(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words, std::size_t limit) {
    // Same monotone block-exit contract as the generic kernel.
    std::size_t total = 0;
    std::size_t w = 0;
    while (w < words) {
        const std::size_t end = w + 16 < words ? w + 16 : words;
        total += reduce_popcount512<true>(a + w, b + w, end - w);
        w = end;
        if (total >= limit) {
            return false;
        }
    }
    return total < limit;
}

void avx512_hamming_all(const std::uint64_t* received, std::size_t words,
                        const std::uint64_t* soa, std::size_t stride,
                        std::uint32_t* out) {
    // Word-major SoA: eight candidates' distances accumulate per VPOPCNTQ
    // from one aligned 64-byte load (stride % 8 == 0 keeps every row
    // block cache-line-aligned). Candidate-blocked loop order keeps the
    // accumulator in a register across the (short) word dimension.
    for (std::size_t c = 0; c < stride; c += 8) {
        __m512i acc = _mm512_setzero_si512();
        for (std::size_t w = 0; w < words; ++w) {
            const __m512i r = _mm512_set1_epi64(static_cast<long long>(received[w]));
            const __m512i v = _mm512_load_si512(soa + w * stride + c);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_xor_si512(v, r)));
        }
        // Eight u64 counts -> eight u32 accumulator slots. The masked
        // truncating store (full mask) sidesteps _mm512_cvtepi64_epi32,
        // whose GCC 12 header trips -Werror=uninitialized via
        // _mm256_undefined_si256.
        _mm512_mask_cvtepi64_storeu_epi32(out + c, 0xff, acc);
    }
}

}  // namespace

namespace detail {

SimdOps make_avx512_ops() {
    return SimdOps{
        "avx512",       avx512_and_not_count, avx512_and_not_count_below,
        avx512_hamming, avx512_hamming_all,   generic_bitslice_pass,
        generic_gather_bits,  // -mbmi2 in this TU: compiles to the PEXT walk
    };
}

}  // namespace detail
}  // namespace nb::simd
