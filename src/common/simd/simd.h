// Runtime-dispatched SIMD kernels for the decode hot loops.
//
// The transports' cost is dominated by three word-array kernels: the
// phase-1 bitslice pass (carry-save accumulation of transcript rows into
// vertical counters), the phase-2 Hamming scans (fused XOR+popcount
// reductions), and the Lemma 9 missing-ones counts (fused ANDNOT+popcount).
// This layer compiles each kernel three times — portable scalar (always),
// AVX2, and AVX-512 (each gated by compiler support at build time and CPU
// support at run time) — and dispatches through a per-kernel function table.
//
// Dispatch contract: every table computes bit-identical results. The
// kernels are exact integer reductions and pure bitwise passes, so lane
// width changes only the association order of additions over uint64 words —
// which is immaterial for integer sums — never the value. The forced-
// dispatch property tests (tests/test_simd.cpp) and the golden transport
// fingerprints rerun under every kernel pin this.
//
// Selection: SimulationParams::simd_kernel (per transport), else the
// NB_SIMD_KERNEL environment variable (scalar|avx2|avx512|auto — the CI
// sanitizer jobs force each), else the best kernel the CPU supports.
// Requesting an unavailable kernel falls back to the best supported one;
// resolve_kernel() reports what actually runs, and the benches log it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nb::simd {

enum class Kernel : unsigned char {
    scalar = 0,
    avx2 = 1,
    avx512 = 2,
    auto_best = 255,  ///< defer to NB_SIMD_KERNEL, then CPU detection
};

/// One dispatch table. All pointers are non-null in every table (ISA
/// variants fall back to the generic implementation compiled with that
/// ISA's flags where hand-written intrinsics buy nothing).
struct SimdOps {
    const char* name;

    /// popcount(a AND NOT b) over `words` words (Lemma 9 missing-ones).
    std::size_t (*and_not_count)(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t words);

    /// and_not_count(a, b) < limit with early exit — the packed scalar
    /// phase-1 kernel. Block-wise exits keep the result identical to the
    /// per-word original (the running sum is monotone).
    bool (*and_not_count_below)(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words, std::size_t limit);

    /// popcount(a XOR b) over `words` words (Hamming distance).
    std::size_t (*hamming)(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words);

    /// Hamming distance from `received` to every column of a word-major
    /// SoA dictionary: column c's word w sits at soa[w * stride + c]
    /// (common/word_soa.h). out[c] accumulates across the word index, so
    /// lanes load contiguous column runs — no gathers. Requires
    /// stride % 8 == 0 and out sized to stride (padding columns welcome:
    /// their words are zero, their distances are popcount(received)).
    void (*hamming_all)(const std::uint64_t* received, std::size_t words,
                        const std::uint64_t* soa, std::size_t stride,
                        std::uint32_t* out);

    /// The phase-1 bitslice pass (see bitslice.h for the algorithm): for
    /// every 1-row p of `transcript`, accumulate rows[p * lanes ..] into
    /// 3-bit carry-save chunk counters, flushing each 7-row chunk into the
    /// bias-initialized `planes`; carries out of the top plane OR into
    /// `out`. `low` is 4 * lanes scratch words (3 chunk planes + a carry
    /// buffer), zeroed on entry and left zeroed on exit. lanes % 8 == 0.
    void (*bitslice_pass)(const std::uint64_t* transcript, std::size_t transcript_words,
                          const std::uint64_t* rows, std::size_t lanes,
                          std::uint64_t* low, std::uint64_t* planes,
                          std::size_t plane_count, std::uint64_t* out);

    /// Pack the bits of `src` at the 1-positions of `mask`, ascending, into
    /// `out` (the Notation 7 subsequence gather as a word kernel: word w
    /// appends PEXT(src[w], mask[w]) through a fill buffer). Returns
    /// popcount(mask); `out` must hold ceil(popcount / 64) words and gets
    /// zero padding bits. The x86 tables use the BMI2 PEXT instruction
    /// (checked at dispatch time alongside the vector features).
    std::size_t (*gather_bits)(const std::uint64_t* src, const std::uint64_t* mask,
                               std::size_t words, std::uint64_t* out);
};

/// True iff `kernel`'s code was compiled in AND the CPU supports it
/// (scalar is always true; auto_best is always true).
bool kernel_supported(Kernel kernel) noexcept;

/// The fastest supported kernel on this machine.
Kernel best_kernel() noexcept;

/// What `requested` actually runs as: auto_best resolves through
/// NB_SIMD_KERNEL then best_kernel(); an unsupported explicit request
/// falls back to best_kernel().
Kernel resolve_kernel(Kernel requested) noexcept;

/// The dispatch table for resolve_kernel(requested).
const SimdOps& ops(Kernel requested = Kernel::auto_best) noexcept;

/// "scalar" / "avx2" / "avx512" / "auto".
const char* kernel_name(Kernel kernel) noexcept;

/// Parse a kernel name (as accepted by NB_SIMD_KERNEL); returns auto_best
/// for "auto", scalar/avx2/avx512 for their names, and auto_best with
/// `*ok = false` for anything else.
Kernel parse_kernel(const char* name, bool* ok = nullptr) noexcept;

}  // namespace nb::simd
