// The always-compiled portable kernel set: the generic implementations
// built with the project's baseline flags. This is the fallback every
// dispatch decision can land on, and the reference the ISA variants are
// property-tested against.
#include "common/simd/kernels_inl.h"

namespace nb::simd::detail {

SimdOps make_scalar_ops() {
    return SimdOps{
        "scalar",           generic_and_not_count, generic_and_not_count_below,
        generic_hamming,    generic_hamming_all,   generic_bitslice_pass,
        generic_gather_bits,
    };
}

}  // namespace nb::simd::detail
