// Generic (auto-vectorizable) implementations of the SimdOps kernels.
//
// This header is included ONCE per kernel translation unit — scalar, AVX2,
// AVX-512 — each compiled with that ISA's flags, so the same source yields
// a differently-vectorized body per TU. Everything here lives in an
// anonymous namespace on purpose: each TU gets its own internal-linkage
// copy, so the linker can never merge (and thereby mis-dispatch) bodies
// compiled for different ISAs, which an ODR-shared inline function would
// invite. The popcount reductions are overridden with hand-written
// intrinsics in the AVX2/AVX-512 TUs; the pure bitwise bitslice pass
// auto-vectorizes well everywhere and is shared as-is.
//
// Exactness: every kernel is an integer reduction or a bitwise pass whose
// result is independent of association order, so all ISA variants are
// bit-identical by construction (and property-tested against each other).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/simd/simd.h"

#if defined(__BMI2__)
#include <immintrin.h>
#endif

namespace nb::simd {
namespace {

[[maybe_unused]] std::size_t generic_and_not_count(const std::uint64_t* a, const std::uint64_t* b,
                                  std::size_t words) {
    std::size_t total = 0;
    for (std::size_t w = 0; w < words; ++w) {
        total += static_cast<std::size_t>(std::popcount(a[w] & ~b[w]));
    }
    return total;
}

[[maybe_unused]] bool generic_and_not_count_below(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t words, std::size_t limit) {
    // Early exit per 16-word block: the running count is monotone, so the
    // boolean is identical to the per-word-exit original while the block
    // body stays a straight-line reduction the vectorizer can take.
    std::size_t total = 0;
    std::size_t w = 0;
    while (w < words) {
        const std::size_t end = w + 16 < words ? w + 16 : words;
        for (; w < end; ++w) {
            total += static_cast<std::size_t>(std::popcount(a[w] & ~b[w]));
        }
        if (total >= limit) {
            return false;
        }
    }
    return total < limit;
}

[[maybe_unused]] std::size_t generic_hamming(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words) {
    std::size_t total = 0;
    for (std::size_t w = 0; w < words; ++w) {
        total += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
    }
    return total;
}

[[maybe_unused]] void generic_hamming_all(const std::uint64_t* received, std::size_t words,
                         const std::uint64_t* soa, std::size_t stride,
                         std::uint32_t* out) {
    for (std::size_t c = 0; c < stride; ++c) {
        out[c] = 0;
    }
    for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t r = received[w];
        const std::uint64_t* __restrict row = soa + w * stride;
        std::uint32_t* __restrict acc = out;
        for (std::size_t c = 0; c < stride; ++c) {
            acc[c] += static_cast<std::uint32_t>(std::popcount(row[c] ^ r));
        }
    }
}

/// One 7-row chunk flushed into the bias-initialized planes, written as
/// plane-major full-array passes (each a straight vectorizable loop; the
/// original per-lane sequential walk computes the same values in a
/// different loop order). `carry` is caller scratch of `lanes` words.
void generic_bitslice_flush(std::uint64_t* __restrict low0, std::uint64_t* __restrict low1,
                            std::uint64_t* __restrict low2, std::uint64_t* __restrict carry,
                            std::uint64_t* planes, std::size_t lanes,
                            std::size_t plane_count, std::uint64_t* __restrict out) {
    // Half-add the chunk's bit 0 into plane 0.
    for (std::size_t w = 0; w < lanes; ++w) {
        const std::uint64_t p = planes[w];
        carry[w] = p & low0[w];
        planes[w] = p ^ low0[w];
    }
    if (plane_count == 1) {
        // Counters narrower than the chunk: any unrepresentable chunk bit
        // means the threshold was passed and carries out directly.
        for (std::size_t w = 0; w < lanes; ++w) {
            out[w] |= carry[w] | low1[w] | low2[w];
        }
    } else {
        std::uint64_t* plane1 = planes + lanes;
        for (std::size_t w = 0; w < lanes; ++w) {
            const std::uint64_t p = plane1[w];
            const std::uint64_t c1 = low1[w];
            const std::uint64_t cin = carry[w];
            plane1[w] = p ^ c1 ^ cin;
            carry[w] = (p & (c1 | cin)) | (c1 & cin);
        }
        if (plane_count == 2) {
            for (std::size_t w = 0; w < lanes; ++w) {
                out[w] |= carry[w] | low2[w];
            }
        } else {
            std::uint64_t* plane2 = planes + 2 * lanes;
            for (std::size_t w = 0; w < lanes; ++w) {
                const std::uint64_t p = plane2[w];
                const std::uint64_t c2 = low2[w];
                const std::uint64_t cin = carry[w];
                plane2[w] = p ^ c2 ^ cin;
                carry[w] = (p & (c2 | cin)) | (c2 & cin);
            }
            for (std::size_t k = 3; k < plane_count; ++k) {
                std::uint64_t* plane = planes + k * lanes;
                for (std::size_t w = 0; w < lanes; ++w) {
                    const std::uint64_t p = plane[w];
                    plane[w] = p ^ carry[w];
                    carry[w] &= p;
                }
            }
            for (std::size_t w = 0; w < lanes; ++w) {
                out[w] |= carry[w];
            }
        }
    }
    for (std::size_t w = 0; w < lanes; ++w) {
        low0[w] = 0;
        low1[w] = 0;
        low2[w] = 0;
    }
}

[[maybe_unused]] void generic_bitslice_pass(const std::uint64_t* transcript,
                                            std::size_t transcript_words,
                                            const std::uint64_t* rows, std::size_t lanes,
                                            std::uint64_t* low, std::uint64_t* planes,
                                            std::size_t plane_count, std::uint64_t* out) {
    std::uint64_t* low0 = low;
    std::uint64_t* low1 = low + lanes;
    std::uint64_t* low2 = low + 2 * lanes;
    std::uint64_t* carry = low + 3 * lanes;

    std::size_t chunk_rows = 0;
    for (std::size_t tw = 0; tw < transcript_words; ++tw) {
        std::uint64_t bits = transcript[tw];
        while (bits != 0) {
            const std::size_t p =
                tw * 64 + static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            const std::uint64_t* __restrict row = rows + p * lanes;
            std::uint64_t* __restrict l0 = low0;
            std::uint64_t* __restrict l1 = low1;
            std::uint64_t* __restrict l2 = low2;
            for (std::size_t w = 0; w < lanes; ++w) {
                const std::uint64_t r = row[w];
                const std::uint64_t a = l0[w];
                const std::uint64_t carry1 = a & r;
                l0[w] = a ^ r;
                const std::uint64_t b = l1[w];
                l1[w] = b ^ carry1;
                l2[w] ^= b & carry1;
            }
            if (++chunk_rows == 7) {
                generic_bitslice_flush(low0, low1, low2, carry, planes, lanes, plane_count,
                                       out);
                chunk_rows = 0;
            }
        }
    }
    if (chunk_rows != 0) {
        generic_bitslice_flush(low0, low1, low2, carry, planes, lanes, plane_count, out);
    }
}

/// Pack the bits of `src` found at the 1-positions of `mask` (ascending)
/// into `out` — a whole-word PEXT walk over the Notation 7 subsequence
/// gather, replacing the per-position bit loop of Bitstring::gather_into.
/// Word w contributes PEXT(src[w], mask[w]) (extracted here bit by bit when
/// the TU lacks BMI2 — identical result), appended through a 64-bit fill
/// buffer, so the output equals gathering src at mask.one_positions() in
/// order. Returns popcount(mask); out must hold ceil(that / 64) words, and
/// every written word is fully assembled (padding bits land as zeros).
[[maybe_unused]] std::size_t generic_gather_bits(const std::uint64_t* src,
                                                 const std::uint64_t* mask,
                                                 std::size_t words, std::uint64_t* out) {
    std::uint64_t acc = 0;
    std::size_t fill = 0;
    std::size_t total = 0;
    std::size_t ow = 0;
    for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t m = mask[w];
        if (m == 0) {
            continue;
        }
#if defined(__BMI2__)
        const std::uint64_t ext = _pext_u64(src[w], m);
        const std::size_t cnt = static_cast<std::size_t>(std::popcount(m));
#else
        const std::uint64_t s = src[w];
        std::uint64_t ext = 0;
        std::size_t cnt = 0;
        while (m != 0) {
            const int b = std::countr_zero(m);
            m &= m - 1;
            ext |= ((s >> b) & std::uint64_t{1}) << cnt;
            ++cnt;
        }
#endif
        acc |= ext << fill;
        const std::size_t next = fill + cnt;
        if (next >= 64) {
            out[ow++] = acc;
            // The bits of ext that did not fit (cnt + fill - 64 of them)
            // start the next output word; when fill == 0 the word consumed
            // ext exactly and the remainder is empty (ext >> 64 would be UB).
            acc = fill == 0 ? 0 : ext >> (64 - fill);
        }
        fill = next & 63;
        total += cnt;
    }
    if (fill != 0) {
        out[ow] = acc;
    }
    return total;
}

}  // namespace
}  // namespace nb::simd
