// Runtime kernel detection and dispatch-table selection (see simd.h).
//
// Detection runs once (first use) and caches: compiled-in kernel sets are
// declared by the NB_SIMD_HAVE_* macros CMake defines per platform, and the
// CPU is probed with __builtin_cpu_supports. AVX-512 requires the full
// feature set the kernels use (F/BW/VL/DQ + VPOPCNTDQ), not just
// avx512f — Skylake-SP-era parts without VPOPCNTQ resolve to AVX2.
#include "common/simd/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nb::simd {

namespace detail {
SimdOps make_scalar_ops();
#if defined(NB_SIMD_HAVE_AVX2)
SimdOps make_avx2_ops();
#endif
#if defined(NB_SIMD_HAVE_AVX512)
SimdOps make_avx512_ops();
#endif
}  // namespace detail

namespace {

bool cpu_has_avx2() noexcept {
#if defined(NB_SIMD_HAVE_AVX2) && (defined(__x86_64__) || defined(_M_X64))
    // The AVX2/AVX-512 TUs are also compiled with -mbmi2 for the PEXT
    // gather kernel, so BMI2 joins the gate. Every AVX2 CPU (Haswell/Zen
    // onward) has it; checking keeps dispatch sound regardless.
    return __builtin_cpu_supports("avx2") != 0 && __builtin_cpu_supports("bmi2") != 0;
#else
    return false;
#endif
}

bool cpu_has_avx512() noexcept {
#if defined(NB_SIMD_HAVE_AVX512) && (defined(__x86_64__) || defined(_M_X64))
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512bw") != 0 &&
           __builtin_cpu_supports("avx512vl") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0 &&
           __builtin_cpu_supports("avx512vpopcntdq") != 0 &&
           __builtin_cpu_supports("bmi2") != 0;
#else
    return false;
#endif
}

struct Tables {
    SimdOps scalar;
#if defined(NB_SIMD_HAVE_AVX2)
    SimdOps avx2;
#endif
#if defined(NB_SIMD_HAVE_AVX512)
    SimdOps avx512;
#endif
    bool avx2_ok = false;
    bool avx512_ok = false;
    Kernel best = Kernel::scalar;
    Kernel env_kernel = Kernel::auto_best;  ///< NB_SIMD_KERNEL, parsed once

    Tables() : scalar(detail::make_scalar_ops()) {
#if defined(NB_SIMD_HAVE_AVX2)
        avx2 = detail::make_avx2_ops();
        avx2_ok = cpu_has_avx2();
#endif
#if defined(NB_SIMD_HAVE_AVX512)
        avx512 = detail::make_avx512_ops();
        avx512_ok = cpu_has_avx512();
#endif
        best = avx512_ok ? Kernel::avx512 : (avx2_ok ? Kernel::avx2 : Kernel::scalar);

        if (const char* env = std::getenv("NB_SIMD_KERNEL"); env != nullptr && *env != '\0') {
            bool ok = false;
            const Kernel parsed = parse_kernel(env, &ok);
            if (!ok) {
                std::fprintf(stderr,
                             "[nb::simd] NB_SIMD_KERNEL=%s not recognized "
                             "(expected scalar|avx2|avx512|auto); using auto\n",
                             env);
            } else if (parsed != Kernel::auto_best && !supported(parsed)) {
                std::fprintf(stderr,
                             "[nb::simd] NB_SIMD_KERNEL=%s unavailable on this "
                             "build/CPU; falling back to %s\n",
                             env, kernel_name(best));
            } else {
                env_kernel = parsed;
            }
        }
    }

    bool supported(Kernel k) const noexcept {
        switch (k) {
            case Kernel::scalar:
            case Kernel::auto_best:
                return true;
            case Kernel::avx2:
                return avx2_ok;
            case Kernel::avx512:
                return avx512_ok;
        }
        return false;
    }

    const SimdOps& table(Kernel k) const noexcept {
        switch (k) {
#if defined(NB_SIMD_HAVE_AVX2)
            case Kernel::avx2:
                return avx2;
#endif
#if defined(NB_SIMD_HAVE_AVX512)
            case Kernel::avx512:
                return avx512;
#endif
            default:
                return scalar;
        }
    }
};

const Tables& tables() noexcept {
    // Thread-safe one-time init; no destructor ordering issues (POD-ish).
    static const Tables t;
    return t;
}

}  // namespace

bool kernel_supported(Kernel kernel) noexcept { return tables().supported(kernel); }

Kernel best_kernel() noexcept { return tables().best; }

Kernel resolve_kernel(Kernel requested) noexcept {
    const Tables& t = tables();
    if (requested == Kernel::auto_best) {
        requested = t.env_kernel;
    }
    if (requested == Kernel::auto_best || !t.supported(requested)) {
        return t.best;
    }
    return requested;
}

const SimdOps& ops(Kernel requested) noexcept {
    return tables().table(resolve_kernel(requested));
}

const char* kernel_name(Kernel kernel) noexcept {
    switch (kernel) {
        case Kernel::scalar:
            return "scalar";
        case Kernel::avx2:
            return "avx2";
        case Kernel::avx512:
            return "avx512";
        case Kernel::auto_best:
            return "auto";
    }
    return "unknown";
}

Kernel parse_kernel(const char* name, bool* ok) noexcept {
    bool parsed = true;
    Kernel kernel = Kernel::auto_best;
    if (name == nullptr) {
        parsed = false;
    } else if (std::strcmp(name, "scalar") == 0) {
        kernel = Kernel::scalar;
    } else if (std::strcmp(name, "avx2") == 0) {
        kernel = Kernel::avx2;
    } else if (std::strcmp(name, "avx512") == 0) {
        kernel = Kernel::avx512;
    } else if (std::strcmp(name, "auto") != 0) {
        parsed = false;
    }
    if (ok != nullptr) {
        *ok = parsed;
    }
    return kernel;
}

}  // namespace nb::simd
