// AVX2 kernel set. Compiled with -mavx2 (see CMakeLists.txt); only ever
// called after runtime CPU detection confirms AVX2.
//
// The popcount reductions use the VPSHUFB nibble-LUT popcount with
// _mm256_sad_epu8 byte-sum folding (the classic Mula/Kurz/Lemire scheme):
// AVX2 has no vector popcount instruction, so each 256-bit lane's bytes
// are counted via two 16-entry table lookups and summed with SAD, giving
// four u64 partial counts per vector that accumulate without overflow for
// any realistic array length. The bitwise bitslice pass and the early-exit
// variant reuse the generic bodies, which GCC/Clang auto-vectorize at
// 256-bit width in this TU.
#include "common/simd/kernels_inl.h"

#include <immintrin.h>

namespace nb::simd {
namespace {

/// Per-byte popcount of a 256-bit vector via nibble LUT.
inline __m256i popcount_bytes(__m256i v) {
    const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                                         0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
}

/// Horizontal sum of the four u64 lanes.
inline std::uint64_t hsum_epi64(__m256i v) {
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i sum = _mm_add_epi64(lo, hi);
    return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
           static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

/// popcount of op(a[w], b[w]) over `words`, for op = ANDNOT or XOR.
template <bool kAndNot>
std::size_t reduce_popcount(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words) {
    __m256i acc = _mm256_setzero_si256();
    std::size_t w = 0;
    for (; w + 4 <= words; w += 4) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
        // _mm256_andnot_si256(x, y) = ~x & y, so pass (b, a) for a & ~b.
        const __m256i mixed =
            kAndNot ? _mm256_andnot_si256(vb, va) : _mm256_xor_si256(va, vb);
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(popcount_bytes(mixed),
                                                    _mm256_setzero_si256()));
    }
    std::size_t total = static_cast<std::size_t>(hsum_epi64(acc));
    for (; w < words; ++w) {
        const std::uint64_t mixed = kAndNot ? (a[w] & ~b[w]) : (a[w] ^ b[w]);
        total += static_cast<std::size_t>(std::popcount(mixed));
    }
    return total;
}

std::size_t avx2_and_not_count(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t words) {
    return reduce_popcount<true>(a, b, words);
}

std::size_t avx2_hamming(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) {
    return reduce_popcount<false>(a, b, words);
}

bool avx2_and_not_count_below(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words, std::size_t limit) {
    // Same monotone block-exit contract as the generic kernel, with the
    // block reduction vectorized.
    std::size_t total = 0;
    std::size_t w = 0;
    while (w < words) {
        const std::size_t end = w + 16 < words ? w + 16 : words;
        total += reduce_popcount<true>(a + w, b + w, end - w);
        w = end;
        if (total >= limit) {
            return false;
        }
    }
    return total < limit;
}

void avx2_hamming_all(const std::uint64_t* received, std::size_t words,
                      const std::uint64_t* soa, std::size_t stride,
                      std::uint32_t* out) {
    // Word-major SoA: candidate c's word w sits at soa[w * stride + c], so
    // four candidates' distances accumulate per vector op from contiguous
    // 32-byte loads — no gathers. Candidate-blocked loop order keeps the
    // accumulator in a register across the (short) word dimension.
    for (std::size_t c = 0; c < stride; c += 4) {
        __m256i acc = _mm256_setzero_si256();
        for (std::size_t w = 0; w < words; ++w) {
            const __m256i r = _mm256_set1_epi64x(static_cast<long long>(received[w]));
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(soa + w * stride + c));
            acc = _mm256_add_epi64(
                acc, _mm256_sad_epu8(popcount_bytes(_mm256_xor_si256(v, r)),
                                     _mm256_setzero_si256()));
        }
        alignas(32) std::uint64_t counts[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(counts), acc);
        out[c + 0] = static_cast<std::uint32_t>(counts[0]);
        out[c + 1] = static_cast<std::uint32_t>(counts[1]);
        out[c + 2] = static_cast<std::uint32_t>(counts[2]);
        out[c + 3] = static_cast<std::uint32_t>(counts[3]);
    }
}

}  // namespace

namespace detail {

SimdOps make_avx2_ops() {
    return SimdOps{
        "avx2",       avx2_and_not_count, avx2_and_not_count_below,
        avx2_hamming, avx2_hamming_all,   generic_bitslice_pass,
        generic_gather_bits,  // -mbmi2 in this TU: compiles to the PEXT walk
    };
}

}  // namespace detail
}  // namespace nb::simd
