// Word-major structure-of-arrays dictionary for the phase-2 Hamming scans.
//
// A nearest-codeword scan visits every candidate's encoding; stored as one
// Bitstring per candidate, each visit strides to a fresh heap block and the
// vector kernels would need gathers. This layout transposes the dictionary
// once per round: word w of candidate c sits at data()[w * stride() + c],
// with the candidate dimension padded to a whole cache line, so a vector
// register spans adjacent *candidates* of one word index and the per-word
// broadcast-XOR-popcount loop (SimdOps::hamming_all) runs over contiguous
// aligned loads. Padding columns hold zero words and are simply ignored by
// callers (their "distances" are popcount(received); no entry indexes them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/aligned.h"
#include "common/bitstring.h"

namespace nb {

class WordSoa {
public:
    WordSoa() = default;

    /// Transpose `columns` (all the same bit length) into word-major layout.
    /// Replaces any previous contents; an empty span yields empty().
    void build(std::span<const Bitstring> columns);

    /// Overwrite column `c` in place with `column` (same bit length as the
    /// built columns). The delta path for a rebuilt dictionary whose entry
    /// space is unchanged: a copy of the old layout plus set_column for each
    /// changed entry replaces the full re-transposition.
    void set_column(std::size_t c, const Bitstring& column);

    bool empty() const noexcept { return count_ == 0; }
    std::size_t count() const noexcept { return count_; }    ///< real columns
    std::size_t stride() const noexcept { return stride_; }  ///< padded columns
    std::size_t words() const noexcept { return words_; }    ///< words per column
    std::size_t bits() const noexcept { return bits_; }      ///< bits per column

    const std::uint64_t* data() const noexcept { return data_.data(); }

    /// Hamming distance of column `c` to `received` (words() packed words) —
    /// the strided single-column read the nearest-entry hint shortcut takes
    /// before committing to the full hamming_all sweep.
    std::size_t column_distance(const std::uint64_t* received, std::size_t c) const;

private:
    AlignedWords data_;
    std::size_t count_ = 0;
    std::size_t stride_ = 0;
    std::size_t words_ = 0;
    std::size_t bits_ = 0;
};

}  // namespace nb
