// Small numeric helpers used across modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nb {

/// Ceiling of log2(value) for value >= 1; ceil_log2(1) == 0.
std::size_t ceil_log2(std::uint64_t value);

/// Floor of log2(value) for value >= 1.
std::size_t floor_log2(std::uint64_t value);

/// Ceiling division a / b for b > 0.
std::size_t ceil_div(std::size_t a, std::size_t b);

/// The iterated logarithm log*(value): number of times log2 must be applied
/// before the result is <= 1. Used in prior-work cost models.
std::size_t log_star(double value);

/// Round `value` up to the nearest multiple of `factor` (factor > 0).
std::size_t round_up_to_multiple(std::size_t value, std::size_t factor);

/// Streaming mean / min / max / stddev accumulator for experiment reporting.
class Summary {
public:
    void add(double value) noexcept;

    std::size_t count() const noexcept { return count_; }
    double mean() const noexcept;
    double min() const noexcept;
    double max() const noexcept;
    /// Sample standard deviation (Welford); 0 for fewer than 2 samples.
    double stddev() const noexcept;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace nb
