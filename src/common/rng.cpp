#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace nb {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
    std::uint64_t state = value;
    return splitmix64(state);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
        word = splitmix64(sm);
    }
}

std::uint64_t Rng::next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
    require(bound > 0, "Rng::next_below: bound must be positive");
    // Classic unbiased rejection sampling: discard draws below
    // 2^64 mod bound, then reduce.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
        const std::uint64_t x = next_u64();
        if (x >= threshold) {
            return x % bound;
        }
    }
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
    require(lo <= hi, "Rng::next_in: lo must be <= hi");
    const std::uint64_t span = hi - lo;
    if (span == UINT64_MAX) {
        return next_u64();
    }
    return lo + next_below(span + 1);
}

double Rng::next_double() noexcept {
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
    require(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p must be in [0, 1]");
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return next_double() < p;
}

std::uint64_t Rng::geometric_skip(double p) {
    require(p > 0.0 && p <= 1.0, "Rng::geometric_skip: p must be in (0, 1]");
    if (p >= 1.0) {
        return 0;
    }
    return geometric_skip_with(std::log1p(-p));
}

std::uint64_t Rng::geometric_skip_with(double log1p_neg_p) noexcept {
    // Inverse-CDF sampling: floor(log(U) / log(1 - p)) with U in (0, 1].
    double u = next_double();
    if (u <= 0.0) {
        u = 0x1.0p-53;
    }
    const double skip = std::floor(std::log(u) / log1p_neg_p);
    if (skip >= 9.2e18) {
        return UINT64_MAX;
    }
    return static_cast<std::uint64_t>(skip);
}

std::vector<std::size_t> Rng::distinct_positions(std::size_t universe, std::size_t count) {
    require(count <= universe, "Rng::distinct_positions: count must be <= universe");
    // Floyd's algorithm gives `count` distinct samples in O(count) expected
    // time; we collect into a sorted vector at the end.
    std::vector<std::size_t> chosen;
    chosen.reserve(count);
    std::vector<bool> taken;
    // For dense requests a plain partial Fisher-Yates over a scratch vector
    // would allocate O(universe); Floyd + membership bitmap keeps memory at
    // O(universe/8) only when universe is small, otherwise uses sorted probe.
    if (universe <= (1u << 22)) {
        taken.assign(universe, false);
        for (std::size_t j = universe - count; j < universe; ++j) {
            const auto t = static_cast<std::size_t>(next_below(j + 1));
            if (!taken[t]) {
                taken[t] = true;
                chosen.push_back(t);
            } else {
                taken[j] = true;
                chosen.push_back(j);
            }
        }
    } else {
        // Rejection sampling is fine when count << universe (our use case for
        // large universes); expected iterations ~ count for count <= sqrt-ish
        // densities.
        std::vector<std::size_t> sorted;
        sorted.reserve(count);
        while (sorted.size() < count) {
            const auto candidate = static_cast<std::size_t>(next_below(universe));
            bool duplicate = false;
            for (const auto existing : sorted) {
                if (existing == candidate) {
                    duplicate = true;
                    break;
                }
            }
            if (!duplicate) {
                sorted.push_back(candidate);
            }
        }
        chosen = std::move(sorted);
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

Rng Rng::derive(std::uint64_t stream_id) const noexcept {
    std::uint64_t mixed = state_[0] ^ rotl(state_[2], 29);
    mixed = mix64(mixed ^ mix64(stream_id ^ 0xa0761d6478bd642fULL));
    return Rng(mixed);
}

Rng Rng::derive(std::uint64_t id_a, std::uint64_t id_b) const noexcept {
    return derive(mix64(id_a) ^ rotl(mix64(id_b ^ 0xe7037ed1a0b428dbULL), 31));
}

}  // namespace nb
