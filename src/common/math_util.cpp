#include "common/math_util.h"

#include <bit>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace nb {

std::size_t ceil_log2(std::uint64_t value) {
    require(value >= 1, "ceil_log2: value must be >= 1");
    if (value == 1) {
        return 0;
    }
    return static_cast<std::size_t>(64 - std::countl_zero(value - 1));
}

std::size_t floor_log2(std::uint64_t value) {
    require(value >= 1, "floor_log2: value must be >= 1");
    return static_cast<std::size_t>(63 - std::countl_zero(value));
}

std::size_t ceil_div(std::size_t a, std::size_t b) {
    require(b > 0, "ceil_div: divisor must be positive");
    return (a + b - 1) / b;
}

std::size_t log_star(double value) {
    std::size_t iterations = 0;
    while (value > 1.0) {
        value = std::log2(value);
        ++iterations;
        if (iterations > 64) {
            break;  // unreachable for finite doubles; defensive bound
        }
    }
    return iterations;
}

std::size_t round_up_to_multiple(std::size_t value, std::size_t factor) {
    require(factor > 0, "round_up_to_multiple: factor must be positive");
    return ceil_div(value, factor) * factor;
}

void Summary::add(double value) noexcept {
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

double Summary::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double Summary::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double Summary::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

double Summary::stddev() const noexcept {
    if (count_ < 2) {
        return 0.0;
    }
    return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

}  // namespace nb
