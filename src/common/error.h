// Error-handling helpers shared across the library.
//
// Following the C++ Core Guidelines (I.5/I.7, E.x) we express preconditions
// and invariants as checked function calls that throw on violation, rather
// than macros. All exceptions derive from std::exception.
#pragma once

#include <stdexcept>
#include <string>

namespace nb {

/// Thrown when a caller violates a documented precondition.
class precondition_error : public std::invalid_argument {
public:
    using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a bug in this library).
class invariant_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

/// Check a precondition; throws precondition_error with `what` on failure.
/// The const char* overload matters: nearly every caller passes a string
/// literal, and materializing a std::string argument unconditionally puts a
/// heap allocation on hot paths that only need it when the check fails.
inline void require(bool condition, const char* what) {
    if (!condition) {
        throw precondition_error(what);
    }
}

inline void require(bool condition, const std::string& what) {
    if (!condition) {
        throw precondition_error(what);
    }
}

/// Check an internal invariant; throws invariant_error with `what` on failure.
inline void ensure(bool condition, const char* what) {
    if (!condition) {
        throw invariant_error(what);
    }
}

inline void ensure(bool condition, const std::string& what) {
    if (!condition) {
        throw invariant_error(what);
    }
}

}  // namespace nb
