#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace nb {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    require(!headers_.empty(), "Table: at least one column required");
}

void Table::add_row(std::vector<std::string> cells) {
    require(cells.size() <= headers_.size(), "Table::add_row: more cells than columns");
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
    std::ostringstream stream;
    stream << std::fixed << std::setprecision(precision) << value;
    return stream.str();
}

std::string Table::num(std::size_t value) { return std::to_string(value); }

void Table::print(std::ostream& out, const std::string& title) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    out << "== " << title << " ==\n";
    auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << "| " << std::left << std::setw(static_cast<int>(widths[c])) << cells[c] << ' ';
        }
        out << "|\n";
    };
    print_row(headers_);
    std::size_t total = 1;
    for (const auto width : widths) {
        total += width + 3;
    }
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) {
        print_row(row);
    }
    out << '\n';
}

}  // namespace nb
