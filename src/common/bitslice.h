// Bitsliced (column-transposed) bit matrix with vertical-counter threshold
// kernels.
//
// The phase-1 decoder's hot question is "which of these C candidate
// codewords have fewer than `limit` of their 1s missing from the heard
// transcript?" (Lemma 9). Answered one candidate at a time, that is C scans
// of the b-bit transcript. This matrix stores the candidates TRANSPOSED —
// row p holds bit p of every candidate, packed 64 candidates per lane word —
// so one pass over the transcript scores all candidates simultaneously:
// visiting the transcript's 1-rows and adding each row's lane words into
// per-candidate vertical counters computes every candidate's intersection
// count word-parallel across candidates.
//
// The counters are bit-planes (plane k holds bit k of all candidates'
// counters) and are *bias-initialized*: candidate c's counter starts at
// 2^K - t_c, where t_c = weight_c - limit + 1 is the intersection count at
// which c becomes accepted. A ripple-carry out of the top plane then fires
// exactly when the count reaches t_c, and the carry-out word IS the
// acceptance bitmask — no final comparison pass. Overflowed counters wrap
// and may carry again; the mask accumulates with sticky OR, so re-overflow
// is harmless.
//
// This layout and kernel follow the data-plane systems the ROADMAP points
// at: transpose the hot data once (per Codebook round), then answer each
// query with dense word-parallel arithmetic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/bitstring.h"
#include "common/simd/simd.h"

namespace nb {

class BitsliceMatrix;

/// Reusable workspace for BitsliceMatrix::and_not_below: the bias planes
/// (rebuilt only when the (matrix, limit) pair changes) and the working
/// counter planes. One scratch per worker thread; calls never allocate once
/// warm.
class BitsliceScratch {
public:
    BitsliceScratch() = default;

private:
    friend class BitsliceMatrix;

    AlignedWords bias_;     ///< plane-major counter init values
    AlignedWords planes_;   ///< working counters, plane-major
    AlignedWords low_;      ///< 3-bit chunk counters + carry buffer (4 planes)
    AlignedWords always_;   ///< columns accepted at any count
    std::uint64_t bias_epoch_ = 0;        ///< matrix epoch the bias was built for
    std::size_t bias_limit_ = 0;
    std::size_t plane_count_ = 0;
};

class BitsliceMatrix {
public:
    BitsliceMatrix() = default;

    /// Transpose the concatenation of two column sets (all columns must
    /// share one length). The split constructor lets the codebook slice its
    /// node codewords and decoy codewords into one matrix without first
    /// concatenating them.
    BitsliceMatrix(std::span<const Bitstring> columns,
                   std::span<const Bitstring> extra_columns = {});

    std::size_t rows() const noexcept { return rows_; }          ///< transcript length b
    std::size_t columns() const noexcept { return columns_; }    ///< candidate count

    /// Lane words per row, padded to a whole cache line (multiple of 8) so
    /// the SIMD kernels process full vectors with no tail branch; padding
    /// lanes hold zero columns and never set accept bits.
    std::size_t lane_words() const noexcept { return lane_words_; }
    bool empty() const noexcept { return columns_ == 0; }

    /// 1-count of column c (cached at transposition time).
    std::uint32_t column_weight(std::size_t c) const { return weights_[c]; }

    /// Row p as lane words (bit c of word c/64 = column c's bit at row p).
    std::span<const std::uint64_t> row(std::size_t p) const {
        return {rows_data_.data() + p * lane_words_, lane_words_};
    }

    /// The Lemma 9 acceptance test for every column at once: after the call,
    /// bit c of `accept` (word c/64, bit c%64) is set iff
    ///     popcount(column_c AND NOT other) < limit,
    /// i.e. iff column_c.and_not_count_below(other, limit) — the bitsliced
    /// counterpart of the scalar kernel, bit-identical by construction.
    /// `accept` is resized to lane_words(); padding bits beyond columns()
    /// are zero. Precondition: other.size() == rows(). The hot pass runs on
    /// the dispatch table for `kernel` (see common/simd/simd.h); every
    /// kernel produces the identical mask.
    void and_not_below(const Bitstring& other, std::size_t limit, BitsliceScratch& scratch,
                       std::vector<std::uint64_t>& accept,
                       simd::Kernel kernel = simd::Kernel::auto_best) const;

private:
    void prepare_scratch(std::size_t limit, BitsliceScratch& scratch) const;

    std::size_t rows_ = 0;
    std::size_t columns_ = 0;
    std::size_t lane_words_ = 0;
    /// Identity for scratch bias caching: unique per transposition, shared
    /// by copies (which hold identical content). Keying the cache on an
    /// epoch instead of the matrix address keeps a scratch from false-
    /// hitting when a destroyed matrix's storage is reused for a new one.
    std::uint64_t epoch_ = 0;
    AlignedWords rows_data_;                 ///< rows * lane_words, row-major
    std::vector<std::uint32_t> weights_;     ///< per-column 1-counts
};

}  // namespace nb
