// 64-byte-aligned word storage for the SIMD kernel layer.
//
// The hot data the vector kernels stream over — the bitsliced candidate
// matrix, the word-major encoded dictionary, the vertical-counter planes —
// lives in cache-line-aligned buffers whose row strides are padded to whole
// vector registers, so every lane load is a plain aligned (or at worst
// contiguous unaligned) load and never a gather.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace nb {

/// Minimal C++17-style allocator returning 64-byte-aligned blocks.
template <typename T>
struct AlignedAllocator {
    using value_type = T;
    static constexpr std::size_t alignment = 64;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

    T* allocate(std::size_t count) {
        const std::size_t bytes = count * sizeof(T);
        // operator new with align_val_t so the optional allocation-counting
        // hook (bench/alloc_hooks.cpp) sees these like any other allocation.
        return static_cast<T*>(::operator new(bytes, std::align_val_t{alignment}));
    }
    void deallocate(T* p, std::size_t) noexcept {
        ::operator delete(p, std::align_val_t{alignment});
    }

    template <typename U>
    bool operator==(const AlignedAllocator<U>&) const noexcept {
        return true;
    }
};

/// The kernel-facing word buffer: 64-byte-aligned uint64 storage.
using AlignedWords = std::vector<std::uint64_t, AlignedAllocator<std::uint64_t>>;

/// Words per 64-byte cache line / AVX-512 register.
inline constexpr std::size_t words_per_line = 8;

/// `words` rounded up to a whole cache line — the row stride the SIMD
/// kernels run over (padding words are kept zero by their owners, which
/// makes processing the padded tail both harmless and branch-free).
constexpr std::size_t padded_words(std::size_t words) noexcept {
    return (words + words_per_line - 1) / words_per_line * words_per_line;
}

}  // namespace nb
