// Deterministic pseudo-random number generation.
//
// Every randomized component in the library draws from an explicit Rng so a
// run is a pure function of (inputs, seed). The generator is xoshiro256**
// seeded via splitmix64; independent per-node / per-purpose streams are
// derived with Rng::derive(), which mixes a stream id into the seed so that
// streams are statistically independent and order-insensitive.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace nb {

/// splitmix64 step: the standard 64-bit finalizer-based generator, used for
/// seeding and for hash-mixing stream ids.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// One-shot stateless mix of a 64-bit value (splitmix64 finalizer).
std::uint64_t mix64(std::uint64_t value) noexcept;

/// xoshiro256** generator with convenience sampling methods.
class Rng {
public:
    /// Construct from a 64-bit seed (expanded through splitmix64).
    explicit Rng(std::uint64_t seed = 0) noexcept;

    /// Next raw 64-bit output.
    std::uint64_t next_u64() noexcept;

    /// Uniform integer in [0, bound). Precondition: bound > 0.
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
    std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

    /// Uniform double in [0, 1).
    double next_double() noexcept;

    /// Bernoulli trial with success probability p in [0, 1].
    bool bernoulli(double p);

    /// Number of failures before the next success in a Bernoulli(p) process,
    /// i.e. a Geometric(p) sample starting at 0. Used for sparse noise
    /// injection: the gap between consecutive flipped bits.
    /// Precondition: 0 < p <= 1.
    std::uint64_t geometric_skip(double p);

    /// geometric_skip(p) with the denominator log1p(-p) precomputed by the
    /// caller. Hot loops drawing many skips at one p hoist the logarithm;
    /// draws and arithmetic are identical to geometric_skip(p).
    std::uint64_t geometric_skip_with(double log1p_neg_p) noexcept;

    /// `count` distinct positions sampled uniformly from [0, universe),
    /// returned sorted ascending (Floyd's algorithm).
    /// Precondition: count <= universe.
    std::vector<std::size_t> distinct_positions(std::size_t universe, std::size_t count);

    /// Fisher-Yates shuffle of [first, last) index order applied to a vector.
    template <typename T>
    void shuffle(std::vector<T>& items) {
        if (items.size() < 2) {
            return;
        }
        for (std::size_t i = items.size() - 1; i > 0; --i) {
            const auto j = static_cast<std::size_t>(next_below(i + 1));
            using std::swap;
            swap(items[i], items[j]);
        }
    }

    /// A new, statistically independent generator for the given stream id.
    /// derive(a) and derive(b) are independent for a != b, and independent of
    /// further draws from *this (derivation does not advance this generator).
    Rng derive(std::uint64_t stream_id) const noexcept;

    /// Derivation keyed by two ids (e.g. (node, round)).
    Rng derive(std::uint64_t id_a, std::uint64_t id_b) const noexcept;

private:
    std::array<std::uint64_t, 4> state_{};
};

}  // namespace nb
