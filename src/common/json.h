// Minimal streaming JSON writer.
//
// One serializer backs every machine-readable artifact this repo emits
// (BENCH_transport.json, BENCH_scenarios.json, any future bench output):
// the benches and the scenario runner all drive this writer instead of
// hand-formatting braces, so escaping, number formatting, and comma/indent
// discipline exist exactly once. Write-only by design — nothing in the
// library consumes JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace nb {

/// Shortest round-trip decimal form of a finite double (std::to_chars): the
/// fewest digits that parse back to exactly `number`, locale-independent.
/// The one double formatter behind JsonWriter::value(double) and every
/// name/label that embeds a double the byte-identity contracts cover.
/// Precondition: `number` is finite.
std::string format_double(double number);

/// Structured writer with begin/end pairs for objects and arrays. Values in
/// an object must be preceded by key(); values in an array are appended
/// directly. Misuse (a key at array scope, a value without a key at object
/// scope, unbalanced ends) throws precondition_error.
class JsonWriter {
public:
    /// Writes to `out`, which must outlive the writer. `indent` spaces per
    /// nesting level; 0 emits compact single-line JSON.
    explicit JsonWriter(std::ostream& out, int indent = 2);

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Key for the next value/container; object scope only.
    JsonWriter& key(std::string_view name);

    JsonWriter& value(std::string_view text);
    JsonWriter& value(const char* text) { return value(std::string_view(text)); }
    /// Shortest round-trip decimal form (std::to_chars): the fewest digits
    /// that parse back to exactly `number`. NaN and the infinities have no
    /// JSON representation and normalize to null.
    JsonWriter& value(double number);
    JsonWriter& value(std::uint64_t number);
    JsonWriter& value(std::int64_t number);
    JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
    JsonWriter& value(bool flag);

    /// key() + value() in one call.
    template <typename T>
    JsonWriter& kv(std::string_view name, const T& v) {
        key(name);
        return value(v);
    }

    /// RFC 8259 string escaping (quotes, backslash, control characters).
    static std::string escaped(std::string_view text);

private:
    enum class Scope : unsigned char { array, object };

    void before_value();
    void newline_indent();

    std::ostream& out_;
    int indent_;
    std::vector<Scope> scopes_;
    std::vector<bool> has_items_;
    bool key_pending_ = false;
};

}  // namespace nb
