// Failpoint fault-injection framework (see DESIGN.md section 9).
//
// A failpoint is a named site in a risky seam — codebook construction, cache
// insert/evict, channel sampling, spec parsing, per-job sweep execution —
// where a test, a CI job, or an operator can inject a fault without touching
// the code under test: throw an exception, sleep, or simulate allocation
// failure. Sites are defined once at namespace scope in the .cpp that owns
// the seam (NB_FAILPOINT_DEFINE) and checked inline on the code path
// (site.check()); when a site is not armed the check compiles to a single
// relaxed atomic load of that site's own flag — no registry lookup, no lock,
// no measurable cost on hot paths (the perf-smoke gate pins this).
//
// Activation:
//   * environment — NB_FAILPOINTS="site=mode[:arg][:p];site2=..." arms sites
//     for a whole process (parsed once, at the first Site's static
//     construction). Modes: `throw` (inject failpoint::injected_fault),
//     `delay:MS` (sleep MS milliseconds), `oom` (throw std::bad_alloc). The
//     optional trailing `:p` in (0, 1] fires the site probabilistically per
//     evaluation — `codebook.build=throw:0.2` throws on ~20% of builds.
//   * programmatic — failpoint::configure(site, Config{...}) /
//     failpoint::clear(site) / failpoint::clear_all() from tests, including
//     Config::max_hits to model *transient* faults that stop firing after a
//     budget (the retry property tests use this: fail k times, then heal).
//
// Probability draws are deterministic: each site owns a draw counter hashed
// through a fixed seed, so a given binary fires the same evaluations of a
// site in the same order every run (thread interleaving still decides which
// caller observes which draw). NB_FAILPOINT_SEED overrides the seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nb::failpoint {

/// What a `throw`-mode site injects. Deliberately NOT a precondition_error:
/// the sweep engine classifies it as transient (retryable), while
/// precondition violations are fatal (see DESIGN.md section 9).
class injected_fault : public std::runtime_error {
public:
    explicit injected_fault(const std::string& site)
        : std::runtime_error("injected fault at failpoint '" + site + "'"), site_(site) {}

    const std::string& site() const noexcept { return site_; }

private:
    std::string site_;
};

enum class Mode : unsigned char {
    off,
    inject_throw,  ///< throw injected_fault(site)
    delay,         ///< sleep delay_ms, then continue
    oom,           ///< throw std::bad_alloc (simulated allocation failure)
};

struct Config {
    Mode mode = Mode::off;
    double probability = 1.0;     ///< fire chance per evaluation, (0, 1]
    std::uint32_t delay_ms = 0;   ///< Mode::delay sleep
    std::uint64_t max_hits = 0;   ///< stop firing after this many fires (0 = unlimited)
};

/// One named injection site. Define at namespace scope with
/// NB_FAILPOINT_DEFINE so registration happens during static initialization
/// and the registry is complete before main() (test_failpoints sweeps it).
/// Sites are immovable — the registry holds their addresses for the life of
/// the process.
class Site {
public:
    explicit Site(const char* name);

    Site(const Site&) = delete;
    Site& operator=(const Site&) = delete;

    /// The hot-path check: one relaxed atomic load when the site is not
    /// armed. When armed, applies the configured action (which may throw).
    void check() const {
        if (armed_.load(std::memory_order_relaxed)) {
            fire();
        }
    }

    const char* name() const noexcept { return name_; }

    /// Times this site actually fired (post-probability, post-budget).
    std::uint64_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }

private:
    friend void configure(std::string_view, const Config&);
    friend void clear(std::string_view);
    friend void clear_all();
    friend std::vector<std::string> registered_sites();
    friend std::uint64_t hits(std::string_view);
    friend std::string active_summary();

    void fire() const;

    const char* name_;
    mutable std::atomic<bool> armed_{false};
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::uint64_t draws_ = 0;  ///< probability-draw counter (registry mutex)
    mutable Config config_;            ///< guarded by the registry mutex
};

/// Defines the site object for this translation unit. Usage, at namespace
/// scope inside the owning .cpp:
///   NB_FAILPOINT_DEFINE(fp_codebook_build, "codebook.build");
///   ...
///   fp_codebook_build.check();
#define NB_FAILPOINT_DEFINE(identifier, site_name) \
    const ::nb::failpoint::Site identifier{site_name}

/// Arm every site with this name (site names are unique in practice; the
/// registry tolerates duplicates by arming all of them). Throws
/// precondition_error if no such site exists or the config is malformed.
void configure(std::string_view site, const Config& config);

/// Disarm one site / every site. Safe when nothing is armed.
void clear(std::string_view site);
void clear_all();

/// Every site name registered so far, sorted. Complete after static
/// initialization, i.e. from the first line of main() or any test.
std::vector<std::string> registered_sites();

/// Total fires of the named site (0 if unknown).
std::uint64_t hits(std::string_view site);

/// Parse one NB_FAILPOINTS-syntax spec ("site=throw:0.2") into (site,
/// Config); throws precondition_error naming the malformed piece. Exposed so
/// tests cover the parser without round-tripping through the environment.
std::pair<std::string, Config> parse_spec(std::string_view spec);

/// Human summary of the armed sites ("codebook.build=throw p=0.2; ..."), or
/// empty when nothing is armed. nb_run prints this when NB_FAILPOINTS is set
/// so CI logs show what was actually injected.
std::string active_summary();

}  // namespace nb::failpoint
