// Word-packed dynamic bitstring.
//
// This is the workhorse type of the library: beep-code codewords, per-phase
// beep schedules and heard transcripts are all Bitstrings. Operations needed
// by the paper's constructions are provided directly:
//   * superimposition (bitwise OR, Section 1.4),
//   * intersection counts  1(s AND s')           (Definition 2),
//   * Hamming distance                           (Definition 5),
//   * subsequence gather at the 1-positions of a codeword (Notation 7),
//   * i.i.d. Bernoulli(epsilon) noise            (noisy beeping model).
// All bulk operations are word-parallel (64 bits at a time).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd/simd.h"

namespace nb {

class Bitstring {
public:
    /// Empty bitstring.
    Bitstring() noexcept = default;

    /// All-zero bitstring of `size` bits.
    explicit Bitstring(std::size_t size);

    /// Bitstring from a 0/1 character string, e.g. "10110".
    static Bitstring from_string(const std::string& bits);

    /// Uniformly random bitstring of `size` bits.
    static Bitstring random(Rng& rng, std::size_t size);

    /// Bitstring of `bits` bits copied from packed word storage (the layout
    /// words() exposes). `words` must hold ceil(bits / 64) words or more;
    /// unused high bits of the last word are cleared. The zero-copy
    /// transport ring stores delivered messages as raw word runs and
    /// rebuilds Bitstrings with this on the compatibility path.
    static Bitstring from_words(std::span<const std::uint64_t> words, std::size_t bits);

    /// Random bitstring of `size` bits with exactly `weight` ones
    /// (uniform over all such strings). Precondition: weight <= size.
    static Bitstring random_with_weight(Rng& rng, std::size_t size, std::size_t weight);

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    /// Value of bit `index`. Precondition: index < size().
    bool test(std::size_t index) const;

    /// Set bit `index` to `value`. Precondition: index < size().
    void set(std::size_t index, bool value = true);

    /// Flip bit `index`. Precondition: index < size().
    void flip(std::size_t index);

    /// Number of 1s (the paper's 1(s), Definition 2).
    std::size_t count() const noexcept;

    /// Number of positions where both this and `other` are 1, i.e.
    /// 1(this AND other). Precondition: sizes match.
    std::size_t intersect_count(const Bitstring& other) const;

    /// Number of positions where this is 1 and `other` is 0, i.e.
    /// 1(this AND NOT other). This is the paper's "intersection with the
    /// complement" used throughout Lemmas 8-10. Precondition: sizes match.
    std::size_t and_not_count(const Bitstring& other) const;

    /// True iff 1(this AND NOT other) < limit — the Lemma 9 acceptance test
    /// as a packed-word kernel: popcounts of this & ~other accumulate word
    /// by word and the scan exits as soon as the running count reaches
    /// `limit`, so rejected candidates (the common case in a dictionary
    /// scan) cost only a prefix of the string. Precondition: sizes match.
    bool and_not_count_below(const Bitstring& other, std::size_t limit) const;

    /// Hamming distance d_H(this, other). Precondition: sizes match.
    std::size_t hamming_distance(const Bitstring& other) const;

    /// True iff 1(this AND other) >= threshold: "this d-intersects other"
    /// (Definition 2).
    bool intersects(const Bitstring& other, std::size_t threshold) const {
        return intersect_count(other) >= threshold;
    }

    Bitstring& operator|=(const Bitstring& other);
    Bitstring& operator&=(const Bitstring& other);
    Bitstring& operator^=(const Bitstring& other);

    friend Bitstring operator|(Bitstring lhs, const Bitstring& rhs) { return lhs |= rhs; }
    friend Bitstring operator&(Bitstring lhs, const Bitstring& rhs) { return lhs &= rhs; }
    friend Bitstring operator^(Bitstring lhs, const Bitstring& rhs) { return lhs ^= rhs; }

    /// Bitwise complement (within size() bits).
    Bitstring operator~() const;

    bool operator==(const Bitstring& other) const noexcept;
    bool operator!=(const Bitstring& other) const noexcept { return !(*this == other); }

    /// Sorted positions of all 1 bits (the paper's 1_i(s), Notation 7,
    /// as a whole vector: result[i-1] == position of the i-th 1).
    std::vector<std::size_t> one_positions() const;

    /// Call `fn(position)` for every 1 bit in ascending order.
    template <typename Fn>
    void for_each_one(Fn&& fn) const {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t word = words_[w];
            while (word != 0) {
                const int bit = __builtin_ctzll(word);
                fn(w * 64 + static_cast<std::size_t>(bit));
                word &= word - 1;
            }
        }
    }

    /// Reset to an all-zero string of `size` bits, reusing word storage.
    void reset(std::size_t size);

    /// The low `width` bits starting at `pos`, as an integer (bit `pos` is
    /// the result's bit 0). Word-parallel: at most two word reads.
    /// Precondition: width <= 64 and pos + width <= size().
    std::uint64_t load_bits(std::size_t pos, std::size_t width) const;

    /// Write the low `width` bits of `value` at `pos` (bit 0 of `value`
    /// lands at `pos`), overwriting. Word-parallel: at most two word writes.
    /// Precondition: width <= 64, pos + width <= size(), and `value` fits.
    void store_bits(std::size_t pos, std::uint64_t value, std::size_t width);

    /// The suffix [from, size()) as a new Bitstring of size() - from bits —
    /// a word-parallel shift, replacing bit-by-bit extraction loops (the
    /// transports use it to strip payload presence bits).
    /// Precondition: from <= size().
    Bitstring tail(std::size_t from) const;

    /// Gather the bits of this string at the given positions, in order:
    /// result[i] = this[positions[i]]. Used to extract the subsequence
    /// y_{v,w} at the 1-positions of C(r_w) (Section 4, Lemma 10).
    Bitstring gather(const std::vector<std::size_t>& positions) const;

    /// gather() into a caller-owned result (resized to positions.size()),
    /// assembling output words in a register instead of per-bit writes; the
    /// transports use this with per-worker scratch strings so the phase-2
    /// hot loop performs no allocation.
    void gather_into(std::span<const std::size_t> positions, Bitstring& out) const;

    /// gather_into at mask.one_positions(), without the position vector:
    /// out[i] = this[p_i] where p_i is the i-th 1-position of `mask`
    /// (ascending), i.e. the Notation 7 subsequence y at the 1-positions of
    /// a codeword, taken straight off the packed codeword words. Dispatches
    /// to the SIMD layer's word-wise PEXT walk — bit-identical to the
    /// position-list gather on every kernel (property-tested). Precondition:
    /// sizes match.
    void gather_mask_into(const Bitstring& mask, Bitstring& out,
                          simd::Kernel kernel = simd::Kernel::auto_best) const;

    /// Scatter `values` into a fresh string of this size at `positions`:
    /// result[positions[i]] = values[i], other bits 0. This implements the
    /// combined code CD (Notation 7): scatter D(m) into the 1-positions of
    /// C(r). Precondition: values.size() == positions.size().
    static Bitstring scatter(std::size_t size, const std::vector<std::size_t>& positions,
                             const Bitstring& values);

    /// Flip each bit independently with probability `epsilon` — the noisy
    /// beeping channel. Uses geometric skip sampling: O(#flips) expected work.
    void apply_noise(Rng& rng, double epsilon);

    /// Same flip distribution but consuming exactly one Bernoulli draw per
    /// bit, matching RoundEngine's per-round draws; used to cross-validate
    /// the two beep engines bit-for-bit.
    void apply_noise_dense(Rng& rng, double epsilon);

    /// In-place OR of another bitstring, word-parallel (superimposition).
    void superimpose(const Bitstring& other) { *this |= other; }

    /// "10110..." rendering for tests and debugging.
    std::string to_string() const;

    /// 64-bit content hash (FNV-1a over words and size). Stable across runs;
    /// used to key pseudo-random codeword generation by message content.
    std::uint64_t hash() const noexcept;

    /// Raw word storage (read-only); the last word's unused high bits are 0.
    const std::vector<std::uint64_t>& words() const noexcept { return words_; }

private:
    void check_same_size(const Bitstring& other, const char* operation) const;
    void clear_padding() noexcept;

    std::vector<std::uint64_t> words_;
    std::size_t size_ = 0;
};

}  // namespace nb
