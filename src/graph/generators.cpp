#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"

namespace nb {

Graph make_complete(std::size_t n) {
    std::vector<Edge> edges;
    edges.reserve(n * (n - 1) / 2);
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
            edges.push_back(Edge{u, v});
        }
    }
    return Graph::from_edges(n, edges);
}

Graph make_complete_bipartite(std::size_t left, std::size_t right) {
    std::vector<Edge> edges;
    edges.reserve(left * right);
    for (NodeId u = 0; u < left; ++u) {
        for (NodeId v = 0; v < right; ++v) {
            edges.push_back(Edge{u, static_cast<NodeId>(left + v)});
        }
    }
    return Graph::from_edges(left + right, edges);
}

Graph make_hard_instance(std::size_t n, std::size_t delta) {
    require(n >= 2 * delta, "make_hard_instance: need n >= 2*delta");
    std::vector<Edge> edges;
    edges.reserve(delta * delta);
    for (NodeId u = 0; u < delta; ++u) {
        for (NodeId v = 0; v < delta; ++v) {
            edges.push_back(Edge{u, static_cast<NodeId>(delta + v)});
        }
    }
    return Graph::from_edges(n, edges);
}

Graph make_ring(std::size_t n) {
    require(n >= 3, "make_ring: need n >= 3");
    std::vector<Edge> edges;
    edges.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
        edges.push_back(Edge{v, static_cast<NodeId>((v + 1) % n)});
    }
    return Graph::from_edges(n, edges);
}

Graph make_path(std::size_t n) {
    std::vector<Edge> edges;
    if (n >= 2) {
        edges.reserve(n - 1);
        for (NodeId v = 0; v + 1 < n; ++v) {
            edges.push_back(Edge{v, static_cast<NodeId>(v + 1)});
        }
    }
    return Graph::from_edges(n, edges);
}

Graph make_star(std::size_t n) {
    require(n >= 1, "make_star: need n >= 1");
    std::vector<Edge> edges;
    edges.reserve(n - 1);
    for (NodeId v = 1; v < n; ++v) {
        edges.push_back(Edge{0, v});
    }
    return Graph::from_edges(n, edges);
}

Graph make_grid(std::size_t rows, std::size_t cols) {
    require(rows >= 1 && cols >= 1, "make_grid: need rows, cols >= 1");
    std::vector<Edge> edges;
    edges.reserve(2 * rows * cols);
    const auto id = [cols](std::size_t r, std::size_t c) {
        return static_cast<NodeId>(r * cols + c);
    };
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols) {
                edges.push_back(Edge{id(r, c), id(r, c + 1)});
            }
            if (r + 1 < rows) {
                edges.push_back(Edge{id(r, c), id(r + 1, c)});
            }
        }
    }
    return Graph::from_edges(rows * cols, edges);
}

Graph make_tree(std::size_t n, std::size_t arity) {
    require(arity >= 1, "make_tree: arity must be >= 1");
    std::vector<Edge> edges;
    if (n >= 2) {
        edges.reserve(n - 1);
        for (NodeId v = 1; v < n; ++v) {
            edges.push_back(Edge{static_cast<NodeId>((v - 1) / arity), v});
        }
    }
    return Graph::from_edges(n, edges);
}

Graph make_erdos_renyi(std::size_t n, double p, Rng& rng) {
    require(p >= 0.0 && p <= 1.0, "make_erdos_renyi: p must be in [0, 1]");
    std::vector<Edge> edges;
    if (p > 0.0 && n >= 2) {
        if (p >= 1.0) {
            return make_complete(n);
        }
        // Geometric skipping over the lexicographic pair order: expected
        // O(p * n^2) work rather than n^2 Bernoulli draws.
        const std::size_t total_pairs = n * (n - 1) / 2;
        std::size_t index = 0;
        while (true) {
            const std::uint64_t skip = rng.geometric_skip(p);
            if (skip >= total_pairs || index + skip >= total_pairs) {
                break;
            }
            index += static_cast<std::size_t>(skip);
            // Decode pair index -> (u, v): u-th row block of size n-1-u.
            std::size_t remaining = index;
            NodeId u = 0;
            std::size_t row = n - 1;
            while (remaining >= row) {
                remaining -= row;
                --row;
                ++u;
            }
            const auto v = static_cast<NodeId>(u + 1 + remaining);
            edges.push_back(Edge{u, v});
            ++index;
            if (index >= total_pairs) {
                break;
            }
        }
    }
    return Graph::from_edges(n, edges);
}

Graph make_random_regular(std::size_t n, std::size_t d, Rng& rng) {
    require(d < n, "make_random_regular: need d < n");
    require((n * d) % 2 == 0, "make_random_regular: n*d must be even");
    // Pairing/configuration model: d stubs per node, random perfect matching
    // on stubs; conflicting pairs (loops, duplicates) are dropped.
    std::vector<NodeId> stubs;
    stubs.reserve(n * d);
    for (NodeId v = 0; v < n; ++v) {
        for (std::size_t i = 0; i < d; ++i) {
            stubs.push_back(v);
        }
    }
    rng.shuffle(stubs);
    std::set<std::pair<NodeId, NodeId>> seen;
    std::vector<Edge> edges;
    edges.reserve(n * d / 2);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
        const NodeId u = std::min(stubs[i], stubs[i + 1]);
        const NodeId v = std::max(stubs[i], stubs[i + 1]);
        if (u == v) {
            continue;
        }
        if (seen.insert({u, v}).second) {
            edges.push_back(Edge{u, v});
        }
    }
    return Graph::from_edges(n, edges);
}

Graph make_random_geometric(std::size_t n, double radius, Rng& rng) {
    require(radius >= 0.0, "make_random_geometric: radius must be >= 0");
    std::vector<double> xs(n);
    std::vector<double> ys(n);
    for (std::size_t v = 0; v < n; ++v) {
        xs[v] = rng.next_double();
        ys[v] = rng.next_double();
    }
    const double r2 = radius * radius;
    std::vector<Edge> edges;
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
            const double dx = xs[u] - xs[v];
            const double dy = ys[u] - ys[v];
            if (dx * dx + dy * dy <= r2) {
                edges.push_back(Edge{u, v});
            }
        }
    }
    return Graph::from_edges(n, edges);
}

}  // namespace nb
